// System sizing walkthrough: per-movie feasible sets, minimum-buffer
// choices, a shared stream budget, and the dollar cost — the paper's
// Section 5 pipeline, applicable to any movie the user describes on the
// command line.
//
//   ./build/examples/system_sizing                        # Example 1 movies
//   ./build/examples/system_sizing --length=100 --wait=0.2 --pstar=0.6
//       (a custom movie; add --duration='exp(4)' to change the VCR model)

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

namespace {

void PrintMovieSizing(const vod::MovieSizingSpec& spec) {
  using namespace vod;
  std::printf("movie '%s': l = %.0f min, w <= %.2f min, P* = %.2f, "
              "durations %s\n",
              spec.name.c_str(), spec.length_minutes, spec.max_wait_minutes,
              spec.min_hit_probability,
              spec.durations.fast_forward->ToString().c_str());

  // Show a condensed trade-off curve (every ~10% of the stream range).
  const int max_n = static_cast<int>(spec.length_minutes /
                                     spec.max_wait_minutes);
  const auto curve =
      ComputeSizingCurve(spec, std::max(1, max_n / 10));
  VOD_CHECK_OK(curve.status());
  TableWriter table({"n", "B (min)", "P(hit)", "feasible"});
  for (const auto& point : *curve) {
    table.AddRow({std::to_string(point.streams),
                  FormatDouble(point.buffer_minutes, 1),
                  FormatDouble(point.hit_probability, 4),
                  point.feasible ? "yes" : "no"});
  }
  table.RenderText(std::cout);

  const auto choice = MinimumBufferChoice(spec);
  if (!choice.ok()) {
    std::printf("  -> infeasible: %s\n\n", choice.status().ToString().c_str());
    return;
  }
  std::printf("  -> minimum-buffer choice: B* = %.1f min, n* = %d, "
              "P(hit) = %.4f\n\n",
              choice->buffer_minutes, choice->streams,
              choice->hit_probability);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("system_sizing");
  flags.AddDouble("length", 0.0, "custom movie length (min); 0 = Example 1");
  flags.AddDouble("wait", 0.5, "custom movie max wait (min)");
  flags.AddDouble("pstar", 0.5, "custom movie minimum hit probability");
  flags.AddString("duration", "gamma(2,4)",
                  "custom movie VCR duration distribution spec");
  flags.AddInt64("budget", 0, "stream budget (0 = pure-batching count)");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::vector<MovieSizingSpec> movies;
  if (flags.GetDouble("length") > 0.0) {
    MovieSizingSpec spec;
    spec.name = "custom";
    spec.length_minutes = flags.GetDouble("length");
    spec.max_wait_minutes = flags.GetDouble("wait");
    spec.min_hit_probability = flags.GetDouble("pstar");
    spec.mix = VcrMix::Only(VcrOp::kFastForward);
    const auto duration = ParseDistributionSpec(flags.GetString("duration"));
    VOD_CHECK_OK(duration.status());
    spec.durations = VcrDurations::AllSame(*duration);
    spec.rates = paper::Rates();
    movies.push_back(std::move(spec));
  } else {
    movies = paper::Example1Movies();
  }

  for (const auto& spec : movies) PrintMovieSizing(spec);

  const int pure = PureBatchingStreams(movies);
  int budget = static_cast<int>(flags.GetInt64("budget"));
  if (budget <= 0) budget = pure;
  const auto sized = SizeSystem(movies, budget);
  VOD_CHECK_OK(sized.status());

  std::printf("system: stream budget %d (pure batching would need %d)\n",
              budget, pure);
  for (const auto& m : sized->movies) {
    std::printf("  %-10s  n = %4d   B = %6.1f min\n", m.name.c_str(),
                m.streams, m.buffer_minutes);
  }
  std::printf("  total: %d streams + %.1f buffer-minutes "
              "(saves %d streams)\n\n",
              sized->total_streams, sized->total_buffer_minutes,
              pure - sized->total_streams);

  const HardwareCosts costs;  // the paper's 1997 parts list
  std::printf("at 1997 prices (C_b = $%.0f/min, C_n = $%.0f/stream, "
              "phi = %.1f):\n",
              costs.BufferCostPerMovieMinute(), costs.StreamCost(),
              costs.Phi());
  std::printf("  sized allocation: $%.0f\n",
              AllocationCostDollars(*sized, costs));
  AllocationResult pure_allocation;
  pure_allocation.total_streams = pure;
  std::printf("  pure batching   : $%.0f (but P(hit) = 0 — every VCR "
              "resume keeps its stream)\n",
              AllocationCostDollars(pure_allocation, costs));
  return 0;
}
