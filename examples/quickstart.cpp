// Quickstart: size one popular movie and check the answer by simulation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the library's three core steps:
//   1. describe the movie's batching/buffering layout (PartitionLayout),
//   2. predict the VCR-resume hit probability analytically
//      (AnalyticHitModel), and
//   3. validate the prediction with the discrete-event simulator
//      (RunSimulation).

#include <cstdio>

#include "common/check.h"
#include "core/hit_model.h"
#include "dist/gamma.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main() {
  using namespace vod;

  // A 2-hour movie served with 40 batched I/O streams and 80 minutes of
  // buffer: the movie restarts every 3 minutes, each partition holds a
  // 2-minute window, and nobody waits longer than (120 - 80)/40 = 1 minute.
  const auto layout = PartitionLayout::FromBuffer(
      /*movie_length=*/120.0, /*streams=*/40, /*buffer_minutes=*/80.0);
  VOD_CHECK_OK(layout.status());
  std::printf("layout: %s\n\n", layout->ToString().c_str());

  // VCR durations: the paper's skewed gamma, mean 8 minutes. FF/RW run at
  // 3x playback speed.
  const auto duration = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(model.status());

  std::printf("analytic hit probabilities (stream released on resume):\n");
  for (VcrOp op : kAllVcrOps) {
    const auto breakdown = model->Breakdown(op, DistributionPtr(duration));
    VOD_CHECK_OK(breakdown.status());
    std::printf("  %-3s  P(hit) = %.4f   (own partition %.4f, other "
                "partitions %.4f, movie end %.4f)\n",
                VcrOpName(op), breakdown->total(), breakdown->within,
                breakdown->jump, breakdown->end);
  }

  // Now let simulated viewers loose on the same configuration: Poisson
  // arrivals every 2 minutes, mixed VCR behavior.
  SimulationOptions options;
  options.mean_interarrival_minutes = 2.0;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  VOD_CHECK_OK(report.status());

  const auto p_mixed = model->HitProbability(
      VcrMix::PaperMixed(), VcrDurations::AllSame(duration));
  VOD_CHECK_OK(p_mixed.status());

  std::printf("\nmixed workload (P_FF=0.2, P_RW=0.2, P_PAU=0.6):\n");
  std::printf("  model      P(hit) = %.4f\n", *p_mixed);
  std::printf("  simulation P(hit) = %.4f  [%.4f, %.4f]  over %lld resumes\n",
              report->hit_probability_in_partition,
              report->hit_probability_in_partition_low,
              report->hit_probability_in_partition_high,
              static_cast<long long>(report->in_partition_resumes));
  std::printf("  max wait observed  = %.3f min (guarantee: %.3f)\n",
              report->max_wait_minutes, layout->max_wait());
  std::printf("  dedicated streams  = %.2f avg / %.0f peak (misses hold "
              "them)\n",
              report->mean_dedicated_streams,
              report->peak_dedicated_streams);
  return 0;
}
