// A whole-server scenario: a Zipf-popular catalog, sized pre-allocations,
// and a single discrete-event simulation of every popular movie sharing one
// finite VCR stream reserve — including what happens when that reserve is
// too small, and how piggyback merging changes the answer.
//
//   ./build/examples/vod_server_sim --movies=8 --rate=4 --reserve=60
//   ./build/examples/vod_server_sim --piggyback --reserve=30

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/sizing.h"
#include "sim/server.h"
#include "storage/admission.h"
#include "workload/catalog.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("vod_server_sim");
  flags.AddInt64("movies", 8, "catalog size");
  flags.AddDouble("rate", 4.0, "total arrivals per minute");
  flags.AddDouble("zipf", 1.0, "popularity skew exponent");
  flags.AddDouble("popular", 0.8,
                  "fraction of arrivals the popular (batched) set must cover");
  flags.AddInt64("reserve", 60, "dynamic VCR stream reserve");
  flags.AddBool("piggyback", false, "enable phase-2 piggyback merging");
  flags.AddDouble("measure", 10000.0, "measured minutes");
  flags.AddInt64("seed", 7, "base seed");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto catalog = Catalog::Synthetic(
      static_cast<int>(flags.GetInt64("movies")), flags.GetDouble("zipf"),
      flags.GetDouble("rate"), paper::Fig7MixedBehavior());
  VOD_CHECK_OK(catalog.status());

  const int popular_count =
      catalog->PopularSetSize(flags.GetDouble("popular"));
  std::printf("catalog: %zu titles, %.1f arrivals/min, Zipf(%.1f); the top "
              "%d titles cover %.0f%% of arrivals and get batching + "
              "buffering\n\n",
              catalog->size(), flags.GetDouble("rate"),
              flags.GetDouble("zipf"), popular_count,
              100.0 * flags.GetDouble("popular"));

  // --- size every popular title against its QoS targets --------------------
  std::vector<MovieSizingSpec> specs;
  for (int rank = 1; rank <= popular_count; ++rank) {
    const MovieEntry& entry = catalog->movie(rank);
    MovieSizingSpec spec;
    spec.name = entry.title;
    spec.length_minutes = entry.length_minutes;
    spec.max_wait_minutes = entry.max_wait_minutes;
    spec.min_hit_probability = entry.min_hit_probability;
    spec.mix = entry.behavior.mix;
    spec.durations = entry.behavior.durations;
    spec.rates = paper::Rates();
    specs.push_back(std::move(spec));
  }
  const int pure = PureBatchingStreams(specs);
  const auto sized = SizeSystem(specs, pure);
  VOD_CHECK_OK(sized.status());

  // --- commit pre-allocations + the dynamic reserve against the pools ------
  const auto reserve = flags.GetInt64("reserve");
  AdmissionController admission(sized->total_streams + reserve,
                                sized->total_buffer_minutes + 1.0);
  std::vector<ServerMovieSpec> server_movies;
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto& allocation = sized->movies[i];
    VOD_CHECK_OK(admission.ReserveMovie(
        0.0, MovieReservation{allocation.name, allocation.streams,
                              allocation.buffer_minutes}));
    const auto layout = PartitionLayout::FromMaxWait(
        specs[i].length_minutes, allocation.streams,
        specs[i].max_wait_minutes);
    VOD_CHECK_OK(layout.status());
    server_movies.push_back(
        {allocation.name, *layout,
         catalog->ArrivalRate(static_cast<int>(i) + 1), /*arrivals=*/nullptr,
         catalog->movie(static_cast<int>(i) + 1).behavior});
  }

  // --- one shared simulation over the whole popular set --------------------
  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = reserve;
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = flags.GetDouble("measure");
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.piggyback.enabled = flags.GetBool("piggyback");
  options.piggyback.speed_delta = 0.05;
  const auto report = RunServerSimulation(server_movies, options);
  VOD_CHECK_OK(report.status());

  TableWriter table({"movie", "l", "rate/min", "n", "B", "P(hit) sim",
                     "max wait", "blocked", "stalls", "viewers"});
  for (size_t i = 0; i < report->movies.size(); ++i) {
    const auto& m = report->movies[i];
    const auto& allocation = sized->movies[i];
    table.AddRow({m.name, FormatDouble(specs[i].length_minutes, 0),
                  FormatDouble(server_movies[i].arrival_rate_per_minute, 2),
                  std::to_string(allocation.streams),
                  FormatDouble(allocation.buffer_minutes, 1),
                  FormatDouble(m.report.hit_probability, 4),
                  FormatDouble(m.report.max_wait_minutes, 3),
                  std::to_string(m.report.blocked_vcr_requests),
                  std::to_string(m.report.stalled_resumes),
                  FormatDouble(m.report.mean_concurrent_viewers, 1)});
  }
  table.RenderText(std::cout);

  std::printf(
      "\npre-allocated: %lld batching streams + %.1f buffer-minutes "
      "(pure batching would need %d streams)\n",
      static_cast<long long>(admission.reserved_streams()),
      admission.reserved_buffer_minutes(), pure);
  std::printf("dynamic reserve: %lld streams, mean use %.1f, peak %lld, "
              "refusal probability %.4f (piggyback %s)\n",
              static_cast<long long>(report->reserve_capacity),
              report->mean_reserve_in_use,
              static_cast<long long>(report->peak_reserve_in_use),
              report->refusal_probability,
              options.piggyback.enabled ? "on" : "off");
  if (report->refusal_probability > 0.0) {
    std::printf("=> the reserve is undersized for this workload: %lld VCR "
                "requests were refused and %lld resumes stalled. Retry with "
                "a larger --reserve or with --piggyback.\n",
                static_cast<long long>(report->total_blocked_vcr),
                static_cast<long long>(report->total_stalls));
  }
  return 0;
}
