// The operator loop the paper sketches in §2.1: "the pdf of VCR requests
// can be obtained by statistics while the movie is displayed."
//
//   1. run the movie and LOG every VCR request (here: the simulator stands
//      in for production, driven by a "true" behavior the operator cannot
//      see),
//   2. FIT an empirical behavior model from the log,
//   3. SIZE the movie from the fitted model, and
//   4. VERIFY the fitted sizing against the true behavior.
//
//   ./build/examples/measure_and_size
//   ./build/examples/measure_and_size --true_duration='exp(5)' --hours=200

#include <cstdio>

#include "common/check.h"
#include "common/flags.h"
#include "core/sizing.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("measure_and_size");
  flags.AddString("true_duration", "gamma(2,4)",
                  "the (hidden) true VCR duration distribution");
  flags.AddDouble("hours", 500.0, "production hours to log");
  flags.AddDouble("wait", 0.5, "target max wait (minutes)");
  flags.AddDouble("pstar", 0.5, "target hit probability");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const double movie_length = 120.0;
  const auto true_duration =
      ParseDistributionSpec(flags.GetString("true_duration"));
  VOD_CHECK_OK(true_duration.status());

  // --- 1. production run with logging -------------------------------------
  VcrBehavior true_behavior;
  true_behavior.mix = VcrMix::PaperMixed();
  true_behavior.durations = VcrDurations::AllSame(*true_duration);
  true_behavior.interactivity = paper::DefaultInteractivity();

  // Whatever layout production happens to run today; logging is
  // layout-independent.
  const auto production_layout =
      PartitionLayout::FromBuffer(movie_length, 40, 80.0);
  VOD_CHECK_OK(production_layout.status());

  VcrTrace trace;
  SimulationOptions production;
  production.behavior = true_behavior;
  production.warmup_minutes = 0.0;
  production.measurement_minutes = flags.GetDouble("hours") * 60.0;
  production.trace = &trace;
  const auto report =
      RunSimulation(*production_layout, paper::Rates(), production);
  VOD_CHECK_OK(report.status());
  std::printf("1. logged %zu VCR requests over %.0f hours of production\n",
              trace.size(), flags.GetDouble("hours"));

  // --- 2. fit -----------------------------------------------------------------
  const auto fitted = FitBehaviorFromTrace(trace);
  VOD_CHECK_OK(fitted.status());
  std::printf("2. fitted mix: FF %.3f / RW %.3f / PAU %.3f; FF duration "
              "mean %.2f min (true: %.2f)\n",
              fitted->mix.p_fast_forward, fitted->mix.p_rewind,
              fitted->mix.p_pause, fitted->durations.fast_forward->Mean(),
              (*true_duration)->Mean());

  // --- 3. size from the fitted model ------------------------------------------
  MovieSizingSpec fitted_spec;
  fitted_spec.name = "from-trace";
  fitted_spec.length_minutes = movie_length;
  fitted_spec.max_wait_minutes = flags.GetDouble("wait");
  fitted_spec.min_hit_probability = flags.GetDouble("pstar");
  fitted_spec.mix = fitted->mix;
  fitted_spec.durations = fitted->durations;
  fitted_spec.rates = paper::Rates();
  const auto fitted_choice = MinimumBufferChoice(fitted_spec);
  VOD_CHECK_OK(fitted_choice.status());
  std::printf("3. sized from the trace: B* = %.1f min, n* = %d "
              "(model P(hit) = %.4f)\n",
              fitted_choice->buffer_minutes, fitted_choice->streams,
              fitted_choice->hit_probability);

  // --- 4. verify against the truth -----------------------------------------------
  MovieSizingSpec true_spec = fitted_spec;
  true_spec.name = "oracle";
  true_spec.mix = VcrMix::PaperMixed();
  true_spec.durations = VcrDurations::AllSame(*true_duration);
  const auto oracle_choice = MinimumBufferChoice(true_spec);
  VOD_CHECK_OK(oracle_choice.status());
  std::printf("4. oracle sizing (true behavior): B* = %.1f min, n* = %d\n",
              oracle_choice->buffer_minutes, oracle_choice->streams);

  // And the acid test: does the trace-sized layout deliver P* under the
  // TRUE behavior?
  const auto layout = PartitionLayout::FromMaxWait(
      movie_length, fitted_choice->streams, fitted_spec.max_wait_minutes);
  VOD_CHECK_OK(layout.status());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(model.status());
  const auto delivered = model->HitProbability(
      true_spec.mix, true_spec.durations);
  VOD_CHECK_OK(delivered.status());
  std::printf("   trace-sized layout under the true behavior: "
              "P(hit) = %.4f (target %.2f) -> %s\n",
              *delivered, fitted_spec.min_hit_probability,
              *delivered >= fitted_spec.min_hit_probability - 0.01
                  ? "requirement met"
                  : "UNDER TARGET — log longer before sizing");
  return 0;
}
