// Capacity planner: turn QoS targets plus a hardware parts list into a
// bill of materials (disks, memory, dollars) — the paper's system-sizing
// application, usable with modern hardware numbers.
//
//   ./build/examples/capacity_planner                     # 1997 defaults
//   ./build/examples/capacity_planner --disk_price=150 --disk_mbps=3000
//       --mem_price=0.003 --video_mbps=8              # roughly 2020s NVMe

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/erlang.h"
#include "core/sizing.h"
#include "sim/simulator.h"
#include "storage/disk_model.h"
#include "storage/round_scheduler.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("capacity_planner");
  flags.AddDouble("disk_price", 700.0, "disk price, dollars");
  flags.AddDouble("disk_gb", 2.0, "disk capacity, GB");
  flags.AddDouble("disk_mbps", 5.0, "disk transfer rate, MB/s");
  flags.AddDouble("mem_price", 25.0, "memory price, $/MB");
  flags.AddDouble("video_mbps", 4.0, "video bitrate, Mbit/s");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  HardwareCosts costs;
  costs.disk_price_dollars = flags.GetDouble("disk_price");
  costs.disk_transfer_mbytes_per_sec = flags.GetDouble("disk_mbps");
  costs.memory_price_per_mbyte = flags.GetDouble("mem_price");
  costs.video_rate_mbits_per_sec = flags.GetDouble("video_mbps");
  VOD_CHECK_OK(costs.Validate());

  const auto disk_model = DiskModel::Create(
      DiskSpec{flags.GetDouble("disk_gb"), costs.disk_transfer_mbytes_per_sec,
               costs.disk_price_dollars},
      VideoFormat{costs.video_rate_mbits_per_sec});
  VOD_CHECK_OK(disk_model.status());

  std::printf("hardware: $%.0f disk (%.0f GB, %.0f MB/s), $%.3f/MB memory, "
              "%.0f Mbit/s video\n",
              costs.disk_price_dollars, flags.GetDouble("disk_gb"),
              costs.disk_transfer_mbytes_per_sec,
              costs.memory_price_per_mbyte, costs.video_rate_mbits_per_sec);
  std::printf("derived: %.1f streams/disk, C_n = $%.2f/stream, "
              "C_b = $%.2f/movie-min, phi = %.2f\n\n",
              costs.StreamsPerDisk(), costs.StreamCost(),
              costs.BufferCostPerMovieMinute(), costs.Phi());

  // QoS targets: the paper's Example 1 movies.
  const auto movies = paper::Example1Movies();
  std::vector<MovieAllocationBound> bounds;
  double catalog_minutes = 0.0;
  for (const auto& spec : movies) {
    const auto choice = MinimumBufferChoice(spec);
    VOD_CHECK_OK(choice.status());
    bounds.push_back({spec.name, spec.length_minutes, spec.max_wait_minutes,
                      choice->streams});
    catalog_minutes += spec.length_minutes;
  }

  // Pick the stream count minimizing cost at this phi, then translate the
  // allocation into hardware.
  const auto curve = ComputeCostCurve(bounds, costs.Phi(), 400);
  VOD_CHECK_OK(curve.status());
  const CostCurvePoint best = MinimumCostPoint(*curve);
  const auto allocation = AllocateStreamBudget(bounds, best.total_streams);
  VOD_CHECK_OK(allocation.status());

  TableWriter table({"movie", "streams", "buffer (min)", "buffer (MB)"});
  const double mb_per_minute = 60.0 * costs.video_rate_mbits_per_sec / 8.0;
  for (const auto& m : allocation->movies) {
    table.AddRow({m.name, std::to_string(m.streams),
                  FormatDouble(m.buffer_minutes, 1),
                  FormatDouble(m.buffer_minutes * mb_per_minute, 0)});
  }
  table.RenderText(std::cout);

  const int disks = disk_model->DisksRequired(catalog_minutes,
                                              allocation->total_streams);
  const double memory_mb = allocation->total_buffer_minutes * mb_per_minute;
  const double dollars = AllocationCostDollars(*allocation, costs);
  std::printf(
      "\nbill of materials for the cost-optimal point (%d streams):\n"
      "  disks : %d (storage needs %d, bandwidth needs %d)\n"
      "  memory: %.0f MB of buffer\n"
      "  cost  : $%.0f  (buffer $%.0f + streams $%.0f)\n",
      best.total_streams, disks, disk_model->DisksForStorage(catalog_minutes),
      disk_model->DisksForBandwidth(allocation->total_streams), memory_mb,
      dollars,
      costs.BufferCostPerMovieMinute() * allocation->total_buffer_minutes,
      costs.StreamCost() * allocation->total_streams);
  std::printf("  (at phi = %.2f the optimum sits at the %s end of the "
              "curve)\n",
              costs.Phi(),
              best.total_streams == curve->back().total_streams
                  ? "max-streams"
                  : best.total_streams == curve->front().total_streams
                        ? "min-streams"
                        : "interior");

  // --- round-scheduling refinement of streams/disk -------------------------
  // The ideal figure divides bandwidth by bitrate; a round-based scheduler
  // pays seek + rotation per stream per round, so short rounds (small
  // buffers, low start-up latency) sustain fewer streams.
  const auto scheduler = RoundScheduler::Create(
      DiskGeometry{17.0, 2.0, 8.33, costs.disk_transfer_mbytes_per_sec},
      costs.video_rate_mbits_per_sec);
  VOD_CHECK_OK(scheduler.status());
  std::printf("\nround-scheduling refinement (ideal %.0f streams/disk):\n",
              scheduler->BandwidthBoundStreams());
  for (double round : {0.5, 1.0, 2.0, 4.0}) {
    const int per_disk = scheduler->MaxStreamsPerDisk(round);
    std::printf("  round %.1fs: %d streams/disk, %.1f MB buffer/disk, "
                "%.1fs startup latency -> %d disks for %d streams\n",
                round, per_disk,
                scheduler->BufferPerDiskMBytes(per_disk, round),
                scheduler->StartupLatencySeconds(round),
                per_disk > 0
                    ? (allocation->total_streams + per_disk - 1) / per_disk
                    : -1,
                allocation->total_streams);
  }

  // --- dynamic VCR reserve sizing (Erlang-B) --------------------------------
  // Offered load = mean busy dedicated streams under unlimited supply,
  // measured with a quick calibration simulation per movie.
  double offered = 0.0;
  for (size_t i = 0; i < movies.size(); ++i) {
    const auto layout = PartitionLayout::FromMaxWait(
        movies[i].length_minutes, allocation->movies[i].streams,
        movies[i].max_wait_minutes);
    VOD_CHECK_OK(layout.status());
    SimulationOptions options;
    options.mean_interarrival_minutes = 1.0;  // planning assumption
    options.behavior.mix = VcrMix::PaperMixed();
    options.behavior.durations = movies[i].durations;
    options.behavior.interactivity = paper::DefaultInteractivity();
    options.warmup_minutes = 500.0;
    options.measurement_minutes = 8000.0;
    options.seed = 31337 + i;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    VOD_CHECK_OK(report.status());
    offered += report->mean_dedicated_streams;
  }
  std::printf("\nVCR reserve sizing: offered load %.1f Erlangs\n", offered);
  for (double target : {0.05, 0.01, 0.001}) {
    const auto reserve = MinStreamsForBlocking(offered, target);
    VOD_CHECK_OK(reserve.status());
    std::printf("  refusal target %.3f -> reserve %d streams "
                "(+%d disks, $%.0f)\n",
                target, *reserve,
                disk_model->DisksForBandwidth(*reserve),
                costs.StreamCost() * *reserve);
  }
  return 0;
}
