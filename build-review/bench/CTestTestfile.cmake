# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(soak_crash_recovery "/root/repo/build-review/bench/soak_crash_recovery" "--cycles=3" "--seed=7" "--prefix=soak_ctest")
set_tests_properties(soak_crash_recovery PROPERTIES  LABELS "integration" WORKING_DIRECTORY "/root/repo/build-review/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
