# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("numerics")
subdirs("stats")
subdirs("obs")
subdirs("dist")
subdirs("core")
subdirs("ctrl")
subdirs("workload")
subdirs("storage")
subdirs("sim")
subdirs("exp")
