#include "common/flags.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace vod {

namespace {
// strtoll/strtod silently skip leading whitespace; a flag value that starts
// with a space (or is empty) is a quoting accident, not a number.
bool StartsLikeGarbage(const std::string& text) {
  return text.empty() || std::isspace(static_cast<unsigned char>(text[0]));
}
}  // namespace

FlagSet::FlagSet(std::string program) : program_(std::move(program)) {}

void FlagSet::Register(const std::string& name, Flag flag) {
  const bool inserted = flags_.emplace(name, std::move(flag)).second;
  if (!inserted) {
    std::fprintf(stderr, "FlagSet(%s): duplicate flag --%s\n",
                 program_.c_str(), name.c_str());
  }
  VOD_CHECK_MSG(inserted, "duplicate flag registration");
  order_.push_back(name);
}

void FlagSet::AddInt64(const std::string& name, int64_t default_value,
                       const std::string& help) {
  Flag f;
  f.type = Type::kInt64;
  f.help = help;
  f.int_value = default_value;
  f.default_text = std::to_string(default_value);
  Register(name, std::move(f));
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  std::ostringstream os;
  os << default_value;
  f.default_text = os.str();
  Register(name, std::move(f));
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  f.default_text = default_value ? "true" : "false";
  Register(name, std::move(f));
}

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  f.default_text = default_value;
  Register(name, std::move(f));
}

Status FlagSet::SetFromText(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  errno = 0;
  char* end = nullptr;
  switch (f.type) {
    case Type::kInt64: {
      const long long v =
          StartsLikeGarbage(text) ? 0 : std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a base-10 integer, got '" +
                                       text + "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name +
                                       " is out of int64 range: '" + text +
                                       "'");
      }
      f.int_value = v;
      break;
    }
    case Type::kDouble: {
      // Hexadecimal floats ("0x1p4") parse cleanly but are never what a
      // command line means; reject them before strtod can accept them.
      const bool looks_hex =
          text.find('x') != std::string::npos ||
          text.find('X') != std::string::npos;
      const double v = StartsLikeGarbage(text) || looks_hex
                           ? 0.0
                           : std::strtod(text.c_str(), &end);
      if (end == nullptr || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a decimal number, got '" +
                                       text + "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name +
                                       " is out of double range: '" + text +
                                       "'");
      }
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " must be finite, got '" + text + "'");
      }
      f.double_value = v;
      break;
    }
    case Type::kBool: {
      if (text == "true" || text == "1" || text == "yes") {
        f.bool_value = true;
      } else if (text == "false" || text == "0" || text == "no") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + text +
                                       "'");
      }
      break;
    }
    case Type::kString:
      f.string_value = text;
      break;
  }
  f.was_set = true;
  return Status::OK();
}

Status FlagSet::Parse(int argc, char** argv, bool exit_on_help) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      if (exit_on_help) std::exit(0);
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" + arg +
                                     "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing a value");
      }
    }
    VOD_RETURN_IF_ERROR(SetFromText(name, value));
  }
  return Status::OK();
}

const FlagSet::Flag& FlagSet::Find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  VOD_CHECK_MSG(it != flags_.end(), "flag not registered");
  VOD_CHECK_MSG(it->second.type == type, "flag type mismatch");
  return it->second;
}

int64_t FlagSet::GetInt64(const std::string& name) const {
  return Find(name, Type::kInt64).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Find(name, Type::kDouble).double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Find(name, Type::kBool).bool_value;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Find(name, Type::kString).string_value;
}

bool FlagSet::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

bool FlagSet::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  VOD_CHECK_MSG(it != flags_.end(), "flag not registered");
  return it->second.was_set;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "Usage: " << program_ << " [--flag=value ...]\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << "  (default: " << f.default_text << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace vod
