// Invariant-checking macros.
//
// VOD_CHECK* fire in all build types: they guard invariants whose violation
// means a library bug, where continuing would silently corrupt results.
// VOD_DCHECK* compile away in NDEBUG builds and guard hot-path invariants.

#ifndef VOD_COMMON_CHECK_H_
#define VOD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace vod {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "VOD_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace vod

#define VOD_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::vod::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
    }                                                                  \
  } while (0)

#define VOD_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::vod::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                  \
  } while (0)

#define VOD_CHECK_OK(status_expr)                                          \
  do {                                                                     \
    const ::vod::Status& _st = (status_expr);                              \
    if (!_st.ok()) {                                                       \
      ::vod::internal::CheckFailed(__FILE__, __LINE__, #status_expr,       \
                                   _st.ToString().c_str());                \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define VOD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define VOD_DCHECK(cond) VOD_CHECK(cond)
#endif

#endif  // VOD_COMMON_CHECK_H_
