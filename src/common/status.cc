#include "common/status.h"

namespace vod {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace vod
