// Leveled logging to stderr.
//
// The library itself logs nothing at default verbosity; simulation drivers
// and benches raise the level for progress reporting. Each simulator world
// remains single-threaded by design (a discrete-event simulation has one
// logical clock), but the replication harness (src/exp) runs independent
// worlds on a thread pool, so the verbosity level is atomic and concurrent
// LogMessage calls are safe (each emits one fprintf, which glibc serializes
// per stream; interleaving between lines is acceptable).

#ifndef VOD_COMMON_LOGGING_H_
#define VOD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vod {

enum class LogLevel : int {
  kError = 0,
  kWarning = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Sets the global verbosity; messages above this level are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line; used by the VOD_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vod

/// VOD_LOG(kInfo) << "message"; — dropped entirely when below verbosity.
#define VOD_LOG(level)                                                     \
  if (::vod::LogLevel::level > ::vod::GetLogLevel()) {                     \
  } else                                                                   \
    ::vod::internal::LogCapture(::vod::LogLevel::level, __FILE__, __LINE__) \
        .stream()

#endif  // VOD_COMMON_LOGGING_H_
