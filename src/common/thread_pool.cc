#include "common/thread_pool.h"

#include "common/check.h"

namespace vod {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  VOD_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    VOD_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  VOD_CHECK(n >= 0);
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One claiming loop per worker; the atomic counter hands out indices so
  // uneven cell durations self-balance without a stealing deque.
  auto next = std::make_shared<std::atomic<int64_t>>(0);
  const int spawned =
      static_cast<int>(std::min<int64_t>(n, num_threads()));
  for (int t = 0; t < spawned; ++t) {
    Submit([next, n, &body] {
      for (int64_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        body(i);
      }
    });
  }
  Wait();
}

int ThreadPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace vod
