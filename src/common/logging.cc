#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace vod {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace vod
