// Versioned, checksummed binary snapshots for crash-recoverable runs.
//
// Long multi-replication sweeps must survive a SIGKILL, an OOM-kill, or a
// CI timeout without losing completed work. This layer provides the three
// pieces every snapshot producer shares:
//
//   * ByteWriter / ByteReader — explicit little-endian codecs for POD
//     fields. Readers are bounds-checked and return Status instead of
//     reading past the end, so a truncated file is a diagnosable error,
//     never undefined behavior.
//   * a framed container — magic, format version, payload type, payload
//     size, CRC32 — so stale, foreign, corrupted, or truncated files are
//     rejected with a precise message before any field is decoded.
//   * atomic persistence — WriteSnapshotFile writes `path.tmp`, flushes to
//     disk, then rename()s over `path`. A crash mid-write leaves either the
//     previous complete snapshot or none; it never leaves a torn file under
//     the published name.
//
// Doubles are serialized as their IEEE-754 bit pattern, so a snapshot
// round-trip is bit-exact and resumed runs can reproduce reports
// byte-for-byte.

#ifndef VOD_COMMON_SERIALIZE_H_
#define VOD_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vod {

/// Bumped whenever the framing or any payload codec changes shape; readers
/// reject other versions rather than guessing.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Payload type ids, one per snapshot producer (guards against feeding one
/// producer's file to another).
enum class SnapshotPayload : uint32_t {
  kExperimentGrid = 1,
  kEventQueue = 2,
  kRng = 3,
  kServerGrid = 4,
  kShardedRun = 5,
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// \brief Append-only little-endian encoder.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; round-trips NaN payloads and -0.0 exactly.
  void PutDouble(double v);
  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);

  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
///
/// Every Read* returns InvalidArgument("snapshot truncated ...") instead of
/// walking off the end. The buffer must outlive the reader.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadBool(bool* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Take(size_t n, const uint8_t** out);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// \brief Atomically publishes a framed snapshot at `path`.
///
/// Writes `path + ".tmp"`, fsyncs it, then renames over `path`. On any I/O
/// failure the temp file is removed and a Status naming the failing step is
/// returned; `path` is never left torn.
Status WriteSnapshotFile(const std::string& path, SnapshotPayload payload_type,
                         const std::string& payload);

/// \brief Reads and validates a framed snapshot.
///
/// Rejects — each with its own diagnostic — files that are missing, too
/// short for the header, carry the wrong magic, a different format version,
/// a different payload type, a payload size that disagrees with the file, or
/// a CRC mismatch. Returns the verified payload bytes.
Result<std::string> ReadSnapshotFile(const std::string& path,
                                     SnapshotPayload expected_type);

}  // namespace vod

#endif  // VOD_COMMON_SERIALIZE_H_
