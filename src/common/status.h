// Status and Result<T>: exception-free error propagation for the public API.
//
// Modeled on the RocksDB/Arrow convention: functions that can fail return a
// Status (or a Result<T> carrying a value), never throw across the library
// boundary. A Status is cheap to copy in the OK case (no allocation).

#ifndef VOD_COMMON_STATUS_H_
#define VOD_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace vod {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// A caller-supplied argument is outside its documented domain.
  kInvalidArgument = 1,
  /// A numeric routine failed to converge or lost too much precision.
  kNumericError = 2,
  /// A constrained problem has no feasible solution.
  kInfeasible = 3,
  /// A resource pool (streams, buffers, disks) is exhausted.
  kResourceExhausted = 4,
  /// A lookup (movie id, session id, ...) found nothing.
  kNotFound = 5,
  /// An internal invariant was violated; indicates a library bug.
  kInternal = 6,
  /// The operation is not implemented for the given configuration.
  kNotSupported = 7,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a value.
///
/// The OK status carries no message and no allocation. Error statuses carry
/// a code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNumericError() const { return code_ == StatusCode::kNumericError; }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts (see VOD_CHECK); callers
/// must test ok() first or use ValueOr().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK if the result holds a value.
  const Status& status() const { return status_; }

  /// The contained value. Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// The contained value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates an error status from an expression returning Status.
#define VOD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::vod::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates an expression returning Result<T>; on error returns its status,
/// otherwise assigns the value to `lhs`.
#define VOD_ASSIGN_OR_RETURN(lhs, expr)      \
  auto VOD_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!VOD_CONCAT_(_res_, __LINE__).ok())                  \
    return VOD_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(VOD_CONCAT_(_res_, __LINE__)).value()

#define VOD_CONCAT_IMPL_(a, b) a##b
#define VOD_CONCAT_(a, b) VOD_CONCAT_IMPL_(a, b)

}  // namespace vod

#endif  // VOD_COMMON_STATUS_H_
