#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace vod {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VOD_CHECK(!headers_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  VOD_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TableWriter::AddNumericRow(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&]() {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (size_t i = row[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  rule();
  emit_row(headers_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void TableWriter::RenderCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace vod
