// Ordered cross-shard mailboxes for the sharded server simulation.
//
// Shards never touch each other's state directly: all cross-shard traffic is
// POD messages posted into per-direction mailboxes, and the exchange is
// phase-alternating — shards post to their coordinator-bound boxes while
// running a window (no reader exists then), and the single-threaded
// coordinator drains every box between windows (no writer exists then). The
// ThreadPool::ParallelFor join *is* the barrier, so the mailboxes themselves
// need no locks; what they add is accountability: every Post stamps a
// per-box sequence number, every Drain verifies the sequence is gap-free,
// and lifetime posted/drained counters feed the shard-mailbox-conservation
// audit law. A lost, duplicated, or reordered message is a detected
// invariant violation, not a silent divergence.

#ifndef VOD_COMMON_MAILBOX_H_
#define VOD_COMMON_MAILBOX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace vod {

/// One cross-shard message. POD so boxes are trivially copyable/serializable;
/// the meaning of a/b/c and x/y depends on `kind`. Messages are keyed by
/// movie (never by shard), so for a fixed configuration the message stream
/// per movie is identical for every shard count — a property the
/// determinism suite checks directly.
struct ShardMessage {
  /// Per-mailbox sequence number, stamped by Post in posting order.
  uint64_t seq = 0;
  /// Message kind (sharded_server.cc defines the taxonomy).
  uint32_t kind = 0;
  /// Global movie index the message concerns (-1 = whole-run message).
  int32_t movie = -1;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  double x = 0.0;
  double y = 0.0;
};

/// \brief One direction of one shard's message channel.
///
/// Single-producer/single-consumer by protocol (see file comment): Post is
/// only called by the owning side during its phase, Drain only by the other
/// side during the opposite phase.
class ShardMailbox {
 public:
  /// Appends `m` with the next sequence number stamped.
  void Post(ShardMessage m) {
    m.seq = next_seq_++;
    ++posted_;
    box_.push_back(m);
    if (box_.size() > peak_depth_) peak_depth_ = box_.size();
  }

  /// \brief Moves out all queued messages and verifies sequence contiguity.
  ///
  /// Any gap or duplication in the stamped sequence increments
  /// `sequence_gaps` (it should stay 0 forever; the audit law fires
  /// otherwise). The box is left empty.
  std::vector<ShardMessage> Drain() {
    for (const ShardMessage& m : box_) {
      if (m.seq != drained_) ++sequence_gaps_;
      ++drained_;
    }
    std::vector<ShardMessage> out;
    out.swap(box_);
    return out;
  }

  uint64_t posted() const { return posted_; }
  uint64_t drained() const { return drained_; }
  uint64_t sequence_gaps() const { return sequence_gaps_; }
  bool empty() const { return box_.empty(); }
  /// High-water queue depth over the box's lifetime (telemetry: how much a
  /// barrier phase buffers before the other side drains).
  uint64_t peak_depth() const { return peak_depth_; }

 private:
  std::vector<ShardMessage> box_;
  uint64_t next_seq_ = 0;
  uint64_t posted_ = 0;
  uint64_t drained_ = 0;
  uint64_t sequence_gaps_ = 0;
  uint64_t peak_depth_ = 0;
};

/// \brief The full mailbox fabric for an n-shard run: one coordinator-bound
/// and one shard-bound box per shard.
///
/// Shard i writes to_coordinator(i) while windows run; the coordinator
/// writes to_shard(i) between windows and shard i drains it at its next
/// window start. Totals aggregate both directions for the audit snapshot.
class MailboxRouter {
 public:
  explicit MailboxRouter(int shards)
      : to_coordinator_(static_cast<size_t>(shards)),
        to_shard_(static_cast<size_t>(shards)) {}

  int shards() const { return static_cast<int>(to_shard_.size()); }
  ShardMailbox& to_coordinator(int shard) {
    return to_coordinator_[static_cast<size_t>(shard)];
  }
  ShardMailbox& to_shard(int shard) {
    return to_shard_[static_cast<size_t>(shard)];
  }

  uint64_t total_posted() const {
    uint64_t n = 0;
    for (const auto& b : to_coordinator_) n += b.posted();
    for (const auto& b : to_shard_) n += b.posted();
    return n;
  }
  uint64_t total_drained() const {
    uint64_t n = 0;
    for (const auto& b : to_coordinator_) n += b.drained();
    for (const auto& b : to_shard_) n += b.drained();
    return n;
  }
  uint64_t total_sequence_gaps() const {
    uint64_t n = 0;
    for (const auto& b : to_coordinator_) n += b.sequence_gaps();
    for (const auto& b : to_shard_) n += b.sequence_gaps();
    return n;
  }
  /// Messages posted but not yet drained, across every box. Zero at every
  /// barrier once both phases have run.
  uint64_t in_flight() const { return total_posted() - total_drained(); }

  /// Deepest any single box has ever been (telemetry for the imbalance
  /// gauges: the busiest shard's barrier backlog).
  uint64_t max_peak_depth() const {
    uint64_t n = 0;
    for (const auto& b : to_coordinator_) n = std::max(n, b.peak_depth());
    for (const auto& b : to_shard_) n = std::max(n, b.peak_depth());
    return n;
  }

 private:
  std::vector<ShardMailbox> to_coordinator_;
  std::vector<ShardMailbox> to_shard_;
};

}  // namespace vod

#endif  // VOD_COMMON_MAILBOX_H_
