// Minimal command-line flag parsing for bench and example binaries.
//
// Supports --name=value and --name value forms plus --help. This is
// deliberately tiny: the binaries take a handful of numeric knobs (seed,
// replication count, CSV toggles) and must not drag in a dependency.

#ifndef VOD_COMMON_FLAGS_H_
#define VOD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace vod {

/// \brief Declarative flag set: register flags, then Parse(argc, argv).
///
/// Usage:
///   FlagSet flags("fig7a_ff_validation");
///   flags.AddInt64("seed", 42, "base RNG seed");
///   flags.AddBool("csv", false, "emit CSV instead of an aligned table");
///   VOD_CHECK_OK(flags.Parse(argc, argv));
///   uint64_t seed = flags.GetInt64("seed");
class FlagSet {
 public:
  /// `program` is used in the --help banner.
  explicit FlagSet(std::string program);

  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv. Unknown flags or malformed values produce InvalidArgument.
  /// `--help` prints usage to stdout and, if `exit_on_help` is set (default),
  /// exits the process with code 0.
  Status Parse(int argc, char** argv, bool exit_on_help = true);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  /// True if the flag was explicitly present on the command line.
  bool WasSet(const std::string& name) const;

  /// True if a flag with this name was registered (any type).
  bool Has(const std::string& name) const;

  /// Renders the --help text.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
    bool was_set = false;
  };

  const Flag& Find(const std::string& name, Type type) const;
  /// Registers `flag` under `name`; re-registering a name aborts (a
  /// duplicate registration is always a programming error and would
  /// silently shadow the first flag's default and help text).
  void Register(const std::string& name, Flag flag);
  Status SetFromText(const std::string& name, const std::string& text);

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order for --help
};

}  // namespace vod

#endif  // VOD_COMMON_FLAGS_H_
