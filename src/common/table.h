// Plain-text table and CSV rendering for benchmark harnesses.
//
// Every bench binary prints (a) a human-readable aligned table mirroring the
// paper's figure/table, and (b) optionally machine-readable CSV for plotting.

#ifndef VOD_COMMON_TABLE_H_
#define VOD_COMMON_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace vod {

/// \brief Collects rows of string cells and renders them aligned or as CSV.
///
/// Usage:
///   TableWriter t({"n", "w", "P(hit) model", "P(hit) sim"});
///   t.AddRow({"40", "1.0", "0.6612", "0.6587"});
///   t.RenderText(std::cout);
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` significant decimals.
  void AddNumericRow(const std::vector<double>& values, int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return headers_.size(); }

  /// Renders an aligned, boxed ASCII table.
  void RenderText(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void RenderCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string FormatDouble(double v, int precision = 4);

}  // namespace vod

#endif  // VOD_COMMON_TABLE_H_
