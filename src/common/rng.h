// Deterministic pseudo-random number generation for simulation.
//
// The simulator needs (a) reproducible runs from a single seed, and
// (b) statistically independent sub-streams per entity (arrivals, per-viewer
// VCR behavior, ...) so that adding one consumer of randomness does not
// perturb every other sequence. We use xoshiro256** for generation and
// SplitMix64 both for seeding and for deriving child stream seeds.

#ifndef VOD_COMMON_RNG_H_
#define VOD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/status.h"

namespace vod {

class ByteWriter;
class ByteReader;

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand a user seed
/// into generator state and to derive decorrelated child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** generator with named sub-stream derivation.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// <random> distributions, though the library's own samplers (see
/// dist/distribution.h) only use Uniform01()/NextUint64().
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // The small samplers below are defined inline: they sit on the simulator's
  // hottest path (every event draws at least one variate) and inlining them
  // removes a call per draw without changing any emitted bit.

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface.
  uint64_t operator()() { return NextUint64(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double Uniform01() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double Uniform(double lo, double hi) {
    VOD_DCHECK(lo <= hi);
    return lo + (hi - lo) * Uniform01();
  }

  /// Uniform integer in [0, bound) without modulo bias. Precondition:
  /// bound > 0.
  uint64_t UniformInt(uint64_t bound) {
    VOD_DCHECK(bound > 0);
    // Rejection sampling over the largest multiple of `bound`.
    const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Exponential variate with the given mean (mean > 0).
  double Exponential(double mean) {
    VOD_DCHECK(mean > 0);
    // -mean * log(U), guarding against U == 0 via 1 - Uniform01() in (0, 1].
    return -mean * std::log(1.0 - Uniform01());
  }

  /// Standard normal variate (polar Marsaglia method, no caching so calls
  /// remain stateless with respect to stream splitting).
  double Normal();

  /// Gamma(shape k > 0, scale theta > 0) variate, Marsaglia–Tsang squeeze
  /// with the Johnk-style boost for k < 1.
  double Gamma(double shape, double scale);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) {
    VOD_DCHECK(p >= 0.0 && p <= 1.0);
    return Uniform01() < p;
  }

  /// \brief Derives an independent child generator.
  ///
  /// Children are identified by a caller-chosen (stream_class, index) pair so
  /// the mapping from entity to randomness is stable across code changes:
  /// e.g. MakeChild(kArrivals, movie_id) or MakeChild(kViewer, viewer_id).
  Rng MakeChild(uint64_t stream_class, uint64_t index) const;

  /// Appends the full generator state (xoshiro words + derivation seed) to
  /// `out`; Restore reproduces the sequence and all MakeChild derivations
  /// bit-exactly.
  void Snapshot(ByteWriter* out) const;

  /// Restores state written by Snapshot. On error (truncated input) the
  /// generator is left unchanged.
  Status Restore(ByteReader* in);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  uint64_t seed_;  // retained so MakeChild derivations are stable
};

}  // namespace vod

#endif  // VOD_COMMON_RNG_H_
