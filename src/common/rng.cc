#include "common/rng.h"

#include <cmath>

#include "common/check.h"
#include "common/serialize.h"

namespace vod {

// NextUint64 and the small samplers built on it are inline in the header
// (hot path); the heavier rejection samplers and the serialization /
// derivation machinery live here.

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.Next();
}

double Rng::Normal() {
  // Polar method: draw until inside the unit disc, return one variate.
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Gamma(double shape, double scale) {
  VOD_DCHECK(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k + 1) * U^{1/k}.
    const double u = 1.0 - Uniform01();  // in (0, 1]
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - Uniform01();  // in (0, 1]
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return scale * d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

void Rng::Snapshot(ByteWriter* out) const {
  for (uint64_t word : s_) out->PutU64(word);
  out->PutU64(seed_);
}

Status Rng::Restore(ByteReader* in) {
  uint64_t words[4];
  uint64_t seed;
  for (auto& word : words) VOD_RETURN_IF_ERROR(in->ReadU64(&word));
  VOD_RETURN_IF_ERROR(in->ReadU64(&seed));
  for (int i = 0; i < 4; ++i) s_[i] = words[i];
  seed_ = seed;
  return Status::OK();
}

Rng Rng::MakeChild(uint64_t stream_class, uint64_t index) const {
  // Derive a child seed by mixing (seed, class, index) through SplitMix64.
  SplitMix64 mixer(seed_ ^ (stream_class * 0xD2B74407B1CE6E93ULL));
  uint64_t child_seed = mixer.Next() ^ (index * 0xCA5A826395121157ULL);
  SplitMix64 finisher(child_seed);
  return Rng(finisher.Next());
}

}  // namespace vod
