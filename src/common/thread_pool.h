// Fixed-size worker pool for coarse-grained, embarrassingly parallel jobs.
//
// The discrete-event simulator stays single-threaded (one logical clock per
// world); what parallelizes is *replication*: independent simulation cells
// that share no mutable state. This pool is deliberately work-stealing-free —
// tasks are pulled from one FIFO queue — because the experiment layer above
// it (src/exp) guarantees determinism by construction (every cell's output
// slot and RNG seed are fixed before execution), so scheduling order can
// never leak into results.

#ifndef VOD_COMMON_THREAD_POOL_H_
#define VOD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vod {

/// \brief Fixed pool of worker threads with a single FIFO task queue.
///
/// A pool constructed with `num_threads <= 1` owns no threads at all: Submit
/// and ParallelFor run the work inline on the calling thread. This makes
/// `--threads=1` a true serial execution, not a one-worker pool, so
/// single-threaded runs remain debuggable with plain stack traces.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 or 1 means inline execution).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 when executing inline).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// \brief Enqueues one task. Tasks must not throw.
  ///
  /// With an inline pool the task runs before Submit returns.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// \brief Runs body(0) ... body(n-1), blocking until all complete.
  ///
  /// Work is distributed via a shared atomic index counter — each worker
  /// repeatedly claims the next unclaimed index — so long and short
  /// iterations balance without stealing. Iterations must be independent:
  /// they may run concurrently and in any order. Determinism is the
  /// *caller's* job (write to disjoint, pre-sized slots; derive randomness
  /// from the index, never from thread identity).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultParallelism();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
};

}  // namespace vod

#endif  // VOD_COMMON_THREAD_POOL_H_
