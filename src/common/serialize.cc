#include "common/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <array>

// POSIX file plumbing for the atomic write-rename path.
#include <fcntl.h>
#include <unistd.h>

namespace vod {

namespace {

// 8-byte magic: "VODSNAP" + format generation marker. Files that do not
// start with this are not snapshots at all (vs. snapshots of another
// version, which fail the explicit version check with a better message).
constexpr char kMagic[8] = {'V', 'O', 'D', 'S', 'N', 'A', 'P', '\x01'};

// Header layout: magic(8) version(4) payload_type(4) payload_size(8) crc(4).
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 4;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoText() { return std::strerror(errno); }

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

Status ByteReader::Take(size_t n, const uint8_t** out) {
  if (size_ - pos_ < n) {
    return Status::InvalidArgument(
        "snapshot truncated: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(size_ - pos_));
  }
  *out = data_ + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* out) {
  const uint8_t* p;
  VOD_RETURN_IF_ERROR(Take(1, &p));
  *out = p[0];
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  const uint8_t* p;
  VOD_RETURN_IF_ERROR(Take(4, &p));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  const uint8_t* p;
  VOD_RETURN_IF_ERROR(Take(8, &p));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadI64(int64_t* out) {
  uint64_t v;
  VOD_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteReader::ReadBool(bool* out) {
  uint8_t v;
  VOD_RETURN_IF_ERROR(ReadU8(&v));
  if (v > 1) {
    return Status::InvalidArgument("snapshot corrupt: bool byte is " +
                                   std::to_string(v));
  }
  *out = v != 0;
  return Status::OK();
}

Status ByteReader::ReadDouble(double* out) {
  uint64_t bits;
  VOD_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadString(std::string* out) {
  uint32_t len;
  VOD_RETURN_IF_ERROR(ReadU32(&len));
  const uint8_t* p;
  VOD_RETURN_IF_ERROR(Take(len, &p));
  out->assign(reinterpret_cast<const char*>(p), len);
  return Status::OK();
}

Status WriteSnapshotFile(const std::string& path, SnapshotPayload payload_type,
                         const std::string& payload) {
  ByteWriter header;
  for (char c : kMagic) header.PutU8(static_cast<uint8_t>(c));
  header.PutU32(kSnapshotFormatVersion);
  header.PutU32(static_cast<uint32_t>(payload_type));
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot open(" + tmp + ") failed: " +
                            ErrnoText());
  }
  auto write_all = [fd](const std::string& bytes) {
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  };
  if (!write_all(header.bytes()) || !write_all(payload)) {
    const std::string err = ErrnoText();
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot write(" + tmp + ") failed: " + err);
  }
  // fsync before rename: the data must be durable before the name points at
  // it, or a crash could publish a hole.
  if (::fsync(fd) != 0) {
    const std::string err = ErrnoText();
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot fsync(" + tmp + ") failed: " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = ErrnoText();
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot close(" + tmp + ") failed: " + err);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = ErrnoText();
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot rename(" + tmp + " -> " + path +
                            ") failed: " + err);
  }
  return Status::OK();
}

Result<std::string> ReadSnapshotFile(const std::string& path,
                                     SnapshotPayload expected_type) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("snapshot '" + path + "': " + ErrnoText());
  }
  std::string contents;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("snapshot read('" + path + "') failed");
  }

  if (contents.size() < kHeaderSize) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' truncated: " +
        std::to_string(contents.size()) + " bytes, header needs " +
        std::to_string(kHeaderSize));
  }
  if (std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a VOD snapshot (bad magic)");
  }
  ByteReader reader(contents.data() + sizeof(kMagic),
                    contents.size() - sizeof(kMagic));
  uint32_t version, type, crc;
  uint64_t payload_size;
  VOD_RETURN_IF_ERROR(reader.ReadU32(&version));
  VOD_RETURN_IF_ERROR(reader.ReadU32(&type));
  VOD_RETURN_IF_ERROR(reader.ReadU64(&payload_size));
  VOD_RETURN_IF_ERROR(reader.ReadU32(&crc));
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has format version " +
        std::to_string(version) + "; this binary reads version " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (type != static_cast<uint32_t>(expected_type)) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' holds payload type " + std::to_string(type) +
        ", expected " +
        std::to_string(static_cast<uint32_t>(expected_type)));
  }
  const size_t actual_payload = contents.size() - kHeaderSize;
  if (payload_size != actual_payload) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' truncated or padded: header declares " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(actual_payload));
  }
  std::string payload = contents.substr(kHeaderSize);
  const uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (actual_crc != crc) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' failed its checksum (stored " +
        std::to_string(crc) + ", computed " + std::to_string(actual_crc) +
        "): the file is corrupted");
  }
  return payload;
}

}  // namespace vod
