// Canonical workload configurations from the paper's evaluation.
//
// Centralizing these keeps every bench, test, and example pinned to the
// exact parameters of Figures 7–9 and Examples 1–2.

#ifndef VOD_WORKLOAD_PAPER_PRESETS_H_
#define VOD_WORKLOAD_PAPER_PRESETS_H_

#include <vector>

#include "core/sizing.h"
#include "core/types.h"
#include "sim/vcr_behavior.h"

namespace vod {
namespace paper {

/// Figure 7 movie length: 120 minutes.
inline constexpr double kFig7MovieLength = 120.0;

/// Figure 7 arrival process: Poisson with 1/λ = 2 minutes.
inline constexpr double kFig7MeanInterarrival = 2.0;

/// The paper's display speeds: R_FF = R_RW = 3 · R_PB.
PlaybackRates Rates();

/// Figure 7 VCR duration distribution: skewed gamma, mean 8 min
/// (shape 2, scale 4).
DistributionPtr Fig7Duration();

/// Figure 7 interactivity clock used by our simulations (the paper does not
/// state its value; the hit probability is insensitive to it — see the
/// sensitivity bench): exponential, mean 20 minutes.
DistributionPtr DefaultInteractivity();

/// Fully-assembled Figure 7 behavior for a single operation (7a/7b/7c).
VcrBehavior Fig7SingleOpBehavior(VcrOp op);

/// Figure 7(d) behavior: P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6.
VcrBehavior Fig7MixedBehavior();

/// Example 1's three movies: lengths {75, 60, 90} min, target waits
/// {0.1, 0.5, 0.25} min, durations {gamma(2,4), exp(5), exp(2)}, P* = 0.5.
/// The paper does not state the operation mix used for sizing; `mix`
/// defaults to fast-forward only (the operation the paper derives).
std::vector<MovieSizingSpec> Example1Movies(
    VcrMix mix = VcrMix::Only(VcrOp::kFastForward));

/// Figure 9's memory/stream price ratios.
std::vector<double> Fig9PhiValues();

}  // namespace paper
}  // namespace vod

#endif  // VOD_WORKLOAD_PAPER_PRESETS_H_
