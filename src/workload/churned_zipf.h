// Zipf popularity with rank churn and new-title injection.
//
// A static Zipf catalog misses exactly the dynamics the reallocation
// controller exists for: titles trade ranks over time (popularity drift)
// and new releases enter at the head of the distribution. ChurnedZipf keeps
// the marginal rank distribution Zipf(s) at every instant — the *shape* of
// popularity is stable — while the title occupying each rank changes across
// epochs. Per epoch boundary it applies a seeded batch of random rank
// transpositions, and every `inject_every_epochs` boundaries a brand-new
// title enters at rank 1 (every incumbent shifts down one rank; the tail
// title leaves the catalog).
//
// The whole epoch schedule is precomputed at Create() from its own seed, so
// sampling consults the caller's Rng for the Zipf draw only: two simulations
// sharing a generator see identical churn regardless of how many samples
// each takes.

#ifndef VOD_WORKLOAD_CHURNED_ZIPF_H_
#define VOD_WORKLOAD_CHURNED_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "workload/zipf.h"

namespace vod {

/// Knobs for the churned catalog.
struct ChurnedZipfOptions {
  /// Catalog size (number of concurrently offered titles) and Zipf shape.
  int num_titles = 100;
  double exponent = 1.0;

  /// Epoch length in minutes; the title->rank map is constant within an
  /// epoch and permuted at each boundary.
  double epoch_minutes = 720.0;

  /// Number of epochs to precompute. Times past the last boundary keep the
  /// final epoch's map.
  int num_epochs = 16;

  /// Fraction of titles touched by rank transpositions per boundary; each
  /// transposition swaps two uniformly chosen ranks. 0 disables churn.
  double swap_fraction = 0.1;

  /// Every this many boundaries, a new title is injected at rank 1 and the
  /// tail title retires. 0 disables injection.
  int inject_every_epochs = 4;

  /// Seed for the churn schedule (independent of any simulation seed).
  uint64_t churn_seed = 1997;

  Status Validate() const;
};

/// \brief Precomputed churned-Zipf popularity process.
///
/// Titles are stable integer ids: the initial catalog is 0..num_titles-1
/// and each injected title takes the next id, so ids never recycle and a
/// drifting title can be followed across epochs.
class ChurnedZipf {
 public:
  static Result<ChurnedZipf> Create(const ChurnedZipfOptions& options);

  /// Epoch index for time t (minutes), clamped to the precomputed range.
  int EpochAt(double t) const;

  /// Title occupying `rank` (1-based) during `epoch`.
  int32_t TitleAtRank(int epoch, int rank) const;

  /// Rank of `title` during `epoch`, or 0 if it is not in the catalog then.
  int RankOf(int epoch, int32_t title) const;

  /// Probability that an arrival at `epoch` requests `title` (0 for titles
  /// outside that epoch's catalog).
  double TitleProbability(int epoch, int32_t title) const;

  /// Samples the requested title for an arrival at time t: one Zipf rank
  /// draw from `rng`, mapped through the epoch's permutation.
  int32_t SampleTitle(double t, Rng* rng) const;

  /// Total distinct titles ever offered (initial catalog + injections).
  int32_t TotalTitles() const { return next_title_; }

  int num_epochs() const { return static_cast<int>(title_by_rank_.size()); }
  const ChurnedZipfOptions& options() const { return options_; }
  const ZipfDistribution& rank_distribution() const { return zipf_; }

 private:
  ChurnedZipf(ChurnedZipfOptions options, ZipfDistribution zipf)
      : options_(options), zipf_(std::move(zipf)) {}

  ChurnedZipfOptions options_;
  ZipfDistribution zipf_;
  /// title_by_rank_[epoch][rank - 1] = title id at that rank.
  std::vector<std::vector<int32_t>> title_by_rank_;
  int32_t next_title_ = 0;
};

}  // namespace vod

#endif  // VOD_WORKLOAD_CHURNED_ZIPF_H_
