#include "workload/churned_zipf.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace vod {

Status ChurnedZipfOptions::Validate() const {
  if (num_titles < 1) {
    return Status::InvalidArgument("churned Zipf needs at least one title");
  }
  if (exponent < 0.0) {
    return Status::InvalidArgument("Zipf exponent must be non-negative");
  }
  if (!(epoch_minutes > 0.0)) {
    return Status::InvalidArgument("epoch length must be positive");
  }
  if (num_epochs < 1) {
    return Status::InvalidArgument("need at least one epoch");
  }
  if (swap_fraction < 0.0 || swap_fraction > 1.0) {
    return Status::InvalidArgument("swap fraction must lie in [0, 1]");
  }
  if (inject_every_epochs < 0) {
    return Status::InvalidArgument("injection cadence must be non-negative");
  }
  return Status::OK();
}

Result<ChurnedZipf> ChurnedZipf::Create(const ChurnedZipfOptions& options) {
  if (Status status = options.Validate(); !status.ok()) return status;
  auto zipf = ZipfDistribution::Create(options.num_titles, options.exponent);
  if (!zipf.ok()) return zipf.status();

  ChurnedZipf churned(options, *std::move(zipf));
  const auto n = static_cast<size_t>(options.num_titles);
  Rng rng(options.churn_seed);

  std::vector<int32_t> current(n);
  for (size_t i = 0; i < n; ++i) current[i] = static_cast<int32_t>(i);
  churned.next_title_ = static_cast<int32_t>(n);

  churned.title_by_rank_.reserve(static_cast<size_t>(options.num_epochs));
  churned.title_by_rank_.push_back(current);
  const auto swaps = static_cast<int>(
      std::llround(options.swap_fraction * static_cast<double>(n) / 2.0));
  for (int epoch = 1; epoch < options.num_epochs; ++epoch) {
    for (int s = 0; s < swaps; ++s) {
      const auto a = static_cast<size_t>(rng.UniformInt(n));
      const auto b = static_cast<size_t>(rng.UniformInt(n));
      std::swap(current[a], current[b]);
    }
    if (options.inject_every_epochs > 0 &&
        epoch % options.inject_every_epochs == 0) {
      // New release enters at rank 1; everyone shifts down, tail retires.
      current.pop_back();
      current.insert(current.begin(), churned.next_title_++);
    }
    churned.title_by_rank_.push_back(current);
  }
  return churned;
}

int ChurnedZipf::EpochAt(double t) const {
  if (!(t > 0.0)) return 0;
  const double raw = std::floor(t / options_.epoch_minutes);
  const double last = static_cast<double>(num_epochs() - 1);
  return static_cast<int>(std::min(raw, last));
}

int32_t ChurnedZipf::TitleAtRank(int epoch, int rank) const {
  VOD_CHECK(epoch >= 0 && epoch < num_epochs());
  VOD_CHECK(rank >= 1 && rank <= options_.num_titles);
  return title_by_rank_[static_cast<size_t>(epoch)]
                       [static_cast<size_t>(rank - 1)];
}

int ChurnedZipf::RankOf(int epoch, int32_t title) const {
  VOD_CHECK(epoch >= 0 && epoch < num_epochs());
  const auto& ranks = title_by_rank_[static_cast<size_t>(epoch)];
  const auto it = std::find(ranks.begin(), ranks.end(), title);
  if (it == ranks.end()) return 0;
  return static_cast<int>(it - ranks.begin()) + 1;
}

double ChurnedZipf::TitleProbability(int epoch, int32_t title) const {
  const int rank = RankOf(epoch, title);
  return rank == 0 ? 0.0 : zipf_.Probability(rank);
}

int32_t ChurnedZipf::SampleTitle(double t, Rng* rng) const {
  return TitleAtRank(EpochAt(t), zipf_.Sample(rng));
}

}  // namespace vod
