// Zipf popularity sampling.
//
// Movie popularity in VOD workloads is classically Zipf-distributed; the
// catalog uses this to split the popular set (batching + buffering) from the
// unicast tail.

#ifndef VOD_WORKLOAD_ZIPF_H_
#define VOD_WORKLOAD_ZIPF_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace vod {

/// \brief Zipf(s) distribution over ranks 1..n: P(rank = k) ∝ k^{-s}.
class ZipfDistribution {
 public:
  /// Precondition handled via Create: n >= 1, s >= 0 (s = 0 is uniform).
  static Result<ZipfDistribution> Create(int num_items, double exponent);

  /// Probability of rank k (1-based).
  double Probability(int rank) const;

  /// Cumulative probability of ranks 1..k.
  double CumulativeProbability(int rank) const;

  /// Samples a rank in [1, n] by inversion over the cumulative table.
  int Sample(Rng* rng) const;

  int num_items() const { return static_cast<int>(cumulative_.size()); }
  double exponent() const { return exponent_; }

  /// Smallest k whose ranks 1..k cover at least `fraction` of the mass.
  int RanksCoveringFraction(double fraction) const;

 private:
  ZipfDistribution() = default;

  double exponent_ = 0.0;
  std::vector<double> cumulative_;  // cumulative_[k-1] = P(rank <= k)
};

}  // namespace vod

#endif  // VOD_WORKLOAD_ZIPF_H_
