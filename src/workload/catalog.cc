#include "workload/catalog.h"

#include <cmath>
#include <istream>
#include <sstream>

namespace vod {

namespace {

// Splits on commas that are not inside parentheses, so distribution specs
// like "gamma(2,4)" survive as single fields.
Status SplitCsvLine(const std::string& line, size_t expected,
                    std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  int depth = 0;
  for (char ch : line) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    if (ch == ',' && depth == 0) {
      fields->push_back(field);
      field.clear();
    } else {
      field += ch;
    }
  }
  fields->push_back(field);
  if (fields->size() != expected) {
    return Status::InvalidArgument(
        "expected " + std::to_string(expected) + " fields, got " +
        std::to_string(fields->size()) + ": " + line);
  }
  return Status::OK();
}

Result<double> ParseCsvDouble(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + text + "'");
  }
  return v;
}

}  // namespace

Result<Catalog> Catalog::Create(std::vector<MovieEntry> movies,
                                double zipf_exponent,
                                double total_arrivals_per_minute) {
  if (movies.empty()) {
    return Status::InvalidArgument("catalog needs at least one movie");
  }
  if (!(total_arrivals_per_minute > 0.0)) {
    return Status::InvalidArgument("total arrival rate must be positive");
  }
  for (const auto& m : movies) {
    if (!(m.length_minutes > 0.0) || !(m.max_wait_minutes > 0.0)) {
      return Status::InvalidArgument("movie '" + m.title +
                                     "' has invalid length or wait target");
    }
  }
  VOD_ASSIGN_OR_RETURN(
      ZipfDistribution zipf,
      ZipfDistribution::Create(static_cast<int>(movies.size()),
                               zipf_exponent));
  return Catalog(std::move(movies), std::move(zipf),
                 total_arrivals_per_minute);
}

double Catalog::ArrivalRate(int rank) const {
  return total_rate_ * zipf_.Probability(rank);
}

Result<Catalog> Catalog::FromCsv(std::istream& is, double zipf_exponent,
                                 double total_arrivals_per_minute) {
  static const char kHeader[] =
      "title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,"
      "duration,interactivity";
  std::string line;
  if (!std::getline(is, line) || line.rfind(kHeader, 0) != 0) {
    return Status::InvalidArgument(
        std::string("catalog CSV must start with header '") + kHeader + "'");
  }
  std::vector<MovieEntry> movies;
  std::vector<std::string> fields;
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const Status split = SplitCsvLine(line, 9, &fields);
    if (!split.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + split.message());
    }
    MovieEntry entry;
    entry.title = fields[0];
    VOD_ASSIGN_OR_RETURN(entry.length_minutes, ParseCsvDouble(fields[1]));
    VOD_ASSIGN_OR_RETURN(entry.max_wait_minutes, ParseCsvDouble(fields[2]));
    VOD_ASSIGN_OR_RETURN(entry.min_hit_probability,
                         ParseCsvDouble(fields[3]));
    VOD_ASSIGN_OR_RETURN(const double p_ff, ParseCsvDouble(fields[4]));
    VOD_ASSIGN_OR_RETURN(const double p_rw, ParseCsvDouble(fields[5]));
    VOD_ASSIGN_OR_RETURN(const double p_pau, ParseCsvDouble(fields[6]));
    const double total_mix = p_ff + p_rw + p_pau;
    if (total_mix > 0.0) {
      entry.behavior.mix = VcrMix{p_ff, p_rw, p_pau};
      const Status mix_status = entry.behavior.mix.Validate();
      if (!mix_status.ok()) {
        return Status::InvalidArgument("line " +
                                       std::to_string(line_number) + ": " +
                                       mix_status.message());
      }
      VOD_ASSIGN_OR_RETURN(const DistributionPtr duration,
                           ParseDistributionSpec(fields[7]));
      entry.behavior.durations = VcrDurations::AllSame(duration);
      VOD_ASSIGN_OR_RETURN(entry.behavior.interactivity,
                           ParseDistributionSpec(fields[8]));
    } else {
      entry.behavior.interactivity = nullptr;  // passive title
    }
    movies.push_back(std::move(entry));
  }
  return Create(std::move(movies), zipf_exponent, total_arrivals_per_minute);
}

Result<Catalog> Catalog::Synthetic(int count, double zipf_exponent,
                                   double total_arrivals_per_minute,
                                   const VcrBehavior& behavior) {
  if (count < 1) {
    return Status::InvalidArgument("count must be >= 1");
  }
  static const double kLengths[] = {90.0, 105.0, 120.0, 135.0};
  std::vector<MovieEntry> movies;
  movies.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    MovieEntry entry;
    std::ostringstream title;
    title << "movie-" << (i + 1);
    entry.title = title.str();
    entry.length_minutes = kLengths[i % 4];
    entry.max_wait_minutes = 1.0;
    entry.min_hit_probability = 0.5;
    entry.behavior = behavior;
    movies.push_back(std::move(entry));
  }
  return Create(std::move(movies), zipf_exponent, total_arrivals_per_minute);
}

}  // namespace vod
