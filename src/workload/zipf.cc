#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

Result<ZipfDistribution> ZipfDistribution::Create(int num_items,
                                                  double exponent) {
  if (num_items < 1) {
    return Status::InvalidArgument("Zipf needs at least one item");
  }
  if (exponent < 0.0) {
    return Status::InvalidArgument("Zipf exponent must be non-negative");
  }
  ZipfDistribution zipf;
  zipf.exponent_ = exponent;
  zipf.cumulative_.resize(static_cast<size_t>(num_items));
  double total = 0.0;
  for (int k = 1; k <= num_items; ++k) {
    total += std::pow(static_cast<double>(k), -exponent);
    zipf.cumulative_[k - 1] = total;
  }
  for (auto& c : zipf.cumulative_) c /= total;
  zipf.cumulative_.back() = 1.0;  // pin against rounding
  return zipf;
}

double ZipfDistribution::Probability(int rank) const {
  VOD_CHECK(rank >= 1 && rank <= num_items());
  if (rank == 1) return cumulative_[0];
  return cumulative_[rank - 1] - cumulative_[rank - 2];
}

double ZipfDistribution::CumulativeProbability(int rank) const {
  VOD_CHECK(rank >= 1 && rank <= num_items());
  return cumulative_[rank - 1];
}

int ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->Uniform01();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<int>(it - cumulative_.begin()) + 1;
}

int ZipfDistribution::RanksCoveringFraction(double fraction) const {
  VOD_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), fraction);
  if (it == cumulative_.end()) return num_items();
  return static_cast<int>(it - cumulative_.begin()) + 1;
}

}  // namespace vod
