// Movie catalog with Zipf popularity and per-title workload parameters.

#ifndef VOD_WORKLOAD_CATALOG_H_
#define VOD_WORKLOAD_CATALOG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/vcr_behavior.h"
#include "workload/zipf.h"

namespace vod {

/// One title in the catalog.
struct MovieEntry {
  std::string title;
  double length_minutes = 120.0;
  /// Target maximum waiting time when served with batching.
  double max_wait_minutes = 1.0;
  /// Required hit probability when served with buffering.
  double min_hit_probability = 0.5;
  /// Viewer interactivity for this title.
  VcrBehavior behavior;
};

/// \brief A catalog of titles plus a Zipf popularity law over them.
///
/// Rank 1 is the most popular title (catalog insertion order defines rank).
class Catalog {
 public:
  /// Builds a catalog; `zipf_exponent` shapes popularity (0 = uniform).
  static Result<Catalog> Create(std::vector<MovieEntry> movies,
                                double zipf_exponent,
                                double total_arrivals_per_minute);

  size_t size() const { return movies_.size(); }
  const MovieEntry& movie(int rank) const { return movies_[rank - 1]; }
  const std::vector<MovieEntry>& movies() const { return movies_; }

  /// Per-title arrival rate: total rate × Zipf mass of the rank.
  double ArrivalRate(int rank) const;

  /// Samples the rank of the next arriving viewer's title.
  int SampleRank(Rng* rng) const { return zipf_.Sample(rng); }

  /// Ranks covering `fraction` of arrivals — the natural "popular set" that
  /// the paper's data-sharing techniques should target.
  int PopularSetSize(double fraction) const {
    return zipf_.RanksCoveringFraction(fraction);
  }

  double total_arrivals_per_minute() const { return total_rate_; }
  const ZipfDistribution& popularity() const { return zipf_; }

  /// A synthetic catalog of `count` titles with lengths cycling through
  /// typical values (90/105/120/135 min) and uniform requirements — handy
  /// for examples and capacity planning.
  static Result<Catalog> Synthetic(int count, double zipf_exponent,
                                   double total_arrivals_per_minute,
                                   const VcrBehavior& behavior);

  /// \brief Parses an operator-authored catalog from CSV.
  ///
  /// Header and columns (rank order = popularity order):
  ///   title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,
  ///   duration,interactivity
  /// where `duration` and `interactivity` are distribution specs
  /// (ParseDistributionSpec). Rows with p_ff+p_rw+p_pau == 0 are passive.
  static Result<Catalog> FromCsv(std::istream& is, double zipf_exponent,
                                 double total_arrivals_per_minute);

 private:
  Catalog(std::vector<MovieEntry> movies, ZipfDistribution zipf,
          double total_rate)
      : movies_(std::move(movies)),
        zipf_(std::move(zipf)),
        total_rate_(total_rate) {}

  std::vector<MovieEntry> movies_;
  ZipfDistribution zipf_;
  double total_rate_;
};

}  // namespace vod

#endif  // VOD_WORKLOAD_CATALOG_H_
