#include "workload/paper_presets.h"

#include "dist/exponential.h"
#include "dist/gamma.h"

namespace vod {
namespace paper {

PlaybackRates Rates() {
  PlaybackRates rates;
  rates.playback = 1.0;
  rates.fast_forward = 3.0;
  rates.rewind = 3.0;
  return rates;
}

DistributionPtr Fig7Duration() {
  return std::make_shared<GammaDistribution>(2.0, 4.0);
}

DistributionPtr DefaultInteractivity() {
  return std::make_shared<ExponentialDistribution>(20.0);
}

VcrBehavior Fig7SingleOpBehavior(VcrOp op) {
  VcrBehavior behavior;
  behavior.mix = VcrMix::Only(op);
  behavior.durations = VcrDurations::AllSame(Fig7Duration());
  behavior.interactivity = DefaultInteractivity();
  return behavior;
}

VcrBehavior Fig7MixedBehavior() {
  VcrBehavior behavior;
  behavior.mix = VcrMix::PaperMixed();
  behavior.durations = VcrDurations::AllSame(Fig7Duration());
  behavior.interactivity = DefaultInteractivity();
  return behavior;
}

std::vector<MovieSizingSpec> Example1Movies(VcrMix mix) {
  const PlaybackRates rates = Rates();
  std::vector<MovieSizingSpec> movies(3);

  movies[0].name = "movie-1";
  movies[0].length_minutes = 75.0;
  movies[0].max_wait_minutes = 0.1;
  movies[0].min_hit_probability = 0.5;
  movies[0].mix = mix;
  movies[0].durations =
      VcrDurations::AllSame(std::make_shared<GammaDistribution>(2.0, 4.0));
  movies[0].rates = rates;

  movies[1].name = "movie-2";
  movies[1].length_minutes = 60.0;
  movies[1].max_wait_minutes = 0.5;
  movies[1].min_hit_probability = 0.5;
  movies[1].mix = mix;
  movies[1].durations =
      VcrDurations::AllSame(std::make_shared<ExponentialDistribution>(5.0));
  movies[1].rates = rates;

  movies[2].name = "movie-3";
  movies[2].length_minutes = 90.0;
  movies[2].max_wait_minutes = 0.25;
  movies[2].min_hit_probability = 0.5;
  movies[2].mix = mix;
  movies[2].durations =
      VcrDurations::AllSame(std::make_shared<ExponentialDistribution>(2.0));
  movies[2].rates = rates;

  return movies;
}

std::vector<double> Fig9PhiValues() { return {3.0, 4.0, 6.0, 10.0, 11.0, 16.0}; }

}  // namespace paper
}  // namespace vod
