// Umbrella header: the library's public API in one include.
//
//   #include "vod.h"
//
// Groups (see the individual headers for full documentation):
//   model    — PartitionLayout, AnalyticHitModel, CompiledDuration,
//              hit intervals, the literal/casewise equation transcriptions,
//              the brute-force reference model
//   sizing   — feasible sets, MinimumBufferChoice, SizeSystem, cost model,
//              Erlang-B reserve sizing, piggyback geometry
//   dist     — the Distribution hierarchy and ParseDistributionSpec
//   sim      — RunSimulation, RunServerSimulation, MovieWorld, tracing,
//              arrival processes
//   storage  — disk model, round scheduler, resource pools, admission
//   workload — catalogs, Zipf popularity, the paper's presets

#ifndef VOD_VOD_H_
#define VOD_VOD_H_

// common
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

// distributions
#include "dist/deterministic.h"
#include "dist/distribution.h"
#include "dist/empirical.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/mixture.h"
#include "dist/pareto.h"
#include "dist/transformed.h"
#include "dist/uniform.h"
#include "dist/weibull.h"

// the paper's model and sizing machinery
#include "core/cost_model.h"
#include "core/erlang.h"
#include "core/extended_equations.h"
#include "core/hit_intervals.h"
#include "core/hit_model.h"
#include "core/paper_equations.h"
#include "core/partition_layout.h"
#include "core/piggyback.h"
#include "core/reference_model.h"
#include "core/sizing.h"
#include "core/types.h"

// simulation
#include "sim/arrival_process.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "sim/trace.h"

// storage & workload
#include "storage/admission.h"
#include "storage/disk_model.h"
#include "storage/resource_pool.h"
#include "storage/round_scheduler.h"
#include "workload/catalog.h"
#include "workload/paper_presets.h"
#include "workload/zipf.h"

#endif  // VOD_VOD_H_
