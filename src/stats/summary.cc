#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace vod {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double TwoSidedNormalQuantile(double alpha) {
  if (alpha == 0.10) return 1.6448536269514722;
  if (alpha == 0.01) return 2.5758293035489004;
  return 1.959963984540054;  // alpha = 0.05 default
}

double RunningStats::ConfidenceHalfWidth(double alpha) const {
  if (count_ < 2) return 0.0;
  return TwoSidedNormalQuantile(alpha) * stddev() /
         std::sqrt(static_cast<double>(count_));
}

namespace {

// Wilson score interval at confidence z.
void WilsonBounds(int64_t successes, int64_t trials, double z, double* lo,
                  double* hi) {
  if (trials == 0) {
    *lo = 0.0;
    *hi = 1.0;
    return;
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  *lo = std::max(0.0, center - half);
  *hi = std::min(1.0, center + half);
}

}  // namespace

double ProportionEstimator::WilsonLower(double alpha) const {
  double lo;
  double hi;
  WilsonBounds(successes_, trials_, TwoSidedNormalQuantile(alpha), &lo, &hi);
  return lo;
}

double ProportionEstimator::WilsonUpper(double alpha) const {
  double lo;
  double hi;
  WilsonBounds(successes_, trials_, TwoSidedNormalQuantile(alpha), &lo, &hi);
  return hi;
}

}  // namespace vod
