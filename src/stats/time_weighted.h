// Time-weighted statistics for piecewise-constant signals.
//
// Tracks quantities like "dedicated I/O streams in use" that change at event
// times and must be averaged over simulated time, not over events.

#ifndef VOD_STATS_TIME_WEIGHTED_H_
#define VOD_STATS_TIME_WEIGHTED_H_

#include <algorithm>

#include "common/check.h"

namespace vod {

/// \brief Integrates a right-continuous step function of time.
///
/// Updates must have non-decreasing timestamps. `Reset` restarts the
/// integration window (used to discard simulation warmup).
class TimeWeightedValue {
 public:
  // Reset/Set/Add are inline: the simulator steps these trackers once or
  // twice per event, so the call overhead is visible at scale.

  /// Starts tracking at time t with the given initial value.
  void Reset(double t, double value) {
    start_time_ = t;
    last_time_ = t;
    value_ = value;
    area_ = 0.0;
    max_ = value;
    min_ = value;
    initialized_ = true;
  }

  /// Records a step to `value` at time t (t >= last update time).
  void Set(double t, double value) {
    if (!initialized_) {
      Reset(t, value);
      return;
    }
    VOD_DCHECK(t >= last_time_);
    area_ += value_ * (t - last_time_);
    last_time_ = t;
    value_ = value;
    max_ = std::max(max_, value);
    min_ = std::min(min_, value);
  }

  /// Adds `delta` to the current value at time t.
  void Add(double t, double delta) { Set(t, value_ + delta); }

  /// \brief Pools a tracker measuring a *disjoint subpopulation over the
  /// same clock* (per-movie shards of a server-wide level): the pooled step
  /// function is the pointwise sum, so areas and current values add. The
  /// merged max/min are the sums of the shard extremes — an upper/lower
  /// *bound* on the pooled extreme, exact only when the shards peak (dip)
  /// simultaneously. Both trackers must share their reset time.
  void MergePopulation(const TimeWeightedValue& other);

  double current() const { return value_; }
  double max() const { return max_; }
  double min() const { return min_; }

  /// Time average over [reset_time, t_end]; 0 if the window is empty.
  double TimeAverage(double t_end) const;

 private:
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
  bool initialized_ = false;
};

}  // namespace vod

#endif  // VOD_STATS_TIME_WEIGHTED_H_
