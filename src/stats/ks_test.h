// One-sample Kolmogorov–Smirnov goodness-of-fit test.
//
// Used by the test suite to verify that each Distribution's sampler actually
// draws from the distribution described by its Cdf().

#ifndef VOD_STATS_KS_TEST_H_
#define VOD_STATS_KS_TEST_H_

#include <functional>
#include <vector>

namespace vod {

/// Result of a one-sample KS test.
struct KsTestResult {
  /// Supremum distance between the empirical CDF and the reference CDF.
  double statistic = 0.0;
  /// Asymptotic p-value (Kolmogorov distribution of sqrt(n) * D).
  double p_value = 1.0;
  int sample_size = 0;
};

/// \brief One-sample KS test of `samples` against the continuous CDF `cdf`.
///
/// `samples` is copied and sorted internally. The asymptotic p-value is
/// accurate for sample sizes >= ~35, which all our tests exceed.
KsTestResult KolmogorovSmirnovTest(std::vector<double> samples,
                                   const std::function<double(double)>& cdf);

/// Kolmogorov distribution survival function Q(t) = P(K > t); used for the
/// p-value. Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2).
double KolmogorovSurvival(double t);

}  // namespace vod

#endif  // VOD_STATS_KS_TEST_H_
