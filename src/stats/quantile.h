// Streaming quantile estimation (P² algorithm, Jain & Chlamtac 1985).
//
// The simulator observes millions of waits/stalls/drift times; storing them
// for exact quantiles is wasteful. P² maintains five markers per tracked
// quantile in O(1) memory with typically <1% error at simulation sample
// sizes.

#ifndef VOD_STATS_QUANTILE_H_
#define VOD_STATS_QUANTILE_H_

#include <array>
#include <cstdint>

namespace vod {

/// \brief Single-quantile P² estimator.
class P2Quantile {
 public:
  /// Tracks the q-th quantile, q in (0, 1).
  explicit P2Quantile(double q);

  void Add(double x);

  /// \brief Pools another estimator tracking the same quantile.
  ///
  /// Exact when the combined sample count is at most 5 (both sides still
  /// hold raw samples, which are replayed); otherwise approximate — the
  /// other side's marker heights (its 5-point sketch of the distribution)
  /// are replayed as samples. The estimate stays a consistent summary of
  /// the pooled stream, but `count()` then advances by the replayed sketch
  /// size, not the other side's full count.
  void Merge(const P2Quantile& other);

  /// Current estimate. Exact while fewer than 5 samples have been seen
  /// (computed from the sorted buffer); NaN with zero samples.
  double Estimate() const;

  int64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double ParabolicAdjust(int i, double direction) const;
  double LinearAdjust(int i, double direction) const;

  double q_;
  int64_t count_ = 0;
  std::array<double, 5> heights_{};        // marker heights
  std::array<double, 5> positions_{};      // actual marker positions
  std::array<double, 5> desired_{};        // desired marker positions
  std::array<double, 5> increments_{};     // desired-position increments
};

/// \brief Convenience bundle of common latency quantiles (p50/p90/p99).
class LatencyQuantiles {
 public:
  LatencyQuantiles() : p50_(0.50), p90_(0.90), p99_(0.99) {}

  void Add(double x) {
    p50_.Add(x);
    p90_.Add(x);
    p99_.Add(x);
  }

  /// Pools another bundle (see P2Quantile::Merge for exactness).
  void Merge(const LatencyQuantiles& other) {
    p50_.Merge(other.p50_);
    p90_.Merge(other.p90_);
    p99_.Merge(other.p99_);
  }

  double p50() const { return p50_.Estimate(); }
  double p90() const { return p90_.Estimate(); }
  double p99() const { return p99_.Estimate(); }
  int64_t count() const { return p50_.count(); }

 private:
  P2Quantile p50_;
  P2Quantile p90_;
  P2Quantile p99_;
};

}  // namespace vod

#endif  // VOD_STATS_QUANTILE_H_
