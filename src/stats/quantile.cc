#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace vod {

P2Quantile::P2Quantile(double q) : q_(q) {
  VOD_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
  positions_ = {0, 1, 2, 3, 4};
  desired_ = {0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0};
  increments_ = {0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

double P2Quantile::ParabolicAdjust(int i, double d) const {
  // The piecewise-parabolic (P²) height update.
  const double np = positions_[i];
  const double nm = positions_[i - 1];
  const double nn = positions_[i + 1];
  const double hp = heights_[i];
  const double hm = heights_[i - 1];
  const double hn = heights_[i + 1];
  return hp + d / (nn - nm) *
                  ((np - nm + d) * (hn - hp) / (nn - np) +
                   (nn - np - d) * (hp - hm) / (np - nm));
}

double P2Quantile::LinearAdjust(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  // Locate the cell of x and update extreme heights.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers.
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    if ((gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double d = gap >= 1.0 ? 1.0 : -1.0;
      double candidate = ParabolicAdjust(i, d);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = LinearAdjust(i, d);
      }
      positions_[i] += d;
    }
  }
}

void P2Quantile::Merge(const P2Quantile& other) {
  VOD_CHECK_MSG(other.q_ == q_, "cannot merge P2 estimators of different "
                                "quantiles");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Replay whatever the other side still has: its raw samples while it held
  // fewer than 5, otherwise its 5 marker heights (an approximate 5-point
  // sketch of its stream — see the header for the exactness contract).
  const int64_t replay = std::min<int64_t>(other.count_, 5);
  for (int64_t i = 0; i < replay; ++i) {
    Add(other.heights_[static_cast<size_t>(i)]);
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ < 5) {
    // Exact from the (unsorted) buffer. Sorted by hand: count_ < 5 here,
    // but GCC 12's std::sort at -O3 cannot prove the bound and flags a
    // spurious -Warray-bounds under -Werror.
    std::array<double, 5> sorted = heights_;
    const auto n = static_cast<size_t>(count_);
    for (size_t i = 1; i < n; ++i) {
      const double v = sorted[i];
      size_t j = i;
      for (; j > 0 && sorted[j - 1] > v; --j) sorted[j] = sorted[j - 1];
      sorted[j] = v;
    }
    const double index = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<int64_t>(index);
    const auto hi = std::min(lo + 1, count_ - 1);
    const double frac = index - static_cast<double>(lo);
    return sorted[static_cast<size_t>(lo)] * (1.0 - frac) +
           sorted[static_cast<size_t>(hi)] * frac;
  }
  return heights_[2];
}

}  // namespace vod
