// Batch-means confidence intervals for correlated simulation output.
//
// Consecutive resume outcomes in the simulator are weakly dependent (they
// share partitions and viewers), so binomial (Wilson) intervals understate
// the uncertainty. The method of batch means groups the stream into b
// batches, treats the batch averages as approximately i.i.d. normal, and
// builds a Student-t interval around the grand mean.

#ifndef VOD_STATS_BATCH_MEANS_H_
#define VOD_STATS_BATCH_MEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vod {

/// Result of a batch-means analysis.
struct BatchMeansInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% two-sided
  int batches_used = 0;
  bool valid = false;  ///< false when fewer than 2 complete batches exist

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// \brief Accumulates observations into fixed-size batches.
///
/// Choose `batch_size` so that 20–40 batches fit the expected run; larger
/// batches absorb more autocorrelation.
class BatchMeans {
 public:
  explicit BatchMeans(int64_t batch_size);

  void Add(double x);

  /// \brief Concatenation merge for per-shard collection: appends `other`'s
  /// completed batches after this accumulator's, then folds the two partial
  /// batches together (closing a batch whenever the combined partial
  /// fills). Exact — identical to single-stream collection — when this
  /// accumulator's partial batch is empty at merge time, i.e. when shard
  /// boundaries align with batch boundaries. InvalidArgument on batch-size
  /// mismatch.
  Status Merge(const BatchMeans& other);

  /// Number of completed batches.
  int64_t completed_batches() const {
    return static_cast<int64_t>(batch_averages_.size());
  }
  int64_t total_count() const { return total_count_; }
  const std::vector<double>& batch_averages() const {
    return batch_averages_;
  }

  /// 95% Student-t interval over the completed batch averages. The partial
  /// final batch is ignored.
  BatchMeansInterval Interval() const;

 private:
  int64_t batch_size_;
  int64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  int64_t total_count_ = 0;
  std::vector<double> batch_averages_;
};

/// Two-sided 97.5% Student-t quantile for `dof` degrees of freedom
/// (tabulated for small dof, normal beyond 120).
double StudentT975(int dof);

}  // namespace vod

#endif  // VOD_STATS_BATCH_MEANS_H_
