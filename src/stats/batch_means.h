// Batch-means confidence intervals for correlated simulation output.
//
// Consecutive resume outcomes in the simulator are weakly dependent (they
// share partitions and viewers), so binomial (Wilson) intervals understate
// the uncertainty. The method of batch means groups the stream into b
// batches, treats the batch averages as approximately i.i.d. normal, and
// builds a Student-t interval around the grand mean.

#ifndef VOD_STATS_BATCH_MEANS_H_
#define VOD_STATS_BATCH_MEANS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vod {

/// Result of a batch-means analysis.
struct BatchMeansInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% two-sided
  int batches_used = 0;
  bool valid = false;  ///< false when fewer than 2 complete batches exist

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// \brief Accumulates observations into fixed-size batches.
///
/// Choose `batch_size` so that 20–40 batches fit the expected run; larger
/// batches absorb more autocorrelation.
class BatchMeans {
 public:
  explicit BatchMeans(int64_t batch_size);

  void Add(double x);

  /// \brief Exact merge for per-shard collection. Batches form *per stream*:
  /// the merged accumulator's completed batches are exactly the union of the
  /// two accumulators' completed batches (every one averages exactly
  /// `batch_size` consecutive same-stream observations, preserving the
  /// autocorrelation-absorption guarantee), and `other`'s partial remainder —
  /// plus any remainders it carried from earlier merges — is carried intact
  /// in a pending list, never folded across streams into a wrong-sized
  /// batch. This accumulator's own partial batch keeps filling from
  /// subsequent Add() calls as before. The result is independent of merge
  /// order, and no observation is silently dropped or re-batched:
  /// `total_count() == completed_batches()*batch_size + in_batch() +
  /// pending_count()` always holds. InvalidArgument on batch-size mismatch.
  Status Merge(const BatchMeans& other);

  /// Number of completed batches.
  int64_t completed_batches() const {
    return static_cast<int64_t>(batch_averages_.size());
  }
  int64_t total_count() const { return total_count_; }
  /// Observations in this stream's own (still-filling) partial batch.
  int64_t in_batch() const { return in_batch_; }
  /// Observations carried from merged-in streams' partial batches. These
  /// never close into a batch; they exist so merges are exact and auditable
  /// rather than silently approximated.
  int64_t pending_count() const;
  const std::vector<double>& batch_averages() const {
    return batch_averages_;
  }

  /// 95% Student-t interval over the completed batch averages. Partial
  /// batches — this stream's own and any merge-carried remainders — are
  /// ignored, exactly as in single-stream collection.
  BatchMeansInterval Interval() const;

 private:
  int64_t batch_size_;
  int64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  int64_t total_count_ = 0;
  std::vector<double> batch_averages_;
  /// (sum, count) remainders adopted from merged-in accumulators.
  std::vector<std::pair<double, int64_t>> pending_;
};

/// Two-sided 97.5% Student-t quantile for `dof` degrees of freedom
/// (tabulated for small dof, normal beyond 120).
double StudentT975(int dof);

}  // namespace vod

#endif  // VOD_STATS_BATCH_MEANS_H_
