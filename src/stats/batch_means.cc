#include "stats/batch_means.h"

#include <cmath>

#include "common/check.h"

namespace vod {

double StudentT975(int dof) {
  static const double kTable[] = {
      // dof = 1 .. 30
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  VOD_CHECK_MSG(dof >= 1, "degrees of freedom must be positive");
  if (dof <= 30) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

BatchMeans::BatchMeans(int64_t batch_size) : batch_size_(batch_size) {
  VOD_CHECK_MSG(batch_size >= 1, "batch size must be positive");
}

void BatchMeans::Add(double x) {
  ++total_count_;
  batch_sum_ += x;
  ++in_batch_;
  if (in_batch_ == batch_size_) {
    batch_averages_.push_back(batch_sum_ /
                              static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

Status BatchMeans::Merge(const BatchMeans& other) {
  if (other.batch_size_ != batch_size_) {
    return Status::InvalidArgument(
        "batch-means merge: batch sizes differ (" +
        std::to_string(batch_size_) + " vs " +
        std::to_string(other.batch_size_) + ")");
  }
  batch_averages_.insert(batch_averages_.end(), other.batch_averages_.begin(),
                         other.batch_averages_.end());
  total_count_ += other.total_count_;
  // Batches form per stream: adopt the other stream's partial remainder (and
  // any remainders it carried from earlier merges) intact. Folding it into
  // this stream's partial would close a batch mixing observations from two
  // streams — a silent approximation sharded metrics must not make.
  pending_.insert(pending_.end(), other.pending_.begin(),
                  other.pending_.end());
  if (other.in_batch_ > 0) {
    pending_.emplace_back(other.batch_sum_, other.in_batch_);
  }
  return Status::OK();
}

int64_t BatchMeans::pending_count() const {
  int64_t n = 0;
  for (const auto& p : pending_) n += p.second;
  return n;
}

BatchMeansInterval BatchMeans::Interval() const {
  BatchMeansInterval out;
  const auto b = static_cast<int>(batch_averages_.size());
  out.batches_used = b;
  if (b < 2) return out;

  double sum = 0.0;
  for (double avg : batch_averages_) sum += avg;
  out.mean = sum / b;

  double ss = 0.0;
  for (double avg : batch_averages_) {
    ss += (avg - out.mean) * (avg - out.mean);
  }
  const double variance = ss / (b - 1);
  out.half_width = StudentT975(b - 1) * std::sqrt(variance / b);
  out.valid = true;
  return out;
}

}  // namespace vod
