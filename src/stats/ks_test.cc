#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>

namespace vod {

double KolmogorovSurvival(double t) {
  if (t <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += (k % 2 == 1) ? term : -term;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsTestResult KolmogorovSmirnovTest(std::vector<double> samples,
                                   const std::function<double(double)>& cdf) {
  KsTestResult result;
  result.sample_size = static_cast<int>(samples.size());
  if (samples.empty()) return result;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double above = (static_cast<double>(i) + 1.0) / n - f;
    const double below = f - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  result.statistic = d;
  // Asymptotic p-value with the Stephens small-sample correction.
  const double sqrt_n = std::sqrt(n);
  const double t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  result.p_value = KolmogorovSurvival(t);
  return result;
}

}  // namespace vod
