// Fixed-width histogram over a bounded range, with overflow/underflow bins.

#ifndef VOD_STATS_HISTOGRAM_H_
#define VOD_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vod {

/// \brief Equal-width histogram on [lo, hi) with explicit out-of-range bins.
///
/// Used for viewer-position and resume-position diagnostics in the
/// simulator, and to build EmpiricalDistribution inputs in tests.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Precondition:
  /// bins >= 1 and lo < hi.
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int64_t total_count() const { return total_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t bin_count(int i) const { return counts_[i]; }
  double bin_lower(int i) const { return lo_ + i * width_; }
  double bin_upper(int i) const { return lo_ + (i + 1) * width_; }
  double bin_center(int i) const { return lo_ + (i + 0.5) * width_; }

  double lo() const { return lo_; }
  double bin_width() const { return width_; }

  /// Replaces the bin contents wholesale (checkpoint restore). `counts` must
  /// match num_bins(); `total` is recomputed.
  Status SetCounts(int64_t underflow, int64_t overflow,
                   const std::vector<int64_t>& counts);

  /// Adds another histogram's counts bin-by-bin. InvalidArgument unless the
  /// two geometries (lo, width, bins) match exactly.
  Status Merge(const Histogram& other);

  /// In-range density estimate at bin i: count / (in_range_total * width).
  double Density(int i) const;

  /// Fraction of in-range samples at or below x (empirical CDF, linear
  /// interpolation within a bin).
  double EmpiricalCdf(double x) const;

  /// Multi-line ASCII rendering (bar per bin), for diagnostics.
  std::string ToAscii(int max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
};

}  // namespace vod

#endif  // VOD_STATS_HISTOGRAM_H_
