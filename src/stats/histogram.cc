#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace vod {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo) {
  VOD_CHECK(bins >= 1 && lo < hi);
  width_ = (hi - lo) / bins;
  counts_.assign(bins, 0);
}

void Histogram::Add(double x) {
  ++total_;
  const double offset = (x - lo_) / width_;
  if (offset < 0.0) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<int64_t>(offset);
  if (bin >= static_cast<int64_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(bin)];
}

Status Histogram::SetCounts(int64_t underflow, int64_t overflow,
                            const std::vector<int64_t>& counts) {
  if (counts.size() != counts_.size()) {
    return Status::InvalidArgument(
        "histogram restore: got " + std::to_string(counts.size()) +
        " bins, histogram has " + std::to_string(counts_.size()));
  }
  if (underflow < 0 || overflow < 0) {
    return Status::InvalidArgument("histogram restore: negative counts");
  }
  underflow_ = underflow;
  overflow_ = overflow;
  counts_ = counts;
  total_ = underflow + overflow;
  for (int64_t c : counts_) {
    if (c < 0) {
      return Status::InvalidArgument("histogram restore: negative bin count");
    }
    total_ += c;
  }
  return Status::OK();
}

Status Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.width_ != width_) {
    return Status::InvalidArgument(
        "histogram merge: geometries differ (lo/width/bins)");
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  return Status::OK();
}

double Histogram::Density(int i) const {
  const int64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(in_range) * width_);
}

double Histogram::EmpiricalCdf(double x) const {
  const int64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  if (x <= lo_) return 0.0;
  const double offset = (x - lo_) / width_;
  const int full_bins = std::min(static_cast<int>(offset), num_bins());
  int64_t below = 0;
  for (int i = 0; i < full_bins; ++i) below += counts_[i];
  double cdf = static_cast<double>(below);
  if (full_bins < num_bins()) {
    const double frac = offset - full_bins;
    cdf += frac * static_cast<double>(counts_[full_bins]);
  }
  return std::min(1.0, cdf / static_cast<double>(in_range));
}

std::string Histogram::ToAscii(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (int i = 0; i < num_bins(); ++i) {
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(counts_[i]) * max_width /
                    static_cast<double>(peak)));
    os.precision(3);
    os << std::fixed << "[" << bin_lower(i) << ", " << bin_upper(i) << ") "
       << std::string(static_cast<size_t>(bar), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace vod
