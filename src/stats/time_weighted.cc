#include "stats/time_weighted.h"

#include <algorithm>

#include "common/check.h"

namespace vod {

// Reset/Set/Add live in the header; only the cold aggregation paths stay
// out of line.

void TimeWeightedValue::MergePopulation(const TimeWeightedValue& other) {
  if (!other.initialized_) return;
  if (!initialized_) {
    *this = other;
    return;
  }
  VOD_DCHECK(start_time_ == other.start_time_);
  // Bring both integrals up to the later of the two last-update times so
  // the pointwise sum is taken over a common span.
  const double sync = std::max(last_time_, other.last_time_);
  area_ += value_ * (sync - last_time_);
  area_ += other.area_ + other.value_ * (sync - other.last_time_);
  last_time_ = sync;
  value_ += other.value_;
  max_ += other.max_;
  min_ += other.min_;
}

double TimeWeightedValue::TimeAverage(double t_end) const {
  if (!initialized_ || t_end <= start_time_) return 0.0;
  const double tail = value_ * (t_end - last_time_);
  return (area_ + tail) / (t_end - start_time_);
}

}  // namespace vod
