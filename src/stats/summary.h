// Streaming summary statistics and confidence intervals.

#ifndef VOD_STATS_SUMMARY_H_
#define VOD_STATS_SUMMARY_H_

#include <cstdint>
#include <limits>

namespace vod {

/// \brief Numerically stable streaming mean/variance (Welford's algorithm),
/// plus min/max tracking.
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator (parallel-composition form of Welford).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the (1 - alpha) two-sided CI for the mean, using the
  /// normal approximation (appropriate for the large sample counts the
  /// simulator produces). alpha in {0.10, 0.05, 0.01} supported exactly;
  /// other values fall back to 0.05.
  double ConfidenceHalfWidth(double alpha = 0.05) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Success/failure counter with Wilson-score interval.
///
/// Used for the hit/miss ratios the simulator reports: the Wilson interval
/// behaves correctly near p = 0 and p = 1 where the Wald interval collapses.
class ProportionEstimator {
 public:
  void AddSuccess() { ++successes_; ++trials_; }
  void AddFailure() { ++trials_; }
  void Add(bool success) { success ? AddSuccess() : AddFailure(); }

  /// Pools another estimator's trials (exact: counts add).
  void Merge(const ProportionEstimator& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  int64_t trials() const { return trials_; }
  int64_t successes() const { return successes_; }
  double estimate() const {
    return trials_ > 0 ? static_cast<double>(successes_) / trials_ : 0.0;
  }

  /// Wilson score interval bounds at (1 - alpha) confidence.
  double WilsonLower(double alpha = 0.05) const;
  double WilsonUpper(double alpha = 0.05) const;

 private:
  int64_t trials_ = 0;
  int64_t successes_ = 0;
};

/// Standard-normal upper quantile z such that P(Z <= z) = 1 - alpha/2 for the
/// supported alpha values (0.10, 0.05, 0.01); others fall back to alpha=0.05.
double TwoSidedNormalQuantile(double alpha);

}  // namespace vod

#endif  // VOD_STATS_SUMMARY_H_
