// Stochastic VCR behavior of a viewer session.

#ifndef VOD_SIM_VCR_BEHAVIOR_H_
#define VOD_SIM_VCR_BEHAVIOR_H_

#include "common/rng.h"
#include "common/status.h"
#include "core/hit_model.h"
#include "core/types.h"
#include "dist/distribution.h"

namespace vod {

/// \brief How and how often viewers issue VCR operations.
///
/// Each playing viewer carries an exponential-like clock drawn from
/// `interactivity`: when it fires, an operation type is drawn from `mix` and
/// its duration parameter from the matching `durations` entry (movie-minutes
/// traversed for FF/RW, wall-minutes for PAU — the paper's f(x)).
struct VcrBehavior {
  VcrMix mix = VcrMix::Only(VcrOp::kFastForward);
  VcrDurations durations;
  /// Time between consecutive VCR operations of one viewer during normal
  /// playback; null disables interactivity entirely.
  DistributionPtr interactivity;

  /// True if viewers never issue VCR operations.
  bool passive() const { return interactivity == nullptr; }

  Status Validate() const;

  /// Draws an operation type according to the mix.
  VcrOp SampleOp(Rng* rng) const;

  /// Draws a duration parameter for the given operation.
  double SampleDuration(VcrOp op, Rng* rng) const;
};

}  // namespace vod

#endif  // VOD_SIM_VCR_BEHAVIOR_H_
