#include "sim/sharded_server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/mailbox.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "sim/shard.h"

namespace vod {

namespace {

// Same stream-class tags as server.cc: a movie's RNG stream depends only on
// its global index, so shard placement can never perturb it.
constexpr uint64_t kMovieWorldStream = 3;
constexpr uint64_t kFaultStream = 4;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t FingerprintConfig(const std::vector<ServerMovieSpec>& movies,
                           const ShardedServerOptions& options) {
  // A guard against resuming a checkpoint under a different configuration,
  // not a cryptographic identity. Everything that shapes the trajectory and
  // is cheaply describable goes in; the digest chain catches the rest.
  std::ostringstream os;
  os << std::setprecision(17);
  const ServerOptions& b = options.base;
  os << "seed=" << b.seed << " reserve=" << b.dynamic_stream_reserve
     << " warmup=" << b.warmup_minutes << " measure=" << b.measurement_minutes
     << " window=" << options.window_minutes
     << " stationary=" << b.stationary_start
     << " piggyback=" << b.piggyback.enabled
     << " faults=" << b.faults.enabled << ":" << b.faults.disks << ":"
     << b.faults.profile.mtbf_minutes << ":" << b.faults.profile.mttr_minutes
     << " controller=" << b.controller.enabled << ":"
     << b.controller.poll_interval_minutes
     << " ladder=" << b.degradation.enabled << ":"
     << b.degradation.queue_deadline_minutes << ":"
     << b.degradation.backoff_initial_minutes << ":"
     << b.degradation.backoff_factor << ":"
     << b.degradation.shed_below_fraction << ":"
     << b.degradation.batching_below_fraction << ":"
     << options.ladder_recover_windows;
  for (const ServerMovieSpec& spec : movies) {
    os << " movie=" << spec.name << ":" << spec.layout.movie_length() << ":"
       << spec.layout.buffer_minutes() << ":" << spec.layout.streams() << ":"
       << spec.arrival_rate_per_minute;
  }
  const std::string desc = os.str();
  uint64_t h = 1469598103934665603ULL;
  for (char c : desc) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct ShardedCheckpointState {
  uint64_t fingerprint = 0;
  uint32_t shards = 0;
  int64_t windows_done = 0;
  uint64_t digest = 0;
};

Status WriteShardedCheckpoint(const std::string& path,
                              const ShardedCheckpointState& st) {
  ByteWriter w;
  w.PutU64(st.fingerprint);
  w.PutU32(st.shards);
  w.PutI64(st.windows_done);
  w.PutU64(st.digest);
  return WriteSnapshotFile(path, SnapshotPayload::kShardedRun, w.bytes());
}

Result<ShardedCheckpointState> ReadShardedCheckpoint(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotPayload::kShardedRun);
  VOD_RETURN_IF_ERROR(payload.status());
  ByteReader r(payload.value());
  ShardedCheckpointState st;
  VOD_RETURN_IF_ERROR(r.ReadU64(&st.fingerprint));
  VOD_RETURN_IF_ERROR(r.ReadU32(&st.shards));
  VOD_RETURN_IF_ERROR(r.ReadI64(&st.windows_done));
  VOD_RETURN_IF_ERROR(r.ReadU64(&st.digest));
  return st;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// The controller's window onto a sharded run. Layout commits cannot touch
// the worlds directly (they live on other threads between barriers), so the
// host keeps its own authoritative layout copies — they ARE the live
// layouts as far as the control plane is concerned — and queues each commit
// for mailbox delivery; the owning shard applies it at the next window
// start. Reclaim pressure comes from the windowed degradation rung the
// barrier publishes after each decision (zero, i.e. admit-everything, when
// the ladder is off — consistent with the shards' record-and-admit gates);
// the controller replay at barrier w therefore sees the rung that was in
// effect during window w.
class ShardedControllerHost final : public ControllerHost {
 public:
  explicit ShardedControllerHost(std::vector<PartitionLayout> layouts)
      : layouts_(std::move(layouts)) {}

  void CommitLayout(int32_t movie, double t,
                    const PartitionLayout& layout) override {
    (void)t;
    layouts_[static_cast<size_t>(movie)] = layout;
    pending_commits_.push_back(movie);
  }
  const PartitionLayout& LiveLayout(int32_t movie) const override {
    return layouts_[static_cast<size_t>(movie)];
  }
  bool ReclaimBlocked() const override {
    return rung_ >= DegradationLevel::kReclaim;
  }
  int PressureLevel() const override {
    if (rung_ >= DegradationLevel::kReclaim) return 2;
    if (rung_ >= DegradationLevel::kShedVcr) return 1;
    return 0;
  }

  /// Barrier-side: publishes the windowed rung decided for the next window.
  void set_rung(DegradationLevel rung) { rung_ = rung; }

  const std::vector<PartitionLayout>& layouts() const { return layouts_; }
  std::vector<int32_t> TakePendingCommits() {
    std::vector<int32_t> out;
    out.swap(pending_commits_);
    return out;
  }

 private:
  std::vector<PartitionLayout> layouts_;
  std::vector<int32_t> pending_commits_;  ///< movies with uncommitted posts
  DegradationLevel rung_ = DegradationLevel::kNormal;
};

/// Demand-weighted largest-remainder apportionment of `amount` over
/// `weights` (all non-negative; zero-weight entries get nothing). Returns
/// per-entry shares summing to `amount` exactly; deterministic in the
/// inputs alone.
std::vector<int64_t> Apportion(int64_t amount,
                               const std::vector<int64_t>& weights) {
  const size_t n = weights.size();
  std::vector<int64_t> share(n, 0);
  if (amount <= 0) return share;
  int64_t total_weight = 0;
  for (int64_t w : weights) total_weight += w;
  if (total_weight <= 0) return share;
  int64_t assigned = 0;
  std::vector<std::pair<int64_t, size_t>> remainders;  // (-remainder, index)
  remainders.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t num = amount * weights[i];
    share[i] = num / total_weight;
    assigned += share[i];
    remainders.emplace_back(-(num % total_weight), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (int64_t left = amount - assigned, k = 0; left > 0; --left, ++k) {
    share[remainders[static_cast<size_t>(k)].second] += 1;
  }
  return share;
}

}  // namespace

std::string ShardedServerReport::ToString() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "ShardedServerReport{windows=" << windows
     << " window_minutes=" << window_minutes
     << " messages_posted=" << messages_posted
     << " messages_drained=" << messages_drained
     << " ledger_digest=" << ledger_digest << "\n";
  os << server.ToString() << "\n";
  os << "aggregate: " << aggregate.ToString() << "\n";
  os << "}";
  return os.str();
}

Status ValidateShardedInputs(const std::vector<ServerMovieSpec>& movies,
                             const ShardedServerOptions& options) {
  VOD_RETURN_IF_ERROR(ValidateServerInputs(movies, options.base));
  if (options.shards < 1) {
    return Status::InvalidArgument("sharded run needs shards >= 1, got " +
                                   std::to_string(options.shards));
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("sharded run needs threads >= 1, got " +
                                   std::to_string(options.threads));
  }
  if (!std::isfinite(options.window_minutes) ||
      !(options.window_minutes > 0.0)) {
    return Status::InvalidArgument(
        "sharded run needs a finite positive window_minutes, got " +
        std::to_string(options.window_minutes));
  }
  if (options.base.degradation.enabled && options.ladder_recover_windows < 1) {
    return Status::InvalidArgument(
        "the windowed degradation ladder needs ladder_recover_windows >= 1, "
        "got " +
        std::to_string(options.ladder_recover_windows));
  }
  if (!options.checkpoint.path.empty() &&
      options.checkpoint.every_windows < 1) {
    return Status::InvalidArgument(
        "sharded checkpointing needs every_windows >= 1, got " +
        std::to_string(options.checkpoint.every_windows));
  }
  if (options.postmortem.windows < 1) {
    return Status::InvalidArgument(
        "the flight recorder needs postmortem.windows >= 1, got " +
        std::to_string(options.postmortem.windows));
  }
  if (options.postmortem.events_per_shard < 0) {
    return Status::InvalidArgument(
        "the flight recorder needs postmortem.events_per_shard >= 0, got " +
        std::to_string(options.postmortem.events_per_shard));
  }
  if (options.corrupt_audit_window > 0 && !options.base.audit.enabled) {
    return Status::InvalidArgument(
        "corrupt_audit_window is an audit-injection hook; it requires "
        "base.audit.enabled");
  }
  return Status::OK();
}

Result<ShardedServerReport> RunShardedServerSimulation(
    const std::vector<ServerMovieSpec>& movies,
    const ShardedServerOptions& options) {
  VOD_RETURN_IF_ERROR(ValidateShardedInputs(movies, options));

  const ServerOptions& base = options.base;
  const int shard_count = options.shards;
  const size_t movie_count = movies.size();
  const double horizon = base.warmup_minutes + base.measurement_minutes;
  const int64_t total_windows = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(horizon / options.window_minutes)));
  const uint64_t fingerprint = FingerprintConfig(movies, options);

  // ---- resume bookkeeping (replay-verify; see header) ---------------------
  int64_t verify_window = -1;
  uint64_t expected_digest = 0;
  if (options.checkpoint.resume && !options.checkpoint.path.empty() &&
      FileExists(options.checkpoint.path)) {
    auto st = ReadShardedCheckpoint(options.checkpoint.path);
    VOD_RETURN_IF_ERROR(st.status());
    if (static_cast<int>(st.value().shards) != shard_count) {
      return Status::InvalidArgument(
          "sharded resume: checkpoint was taken with " +
          std::to_string(st.value().shards) + " shards but this run has " +
          std::to_string(shard_count) +
          "; the shard count cannot change across a resume");
    }
    if (st.value().fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "sharded resume: checkpoint belongs to a different configuration "
          "(fingerprint mismatch); refusing to resume");
    }
    verify_window = st.value().windows_done;
    expected_digest = st.value().digest;
  }

  // ---- build shards -------------------------------------------------------
  const Rng base_rng(base.seed);
  MailboxRouter router(shard_count);
  std::vector<std::unique_ptr<ServerShard>> shards;
  shards.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards.push_back(std::make_unique<ServerShard>(
        s, &router.to_shard(s), &router.to_coordinator(s)));
  }

  // The control plane runs above the barrier. It must exist before the
  // worlds so the shards' gates know whether to record arrivals.
  std::unique_ptr<ShardedControllerHost> ctrl_host;
  std::unique_ptr<Controller> controller;
  if (base.controller.enabled) {
    std::vector<PartitionLayout> layouts;
    std::vector<ControllerMovie> ctrl_movies;
    layouts.reserve(movie_count);
    ctrl_movies.reserve(movie_count);
    for (const ServerMovieSpec& spec : movies) {
      layouts.push_back(spec.layout);
      ControllerMovie cm;
      cm.movie_length = spec.layout.movie_length();
      cm.baseline_rate = spec.arrival_rate_per_minute;
      ctrl_movies.push_back(cm);
    }
    ctrl_host = std::make_unique<ShardedControllerHost>(std::move(layouts));
    controller = std::make_unique<Controller>(base.controller,
                                              std::move(ctrl_movies),
                                              ctrl_host.get(),
                                              /*log=*/nullptr);
  }

  // movie -> owning shard, with per-movie everything (supplier, metrics,
  // RNG stream keyed by the *global* index) so placement is invisible.
  struct MovieRef {
    ServerShard* shard = nullptr;
    ServerShard::MovieSlot* slot = nullptr;
  };
  std::vector<MovieRef> refs;
  std::vector<double> shard_population(static_cast<size_t>(shard_count),
                                       64.0);
  for (size_t i = 0; i < movie_count; ++i) {
    const ServerMovieSpec& spec = movies[i];
    ServerShard* shard = shards[i % static_cast<size_t>(shard_count)].get();

    MovieWorldConfig config;
    config.mean_interarrival_minutes = 1.0 / spec.arrival_rate_per_minute;
    config.arrivals = spec.arrivals;
    config.behavior = spec.behavior;
    config.stationary_start = base.stationary_start;
    config.piggyback = base.piggyback;
    config.movie_id = static_cast<int32_t>(i);
    config.gate = controller != nullptr ? &shard->gate() : nullptr;
    // Per-event telemetry goes to the owning shard's private lane, never
    // the shared bus; with no sinks armed the lane is one dead branch.
    config.event_log = &shard->lane();
    VOD_RETURN_IF_ERROR(ValidateMovieWorldInputs(base.rates, config));

    ServerShard::MovieSlot slot;
    slot.global_index = static_cast<int32_t>(i);
    slot.supplier = std::make_unique<CreditStreamSupplier>();
    if (base.degradation.enabled) {
      slot.supplier->ArmLadder(base.degradation, &shard->queue(),
                               base.warmup_minutes);
    }
    slot.metrics = std::make_unique<SimulationMetrics>(base.warmup_minutes);
    slot.world = std::make_unique<MovieWorld>(
        spec.layout, base.rates, config,
        base_rng.MakeChild(kMovieWorldStream, i), &shard->queue(),
        slot.supplier.get(), slot.metrics.get());
    shard->AddMovie(std::move(slot));

    shard_population[i % static_cast<size_t>(shard_count)] +=
        spec.arrival_rate_per_minute * spec.layout.movie_length();
  }
  for (int s = 0; s < shard_count; ++s) {
    shards[static_cast<size_t>(s)]->queue().Reserve(static_cast<size_t>(
        std::clamp(shard_population[static_cast<size_t>(s)], 64.0, 1.0e6)));
    // Shard queues run unobserved (kPlain loop) and batched by default; the
    // differential suite flips this to pin scalar/batched byte-identity.
    shards[static_cast<size_t>(s)]->queue().set_scalar_dispatch(
        base.scalar_event_dispatch);
  }
  refs.assign(movie_count, MovieRef{});
  for (auto& shard : shards) {
    for (ServerShard::MovieSlot& slot : shard->movies()) {
      refs[static_cast<size_t>(slot.global_index)] =
          MovieRef{shard.get(), &slot};
    }
  }
  if (controller != nullptr) controller->Start(0.0);

  // ---- fault schedule (applied at barriers) -------------------------------
  std::vector<FaultEvent> fault_schedule;
  if (base.faults.enabled) {
    FaultInjector injector(
        FaultInjector::SplitCapacity(base.dynamic_stream_reserve,
                                     base.faults.disks),
        base.faults.profile, base_rng.MakeChild(kFaultStream, 0));
    fault_schedule = injector.Schedule(horizon);
  }

  // ---- auditor ------------------------------------------------------------
  std::unique_ptr<InvariantAuditor> auditor;
  AuditSnapshot audit_snapshot;
  if (base.audit.enabled) {
    auditor = std::make_unique<InvariantAuditor>(base.audit);
    for (const ServerMovieSpec& spec : movies) {
      audit_snapshot.movies.push_back(
          BuildMovieAuditBuffers(spec.name, spec.layout));
    }
  }

  // ---- barrier ledger state ----------------------------------------------
  int64_t capacity = base.dynamic_stream_reserve;
  int64_t min_capacity_seen = capacity;
  int64_t disk_failures = 0;
  int64_t disk_repairs = 0;
  int64_t max_oversubscription = 0;
  int64_t peak_reserve = 0;
  uint64_t digest = Fnv1a(1469598103934665603ULL, fingerprint);
  size_t fault_idx = 0;
  double ctrl_next_wakeup = base.controller.poll_interval_minutes;

  // ---- windowed-ladder state (coordinator side) ---------------------------
  const bool ladder_on = base.degradation.enabled;
  WindowedLadderState ladder_state;  // every run opens at kNormal
  double ladder_time_in_level[kNumDegradationLevels] = {0, 0, 0, 0, 0};
  std::vector<DegradationTransition> ladder_transitions;
  int64_t ladder_total_transitions = 0;
  double ladder_excursion_start = 0.0;  ///< valid while level != kNormal
  RunningStats ladder_recovery_times;
  int64_t quota_issued_prev = 0;  ///< Σ quotas broadcast at the last barrier
  std::vector<int64_t> reclaim_quota(movie_count, 0);
  constexpr size_t kMaxStoredLadderTransitions = 10000;

  // ---- observability (DESIGN.md §14) --------------------------------------
  // Two tiers. Coordinator-side telemetry (faults, barrier/rung records,
  // ladder transitions, reserve + imbalance gauges) is emitted from the
  // single-threaded barrier directly onto the shared buses. Per-event
  // shard-side telemetry (admissions, VCR ops, kShard window records) goes
  // to each shard's *private* lane while the window runs in parallel, and
  // the coordinator folds the lane buffers into the main bus at the barrier
  // in shard-index order — the merged trace is therefore ordered by
  // (window, shard, local seq), independent of thread count, and Emit's
  // seq restamp keeps global sequence numbers dense. Lane payloads carry
  // deterministic values only (never wall clock); wall-clock spans go to
  // the profiler's named lanes instead.
  EventLog* event_log = base.obs.event_log;
  MetricsRegistry* registry = base.obs.metrics;
  PhaseProfiler* profiler = base.obs.profiler;
  const bool tracing = event_log != nullptr && event_log->has_sinks();
  // The flight recorder itself (bounded window-record deque) is always on;
  // the per-shard event rings fill only while the lanes are lit, so a dark
  // run pays nothing per event.
  FlightRecorder recorder(shard_count,
                          static_cast<size_t>(options.postmortem.windows),
                          static_cast<size_t>(
                              options.postmortem.events_per_shard));
  const bool lanes_lit = tracing || !options.postmortem.path.empty();
  for (int s = 0; s < shard_count; ++s) {
    ServerShard& shard = *shards[static_cast<size_t>(s)];
    if (tracing) {
      // Lanes see the user's category mask plus kShard (the imbalance
      // timeline needs the window records); the merge re-filters through
      // the main bus mask, so --trace_categories still governs the file.
      shard.lane().set_mask(event_log->mask() |
                            CategoryBit(EventCategory::kShard));
      shard.lane().AddSink(&shard.lane_buffer());
    } else if (lanes_lit) {
      shard.lane().set_mask(CategoryBit(EventCategory::kShard));
    }
    if (lanes_lit) shard.lane().AddSink(recorder.shard_ring(s));
  }
  std::vector<int> shard_lanes;
  int coordinator_lane = -1;
  if (profiler != nullptr) {
    // Named lanes make Perfetto traces attributable to shard ids even
    // though pool workers migrate between shards across windows.
    for (int s = 0; s < shard_count; ++s) {
      shard_lanes.push_back(
          profiler->RegisterLane("shard " + std::to_string(s)));
    }
    coordinator_lane = profiler->RegisterLane("coordinator");
  }
  Gauge* g_in_use = nullptr;
  Gauge* g_capacity = nullptr;
  Gauge* g_level = nullptr;
  Gauge* g_shard_max = nullptr;
  Gauge* g_shard_min = nullptr;
  Gauge* g_shard_critical = nullptr;
  Gauge* g_mailbox_depth = nullptr;
  Gauge* g_credit_granted = nullptr;
  Gauge* g_debt_assigned = nullptr;
  Counter* c_mailbox_messages = nullptr;
  if (registry != nullptr) {
    if (base.obs.metrics_sample_minutes > 0.0) {
      registry->set_sample_every(base.obs.metrics_sample_minutes);
    }
    g_in_use = registry->AddGauge("server_reserve_in_use",
                                  "dynamic reserve streams handed out");
    g_capacity = registry->AddGauge(
        "server_reserve_capacity", "current reserve capacity under faults");
    g_level = registry->AddGauge("server_degradation_level",
                                 "degradation ladder rung (0 = normal)");
    g_shard_max = registry->AddGauge(
        "shard_window_events_max",
        "events executed by the busiest shard in the last window");
    g_shard_min = registry->AddGauge(
        "shard_window_events_min",
        "events executed by the idlest shard in the last window");
    g_shard_critical = registry->AddGauge(
        "shard_critical_path",
        "shard id holding the window's critical path (max events)");
    g_mailbox_depth = registry->AddGauge(
        "shard_mailbox_peak_depth",
        "deepest any mailbox has been since the run started");
    g_credit_granted = registry->AddGauge(
        "shard_credit_granted", "acquisition credits lent for next window");
    g_debt_assigned = registry->AddGauge(
        "shard_debt_assigned", "retirement debt outstanding at the barrier");
    c_mailbox_messages = registry->AddCounter(
        "shard_mailbox_messages", "shard->coordinator messages drained");
  }
  // Per-window imbalance working state (coordinator-only, reset implicitly
  // each window by overwriting).
  std::vector<uint64_t> shard_executed_prev(
      static_cast<size_t>(shard_count), 0);
  std::vector<int64_t> shard_window_events(
      static_cast<size_t>(shard_count), 0);
  std::vector<int64_t> shard_window_msgs(
      static_cast<size_t>(shard_count), 0);
  std::vector<double> work_begin_us(static_cast<size_t>(shard_count), 0.0);
  std::vector<double> work_end_us(static_cast<size_t>(shard_count), 0.0);

  struct MovieBarrier {
    int64_t held = 0;
    int64_t credit = 0;
    int64_t debt = 0;
    int64_t entered = 0;
    int64_t exited = 0;
    int64_t live = 0;
    int64_t demand = 0;  ///< window refusals + grants
    // Ladder terms (posted only when the ladder is armed):
    int64_t queue_len = 0;           ///< waiters queued at the barrier
    int64_t vcr_queued = 0;          ///< cumulative measured queue entries
    int64_t queue_grants = 0;        ///< cumulative measured grants
    int64_t queue_expirations = 0;   ///< cumulative measured expirations
    int64_t queue_pending = 0;       ///< measured waiters still queued
    int64_t echo_quota = 0;          ///< reclaim quota echoed this window
    int64_t echo_applied = 0;        ///< reclaims applied against it
  };
  std::vector<MovieBarrier> ledger(movie_count);

  // Initial credit grant: the whole reserve, split evenly (no demand yet),
  // posted before the first window so shard 0's path is identical to the
  // N-shard path. With the ladder on, an initial kNormal rung (quota 0)
  // rides along so every window drains a uniform per-movie message set.
  {
    const std::vector<int64_t> weights(movie_count, 1);
    const std::vector<int64_t> credits = Apportion(capacity, weights);
    for (size_t i = 0; i < movie_count; ++i) {
      ShardMessage m;
      m.kind = kShardMsgCreditSet;
      m.movie = static_cast<int32_t>(i);
      m.a = credits[i];
      m.b = 0;
      router.to_shard(refs[i].shard->shard_index()).Post(m);
      ledger[i].credit = credits[i];
      if (ladder_on) {
        ShardMessage rung;
        rung.kind = kShardMsgRung;
        rung.movie = static_cast<int32_t>(i);
        rung.a = static_cast<int64_t>(DegradationLevel::kNormal);
        rung.b = 0;
        router.to_shard(refs[i].shard->shard_index()).Post(rung);
      }
    }
  }

  ThreadPool pool(options.threads);
  for (auto& shard : shards) shard->Start();

  ShardedServerReport report;
  report.window_minutes = options.window_minutes;
  report.shards = shard_count;
  report.threads = options.threads;

  Status checkpoint_status = Status::OK();
  for (int64_t w = 1; w <= total_windows; ++w) {
    const double t_start = options.window_minutes * static_cast<double>(w - 1);
    const double t_end =
        std::min(horizon, options.window_minutes * static_cast<double>(w));

    // ---- parallel phase: every shard runs its private kernel -------------
    // Each worker writes only its own work_begin/end slot, so the
    // instrumented lambda stays race-free; spans are recorded after the
    // join to keep the profiler mutex out of the parallel phase.
    pool.ParallelFor(shard_count, [&](int64_t s) {
      const double begin_us = profiler != nullptr ? profiler->NowMicros() : 0.0;
      shards[static_cast<size_t>(s)]->RunWindow(t_start, t_end);
      if (profiler != nullptr) {
        work_begin_us[static_cast<size_t>(s)] = begin_us;
        work_end_us[static_cast<size_t>(s)] = profiler->NowMicros();
      }
    });
    const double barrier_us =
        profiler != nullptr ? profiler->NowMicros() : 0.0;
    if (profiler != nullptr) {
      for (int s = 0; s < shard_count; ++s) {
        const auto lane = shard_lanes[static_cast<size_t>(s)];
        profiler->RecordSpanOnLane(lane, "shard_work",
                                   work_begin_us[static_cast<size_t>(s)],
                                   work_end_us[static_cast<size_t>(s)]);
        // A shard's barrier wait runs from its own finish to the join.
        profiler->RecordSpanOnLane(lane, "barrier_wait",
                                   work_end_us[static_cast<size_t>(s)],
                                   barrier_us);
      }
    }

    // ---- barrier: single-threaded coordinator ----------------------------
    // 0. Fold the per-shard telemetry lanes into the main bus, shard-index
    //    order, and take each shard's executed-event delta for the
    //    imbalance gauges. Emit restamps the global seq, so merged traces
    //    are ordered (window, shard, local seq) for any thread count; the
    //    main bus mask re-filters every record.
    int64_t max_events = 0;
    int64_t min_events = 0;
    int critical_shard = 0;
    for (int s = 0; s < shard_count; ++s) {
      ServerShard& shard = *shards[static_cast<size_t>(s)];
      const uint64_t executed = shard.queue().executed();
      const auto delta = static_cast<int64_t>(
          executed - shard_executed_prev[static_cast<size_t>(s)]);
      shard_executed_prev[static_cast<size_t>(s)] = executed;
      shard_window_events[static_cast<size_t>(s)] = delta;
      if (s == 0 || delta > max_events) {
        max_events = delta;
        critical_shard = s;
      }
      if (s == 0 || delta < min_events) min_events = delta;
      if (tracing) {
        for (const TraceEvent& event : shard.lane_buffer().Take()) {
          event_log->Emit(event);
        }
      }
    }

    // 1. Drain summaries into the per-movie ledger (global movie order is
    //    restored by indexing, so shard layout cannot reorder anything).
    for (int s = 0; s < shard_count; ++s) {
      const std::vector<ShardMessage> msgs = router.to_coordinator(s).Drain();
      shard_window_msgs[static_cast<size_t>(s)] =
          static_cast<int64_t>(msgs.size());
      for (const ShardMessage& msg : msgs) {
        MovieBarrier& mb = ledger[static_cast<size_t>(msg.movie)];
        switch (msg.kind) {
          case kShardMsgLedger:
            mb.held = msg.a;
            mb.credit = msg.b;
            mb.debt = msg.c;
            mb.demand = static_cast<int64_t>(msg.x + msg.y);
            break;
          case kShardMsgViewers:
            mb.entered = msg.a;
            mb.exited = msg.b;
            mb.live = msg.c;
            break;
          case kShardMsgLadderPressure:
            mb.queue_len = msg.a;
            mb.vcr_queued = msg.b;
            mb.queue_grants = msg.c;
            mb.queue_expirations = static_cast<int64_t>(msg.x);
            mb.queue_pending = static_cast<int64_t>(msg.y);
            break;
          case kShardMsgReclaimEcho:
            mb.echo_quota = msg.a;
            mb.echo_applied = msg.b;
            break;
          default:
            VOD_CHECK_MSG(false, "unknown shard->coordinator message kind");
        }
      }
    }
    if (ObsEnabled(event_log, EventCategory::kShard)) {
      // Pressure report: one record per shard with its barrier-mailbox
      // traffic. Message counts are shard-layout products, so these live
      // under kShard (filterable) rather than the invariant categories.
      for (int s = 0; s < shard_count; ++s) {
        event_log->Emit(t_end, EventCategory::kShard,
                        static_cast<uint8_t>(ShardEvent::kPressure),
                        /*movie=*/-1, /*id=*/s,
                        static_cast<double>(
                            shard_window_msgs[static_cast<size_t>(s)]));
      }
    }

    // 2. Apply every fault event in (t_prev, t_end] — capacity changes are
    //    quantized to window barriers.
    bool capacity_changed = false;
    while (fault_idx < fault_schedule.size() &&
           fault_schedule[fault_idx].time <= t_end) {
      const FaultEvent& ev = fault_schedule[fault_idx++];
      if (ev.failure) {
        ++disk_failures;
      } else {
        ++disk_repairs;
      }
      if (ObsEnabled(event_log, EventCategory::kFault)) {
        event_log->Emit(ev.time, EventCategory::kFault,
                        /*subtype=*/ev.failure ? 0 : 1, /*movie=*/-1,
                        /*id=*/ev.disk,
                        static_cast<double>(ev.capacity_after));
      }
      capacity = ev.capacity_after;
      min_capacity_seen = std::min(min_capacity_seen, capacity);
      capacity_changed = true;
    }

    // 3. Replay offered arrivals into the controller in (time, movie)
    //    order, interleaved with its decision wakeups; then pump remaining
    //    wakeups due by this barrier. Order is derived from values only —
    //    never from shard layout.
    if (controller != nullptr) {
      std::vector<RecordingGate::Offered> offered;
      for (auto& shard : shards) {
        std::vector<RecordingGate::Offered> part =
            shard->gate().TakeOffered();
        offered.insert(offered.end(), part.begin(), part.end());
      }
      std::sort(offered.begin(), offered.end(),
                [](const RecordingGate::Offered& a,
                   const RecordingGate::Offered& b) {
                  if (a.t != b.t) return a.t < b.t;
                  return a.movie < b.movie;
                });
      for (const RecordingGate::Offered& arrival : offered) {
        while (ctrl_next_wakeup <= arrival.t && ctrl_next_wakeup < horizon) {
          const double at = ctrl_next_wakeup;
          ctrl_next_wakeup = controller->OnWakeup(at);
        }
        controller->OnArrival(arrival.movie, arrival.t);
      }
      while (ctrl_next_wakeup <= t_end && ctrl_next_wakeup < horizon) {
        const double at = ctrl_next_wakeup;
        ctrl_next_wakeup = controller->OnWakeup(at);
      }
      if (capacity_changed) controller->OnCapacityChange(t_end);
    }

    // 4. Redistribute the reserve. Sum holds; a surplus becomes credit,
    //    split by window demand; a deficit becomes retirement debt, split
    //    by holdings. Either way the ledger law holds by construction:
    //    Σ(held + credit − debt) == capacity.
    int64_t sum_held = 0;
    for (const MovieBarrier& mb : ledger) sum_held += mb.held;
    peak_reserve = std::max(peak_reserve, sum_held);
    max_oversubscription =
        std::max(max_oversubscription, sum_held - capacity);
    const int64_t free_streams = capacity - sum_held;
    std::vector<int64_t> weights(movie_count, 0);
    if (free_streams >= 0) {
      for (size_t i = 0; i < movie_count; ++i) {
        weights[i] = 1 + ledger[i].demand;
      }
      const std::vector<int64_t> credits = Apportion(free_streams, weights);
      for (size_t i = 0; i < movie_count; ++i) {
        ledger[i].credit = credits[i];
        ledger[i].debt = 0;
      }
    } else {
      for (size_t i = 0; i < movie_count; ++i) weights[i] = ledger[i].held;
      const std::vector<int64_t> debts = Apportion(-free_streams, weights);
      for (size_t i = 0; i < movie_count; ++i) {
        ledger[i].credit = 0;
        ledger[i].debt = debts[i];
      }
    }

    // 4b. Windowed ladder decision. Fold the summed pressure into one
    //     global rung (pure function + hysteresis — the auditor recomputes
    //     it), integrate the time the *outgoing* rung governed, and size
    //     next window's forced-reclaim quotas by holdings. The controller
    //     host is updated after stepping, so its replay at the next barrier
    //     sees the rung that is actually in effect during that window.
    const WindowedLadderState ladder_prev = ladder_state;
    int64_t sum_queued = 0;
    if (ladder_on) {
      for (const MovieBarrier& mb : ledger) sum_queued += mb.queue_len;
      ladder_time_in_level[static_cast<int>(ladder_state.level)] +=
          t_end - t_start;
      WindowedPressure pressure;
      pressure.capacity = capacity;
      pressure.nominal_capacity = base.dynamic_stream_reserve;
      pressure.sum_held = sum_held;
      pressure.sum_queued = sum_queued;
      ladder_state = StepWindowedLadder(ladder_prev, pressure,
                                        base.degradation,
                                        options.ladder_recover_windows);
      if (ladder_state.level != ladder_prev.level) {
        if (ladder_transitions.size() < kMaxStoredLadderTransitions) {
          ladder_transitions.push_back(
              {t_end, ladder_prev.level, ladder_state.level, capacity});
        }
        ++ladder_total_transitions;
        if (ladder_prev.level == DegradationLevel::kNormal) {
          ladder_excursion_start = t_end;
        } else if (ladder_state.level == DegradationLevel::kNormal) {
          ladder_recovery_times.Add(t_end - ladder_excursion_start);
        }
        if (ObsEnabled(event_log, EventCategory::kDegradation)) {
          event_log->Emit(t_end, EventCategory::kDegradation,
                          static_cast<uint8_t>(ladder_state.level),
                          /*movie=*/-1, /*id=*/-1,
                          static_cast<double>(capacity),
                          static_cast<uint8_t>(ladder_prev.level));
        }
      }
      std::fill(reclaim_quota.begin(), reclaim_quota.end(), 0);
      int64_t need = 0;
      if (ladder_state.level == DegradationLevel::kBatchingOnly) {
        need = sum_held;  // shed everything: pure batching until repairs
      } else if (ladder_state.level == DegradationLevel::kReclaim) {
        need = std::max<int64_t>(0, sum_held - capacity);
      }
      if (need > 0) {
        std::vector<int64_t> holds(movie_count, 0);
        for (size_t i = 0; i < movie_count; ++i) holds[i] = ledger[i].held;
        reclaim_quota = Apportion(need, holds);
      }
      if (ctrl_host != nullptr) ctrl_host->set_rung(ladder_state.level);
    }
    if (ObsEnabled(event_log, EventCategory::kBarrier)) {
      event_log->Emit(t_end, EventCategory::kBarrier,
                      static_cast<uint8_t>(ladder_state.level),
                      /*movie=*/-1, /*id=*/w, static_cast<double>(capacity),
                      static_cast<uint8_t>(ladder_prev.level));
    }
    if (registry != nullptr) {
      g_in_use->Set(static_cast<double>(sum_held));
      g_capacity->Set(static_cast<double>(capacity));
      g_level->Set(static_cast<double>(ladder_state.level));
      g_shard_max->Set(static_cast<double>(max_events));
      g_shard_min->Set(static_cast<double>(min_events));
      g_shard_critical->Set(static_cast<double>(critical_shard));
      g_mailbox_depth->Set(static_cast<double>(router.max_peak_depth()));
      int64_t credit_granted = 0;
      int64_t debt_assigned = 0;
      for (const MovieBarrier& mb : ledger) {
        credit_granted += mb.credit;
        debt_assigned += mb.debt;
      }
      g_credit_granted->Set(static_cast<double>(credit_granted));
      g_debt_assigned->Set(static_cast<double>(debt_assigned));
      int64_t window_msgs = 0;
      for (const int64_t n : shard_window_msgs) window_msgs += n;
      c_mailbox_messages->Add(window_msgs);
      registry->MaybeSample(t_end);
    }

    // 5. Audit the barrier: cross-shard laws plus (when the controller is
    //    live) its resource ledger and the live partition geometry.
    bool audit_tripped = false;
    if (auditor != nullptr) {
      audit_snapshot.time = t_end;
      auto& sh = audit_snapshot.shard;
      sh.enabled = true;
      sh.capacity = capacity;
      sh.movies.clear();
      for (size_t i = 0; i < movie_count; ++i) {
        AuditSnapshot::ShardState::MovieLedger ml;
        ml.movie = static_cast<int32_t>(i);
        ml.held = ledger[i].held;
        ml.credit = ledger[i].credit;
        ml.debt = ledger[i].debt;
        ml.entered = ledger[i].entered;
        ml.exited = ledger[i].exited;
        ml.live = ledger[i].live;
        if (ladder_on) {
          ml.vcr_queued = ledger[i].vcr_queued;
          ml.queue_grants = ledger[i].queue_grants;
          ml.queue_expirations = ledger[i].queue_expirations;
          ml.queue_pending = ledger[i].queue_pending;
          ml.reclaim_quota = ledger[i].echo_quota;
          ml.reclaim_applied = ledger[i].echo_applied;
        }
        sh.movies.push_back(ml);
      }
      sh.messages_posted = router.total_posted();
      sh.messages_drained = router.total_drained();
      sh.sequence_gaps = router.total_sequence_gaps();
      if (ladder_on) {
        auto& ld = sh.ladder;
        ld.enabled = true;
        ld.prev_level = static_cast<int>(ladder_prev.level);
        ld.prev_streak = ladder_prev.below_streak;
        ld.next_level = static_cast<int>(ladder_state.level);
        ld.next_streak = ladder_state.below_streak;
        ld.nominal_capacity = base.dynamic_stream_reserve;
        ld.sum_held = sum_held;
        ld.sum_queued = sum_queued;
        ld.shed_below_fraction = base.degradation.shed_below_fraction;
        ld.batching_below_fraction = base.degradation.batching_below_fraction;
        ld.recover_windows = options.ladder_recover_windows;
        ld.quota_issued_prev = quota_issued_prev;
      }
      if (controller != nullptr) {
        auto& cs = audit_snapshot.controller;
        cs.enabled = true;
        cs.sum_live_streams = 0;
        cs.sum_live_buffer = 0.0;
        for (size_t i = 0; i < movie_count; ++i) {
          const PartitionLayout& live =
              ctrl_host->layouts()[i];
          cs.sum_live_streams += live.streams();
          cs.sum_live_buffer += live.buffer_minutes();
          audit_snapshot.movies[i] =
              BuildMovieAuditBuffers(movies[i].name, live);
        }
        const MigrationEngine& engine = controller->engine();
        cs.stream_budget = engine.stream_budget();
        cs.buffer_budget = engine.buffer_budget();
        cs.free_streams = engine.free_streams();
        cs.free_buffer = engine.free_buffer();
        cs.inflight_streams = engine.inflight_streams();
        cs.inflight_buffer = engine.inflight_buffer();
        cs.epoch = controller->epoch();
        cs.steps_applied = engine.steps_applied();
        cs.steps_planned = engine.steps_planned();
      }
      if (options.corrupt_audit_window == w && !sh.movies.empty()) {
        // Test hook: misstate movie 0's held count in the *snapshot copy*
        // only — the simulation trajectory is untouched, but the
        // shard-reserve-ledger law fires, exercising the flight-recorder
        // dump path end to end.
        sh.movies[0].held += 1;
      }
      const int64_t violations_before = auditor->total_violations();
      auditor->Audit(audit_snapshot);
      audit_tripped =
          violations_before == 0 && auditor->total_violations() > 0;
    }

    // 6. Extend the trajectory digest with this barrier's ledger (and, with
    //    the ladder on, its rung decision — replay-verify then covers the
    //    whole control surface).
    digest = Fnv1a(digest, static_cast<uint64_t>(w));
    digest = Fnv1a(digest, static_cast<uint64_t>(capacity));
    for (const MovieBarrier& mb : ledger) {
      digest = Fnv1a(digest, static_cast<uint64_t>(mb.held));
      digest = Fnv1a(digest, static_cast<uint64_t>(mb.credit));
      digest = Fnv1a(digest, static_cast<uint64_t>(mb.debt));
      digest = Fnv1a(digest, static_cast<uint64_t>(mb.entered));
      digest = Fnv1a(digest, static_cast<uint64_t>(mb.exited));
    }
    if (ladder_on) {
      digest = Fnv1a(digest, static_cast<uint64_t>(ladder_state.level));
      digest = Fnv1a(digest, static_cast<uint64_t>(ladder_state.below_streak));
      digest = Fnv1a(digest, static_cast<uint64_t>(sum_queued));
      for (size_t i = 0; i < movie_count; ++i) {
        digest = Fnv1a(digest, static_cast<uint64_t>(reclaim_quota[i]));
      }
    }

    // 6b. Feed the flight recorder — after the digest so the retained
    //     record carries this window's chain value, and before any failure
    //     return so a dumped bundle always ends at the violating window.
    {
      FlightWindowRecord fr;
      fr.window = w;
      fr.t_end = t_end;
      fr.capacity = capacity;
      fr.rung = static_cast<int>(ladder_state.level);
      fr.digest = digest;
      fr.sum_held = sum_held;
      for (const MovieBarrier& mb : ledger) {
        fr.sum_credit += mb.credit;
        fr.sum_debt += mb.debt;
      }
      fr.sum_queued = sum_queued;
      fr.quota_issued = quota_issued_prev;
      fr.messages_posted = router.total_posted();
      fr.messages_drained = router.total_drained();
      fr.shard_events = shard_window_events;
      recorder.RecordWindow(std::move(fr));
    }
    if (audit_tripped && !options.postmortem.path.empty()) {
      // The run still finishes (the post-loop check returns the auditor's
      // status); the bundle is on disk either way.
      (void)recorder.Dump(options.postmortem.path,
                          auditor->status().message());
    }

    // 7. Replay verification: a resumed run must retrace the checkpointed
    //    trajectory exactly.
    if (w == verify_window && digest != expected_digest) {
      const std::string why =
          "sharded resume diverged from the checkpointed trajectory at "
          "window " +
          std::to_string(w) +
          " (ledger digest mismatch); the checkpoint does not describe "
          "this binary/configuration";
      if (!options.postmortem.path.empty()) {
        (void)recorder.Dump(options.postmortem.path, why);
      }
      return Status::Internal(why);
    }

    const bool stopping = options.checkpoint.stop_after_windows > 0 &&
                          w >= options.checkpoint.stop_after_windows &&
                          w < total_windows;

    // 8. Checkpoint at the cadence (and at the final / stopping barrier).
    if (!options.checkpoint.path.empty() &&
        (w % options.checkpoint.every_windows == 0 || w == total_windows ||
         stopping)) {
      ShardedCheckpointState st;
      st.fingerprint = fingerprint;
      st.shards = static_cast<uint32_t>(shard_count);
      st.windows_done = w;
      st.digest = digest;
      checkpoint_status = WriteShardedCheckpoint(options.checkpoint.path, st);
      if (!checkpoint_status.ok() && !options.postmortem.path.empty()) {
        (void)recorder.Dump(options.postmortem.path,
                            checkpoint_status.message());
      }
      VOD_RETURN_IF_ERROR(checkpoint_status);
    }

    // Everything from the join to here (plus the credit release below) is
    // the coordinator's fold; one span per window on its named lane.
    const auto record_fold = [&] {
      if (profiler != nullptr) {
        profiler->RecordSpanOnLane(coordinator_lane, "coordinator_fold",
                                   barrier_us, profiler->NowMicros());
      }
    };

    report.windows = w;
    if (stopping) {
      report.complete = false;
      record_fold();
      break;
    }

    // 9. Release next window's credits — and, with the ladder on, the rung
    //    decision plus per-movie reclaim quotas — (skipped after the last
    //    barrier so every posted message is drained when the run ends).
    quota_issued_prev = 0;
    if (w < total_windows) {
      for (size_t i = 0; i < movie_count; ++i) {
        ShardMessage m;
        m.kind = kShardMsgCreditSet;
        m.movie = static_cast<int32_t>(i);
        m.a = ledger[i].credit;
        m.b = ledger[i].debt;
        router.to_shard(refs[i].shard->shard_index()).Post(m);
        if (ladder_on) {
          ShardMessage rung;
          rung.kind = kShardMsgRung;
          rung.movie = static_cast<int32_t>(i);
          rung.a = static_cast<int64_t>(ladder_state.level);
          rung.b = reclaim_quota[i];
          router.to_shard(refs[i].shard->shard_index()).Post(rung);
          quota_issued_prev += reclaim_quota[i];
        }
      }
      if (ctrl_host != nullptr) {
        for (int32_t movie : ctrl_host->TakePendingCommits()) {
          const PartitionLayout& layout =
              ctrl_host->layouts()[static_cast<size_t>(movie)];
          ShardMessage m;
          m.kind = kShardMsgLayout;
          m.movie = movie;
          m.a = layout.streams();
          m.x = layout.movie_length();
          m.y = layout.buffer_minutes();
          router.to_shard(refs[static_cast<size_t>(movie)].shard
                              ->shard_index())
              .Post(m);
        }
      }
    }
    record_fold();
  }

  if (auditor != nullptr && auditor->total_violations() > 0) {
    return auditor->status();
  }

  // ---- report assembly (global movie order throughout) --------------------
  ServerReport& server = report.server;
  server.reserve_capacity = base.dynamic_stream_reserve;
  double mean_in_use = 0.0;
  for (size_t i = 0; i < movie_count; ++i) {
    const CreditStreamSupplier& supplier = *refs[i].slot->supplier;
    mean_in_use += supplier.MeanInUse(horizon);
    server.refused_acquisitions += supplier.refused();
    server.granted_acquisitions += supplier.acquired();
  }
  server.mean_reserve_in_use = mean_in_use;
  // Barrier-sampled: the max over barriers of Σ held. In-window excursions
  // between barriers are invisible by design (no cross-shard counter
  // exists mid-window); per-movie peaks remain exact in the movie reports.
  server.peak_reserve_in_use = peak_reserve;
  const int64_t attempts =
      server.refused_acquisitions + server.granted_acquisitions;
  server.refusal_probability =
      attempts > 0
          ? static_cast<double>(server.refused_acquisitions) / attempts
          : 0.0;

  SimulationMetrics aggregate_metrics(base.warmup_minutes);
  for (size_t i = 0; i < movie_count; ++i) {
    ServerReport::PerMovie per_movie;
    per_movie.name = movies[i].name;
    const ServerShard::MovieSlot& slot = *refs[i].slot;
    FillReportFromMetrics(*slot.metrics, horizon, &per_movie.report);
    per_movie.report.max_wait_minutes = slot.world->max_wait_seen();
    per_movie.report.abandonments = slot.world->abandonments();
    server.total_blocked_vcr += per_movie.report.blocked_vcr_requests;
    server.total_stalls += per_movie.report.stalled_resumes;
    server.total_resumes += per_movie.report.total_resumes;
    server.total_queued_vcr += per_movie.report.queued_vcr_requests;
    server.total_forced_reclaims += per_movie.report.forced_reclaims;
    server.movies.push_back(std::move(per_movie));
    VOD_RETURN_IF_ERROR(aggregate_metrics.MergeFrom(*slot.metrics));
  }
  FillReportFromMetrics(aggregate_metrics, horizon, &report.aggregate);

  if (base.faults.enabled || ladder_on) {
    server.resilience_enabled = true;
    ResilienceReport& rz = server.resilience;
    rz.disk_failures = disk_failures;
    rz.disk_repairs = disk_repairs;
    rz.min_reserve_capacity = min_capacity_seen;
    rz.max_oversubscription = std::max<int64_t>(0, max_oversubscription);
    if (ladder_on) {
      rz.final_level = ladder_state.level;
      for (int i = 0; i < kNumDegradationLevels; ++i) {
        rz.time_in_level[i] = ladder_time_in_level[i];
      }
      rz.total_transitions = ladder_total_transitions;
      rz.transitions = ladder_transitions;
      // Queue outcomes merge across movies in global order; the P2
      // quantile marker merge keeps pooled tails deterministic.
      RunningStats queued_wait;
      LatencyQuantiles queued_wait_quantiles;
      for (size_t i = 0; i < movie_count; ++i) {
        const CreditStreamSupplier& supplier = *refs[i].slot->supplier;
        rz.vcr_queued += supplier.vcr_queued();
        rz.vcr_queue_grants += supplier.vcr_queue_grants();
        rz.vcr_queue_expirations += supplier.vcr_queue_expirations();
        rz.vcr_queue_pending += supplier.measured_queue_pending();
        rz.vcr_denied += supplier.vcr_denied();
        queued_wait.Merge(supplier.queued_wait());
        queued_wait_quantiles.Merge(supplier.queued_wait_quantiles());
      }
      rz.mean_queued_wait_minutes = queued_wait.mean();
      if (queued_wait_quantiles.count() > 0) {
        rz.p50_queued_wait_minutes = queued_wait_quantiles.p50();
        rz.p90_queued_wait_minutes = queued_wait_quantiles.p90();
        rz.p99_queued_wait_minutes = queued_wait_quantiles.p99();
      }
      rz.forced_reclaims = server.total_forced_reclaims;
      rz.recovery_episodes = ladder_recovery_times.count();
      rz.mean_recovery_minutes = ladder_recovery_times.mean();
      rz.max_recovery_minutes = rz.recovery_episodes > 0
                                    ? ladder_recovery_times.max()
                                    : 0.0;
    } else {
      // Faults without the ladder: capacity erodes but no policy reacts, so
      // the run spends its whole horizon at the (only) normal rung.
      rz.final_level = DegradationLevel::kNormal;
      rz.time_in_level[0] = horizon;
    }
  }
  if (controller != nullptr) {
    server.controller_enabled = true;
    server.controller = controller->Report();
  }

  for (auto& shard : shards) {
    report.executed_events += shard->queue().executed();
  }
  report.messages_posted = router.total_posted();
  report.messages_drained = router.total_drained();
  report.ledger_digest = digest;
  return report;
}

}  // namespace vod
