// Partition window geometry over simulated time.
//
// The movie is restarted every T = l/n minutes; stream k starts at time k·T
// and its buffer partition holds the most recently read W = B/n minutes of
// frames: positions [max(0, lead − W), min(lead, l)] where lead = t − k·T.
// The stream reads from disk while lead ∈ [0, l]; the partition persists
// (draining) until its trailing viewer finishes at lead = l + W.

#ifndef VOD_SIM_PARTITION_SCHEDULE_H_
#define VOD_SIM_PARTITION_SCHEDULE_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/partition_layout.h"

namespace vod {

/// \brief Pure (stateless) geometry of the restart schedule.
///
/// With `stationary` true, streams are assumed to have started at every
/// anchor + k·T for all integers k (the system has been running forever),
/// so the simulation begins in steady state. Otherwise only k >= 0 exist
/// and the warm-up transient includes partition build-up.
///
/// The `anchor` shifts the whole schedule: stream k starts at
/// anchor + k·T. A layout committed mid-run by the reallocation controller
/// re-anchors its schedule at the commit instant, so the new geometry
/// begins a restart there and admission continuity holds.
class PartitionSchedule {
 public:
  PartitionSchedule(const PartitionLayout& layout, bool stationary = true,
                    double anchor = 0.0)
      : layout_(layout), stationary_(stationary), anchor_(anchor) {}

  const PartitionLayout& layout() const { return layout_; }
  double anchor() const { return anchor_; }

  /// Start time of stream k.
  double StreamStart(int64_t k) const {
    return anchor_ + static_cast<double>(k) * layout_.restart_period();
  }

  /// The read position ("lead") of stream k at time t: t − k·T. Callers
  /// must interpret values outside [0, l + W] as "stream not active".
  double StreamLead(int64_t k, double t) const {
    return t - StreamStart(k);
  }

  /// First restart at or after time t. (Inline: on the simulator's
  /// per-event path, alongside FindCoveringStream.)
  double NextRestart(double t) const {
    const double period = layout_.restart_period();
    double k = std::ceil((t - anchor_) / period - 1e-12);
    if (!stationary_ && k < 0) k = 0;
    return anchor_ + k * period;
  }

  /// \brief Stream whose buffer covers movie position p at time t, if any.
  ///
  /// Covered means p ∈ [max(0, lead − W), min(lead, l)]. When several
  /// streams qualify (possible only if W > T... i.e. never, since W <= T),
  /// the youngest covering stream is returned. Returns nullopt for a miss.
  /// Inline: the simulator consults it two or three times per event.
  std::optional<int64_t> FindCoveringStream(double t, double position) const {
    const double window = layout_.window();
    if (window <= 0.0) return std::nullopt;
    const double l = layout_.movie_length();
    if (position < 0.0 || position > l) return std::nullopt;
    const double period = layout_.restart_period();

    // Need lead = t − kT with position <= min(lead, l) and
    // lead − W <= position, i.e. lead ∈ [position, position + W] (leads past
    // l still cover p <= l). k ∈ [(t − position − W)/T, (t − position)/T];
    // take the largest such k (youngest stream, smallest lead).
    const int64_t k = static_cast<int64_t>(
        std::floor((t - anchor_ - position) / period + 1e-12));
    const double lead = StreamLead(k, t);
    if (lead >= position - 1e-12 && lead <= position + window + 1e-12 &&
        StreamExists(k)) {
      return k;
    }
    return std::nullopt;
  }

  /// True if a viewer arriving at t can start playback at position 0 from an
  /// existing partition (the enrollment window of the latest stream is
  /// open) — the paper's type-2 viewer.
  bool EnrollmentOpen(double t) const {
    return FindCoveringStream(t, 0.0).has_value();
  }

  /// All streams with any buffered content at time t (lead ∈ (0, l + W)),
  /// oldest first. Size is at most n + 1.
  std::vector<int64_t> ActiveStreams(double t) const;

  /// Phase of movie position `pos` against the window pattern at time t:
  /// the result is in [0, T); values <= W mean "inside a window".
  double PatternPhase(double t, double pos) const {
    const double period = layout_.restart_period();
    double g = std::fmod(t - anchor_ - pos, period);
    if (g < 0.0) g += period;
    return g;
  }

 private:
  /// Smallest stream index that exists (0 unless stationary).
  bool StreamExists(int64_t k) const { return stationary_ || k >= 0; }

  PartitionLayout layout_;
  bool stationary_;
  double anchor_;
};

}  // namespace vod

#endif  // VOD_SIM_PARTITION_SCHEDULE_H_
