#include "sim/arrival_process.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

PoissonArrivals::PoissonArrivals(double rate_per_minute)
    : rate_(rate_per_minute) {
  VOD_CHECK_MSG(rate_per_minute > 0.0, "arrival rate must be positive");
}

double PoissonArrivals::NextArrivalAfter(double after, Rng* rng) const {
  return after + rng->Exponential(1.0 / rate_);
}

Result<SinusoidalArrivals> SinusoidalArrivals::Create(
    double mean_rate_per_minute, double amplitude, double period_minutes) {
  if (!(mean_rate_per_minute > 0.0)) {
    return Status::InvalidArgument("mean rate must be positive");
  }
  if (amplitude < 0.0 || amplitude >= 1.0) {
    return Status::InvalidArgument("amplitude must lie in [0, 1)");
  }
  if (!(period_minutes > 0.0)) {
    return Status::InvalidArgument("period must be positive");
  }
  return SinusoidalArrivals(mean_rate_per_minute, amplitude, period_minutes);
}

double SinusoidalArrivals::RateAt(double t) const {
  return mean_rate_ *
         (1.0 + amplitude_ * std::sin(2.0 * M_PI * t / period_));
}

double SinusoidalArrivals::NextArrivalAfter(double after, Rng* rng) const {
  // Ogata thinning against the envelope λ_max.
  const double max_rate = mean_rate_ * (1.0 + amplitude_);
  double t = after;
  for (;;) {
    t += rng->Exponential(1.0 / max_rate);
    if (rng->Uniform01() * max_rate <= RateAt(t)) return t;
  }
}

Result<PiecewiseArrivals> PiecewiseArrivals::Create(
    std::vector<double> bucket_rates, double cycle_minutes) {
  if (bucket_rates.empty()) {
    return Status::InvalidArgument("need at least one rate bucket");
  }
  if (!(cycle_minutes > 0.0)) {
    return Status::InvalidArgument("cycle must be positive");
  }
  double max_rate = 0.0;
  double sum = 0.0;
  for (double rate : bucket_rates) {
    if (rate < 0.0) {
      return Status::InvalidArgument("bucket rates must be non-negative");
    }
    max_rate = std::max(max_rate, rate);
    sum += rate;
  }
  if (max_rate <= 0.0) {
    return Status::InvalidArgument("at least one bucket must be positive");
  }
  const double mean = sum / static_cast<double>(bucket_rates.size());
  return PiecewiseArrivals(std::move(bucket_rates), cycle_minutes, max_rate,
                           mean);
}

double PiecewiseArrivals::RateAt(double t) const {
  double phase = std::fmod(t, cycle_);
  if (phase < 0.0) phase += cycle_;
  const auto bucket = static_cast<size_t>(
      phase / cycle_ * static_cast<double>(rates_.size()));
  return rates_[std::min(bucket, rates_.size() - 1)];
}

double PiecewiseArrivals::NextArrivalAfter(double after, Rng* rng) const {
  double t = after;
  for (;;) {
    t += rng->Exponential(1.0 / max_rate_);
    if (rng->Uniform01() * max_rate_ <= RateAt(t)) return t;
  }
}

Result<FlashArrivals> FlashArrivals::Create(double base_rate_per_minute,
                                            double peak_factor,
                                            double start_minutes,
                                            double duration_minutes) {
  if (!(base_rate_per_minute > 0.0)) {
    return Status::InvalidArgument("base rate must be positive");
  }
  if (!(peak_factor > 0.0) || !std::isfinite(peak_factor)) {
    return Status::InvalidArgument("peak factor must be positive and finite");
  }
  if (start_minutes < 0.0) {
    return Status::InvalidArgument("flash start must be non-negative");
  }
  if (!(duration_minutes > 0.0)) {
    return Status::InvalidArgument("flash duration must be positive");
  }
  return FlashArrivals(base_rate_per_minute, peak_factor, start_minutes,
                       duration_minutes);
}

double FlashArrivals::RateAt(double t) const {
  const bool in_flash = t >= start_ && t - start_ < duration_;
  return in_flash ? base_rate_ * factor_ : base_rate_;
}

double FlashArrivals::NextArrivalAfter(double after, Rng* rng) const {
  const double max_rate = base_rate_ * std::max(1.0, factor_);
  double t = after;
  for (;;) {
    t += rng->Exponential(1.0 / max_rate);
    if (rng->Uniform01() * max_rate <= RateAt(t)) return t;
  }
}

}  // namespace vod
