#include "sim/movie_world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>

#include "common/check.h"
#include "dist/exponential.h"
#include "sim/trace.h"

namespace vod {

namespace {
// Stream-class tags for deriving independent child RNGs.
constexpr uint64_t kArrivalStream = 1;
constexpr uint64_t kViewerStream = 2;

// Viewer-slab free-list terminator.
constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

// Initial viewer-slab capacity; covers the steady-state population of the
// validation workloads so the hot path never reallocates.
constexpr size_t kInitialViewerCapacity = 256;

// "No home stream" sentinel for the SoA home-stream column. Stationary
// schedules issue negative stream ids (k < 0 before the anchor), so -1 is a
// legal id; INT64_MIN is unreachable by any schedule.
constexpr int64_t kNoHomeStream = std::numeric_limits<int64_t>::min();
}  // namespace

Status ValidateMovieWorldInputs(const PlaybackRates& rates,
                                const MovieWorldConfig& config) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  if (std::fabs(rates.playback - 1.0) > 1e-12) {
    return Status::InvalidArgument(
        "the simulator's clock is in playback minutes; set R_PB = 1 and "
        "express FF/RW as multiples (the analytic model is scale-invariant)");
  }
  VOD_RETURN_IF_ERROR(config.behavior.Validate());
  VOD_RETURN_IF_ERROR(config.piggyback.Validate());
  if (!(config.mean_interarrival_minutes > 0.0)) {
    return Status::InvalidArgument("mean interarrival time must be positive");
  }
  return Status::OK();
}

class MovieWorld::Impl {
 public:
  Impl(const PartitionLayout& layout, const PlaybackRates& rates,
       const MovieWorldConfig& config, Rng base_rng, EventQueue* queue,
       StreamSupplier* supplier, SimulationMetrics* metrics)
      : layout_(layout),
        rates_(rates),
        config_(config),
        schedule_(layout, config.stationary_start),
        base_rng_(base_rng),
        arrival_rng_(base_rng_.MakeChild(kArrivalStream, 0)),
        queue_(queue),
        supplier_(supplier),
        metrics_(metrics) {
    ReserveViewers(kInitialViewerCapacity);
    // Devirtualized sampling fast path: the paper's workloads draw VCR
    // initiation gaps from an exponential clock, and
    // ExponentialDistribution::Sample is exactly rng->Exponential(mean), so
    // calling that directly is bit-identical and skips the vtable.
    if (const auto* exp = dynamic_cast<const ExponentialDistribution*>(
            config_.behavior.interactivity.get())) {
      interactivity_exp_mean_ = exp->Mean();
    }
    // Steady-state event kinds, registered once per world: scheduling these
    // goes through the queue's allocation-free handler path, and dispatch is
    // a raw function-pointer call into a static trampoline — no
    // std::function on the hot path. The payload is the viewer's slab slot
    // (unused for arrivals).
    kind_arrival_ = queue_->AddHandler(&Impl::ArrivalThunk, this);
    kind_admit_ = queue_->AddHandler(&Impl::AdmitThunk, this);
    kind_abandon_ = queue_->AddHandler(&Impl::AbandonThunk, this);
    kind_vcr_initiate_ = queue_->AddHandler(&Impl::VcrInitiateThunk, this);
    kind_merge_ = queue_->AddHandler(&Impl::MergeThunk, this);
    kind_finish_ = queue_->AddHandler(&Impl::FinishThunk, this);
    kind_vcr_complete_ = queue_->AddHandler(&Impl::VcrCompleteThunk, this);
    kind_stall_resume_ = queue_->AddHandler(&Impl::StallResumeThunk, this);
    // Batch handlers for the two kinds that form same-timestamp runs: the
    // batch restart admits every queued type-1 viewer at one instant, and a
    // window edge resumes every viewer stalled on it at one instant. The
    // run loop hands the whole run over in one call (DESIGN.md §15).
    queue_->AddBatchHandler(kind_admit_, &Impl::AdmitBatchThunk, this);
    queue_->AddBatchHandler(kind_stall_resume_, &Impl::StallResumeBatchThunk,
                            this);
  }

  void Start() { ScheduleNextArrival(queue_->Now()); }

  const PartitionLayout& layout() const { return layout_; }

  /// See MovieWorld::ApplyLayout. Viewers frozen on events scheduled under
  /// the old geometry (queued type-1 admissions, stalls) fire at their old
  /// times and re-query coverage under the new schedule then.
  void ApplyLayout(double t, const PartitionLayout& new_layout) {
    layout_ = new_layout;
    schedule_ =
        PartitionSchedule(new_layout, config_.stationary_start, /*anchor=*/t);
  }

 private:
  // ---- viewer slab (structure-of-arrays) -----------------------------------
  //
  // Per-viewer session state lives in parallel columns indexed by the slot
  // carried in event payloads, grouped by access affinity so each handler
  // touches only the cache lines it needs: kinematics (every position query
  // and playback transition), session identity/resources (admission,
  // release, reclaim), the parked VCR outcome (only between BeginVcrOp and
  // completion), and the per-viewer RNG (only when sampling). Batch handlers
  // walk the columns contiguously and prefetch the next run member's lines.
  // Invariant: at most one pending event per viewer; every transition
  // schedules the next one.

  /// Hot kinematics: 32 bytes, one cache line covers two viewers.
  struct ViewerKin {
    double position = 0.0;    ///< at the last state change
    double state_time = 0.0;  ///< time of the last state change
    double play_rate = 1.0;   ///< 1, or 1 ± Δ while piggybacking; 0 frozen
    /// Session deadline (abandonment); +inf when patience is unlimited.
    double abandon_at = std::numeric_limits<double>::infinity();
  };

  /// Session identity and resource state.
  struct ViewerSess {
    uint64_t id = 0;
    /// The single event this viewer is waiting on (invariant: at most one),
    /// tracked so forced reclaim can cancel it. kNoEvent while the viewer
    /// sits in the supplier's VCR queue (the supplier owns those timers).
    EventToken pending_event = kNoEvent;
    double miss_time = 0.0;  ///< when the current dedicated stint began
    int64_t home_stream = kNoHomeStream;
    uint32_t next_free = kNilSlot;  ///< free-list link while inactive
    bool active = false;            ///< slot holds a live session
    bool dedicated = false;         ///< holds a stream from the supplier
  };

  /// In-flight VCR operation, parked between BeginVcrOp and its completion
  /// event (the payload only carries the slot). Cold outside that span.
  struct ViewerVcr {
    double resume_position = 0.0;
    VcrOp op = VcrOp::kPause;
    bool reaches_end = false;
    bool in_partition_before = false;
    bool consuming = false;
  };

  void ReserveViewers(size_t n) {
    kin_.reserve(n);
    sess_.reserve(n);
    vcr_.reserve(n);
    rng_.reserve(n);
  }

  /// Creates a session in a recycled (LIFO) or fresh slot. The recycling
  /// order is a pure function of the event sequence, so slot assignment is
  /// deterministic. Returns the slot index.
  uint32_t AllocViewer(uint64_t id) {
    uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = sess_[slot].next_free;
    } else {
      VOD_CHECK(sess_.size() < kNilSlot);
      slot = static_cast<uint32_t>(sess_.size());
      kin_.emplace_back();
      sess_.emplace_back();
      vcr_.emplace_back();
      rng_.push_back(Rng{0});
    }
    kin_[slot] = ViewerKin{};
    sess_[slot] = ViewerSess{};
    vcr_[slot] = ViewerVcr{};
    ViewerSess& sess = sess_[slot];
    sess.id = id;
    sess.active = true;
    rng_[slot] = base_rng_.MakeChild(kViewerStream, id);
    return slot;
  }

  void FreeViewer(uint32_t slot) {
    ViewerSess& sess = sess_[slot];
    sess.active = false;
    sess.next_free = free_head_;
    free_head_ = slot;
    ++viewers_freed_;
  }

  void CheckLive(uint32_t slot) const {
    VOD_CHECK(slot < sess_.size() && sess_[slot].active);
  }

  double PositionAt(uint32_t slot, double t) const {
    const ViewerKin& kin = kin_[slot];
    return kin.position + (t - kin.state_time) * kin.play_rate;
  }

  // ---- handler trampolines -------------------------------------------------

  static void ArrivalThunk(void* ctx, uint64_t) {
    static_cast<Impl*>(ctx)->OnArrival();
  }
  static void AdmitThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnAdmitType1(static_cast<uint32_t>(slot));
  }
  static void AbandonThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnAbandon(static_cast<uint32_t>(slot));
  }
  static void VcrInitiateThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnVcrInitiate(static_cast<uint32_t>(slot));
  }
  static void MergeThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnPiggybackMerge(static_cast<uint32_t>(slot));
  }
  static void FinishThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnFinish(static_cast<uint32_t>(slot));
  }
  static void VcrCompleteThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnVcrComplete(static_cast<uint32_t>(slot));
  }
  static void StallResumeThunk(void* ctx, uint64_t slot) {
    static_cast<Impl*>(ctx)->OnStallResume(static_cast<uint32_t>(slot));
  }
  static void AdmitBatchThunk(void* ctx,
                              std::span<const EventQueue::RunEvent> run) {
    static_cast<Impl*>(ctx)->OnAdmitBatch(run);
  }
  static void StallResumeBatchThunk(
      void* ctx, std::span<const EventQueue::RunEvent> run) {
    static_cast<Impl*>(ctx)->OnStallResumeBatch(run);
  }

  // ---- helpers -------------------------------------------------------------

  static int64_t EncodeHome(const std::optional<int64_t>& stream) {
    return stream.has_value() ? *stream : kNoHomeStream;
  }

  /// Phase of movie position `pos` against the window pattern at time t:
  /// the result is in [0, T); values <= W mean "inside a window". Delegates
  /// to the schedule so a re-anchored layout keeps the phase consistent.
  double PatternPhase(double t, double pos) const {
    return schedule_.PatternPhase(t, pos);
  }

  void AcquireDedicated(uint32_t slot, double t) {
    VOD_DCHECK(!sess_[slot].dedicated);
    // Callers check TryAcquire themselves when refusal is handled specially.
    sess_[slot].dedicated = true;
    sess_[slot].miss_time = t;
    ++dedicated_count_;
    metrics_->SetDedicatedStreams(t, dedicated_count_);
  }

  void ReleaseDedicated(uint32_t slot, double t) {
    VOD_DCHECK(sess_[slot].dedicated);
    supplier_->Release(t);
    sess_[slot].dedicated = false;
    --dedicated_count_;
    metrics_->SetDedicatedStreams(t, dedicated_count_);
  }

  void SetConcurrent(double t, int delta) {
    concurrent_count_ += delta;
    VOD_DCHECK(concurrent_count_ >= 0);
    metrics_->SetConcurrentViewers(t, concurrent_count_);
  }

  /// Draws the time of the viewer's next VCR initiation after `t`.
  double SampleVcrClock(uint32_t slot, double t) {
    if (interactivity_exp_mean_ > 0.0) {
      return t + rng_[slot].Exponential(interactivity_exp_mean_);
    }
    return t + config_.behavior.interactivity->Sample(&rng_[slot]);
  }

  // ---- observability -------------------------------------------------------

  /// Emits one structured event when a bus is attached and the category
  /// passes its filter; with no bus this is a single branch.
  void EmitObs(double t, EventCategory cat, uint8_t sub, int64_t id,
               double value, uint8_t aux = 0) {
    EventLog* log = config_.event_log;
    if (log == nullptr || !log->ShouldEmit(cat)) return;
    log->Emit(t, cat, sub, config_.movie_id, id, value, aux);
  }

  // ---- arrivals --------------------------------------------------------------

  void ScheduleNextArrival(double t) {
    double next;
    if (config_.arrivals != nullptr) {
      next = config_.arrivals->NextArrivalAfter(t, &arrival_rng_);
    } else {
      next = t + arrival_rng_.Exponential(config_.mean_interarrival_minutes);
    }
    queue_->ScheduleHandler(next, kind_arrival_, 0);
  }

  void OnArrival() {
    const double t = queue_->Now();
    ScheduleNextArrival(t);
    // The gate observes every arrival (offered load) and may shed it before
    // any session state exists; the control plane accounts the shed.
    if (config_.gate != nullptr &&
        !config_.gate->OnArrival(config_.movie_id, t)) {
      return;
    }
    const uint64_t id = next_viewer_id_++;
    const uint32_t slot = AllocViewer(id);

    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, 0.0);
    if (covering.has_value()) {
      // Type-2 viewer: enrollment window open; read from the buffer now.
      metrics_->RecordAdmission(t, 0.0, /*type2=*/true);
      EmitObs(t, EventCategory::kAdmission, 1, static_cast<int64_t>(id), 0.0);
      sess_[slot].home_stream = *covering;
      ArmPatience(slot, t);
      SetConcurrent(t, +1);
      SchedulePlayback(slot, t, 0.0);
    } else {
      // Type-1 viewer: queue frozen at the entry point until the next
      // restart; state_time records the enqueue instant so the admission
      // handler can recover the wait.
      const double start = schedule_.NextRestart(t);
      ViewerKin& kin = kin_[slot];
      kin.position = 0.0;
      kin.state_time = t;
      kin.play_rate = 0.0;
      sess_[slot].pending_event =
          queue_->ScheduleHandler(start, kind_admit_, slot);
    }
  }

  /// A batch restart reached a queued type-1 viewer (scalar path: RunNext
  /// and non-batched loops).
  void OnAdmitType1(uint32_t slot) {
    const double now = queue_->Now();
    AdmitType1At(slot, now, schedule_.FindCoveringStream(now, 0.0));
  }

  /// The batched form: every queued type-1 viewer admitted by one restart
  /// shares the instant, so the coverage lookup (a pure function of time)
  /// hoists out of the loop, and the next run member's columns prefetch
  /// while the current viewer is processed.
  void OnAdmitBatch(std::span<const EventQueue::RunEvent> run) {
    const double now = queue_->Now();
    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(now, 0.0);
    for (size_t i = 0; i < run.size(); ++i) {
      if (i + 1 < run.size()) {
        const uint32_t next = static_cast<uint32_t>(run[i + 1].payload);
        __builtin_prefetch(&kin_[next]);
        __builtin_prefetch(&sess_[next]);
        __builtin_prefetch(&rng_[next]);
      }
      AdmitType1At(static_cast<uint32_t>(run[i].payload), now, covering);
    }
  }

  void AdmitType1At(uint32_t slot, double now,
                    const std::optional<int64_t>& covering) {
    CheckLive(slot);
    const double wait = now - kin_[slot].state_time;
    metrics_->RecordAdmission(now, wait, /*type2=*/false);
    if (now >= metrics_->measurement_start()) {
      max_wait_seen_ = std::max(max_wait_seen_, wait);
    }
    sess_[slot].home_stream = EncodeHome(covering);
    // One restart event per distinct batch-restart instant, carrying the
    // partition stream that started (the whole batch shares it).
    if (ObsEnabled(config_.event_log, EventCategory::kRestart) &&
        last_restart_emitted_ != now) {
      last_restart_emitted_ = now;
      EmitObs(now, EventCategory::kRestart, 0, covering.value_or(-1), 0.0);
    }
    EmitObs(now, EventCategory::kAdmission, 0,
            static_cast<int64_t>(sess_[slot].id), wait);
    ArmPatience(slot, now);
    SetConcurrent(now, +1);
    SchedulePlayback(slot, now, 0.0);
  }

  /// Samples the viewer's session deadline at playback start.
  void ArmPatience(uint32_t slot, double t) {
    if (config_.patience != nullptr) {
      kin_[slot].abandon_at = t + config_.patience->Sample(&rng_[slot]);
    }
  }

  /// The viewer walks away mid-session; all resources are released.
  void OnAbandon(uint32_t slot) {
    CheckLive(slot);
    const double t = queue_->Now();
    if (sess_[slot].dedicated) ReleaseDedicated(slot, t);
    EmitObs(t, EventCategory::kSession, 1,
            static_cast<int64_t>(sess_[slot].id), PositionAt(slot, t));
    SetConcurrent(t, -1);
    ++abandonments_;
    FreeViewer(slot);
  }

  // ---- playback ---------------------------------------------------------------

  /// Enters normal playback (or a piggyback drift segment, if the viewer is
  /// dedicated and the merge policy is on) at `position`, and schedules the
  /// next event: VCR initiation, piggyback merge, or finish — whichever
  /// comes first.
  void SchedulePlayback(uint32_t slot, double t, double position,
                        bool allow_piggyback = true) {
    const double l = layout_.movie_length();
    ViewerKin& kin = kin_[slot];
    kin.position = position;
    kin.state_time = t;
    kin.play_rate = 1.0;

    double merge_at = std::numeric_limits<double>::infinity();
    if (sess_[slot].dedicated && allow_piggyback &&
        config_.piggyback.enabled && layout_.window() > 0.0 &&
        layout_.window() < layout_.restart_period() && position < l - 1e-9) {
      const double phase = PatternPhase(t, position);
      if (phase > layout_.window()) {
        const auto plan =
            PlanPiggybackMerge(layout_, phase, config_.piggyback);
        if (plan.ok()) {
          kin.play_rate = plan->rate_factor;
          merge_at = t + plan->merge_minutes;
        }
      }
    }

    const double finish_at = t + (l - position) / kin.play_rate;
    double vcr_at = std::numeric_limits<double>::infinity();
    if (!config_.behavior.passive()) {
      vcr_at = SampleVcrClock(slot, t);
    }

    // The deadline may already have passed (e.g. during a VCR operation,
    // which is allowed to finish): abandon immediately in that case.
    const double abandon_at = std::max(kin.abandon_at, t);
    if (abandon_at <= vcr_at && abandon_at <= merge_at &&
        abandon_at <= finish_at) {
      sess_[slot].pending_event =
          queue_->ScheduleHandler(abandon_at, kind_abandon_, slot);
    } else if (vcr_at <= merge_at && vcr_at <= finish_at) {
      sess_[slot].pending_event =
          queue_->ScheduleHandler(vcr_at, kind_vcr_initiate_, slot);
    } else if (merge_at <= finish_at) {
      sess_[slot].pending_event =
          queue_->ScheduleHandler(merge_at, kind_merge_, slot);
    } else {
      sess_[slot].pending_event =
          queue_->ScheduleHandler(finish_at, kind_finish_, slot);
    }
  }

  void OnFinish(uint32_t slot) {
    CheckLive(slot);
    const double t = queue_->Now();
    if (sess_[slot].dedicated) ReleaseDedicated(slot, t);
    EmitObs(t, EventCategory::kSession, 0,
            static_cast<int64_t>(sess_[slot].id), layout_.movie_length());
    SetConcurrent(t, -1);
    metrics_->RecordCompletion(t);
    FreeViewer(slot);
  }

  void OnPiggybackMerge(uint32_t slot) {
    CheckLive(slot);
    const double t = queue_->Now();
    const double position = PositionAt(slot, t);
    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, position);
    if (covering.has_value()) {
      metrics_->RecordPiggybackMerge(t, t - sess_[slot].miss_time);
      ReleaseDedicated(slot, t);
      sess_[slot].home_stream = *covering;
      SchedulePlayback(slot, t, position);
    } else {
      // Boundary corner (e.g. merged exactly at the movie end): keep the
      // stream and finish normally without re-planning a drift.
      SchedulePlayback(slot, t, position, /*allow_piggyback=*/false);
    }
  }

  // ---- VCR operations ------------------------------------------------------------

  /// Kinematics of one VCR operation from `position`: wall-clock duration,
  /// where the viewer resumes, and whether a fast-forward runs off the end.
  struct VcrPlan {
    double wall = 0.0;
    double resume_position = 0.0;
    bool reaches_end = false;
  };

  VcrPlan PlanVcrOp(VcrOp op, double x, double position) const {
    const double l = layout_.movie_length();
    VcrPlan plan;
    plan.resume_position = position;
    switch (op) {
      case VcrOp::kFastForward: {
        const double traverse = std::min(x, l - position);
        plan.wall = traverse / rates_.fast_forward;
        plan.resume_position = position + traverse;
        plan.reaches_end = x >= l - position;
        break;
      }
      case VcrOp::kRewind: {
        const double traverse = std::min(x, position);
        plan.wall = traverse / rates_.rewind;
        plan.resume_position = position - traverse;
        break;
      }
      case VcrOp::kPause: {
        plan.wall = x;
        break;
      }
    }
    return plan;
  }

  /// Freezes the viewer, parks the operation's outcome on its slot, and
  /// schedules the completion event.
  void BeginVcrOp(uint32_t slot, double t, VcrOp op, const VcrPlan& plan,
                  bool in_partition_before, bool consumes_in_vcr) {
    ViewerKin& kin = kin_[slot];
    kin.position = std::min(kin.position, layout_.movie_length());
    kin.state_time = t;
    kin.play_rate = 0.0;  // position is explicit at completion
    ViewerVcr& vcr = vcr_[slot];
    vcr.op = op;
    vcr.resume_position = plan.resume_position;
    vcr.reaches_end = plan.reaches_end;
    vcr.in_partition_before = in_partition_before;
    vcr.consuming = consumes_in_vcr;
    sess_[slot].pending_event =
        queue_->ScheduleHandler(t + plan.wall, kind_vcr_complete_, slot);
  }

  /// Outcome of a queued phase-1 stream request (sim/degradation.h). The
  /// viewer sat frozen at `position` since enqueue; on a grant the
  /// operation proceeds as if initiated now, on a refusal the viewer resumes
  /// normal playback — exactly the seed's blocked-VCR semantics, just later.
  void OnQueuedVcrDecision(uint32_t slot, uint64_t id, VcrOp op, double x,
                           double t, bool granted) {
    CheckLive(slot);
    VOD_CHECK(sess_[slot].id == id);  // the slot cannot turn over while queued
    VOD_DCHECK(kin_[slot].play_rate == 0.0);
    if (!granted) {
      // Attribute the blocked request to its enqueue time (the viewer froze
      // at state_time) so blocked == denied + expirations holds across the
      // warmup boundary.
      metrics_->RecordBlockedVcr(kin_[slot].state_time);
      EmitObs(t, EventCategory::kQueue, 2, static_cast<int64_t>(id),
              t - kin_[slot].state_time, static_cast<uint8_t>(op));
      SchedulePlayback(slot, t, kin_[slot].position);
      return;
    }
    // The supplier already acquired the stream on our behalf.
    EmitObs(t, EventCategory::kQueue, 1, static_cast<int64_t>(id),
            t - kin_[slot].state_time, static_cast<uint8_t>(op));
    AcquireDedicated(slot, t);
    const VcrPlan plan = PlanVcrOp(op, x, kin_[slot].position);
    BeginVcrOp(slot, t, op, plan, /*in_partition_before=*/true,
               /*consumes_in_vcr=*/true);
  }

  void OnVcrInitiate(uint32_t slot) {
    CheckLive(slot);
    const double t = queue_->Now();
    const double position =
        std::min(PositionAt(slot, t), layout_.movie_length());

    const VcrOp op = config_.behavior.SampleOp(&rng_[slot]);
    const double x = config_.behavior.SampleDuration(op, &rng_[slot]);
    if (config_.trace != nullptr) config_.trace->Record(t, op, x);
    EmitObs(t, EventCategory::kVcrBegin, static_cast<uint8_t>(op),
            static_cast<int64_t>(sess_[slot].id), x);
    const bool in_partition_before = !sess_[slot].dedicated;
    const VcrPlan plan = PlanVcrOp(op, x, position);

    // Phase-1 stream accounting. FF/RW display and need a dedicated stream;
    // a refused request blocks the operation (the viewer keeps watching
    // normally) unless the supplier queues it for a deadline-bounded wait.
    // A pause consumes nothing; a stream held from an earlier miss is
    // returned during the pause.
    const bool consumes_in_vcr = op != VcrOp::kPause;
    if (consumes_in_vcr && !sess_[slot].dedicated) {
      if (!supplier_->TryAcquire(t)) {
        const uint64_t id = sess_[slot].id;
        if (supplier_->TryQueueAcquire(
                t, [this, slot, id, op, x](double decision_t, bool granted) {
                  OnQueuedVcrDecision(slot, id, op, x, decision_t, granted);
                })) {
          // Queued: freeze in place until the supplier decides. The viewer
          // holds no pending event — the supplier owns the timers.
          metrics_->RecordQueuedVcr(t);
          EmitObs(t, EventCategory::kQueue, 0, static_cast<int64_t>(id), 0.0,
                  static_cast<uint8_t>(op));
          ViewerKin& kin = kin_[slot];
          kin.position = position;
          kin.state_time = t;
          kin.play_rate = 0.0;
          sess_[slot].pending_event = kNoEvent;
          return;
        }
        metrics_->RecordBlockedVcr(t);
        EmitObs(t, EventCategory::kShed, 0,
                static_cast<int64_t>(sess_[slot].id), 0.0,
                static_cast<uint8_t>(op));
        SchedulePlayback(slot, t, position);
        return;
      }
      AcquireDedicated(slot, t);
    } else if (!consumes_in_vcr && sess_[slot].dedicated) {
      ReleaseDedicated(slot, t);
    }

    kin_[slot].position = position;  // frozen during the operation
    BeginVcrOp(slot, t, op, plan, in_partition_before, consumes_in_vcr);
  }

  void OnVcrComplete(uint32_t slot) {
    CheckLive(slot);
    const double t = queue_->Now();
    const ViewerVcr& vcr = vcr_[slot];
    const VcrOp op = vcr.op;
    const double resume_position = vcr.resume_position;
    const bool in_partition_before = vcr.in_partition_before;

    if (vcr.reaches_end) {
      // Fast-forwarded to (or past) the end: the session terminates and all
      // resources are released — a release per the paper's Eq. (21).
      metrics_->RecordResume(t, op, ResumeOutcome::kEndOfMovie,
                             in_partition_before);
      EmitObs(t, EventCategory::kResume,
              static_cast<uint8_t>(ResumeOutcome::kEndOfMovie),
              static_cast<int64_t>(sess_[slot].id), resume_position,
              static_cast<uint8_t>(op));
      if (sess_[slot].dedicated) ReleaseDedicated(slot, t);
      EmitObs(t, EventCategory::kSession, 0,
              static_cast<int64_t>(sess_[slot].id), resume_position);
      SetConcurrent(t, -1);
      metrics_->RecordCompletion(t);
      FreeViewer(slot);
      return;
    }

    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, resume_position);
    if (covering.has_value()) {
      const bool within = sess_[slot].home_stream != kNoHomeStream &&
                          sess_[slot].home_stream == *covering;
      metrics_->RecordResume(
          t, op, within ? ResumeOutcome::kHitWithin : ResumeOutcome::kHitJump,
          in_partition_before);
      EmitObs(t, EventCategory::kResume,
              static_cast<uint8_t>(within ? ResumeOutcome::kHitWithin
                                          : ResumeOutcome::kHitJump),
              static_cast<int64_t>(sess_[slot].id), resume_position,
              static_cast<uint8_t>(op));
      if (sess_[slot].dedicated) ReleaseDedicated(slot, t);
      sess_[slot].home_stream = *covering;
      SchedulePlayback(slot, t, resume_position);
      return;
    }

    metrics_->RecordResume(t, op, ResumeOutcome::kMiss, in_partition_before);
    EmitObs(t, EventCategory::kResume,
            static_cast<uint8_t>(ResumeOutcome::kMiss),
            static_cast<int64_t>(sess_[slot].id), resume_position,
            static_cast<uint8_t>(op));
    sess_[slot].home_stream = kNoHomeStream;
    if (!sess_[slot].dedicated) {
      VOD_DCHECK(!vcr.consuming);
      if (!supplier_->TryAcquire(t)) {
        // No stream for the miss: the viewer stalls (a forced pause) until
        // the next partition window sweeps over his position, then joins it
        // at the leading edge.
        StallUntilCovered(slot, t, resume_position);
        return;
      }
      AcquireDedicated(slot, t);
    } else {
      sess_[slot].miss_time = t;  // the dedicated stint continues from this miss
    }
    SchedulePlayback(slot, t, resume_position);
  }

  void StallUntilCovered(uint32_t slot, double t, double position) {
    const double period = layout_.restart_period();
    const double phase = PatternPhase(t, position);
    // The next leading edge reaches `position` when the phase wraps to 0.
    const double wait = period - phase;
    metrics_->RecordStall(t, wait);
    EmitObs(t, EventCategory::kStall, 0,
            static_cast<int64_t>(sess_[slot].id), wait);
    ViewerKin& kin = kin_[slot];
    kin.position = position;
    kin.state_time = t;
    kin.play_rate = 0.0;
    sess_[slot].pending_event =
        queue_->ScheduleHandler(t + wait, kind_stall_resume_, slot);
  }

  /// The partition window's leading edge swept over a stalled viewer
  /// (scalar path).
  void OnStallResume(uint32_t slot) {
    StallResumeAt(slot, queue_->Now());
  }

  /// Batched form: every viewer stalled on one window edge resumes at the
  /// same instant; the coverage lookup stays per-viewer (it depends on the
  /// frozen position) but dispatch amortizes and the next member's columns
  /// prefetch ahead.
  void OnStallResumeBatch(std::span<const EventQueue::RunEvent> run) {
    const double now = queue_->Now();
    for (size_t i = 0; i < run.size(); ++i) {
      if (i + 1 < run.size()) {
        const uint32_t next = static_cast<uint32_t>(run[i + 1].payload);
        __builtin_prefetch(&kin_[next]);
        __builtin_prefetch(&sess_[next]);
        __builtin_prefetch(&rng_[next]);
      }
      StallResumeAt(static_cast<uint32_t>(run[i].payload), now);
    }
  }

  void StallResumeAt(uint32_t slot, double now) {
    CheckLive(slot);
    const double position = kin_[slot].position;  // frozen at the stall
    sess_[slot].home_stream =
        EncodeHome(schedule_.FindCoveringStream(now, position));
    SchedulePlayback(slot, now, position);
  }

 public:
  // ---- forced reclaim (graceful degradation) -------------------------------

  /// See MovieWorld::ReclaimDedicated. Victims are viewers holding a
  /// dedicated stream during a playback/drift segment (play_rate > 0);
  /// viewers frozen mid-VCR-op or stalled are left alone. Lowest viewer id
  /// first keeps the choice deterministic across runs. The scan walks the
  /// session column (active/dedicated flags) and touches kinematics only
  /// for candidates, so the SoA layout keeps it cache-dense.
  int64_t ReclaimDedicated(double t, int64_t max_count) {
    int64_t reclaimed = 0;
    while (reclaimed < max_count) {
      uint32_t victim = kNilSlot;
      uint64_t victim_id = 0;
      const uint32_t n = static_cast<uint32_t>(sess_.size());
      for (uint32_t i = 0; i < n; ++i) {
        const ViewerSess& sess = sess_[i];
        if (!sess.active || !sess.dedicated || kin_[i].play_rate <= 0.0) {
          continue;
        }
        if (PositionAt(i, t) >= layout_.movie_length() - 1e-9) continue;
        if (victim == kNilSlot || sess.id < victim_id) {
          victim = i;
          victim_id = sess.id;
        }
      }
      if (victim == kNilSlot) break;
      const double position =
          std::min(PositionAt(victim, t), layout_.movie_length());
      queue_->Cancel(sess_[victim].pending_event);
      sess_[victim].pending_event = kNoEvent;
      ReleaseDedicated(victim, t);
      metrics_->RecordForcedReclaim(t);
      EmitObs(t, EventCategory::kReclaim, 0,
              static_cast<int64_t>(victim_id), position);
      // The victim falls back to pure-batching service: stall until the
      // next partition window sweeps over its position.
      StallUntilCovered(victim, t, position);
      ++reclaimed;
    }
    return reclaimed;
  }

 private:
  PartitionLayout layout_;
  PlaybackRates rates_;
  MovieWorldConfig config_;
  PartitionSchedule schedule_;
  Rng base_rng_;
  Rng arrival_rng_;
  EventQueue* queue_;
  StreamSupplier* supplier_;
  SimulationMetrics* metrics_;
  /// Viewer slab, structure-of-arrays: parallel columns indexed by slot,
  /// plus a LIFO free list of retired slots threaded through sess_.
  std::vector<ViewerKin> kin_;
  std::vector<ViewerSess> sess_;
  std::vector<ViewerVcr> vcr_;
  std::vector<Rng> rng_;
  uint32_t free_head_ = kNilSlot;
  uint64_t next_viewer_id_ = 0;
  int64_t dedicated_count_ = 0;
  int concurrent_count_ = 0;
  int64_t abandonments_ = 0;
  int64_t viewers_freed_ = 0;
  double max_wait_seen_ = 0.0;
  /// Mean of the interactivity clock when it is exponential; <= 0 selects
  /// the generic virtual Sample path.
  double interactivity_exp_mean_ = 0.0;
  /// Restart instant last emitted on the event bus (dedupe: one kRestart
  /// event per batch restart, not one per admitted viewer).
  double last_restart_emitted_ = -1.0;
  // Handler kinds registered with the shared queue (per-world values).
  uint64_t kind_arrival_ = 0;
  uint64_t kind_admit_ = 0;
  uint64_t kind_abandon_ = 0;
  uint64_t kind_vcr_initiate_ = 0;
  uint64_t kind_merge_ = 0;
  uint64_t kind_finish_ = 0;
  uint64_t kind_vcr_complete_ = 0;
  uint64_t kind_stall_resume_ = 0;

 public:
  double max_wait_seen() const { return max_wait_seen_; }
  int64_t abandonments() const { return abandonments_; }
  int64_t dedicated_streams_held() const { return dedicated_count_; }
  int64_t viewers_entered() const {
    return static_cast<int64_t>(next_viewer_id_);
  }
  int64_t viewers_exited() const { return viewers_freed_; }
};

MovieWorld::MovieWorld(const PartitionLayout& layout,
                       const PlaybackRates& rates,
                       const MovieWorldConfig& config, Rng base_rng,
                       EventQueue* queue, StreamSupplier* supplier,
                       SimulationMetrics* metrics)
    : impl_(std::make_unique<Impl>(layout, rates, config, base_rng, queue,
                                   supplier, metrics)) {}

MovieWorld::~MovieWorld() = default;

void MovieWorld::Start() { impl_->Start(); }

int64_t MovieWorld::ReclaimDedicated(double t, int64_t max_count) {
  return impl_->ReclaimDedicated(t, max_count);
}

void MovieWorld::ApplyLayout(double t, const PartitionLayout& new_layout) {
  impl_->ApplyLayout(t, new_layout);
}

const PartitionLayout& MovieWorld::layout() const { return impl_->layout(); }

double MovieWorld::max_wait_seen() const { return impl_->max_wait_seen(); }

int64_t MovieWorld::abandonments() const { return impl_->abandonments(); }

int64_t MovieWorld::dedicated_streams_held() const {
  return impl_->dedicated_streams_held();
}

int64_t MovieWorld::viewers_entered() const {
  return impl_->viewers_entered();
}

int64_t MovieWorld::viewers_exited() const { return impl_->viewers_exited(); }

int64_t MovieWorld::viewers_live() const {
  return impl_->viewers_entered() - impl_->viewers_exited();
}

}  // namespace vod
