#include "sim/movie_world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/check.h"
#include "dist/exponential.h"
#include "sim/trace.h"

namespace vod {

namespace {
// Stream-class tags for deriving independent child RNGs.
constexpr uint64_t kArrivalStream = 1;
constexpr uint64_t kViewerStream = 2;

// Viewer-slab free-list terminator.
constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

// Initial viewer-slab capacity; covers the steady-state population of the
// validation workloads so the hot path never reallocates.
constexpr size_t kInitialViewerCapacity = 256;
}  // namespace

Status ValidateMovieWorldInputs(const PlaybackRates& rates,
                                const MovieWorldConfig& config) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  if (std::fabs(rates.playback - 1.0) > 1e-12) {
    return Status::InvalidArgument(
        "the simulator's clock is in playback minutes; set R_PB = 1 and "
        "express FF/RW as multiples (the analytic model is scale-invariant)");
  }
  VOD_RETURN_IF_ERROR(config.behavior.Validate());
  VOD_RETURN_IF_ERROR(config.piggyback.Validate());
  if (!(config.mean_interarrival_minutes > 0.0)) {
    return Status::InvalidArgument("mean interarrival time must be positive");
  }
  return Status::OK();
}

class MovieWorld::Impl {
 public:
  Impl(const PartitionLayout& layout, const PlaybackRates& rates,
       const MovieWorldConfig& config, Rng base_rng, EventQueue* queue,
       StreamSupplier* supplier, SimulationMetrics* metrics)
      : layout_(layout),
        rates_(rates),
        config_(config),
        schedule_(layout, config.stationary_start),
        base_rng_(base_rng),
        arrival_rng_(base_rng_.MakeChild(kArrivalStream, 0)),
        queue_(queue),
        supplier_(supplier),
        metrics_(metrics) {
    viewers_.reserve(kInitialViewerCapacity);
    // Devirtualized sampling fast path: the paper's workloads draw VCR
    // initiation gaps from an exponential clock, and
    // ExponentialDistribution::Sample is exactly rng->Exponential(mean), so
    // calling that directly is bit-identical and skips the vtable.
    if (const auto* exp = dynamic_cast<const ExponentialDistribution*>(
            config_.behavior.interactivity.get())) {
      interactivity_exp_mean_ = exp->Mean();
    }
    // Steady-state event kinds, registered once per world: scheduling these
    // goes through the queue's allocation-free handler path. The payload is
    // the viewer's slab slot (unused for arrivals).
    kind_arrival_ = queue_->AddHandler([this](uint64_t) { OnArrival(); });
    kind_admit_ = queue_->AddHandler(
        [this](uint64_t slot) { OnAdmitType1(static_cast<uint32_t>(slot)); });
    kind_abandon_ = queue_->AddHandler(
        [this](uint64_t slot) { OnAbandon(static_cast<uint32_t>(slot)); });
    kind_vcr_initiate_ = queue_->AddHandler(
        [this](uint64_t slot) { OnVcrInitiate(static_cast<uint32_t>(slot)); });
    kind_merge_ = queue_->AddHandler([this](uint64_t slot) {
      OnPiggybackMerge(static_cast<uint32_t>(slot));
    });
    kind_finish_ = queue_->AddHandler(
        [this](uint64_t slot) { OnFinish(static_cast<uint32_t>(slot)); });
    kind_vcr_complete_ = queue_->AddHandler(
        [this](uint64_t slot) { OnVcrComplete(static_cast<uint32_t>(slot)); });
    kind_stall_resume_ = queue_->AddHandler(
        [this](uint64_t slot) { OnStallResume(static_cast<uint32_t>(slot)); });
  }

  void Start() { ScheduleNextArrival(queue_->Now()); }

  const PartitionLayout& layout() const { return layout_; }

  /// See MovieWorld::ApplyLayout. Viewers frozen on events scheduled under
  /// the old geometry (queued type-1 admissions, stalls) fire at their old
  /// times and re-query coverage under the new schedule then.
  void ApplyLayout(double t, const PartitionLayout& new_layout) {
    layout_ = new_layout;
    schedule_ =
        PartitionSchedule(new_layout, config_.stationary_start, /*anchor=*/t);
  }

 private:
  /// Internal per-viewer session state, held in a slab indexed by the slot
  /// carried in event payloads. Invariant: at most one pending event per
  /// viewer; every transition schedules the next one.
  struct Viewer {
    uint64_t id = 0;
    double position = 0.0;    ///< at the last state change
    double state_time = 0.0;  ///< time of the last state change
    double play_rate = 1.0;   ///< 1, or 1 ± Δ while piggybacking
    bool active = false;      ///< slot holds a live session
    bool dedicated = false;   ///< holds a stream from the supplier
    double miss_time = 0.0;   ///< when the current dedicated stint began
    /// Session deadline (abandonment); +inf when patience is unlimited.
    double abandon_at = std::numeric_limits<double>::infinity();
    std::optional<int64_t> home_stream;
    /// The single event this viewer is waiting on (invariant: at most one),
    /// tracked so forced reclaim can cancel it. kNoEvent while the viewer
    /// sits in the supplier's VCR queue (the supplier owns those timers).
    EventToken pending_event = kNoEvent;
    /// In-flight VCR operation, parked here between BeginVcrOp and its
    /// completion event (the payload only carries the slot).
    VcrOp vcr_op = VcrOp::kPause;
    double vcr_resume_position = 0.0;
    bool vcr_reaches_end = false;
    bool vcr_in_partition_before = false;
    bool vcr_consuming = false;
    uint32_t next_free = kNilSlot;  ///< free-list link while inactive
    Rng rng{0};

    double PositionAt(double t) const {
      return position + (t - state_time) * play_rate;
    }
  };

  // ---- viewer slab ---------------------------------------------------------

  /// Creates a session in a recycled (LIFO) or fresh slot. The recycling
  /// order is a pure function of the event sequence, so slot assignment is
  /// deterministic. Returns the slot index.
  uint32_t AllocViewer(uint64_t id) {
    uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = viewers_[slot].next_free;
      viewers_[slot] = Viewer{};
    } else {
      VOD_CHECK(viewers_.size() < kNilSlot);
      slot = static_cast<uint32_t>(viewers_.size());
      viewers_.emplace_back();
    }
    Viewer& viewer = viewers_[slot];
    viewer.id = id;
    viewer.active = true;
    viewer.rng = base_rng_.MakeChild(kViewerStream, id);
    return slot;
  }

  void FreeViewer(uint32_t slot) {
    Viewer& viewer = viewers_[slot];
    viewer.active = false;
    viewer.next_free = free_head_;
    free_head_ = slot;
    ++viewers_freed_;
  }

  Viewer& Get(uint32_t slot) {
    VOD_CHECK(slot < viewers_.size() && viewers_[slot].active);
    return viewers_[slot];
  }

  uint32_t SlotOf(const Viewer& viewer) const {
    return static_cast<uint32_t>(&viewer - viewers_.data());
  }

  // ---- helpers -------------------------------------------------------------

  /// Phase of movie position `pos` against the window pattern at time t:
  /// the result is in [0, T); values <= W mean "inside a window". Delegates
  /// to the schedule so a re-anchored layout keeps the phase consistent.
  double PatternPhase(double t, double pos) const {
    return schedule_.PatternPhase(t, pos);
  }

  void AcquireDedicated(Viewer& viewer, double t) {
    VOD_DCHECK(!viewer.dedicated);
    // Callers check TryAcquire themselves when refusal is handled specially.
    viewer.dedicated = true;
    viewer.miss_time = t;
    ++dedicated_count_;
    metrics_->SetDedicatedStreams(t, dedicated_count_);
  }

  void ReleaseDedicated(Viewer& viewer, double t) {
    VOD_DCHECK(viewer.dedicated);
    supplier_->Release(t);
    viewer.dedicated = false;
    --dedicated_count_;
    metrics_->SetDedicatedStreams(t, dedicated_count_);
  }

  void SetConcurrent(double t, int delta) {
    concurrent_count_ += delta;
    VOD_DCHECK(concurrent_count_ >= 0);
    metrics_->SetConcurrentViewers(t, concurrent_count_);
  }

  /// Draws the time of the viewer's next VCR initiation after `t`.
  double SampleVcrClock(Viewer& viewer, double t) {
    if (interactivity_exp_mean_ > 0.0) {
      return t + viewer.rng.Exponential(interactivity_exp_mean_);
    }
    return t + config_.behavior.interactivity->Sample(&viewer.rng);
  }

  // ---- observability -------------------------------------------------------

  /// Emits one structured event when a bus is attached and the category
  /// passes its filter; with no bus this is a single branch.
  void EmitObs(double t, EventCategory cat, uint8_t sub, int64_t id,
               double value, uint8_t aux = 0) {
    EventLog* log = config_.event_log;
    if (log == nullptr || !log->ShouldEmit(cat)) return;
    log->Emit(t, cat, sub, config_.movie_id, id, value, aux);
  }

  // ---- arrivals --------------------------------------------------------------

  void ScheduleNextArrival(double t) {
    double next;
    if (config_.arrivals != nullptr) {
      next = config_.arrivals->NextArrivalAfter(t, &arrival_rng_);
    } else {
      next = t + arrival_rng_.Exponential(config_.mean_interarrival_minutes);
    }
    queue_->ScheduleHandler(next, kind_arrival_, 0);
  }

  void OnArrival() {
    const double t = queue_->Now();
    ScheduleNextArrival(t);
    // The gate observes every arrival (offered load) and may shed it before
    // any session state exists; the control plane accounts the shed.
    if (config_.gate != nullptr &&
        !config_.gate->OnArrival(config_.movie_id, t)) {
      return;
    }
    const uint64_t id = next_viewer_id_++;
    const uint32_t slot = AllocViewer(id);
    Viewer& viewer = viewers_[slot];

    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, 0.0);
    if (covering.has_value()) {
      // Type-2 viewer: enrollment window open; read from the buffer now.
      metrics_->RecordAdmission(t, 0.0, /*type2=*/true);
      EmitObs(t, EventCategory::kAdmission, 1, static_cast<int64_t>(id), 0.0);
      viewer.home_stream = covering;
      ArmPatience(viewer, t);
      SetConcurrent(t, +1);
      SchedulePlayback(viewer, t, 0.0);
    } else {
      // Type-1 viewer: queue frozen at the entry point until the next
      // restart; state_time records the enqueue instant so the admission
      // handler can recover the wait.
      const double start = schedule_.NextRestart(t);
      viewer.position = 0.0;
      viewer.state_time = t;
      viewer.play_rate = 0.0;
      viewer.pending_event = queue_->ScheduleHandler(start, kind_admit_, slot);
    }
  }

  /// A batch restart reached a queued type-1 viewer.
  void OnAdmitType1(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double now = queue_->Now();
    const double wait = now - viewer.state_time;
    metrics_->RecordAdmission(now, wait, /*type2=*/false);
    if (now >= metrics_->measurement_start()) {
      max_wait_seen_ = std::max(max_wait_seen_, wait);
    }
    viewer.home_stream = schedule_.FindCoveringStream(now, 0.0);
    // One restart event per distinct batch-restart instant, carrying the
    // partition stream that started (the whole batch shares it).
    if (ObsEnabled(config_.event_log, EventCategory::kRestart) &&
        last_restart_emitted_ != now) {
      last_restart_emitted_ = now;
      EmitObs(now, EventCategory::kRestart, 0,
              viewer.home_stream.value_or(-1), 0.0);
    }
    EmitObs(now, EventCategory::kAdmission, 0,
            static_cast<int64_t>(viewer.id), wait);
    ArmPatience(viewer, now);
    SetConcurrent(now, +1);
    SchedulePlayback(viewer, now, 0.0);
  }

  /// Samples the viewer's session deadline at playback start.
  void ArmPatience(Viewer& viewer, double t) {
    if (config_.patience != nullptr) {
      viewer.abandon_at = t + config_.patience->Sample(&viewer.rng);
    }
  }

  /// The viewer walks away mid-session; all resources are released.
  void OnAbandon(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double t = queue_->Now();
    if (viewer.dedicated) ReleaseDedicated(viewer, t);
    EmitObs(t, EventCategory::kSession, 1, static_cast<int64_t>(viewer.id),
            viewer.PositionAt(t));
    SetConcurrent(t, -1);
    ++abandonments_;
    FreeViewer(slot);
  }

  // ---- playback ---------------------------------------------------------------

  /// Enters normal playback (or a piggyback drift segment, if the viewer is
  /// dedicated and the merge policy is on) at `position`, and schedules the
  /// next event: VCR initiation, piggyback merge, or finish — whichever
  /// comes first.
  void SchedulePlayback(Viewer& viewer, double t, double position,
                        bool allow_piggyback = true) {
    const double l = layout_.movie_length();
    viewer.position = position;
    viewer.state_time = t;
    viewer.play_rate = 1.0;
    const uint32_t slot = SlotOf(viewer);

    double merge_at = std::numeric_limits<double>::infinity();
    if (viewer.dedicated && allow_piggyback && config_.piggyback.enabled &&
        layout_.window() > 0.0 &&
        layout_.window() < layout_.restart_period() && position < l - 1e-9) {
      const double phase = PatternPhase(t, position);
      if (phase > layout_.window()) {
        const auto plan =
            PlanPiggybackMerge(layout_, phase, config_.piggyback);
        if (plan.ok()) {
          viewer.play_rate = plan->rate_factor;
          merge_at = t + plan->merge_minutes;
        }
      }
    }

    const double finish_at = t + (l - position) / viewer.play_rate;
    double vcr_at = std::numeric_limits<double>::infinity();
    if (!config_.behavior.passive()) {
      vcr_at = SampleVcrClock(viewer, t);
    }

    // The deadline may already have passed (e.g. during a VCR operation,
    // which is allowed to finish): abandon immediately in that case.
    const double abandon_at = std::max(viewer.abandon_at, t);
    if (abandon_at <= vcr_at && abandon_at <= merge_at &&
        abandon_at <= finish_at) {
      viewer.pending_event =
          queue_->ScheduleHandler(abandon_at, kind_abandon_, slot);
    } else if (vcr_at <= merge_at && vcr_at <= finish_at) {
      viewer.pending_event =
          queue_->ScheduleHandler(vcr_at, kind_vcr_initiate_, slot);
    } else if (merge_at <= finish_at) {
      viewer.pending_event =
          queue_->ScheduleHandler(merge_at, kind_merge_, slot);
    } else {
      viewer.pending_event =
          queue_->ScheduleHandler(finish_at, kind_finish_, slot);
    }
  }

  void OnFinish(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double t = queue_->Now();
    if (viewer.dedicated) ReleaseDedicated(viewer, t);
    EmitObs(t, EventCategory::kSession, 0, static_cast<int64_t>(viewer.id),
            layout_.movie_length());
    SetConcurrent(t, -1);
    metrics_->RecordCompletion(t);
    FreeViewer(slot);
  }

  void OnPiggybackMerge(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double t = queue_->Now();
    const double position = viewer.PositionAt(t);
    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, position);
    if (covering.has_value()) {
      metrics_->RecordPiggybackMerge(t, t - viewer.miss_time);
      ReleaseDedicated(viewer, t);
      viewer.home_stream = covering;
      SchedulePlayback(viewer, t, position);
    } else {
      // Boundary corner (e.g. merged exactly at the movie end): keep the
      // stream and finish normally without re-planning a drift.
      SchedulePlayback(viewer, t, position, /*allow_piggyback=*/false);
    }
  }

  // ---- VCR operations ------------------------------------------------------------

  /// Kinematics of one VCR operation from `position`: wall-clock duration,
  /// where the viewer resumes, and whether a fast-forward runs off the end.
  struct VcrPlan {
    double wall = 0.0;
    double resume_position = 0.0;
    bool reaches_end = false;
  };

  VcrPlan PlanVcrOp(VcrOp op, double x, double position) const {
    const double l = layout_.movie_length();
    VcrPlan plan;
    plan.resume_position = position;
    switch (op) {
      case VcrOp::kFastForward: {
        const double traverse = std::min(x, l - position);
        plan.wall = traverse / rates_.fast_forward;
        plan.resume_position = position + traverse;
        plan.reaches_end = x >= l - position;
        break;
      }
      case VcrOp::kRewind: {
        const double traverse = std::min(x, position);
        plan.wall = traverse / rates_.rewind;
        plan.resume_position = position - traverse;
        break;
      }
      case VcrOp::kPause: {
        plan.wall = x;
        break;
      }
    }
    return plan;
  }

  /// Freezes the viewer, parks the operation's outcome on its slot, and
  /// schedules the completion event.
  void BeginVcrOp(Viewer& viewer, double t, VcrOp op, const VcrPlan& plan,
                  bool in_partition_before, bool consumes_in_vcr) {
    viewer.position = std::min(viewer.position, layout_.movie_length());
    viewer.state_time = t;
    viewer.play_rate = 0.0;  // position is explicit at completion
    viewer.vcr_op = op;
    viewer.vcr_resume_position = plan.resume_position;
    viewer.vcr_reaches_end = plan.reaches_end;
    viewer.vcr_in_partition_before = in_partition_before;
    viewer.vcr_consuming = consumes_in_vcr;
    viewer.pending_event =
        queue_->ScheduleHandler(t + plan.wall, kind_vcr_complete_,
                                SlotOf(viewer));
  }

  /// Outcome of a queued phase-1 stream request (sim/degradation.h). The
  /// viewer sat frozen at `viewer.position` since enqueue; on a grant the
  /// operation proceeds as if initiated now, on a refusal the viewer resumes
  /// normal playback — exactly the seed's blocked-VCR semantics, just later.
  void OnQueuedVcrDecision(uint32_t slot, uint64_t id, VcrOp op, double x,
                           double t, bool granted) {
    Viewer& viewer = Get(slot);
    VOD_CHECK(viewer.id == id);  // the slot cannot turn over while queued
    VOD_DCHECK(viewer.play_rate == 0.0);
    if (!granted) {
      // Attribute the blocked request to its enqueue time (the viewer froze
      // at state_time) so blocked == denied + expirations holds across the
      // warmup boundary.
      metrics_->RecordBlockedVcr(viewer.state_time);
      EmitObs(t, EventCategory::kQueue, 2, static_cast<int64_t>(id),
              t - viewer.state_time, static_cast<uint8_t>(op));
      SchedulePlayback(viewer, t, viewer.position);
      return;
    }
    // The supplier already acquired the stream on our behalf.
    EmitObs(t, EventCategory::kQueue, 1, static_cast<int64_t>(id),
            t - viewer.state_time, static_cast<uint8_t>(op));
    AcquireDedicated(viewer, t);
    const VcrPlan plan = PlanVcrOp(op, x, viewer.position);
    BeginVcrOp(viewer, t, op, plan, /*in_partition_before=*/true,
               /*consumes_in_vcr=*/true);
  }

  void OnVcrInitiate(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double t = queue_->Now();
    const double position =
        std::min(viewer.PositionAt(t), layout_.movie_length());

    const VcrOp op = config_.behavior.SampleOp(&viewer.rng);
    const double x = config_.behavior.SampleDuration(op, &viewer.rng);
    if (config_.trace != nullptr) config_.trace->Record(t, op, x);
    EmitObs(t, EventCategory::kVcrBegin, static_cast<uint8_t>(op),
            static_cast<int64_t>(viewer.id), x);
    const bool in_partition_before = !viewer.dedicated;
    const VcrPlan plan = PlanVcrOp(op, x, position);

    // Phase-1 stream accounting. FF/RW display and need a dedicated stream;
    // a refused request blocks the operation (the viewer keeps watching
    // normally) unless the supplier queues it for a deadline-bounded wait.
    // A pause consumes nothing; a stream held from an earlier miss is
    // returned during the pause.
    const bool consumes_in_vcr = op != VcrOp::kPause;
    if (consumes_in_vcr && !viewer.dedicated) {
      if (!supplier_->TryAcquire(t)) {
        const uint64_t id = viewer.id;
        if (supplier_->TryQueueAcquire(
                t, [this, slot, id, op, x](double decision_t, bool granted) {
                  OnQueuedVcrDecision(slot, id, op, x, decision_t, granted);
                })) {
          // Queued: freeze in place until the supplier decides. The viewer
          // holds no pending event — the supplier owns the timers.
          metrics_->RecordQueuedVcr(t);
          EmitObs(t, EventCategory::kQueue, 0, static_cast<int64_t>(id), 0.0,
                  static_cast<uint8_t>(op));
          viewer.position = position;
          viewer.state_time = t;
          viewer.play_rate = 0.0;
          viewer.pending_event = kNoEvent;
          return;
        }
        metrics_->RecordBlockedVcr(t);
        EmitObs(t, EventCategory::kShed, 0, static_cast<int64_t>(viewer.id),
                0.0, static_cast<uint8_t>(op));
        SchedulePlayback(viewer, t, position);
        return;
      }
      AcquireDedicated(viewer, t);
    } else if (!consumes_in_vcr && viewer.dedicated) {
      ReleaseDedicated(viewer, t);
    }

    viewer.position = position;  // frozen during the operation
    BeginVcrOp(viewer, t, op, plan, in_partition_before, consumes_in_vcr);
  }

  void OnVcrComplete(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double t = queue_->Now();
    const VcrOp op = viewer.vcr_op;
    const double resume_position = viewer.vcr_resume_position;
    const bool in_partition_before = viewer.vcr_in_partition_before;

    if (viewer.vcr_reaches_end) {
      // Fast-forwarded to (or past) the end: the session terminates and all
      // resources are released — a release per the paper's Eq. (21).
      metrics_->RecordResume(t, op, ResumeOutcome::kEndOfMovie,
                             in_partition_before);
      EmitObs(t, EventCategory::kResume,
              static_cast<uint8_t>(ResumeOutcome::kEndOfMovie),
              static_cast<int64_t>(viewer.id), resume_position,
              static_cast<uint8_t>(op));
      if (viewer.dedicated) ReleaseDedicated(viewer, t);
      EmitObs(t, EventCategory::kSession, 0, static_cast<int64_t>(viewer.id),
              resume_position);
      SetConcurrent(t, -1);
      metrics_->RecordCompletion(t);
      FreeViewer(slot);
      return;
    }

    const std::optional<int64_t> covering =
        schedule_.FindCoveringStream(t, resume_position);
    if (covering.has_value()) {
      const bool within = viewer.home_stream.has_value() &&
                          *viewer.home_stream == *covering;
      metrics_->RecordResume(
          t, op, within ? ResumeOutcome::kHitWithin : ResumeOutcome::kHitJump,
          in_partition_before);
      EmitObs(t, EventCategory::kResume,
              static_cast<uint8_t>(within ? ResumeOutcome::kHitWithin
                                          : ResumeOutcome::kHitJump),
              static_cast<int64_t>(viewer.id), resume_position,
              static_cast<uint8_t>(op));
      if (viewer.dedicated) ReleaseDedicated(viewer, t);
      viewer.home_stream = covering;
      SchedulePlayback(viewer, t, resume_position);
      return;
    }

    metrics_->RecordResume(t, op, ResumeOutcome::kMiss, in_partition_before);
    EmitObs(t, EventCategory::kResume,
            static_cast<uint8_t>(ResumeOutcome::kMiss),
            static_cast<int64_t>(viewer.id), resume_position,
            static_cast<uint8_t>(op));
    viewer.home_stream = std::nullopt;
    if (!viewer.dedicated) {
      VOD_DCHECK(!viewer.vcr_consuming);
      if (!supplier_->TryAcquire(t)) {
        // No stream for the miss: the viewer stalls (a forced pause) until
        // the next partition window sweeps over his position, then joins it
        // at the leading edge.
        StallUntilCovered(viewer, t, resume_position);
        return;
      }
      AcquireDedicated(viewer, t);
    } else {
      viewer.miss_time = t;  // the dedicated stint continues from this miss
    }
    SchedulePlayback(viewer, t, resume_position);
  }

  void StallUntilCovered(Viewer& viewer, double t, double position) {
    const double period = layout_.restart_period();
    const double phase = PatternPhase(t, position);
    // The next leading edge reaches `position` when the phase wraps to 0.
    const double wait = period - phase;
    metrics_->RecordStall(t, wait);
    EmitObs(t, EventCategory::kStall, 0, static_cast<int64_t>(viewer.id),
            wait);
    viewer.position = position;
    viewer.state_time = t;
    viewer.play_rate = 0.0;
    viewer.pending_event =
        queue_->ScheduleHandler(t + wait, kind_stall_resume_, SlotOf(viewer));
  }

  /// The partition window's leading edge swept over a stalled viewer.
  void OnStallResume(uint32_t slot) {
    Viewer& viewer = Get(slot);
    const double now = queue_->Now();
    const double position = viewer.position;  // frozen at the stall
    viewer.home_stream = schedule_.FindCoveringStream(now, position);
    SchedulePlayback(viewer, now, position);
  }

 public:
  // ---- forced reclaim (graceful degradation) -------------------------------

  /// See MovieWorld::ReclaimDedicated. Victims are viewers holding a
  /// dedicated stream during a playback/drift segment (play_rate > 0);
  /// viewers frozen mid-VCR-op or stalled are left alone. Lowest viewer id
  /// first keeps the choice deterministic across runs.
  int64_t ReclaimDedicated(double t, int64_t max_count) {
    int64_t reclaimed = 0;
    while (reclaimed < max_count) {
      Viewer* victim = nullptr;
      for (Viewer& v : viewers_) {
        if (!v.active || !v.dedicated || v.play_rate <= 0.0) continue;
        if (v.PositionAt(t) >= layout_.movie_length() - 1e-9) continue;
        if (victim == nullptr || v.id < victim->id) victim = &v;
      }
      if (victim == nullptr) break;
      const double position =
          std::min(victim->PositionAt(t), layout_.movie_length());
      queue_->Cancel(victim->pending_event);
      victim->pending_event = kNoEvent;
      ReleaseDedicated(*victim, t);
      metrics_->RecordForcedReclaim(t);
      EmitObs(t, EventCategory::kReclaim, 0,
              static_cast<int64_t>(victim->id), position);
      // The victim falls back to pure-batching service: stall until the
      // next partition window sweeps over its position.
      StallUntilCovered(*victim, t, position);
      ++reclaimed;
    }
    return reclaimed;
  }

 private:
  PartitionLayout layout_;
  PlaybackRates rates_;
  MovieWorldConfig config_;
  PartitionSchedule schedule_;
  Rng base_rng_;
  Rng arrival_rng_;
  EventQueue* queue_;
  StreamSupplier* supplier_;
  SimulationMetrics* metrics_;
  /// Viewer slab: live sessions plus a LIFO free list of retired slots.
  std::vector<Viewer> viewers_;
  uint32_t free_head_ = kNilSlot;
  uint64_t next_viewer_id_ = 0;
  int64_t dedicated_count_ = 0;
  int concurrent_count_ = 0;
  int64_t abandonments_ = 0;
  int64_t viewers_freed_ = 0;
  double max_wait_seen_ = 0.0;
  /// Mean of the interactivity clock when it is exponential; <= 0 selects
  /// the generic virtual Sample path.
  double interactivity_exp_mean_ = 0.0;
  /// Restart instant last emitted on the event bus (dedupe: one kRestart
  /// event per batch restart, not one per admitted viewer).
  double last_restart_emitted_ = -1.0;
  // Handler kinds registered with the shared queue (per-world values).
  uint64_t kind_arrival_ = 0;
  uint64_t kind_admit_ = 0;
  uint64_t kind_abandon_ = 0;
  uint64_t kind_vcr_initiate_ = 0;
  uint64_t kind_merge_ = 0;
  uint64_t kind_finish_ = 0;
  uint64_t kind_vcr_complete_ = 0;
  uint64_t kind_stall_resume_ = 0;

 public:
  double max_wait_seen() const { return max_wait_seen_; }
  int64_t abandonments() const { return abandonments_; }
  int64_t dedicated_streams_held() const { return dedicated_count_; }
  int64_t viewers_entered() const {
    return static_cast<int64_t>(next_viewer_id_);
  }
  int64_t viewers_exited() const { return viewers_freed_; }
};

MovieWorld::MovieWorld(const PartitionLayout& layout,
                       const PlaybackRates& rates,
                       const MovieWorldConfig& config, Rng base_rng,
                       EventQueue* queue, StreamSupplier* supplier,
                       SimulationMetrics* metrics)
    : impl_(std::make_unique<Impl>(layout, rates, config, base_rng, queue,
                                   supplier, metrics)) {}

MovieWorld::~MovieWorld() = default;

void MovieWorld::Start() { impl_->Start(); }

int64_t MovieWorld::ReclaimDedicated(double t, int64_t max_count) {
  return impl_->ReclaimDedicated(t, max_count);
}

void MovieWorld::ApplyLayout(double t, const PartitionLayout& new_layout) {
  impl_->ApplyLayout(t, new_layout);
}

const PartitionLayout& MovieWorld::layout() const { return impl_->layout(); }

double MovieWorld::max_wait_seen() const { return impl_->max_wait_seen(); }

int64_t MovieWorld::abandonments() const { return impl_->abandonments(); }

int64_t MovieWorld::dedicated_streams_held() const {
  return impl_->dedicated_streams_held();
}

int64_t MovieWorld::viewers_entered() const {
  return impl_->viewers_entered();
}

int64_t MovieWorld::viewers_exited() const { return impl_->viewers_exited(); }

int64_t MovieWorld::viewers_live() const {
  return impl_->viewers_entered() - impl_->viewers_exited();
}

}  // namespace vod
