#include "sim/simulator.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/movie_world.h"
#include "sim/run_loop.h"
#include "sim/stream_supplier.h"

namespace vod {

namespace {

/// Everything the per-event observer touches, gathered into one POD so the
/// specialized instantiations below share a single context pointer.
struct SimObserverCtx {
  InvariantAuditor* auditor = nullptr;
  AuditSnapshot* audit_snapshot = nullptr;
  UnlimitedStreamSupplier* supplier = nullptr;
  MovieWorld* world = nullptr;
  SimulationMetrics* metrics = nullptr;
  MetricsRegistry* registry = nullptr;
  Gauge* g_dedicated = nullptr;
  Gauge* g_admissions = nullptr;
  Gauge* g_resumes = nullptr;
};

/// One observer instantiation per RunLoopVariant: the audit and telemetry
/// branches are compile-time, so each variant carries only its own code and
/// the kPlain variant installs nothing at all (the kernel then runs its
/// unobserved loop — no per-event branch, no std::function).
template <bool kAudit, bool kTraced>
void SimObserveTick(void* raw, double t) {
  auto* ctx = static_cast<SimObserverCtx*>(raw);
  if constexpr (kAudit) {
    ctx->auditor->RecordEvent(t);
    if (ctx->auditor->AuditDue()) {
      ctx->audit_snapshot->time = t;
      ctx->audit_snapshot->supplier_in_use = ctx->supplier->in_use();
      ctx->audit_snapshot->sum_world_holds =
          ctx->world->dedicated_streams_held();
      ctx->auditor->Audit(*ctx->audit_snapshot);
    }
  }
  if constexpr (kTraced) {
    ctx->g_dedicated->Set(
        static_cast<double>(ctx->world->dedicated_streams_held()));
    ctx->g_admissions->Set(static_cast<double>(ctx->metrics->admissions()));
    ctx->g_resumes->Set(static_cast<double>(ctx->metrics->total_resumes()));
    ctx->registry->MaybeSample(t);
  }
}

void InstallSimObserver(EventQueue& queue, RunLoopVariant variant,
                        SimObserverCtx* ctx) {
  switch (variant) {
    case RunLoopVariant::kPlain:
      break;  // no observer: the kernel's unobserved loop runs
    case RunLoopVariant::kAudited:
      queue.set_observer(&SimObserveTick<true, false>, ctx);
      break;
    case RunLoopVariant::kTraced:
      queue.set_observer(&SimObserveTick<false, true>, ctx);
      break;
    case RunLoopVariant::kAuditedTraced:
      queue.set_observer(&SimObserveTick<true, true>, ctx);
      break;
  }
}

}  // namespace

std::string SimulationReport::ToString() const {
  std::ostringstream os;
  os << "SimulationReport{P(hit)=" << hit_probability << " ["
     << hit_probability_low << ", " << hit_probability_high << "]"
     << ", resumes=" << total_resumes << " (within=" << hits_within
     << ", jump=" << hits_jump << ", end=" << end_releases
     << ", miss=" << misses << ")"
     << ", admissions=" << admissions << " (type2=" << type2_admissions << ")"
     << ", mean_wait=" << mean_wait_minutes
     << ", max_wait=" << max_wait_minutes
     << ", avg_dedicated_streams=" << mean_dedicated_streams;
  if (piggyback_merges > 0) {
    os << ", piggyback_merges=" << piggyback_merges
       << ", mean_merge=" << mean_merge_minutes;
  }
  os << "}";
  return os.str();
}

/// Fills the shared report fields from a movie's metrics.
void FillReportFromMetrics(const SimulationMetrics& metrics, double horizon,
                           SimulationReport* report) {
  report->hit_probability = metrics.hit_all().estimate();
  report->hit_probability_low = metrics.hit_all().WilsonLower();
  report->hit_probability_high = metrics.hit_all().WilsonUpper();
  for (VcrOp op : kAllVcrOps) {
    const int idx = static_cast<int>(op);
    report->hit_probability_by_op[idx] = metrics.hit_by_op(op).estimate();
    report->resumes_by_op[idx] = metrics.hit_by_op(op).trials();
  }
  report->hit_probability_in_partition =
      metrics.hit_in_partition_all().estimate();
  report->hit_probability_in_partition_low =
      metrics.hit_in_partition_all().WilsonLower();
  report->hit_probability_in_partition_high =
      metrics.hit_in_partition_all().WilsonUpper();
  report->in_partition_resumes = metrics.hit_in_partition_all().trials();
  const BatchMeansInterval bm = metrics.hit_in_partition_batches().Interval();
  if (bm.valid) report->hit_probability_in_partition_bm_halfwidth = bm.half_width;
  report->total_resumes = metrics.total_resumes();
  report->hits_within = metrics.resumes(ResumeOutcome::kHitWithin);
  report->hits_jump = metrics.resumes(ResumeOutcome::kHitJump);
  report->end_releases = metrics.resumes(ResumeOutcome::kEndOfMovie);
  report->misses = metrics.resumes(ResumeOutcome::kMiss);
  report->admissions = metrics.admissions();
  report->type2_admissions = metrics.type2_admissions();
  report->completions = metrics.completions();
  report->mean_wait_minutes = metrics.wait_time().mean();
  if (metrics.wait_quantiles().count() > 0) {
    report->p50_wait_minutes = metrics.wait_quantiles().p50();
    report->p99_wait_minutes = metrics.wait_quantiles().p99();
  }
  report->mean_dedicated_streams =
      metrics.dedicated_streams().TimeAverage(horizon);
  report->peak_dedicated_streams = metrics.dedicated_streams().max();
  report->mean_concurrent_viewers =
      metrics.concurrent_viewers().TimeAverage(horizon);
  report->piggyback_merges = metrics.piggyback_merges();
  report->mean_merge_minutes = metrics.merge_drift_time().mean();
  report->blocked_vcr_requests = metrics.blocked_vcr();
  report->stalled_resumes = metrics.stalls();
  report->queued_vcr_requests = metrics.queued_vcr();
  report->forced_reclaims = metrics.forced_reclaims();
  report->simulated_minutes = horizon;
}

Result<SimulationReport> RunSimulation(const PartitionLayout& layout,
                                       const PlaybackRates& rates,
                                       const SimulationOptions& options) {
  MovieWorldConfig config;
  config.mean_interarrival_minutes = options.mean_interarrival_minutes;
  config.arrivals = options.arrivals;
  config.behavior = options.behavior;
  config.stationary_start = options.stationary_start;
  config.piggyback = options.piggyback;
  config.trace = options.trace;
  config.gate = options.gate;
  config.patience = options.patience;
  config.event_log = options.obs.event_log;
  VOD_RETURN_IF_ERROR(ValidateMovieWorldInputs(rates, config));
  if (options.warmup_minutes < 0.0 || !(options.measurement_minutes > 0.0)) {
    return Status::InvalidArgument(
        "warmup must be >= 0 and measurement span positive");
  }

  EventQueue queue;
  // Pre-size the kernel for the steady-state population: one pending event
  // per in-flight viewer (Little's law: arrival rate x movie length) plus
  // the arrival clock.
  const double est_population =
      layout.movie_length() / config.mean_interarrival_minutes;
  queue.Reserve(static_cast<size_t>(
      std::clamp(est_population + 64.0, 64.0, 1.0e6)));
  UnlimitedStreamSupplier supplier;
  SimulationMetrics metrics(options.warmup_minutes);
  MovieWorld world(layout, rates, config, Rng(options.seed), &queue,
                   &supplier, &metrics);

  std::unique_ptr<InvariantAuditor> auditor;
  AuditSnapshot audit_snapshot;
  if (options.audit.enabled) {
    VOD_RETURN_IF_ERROR(options.audit.Validate());
    auditor = std::make_unique<InvariantAuditor>(options.audit);
    audit_snapshot.movies.push_back(BuildMovieAuditBuffers("movie", layout));
  }

  // Live instruments sampled on the simulation clock. Registered up front
  // so the export order is deterministic; sampling happens on the event-loop
  // observer and never feeds back into the report.
  MetricsRegistry* registry = options.obs.metrics;
  Gauge* g_dedicated = nullptr;
  Gauge* g_admissions = nullptr;
  Gauge* g_resumes = nullptr;
  if (registry != nullptr) {
    if (options.obs.metrics_sample_minutes > 0.0) {
      registry->set_sample_every(options.obs.metrics_sample_minutes);
    }
    g_dedicated = registry->AddGauge(
        "sim_dedicated_streams", "dedicated VCR streams currently held");
    g_admissions = registry->AddGauge(
        "sim_admissions_total", "viewers admitted in the measurement window");
    g_resumes = registry->AddGauge(
        "sim_resumes_total", "VCR resumes in the measurement window");
  }

  // When a run both audits and traces, the auditor's tail ring doubles as a
  // bus sink so violation diagnostics carry the rich event context.
  ScopedEventSink lend_ring(
      options.obs.event_log,
      auditor != nullptr ? auditor->trace_ring() : nullptr);

  // Select the observer instantiation once per run (DESIGN.md §15): the
  // audited/traced axes are baked in at compile time instead of being
  // re-branched on every event.
  SimObserverCtx observer_ctx;
  observer_ctx.auditor = auditor.get();
  observer_ctx.audit_snapshot = &audit_snapshot;
  observer_ctx.supplier = &supplier;
  observer_ctx.world = &world;
  observer_ctx.metrics = &metrics;
  observer_ctx.registry = registry;
  observer_ctx.g_dedicated = g_dedicated;
  observer_ctx.g_admissions = g_admissions;
  observer_ctx.g_resumes = g_resumes;
  InstallSimObserver(queue,
                     ComposeRunLoopVariant(auditor != nullptr,
                                           registry != nullptr),
                     &observer_ctx);
  queue.set_scalar_dispatch(options.scalar_event_dispatch);

  world.Start();
  const double horizon =
      options.warmup_minutes + options.measurement_minutes;
  queue.RunUntil(horizon);
  if (registry != nullptr) registry->SampleAt(horizon);
  if (auditor != nullptr && auditor->total_violations() > 0) {
    return auditor->status();
  }

  SimulationReport report;
  FillReportFromMetrics(metrics, horizon, &report);
  report.max_wait_minutes = world.max_wait_seen();
  report.abandonments = world.abandonments();
  report.executed_events = queue.executed();
  return report;
}

}  // namespace vod
