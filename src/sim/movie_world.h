// Per-movie simulation engine.
//
// MovieWorld owns one movie's restart schedule, viewer population, and VCR
// behavior, and runs against a shared EventQueue and StreamSupplier so that
// several movies can be simulated together (the multi-movie server). The
// single-movie RunSimulation() wraps exactly one MovieWorld over an
// unlimited supplier.
//
// The viewer population is held in a structure-of-arrays slab (parallel
// per-field columns indexed by the slot carried in event payloads), its
// handlers register with the queue as raw function-pointer trampolines, and
// the two event kinds that form same-timestamp runs (batch-restart
// admissions, window-edge stall resumes) also register batch handlers so
// the queue's run extraction dispatches a whole run in one call
// (DESIGN.md §15). Reports are byte-identical to scalar dispatch.
//
// Time convention: the simulation clock is in movie-minutes of normal
// playback, i.e. R_PB must be 1 (RunSimulation / ServerSimulation validate
// this); FF/RW rates are multiples of it, as in the paper.

#ifndef VOD_SIM_MOVIE_WORLD_H_
#define VOD_SIM_MOVIE_WORLD_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "core/partition_layout.h"
#include "ctrl/admission_gate.h"
#include "core/piggyback.h"
#include "core/types.h"
#include "obs/event_log.h"
#include "sim/arrival_process.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/partition_schedule.h"
#include "sim/stream_supplier.h"
#include "sim/vcr_behavior.h"

namespace vod {

class VcrTrace;

/// Static configuration of one movie's world.
struct MovieWorldConfig {
  /// Used when `arrivals` is null: homogeneous Poisson with this mean gap.
  double mean_interarrival_minutes = 2.0;
  /// Optional non-homogeneous arrival process; overrides the mean gap.
  ArrivalProcessPtr arrivals;
  VcrBehavior behavior;
  bool stationary_start = true;
  /// Phase-2 merge policy for miss-viewers.
  PiggybackOptions piggyback;
  /// Optional log of every VCR request (time, op, duration); must outlive
  /// the world. Blocked requests are logged too — they are user behavior.
  VcrTrace* trace = nullptr;
  /// Optional viewer patience: wall-clock session lifetime from playback
  /// start; the viewer abandons when it expires (during a playback segment;
  /// an in-progress VCR operation finishes first). Null = watch to the end.
  DistributionPtr patience;
  /// Optional structured event bus (obs/event_log.h); must outlive the
  /// world. Telemetry only: emission never touches the viewer RNG streams
  /// and nothing in a report path reads it back.
  EventLog* event_log = nullptr;
  /// Movie index stamped onto emitted events (-1 = single-movie run).
  int32_t movie_id = -1;
  /// Optional pre-admission gate (ctrl/admission_gate.h); must outlive the
  /// world. Consulted on every arrival before any session state exists; a
  /// false return sheds the arrival. Null admits everything.
  AdmissionGate* gate = nullptr;
};

/// \brief One movie's event logic over shared simulation infrastructure.
///
/// All randomness derives from the `base_rng` passed at construction, so
/// worlds are deterministic and independent across movies.
class MovieWorld {
 public:
  /// The pointers must outlive the world. `metrics` accumulates this
  /// movie's measurements; `supplier` arbitrates dedicated streams.
  MovieWorld(const PartitionLayout& layout, const PlaybackRates& rates,
             const MovieWorldConfig& config, Rng base_rng, EventQueue* queue,
             StreamSupplier* supplier, SimulationMetrics* metrics);
  ~MovieWorld();

  MovieWorld(const MovieWorld&) = delete;
  MovieWorld& operator=(const MovieWorld&) = delete;

  /// Schedules the first arrival; events then self-perpetuate until the
  /// caller stops draining the queue.
  void Start();

  /// Forcibly reclaims up to `max_count` dedicated streams from post-miss
  /// viewers (graceful degradation under capacity loss). Each victim —
  /// deterministically the lowest-id eligible viewer — releases its stream
  /// and falls back to pure-batching service: it stalls until the next
  /// partition window sweeps over its position. Viewers mid-VCR-operation,
  /// queued for a stream, or already within a window are not eligible.
  /// Returns the number of streams actually reclaimed.
  int64_t ReclaimDedicated(double t, int64_t max_count);

  const PartitionLayout& layout() const;

  /// \brief Commits a new partition layout at time t (a controller
  /// migration step). The restart schedule is re-anchored at t, so the new
  /// geometry begins a restart there; existing viewers keep their streams
  /// and positions — only future coverage queries (arrivals, resumes,
  /// stalls) see the new windows. Never preempts an active stream.
  void ApplyLayout(double t, const PartitionLayout& new_layout);

  /// Largest admission wait observed after warmup.
  double max_wait_seen() const;

  /// Viewers who walked away before the end (whole run, incl. warmup).
  int64_t abandonments() const;

  /// Dedicated streams this movie's viewers hold right now (VCR phase-1 +
  /// post-miss). The invariant auditor sums this across worlds and checks
  /// it against the supplier's in_use().
  int64_t dedicated_streams_held() const;

  /// Viewer conservation counters (whole run, incl. warmup). `entered`
  /// counts admitted sessions (gate-shed arrivals never enter), `exited`
  /// counts sessions torn down (completion, end-of-movie, abandonment), and
  /// `live == entered - exited` is the current population. The sharded
  /// auditor checks these per movie across barrier handoffs.
  int64_t viewers_entered() const;
  int64_t viewers_exited() const;
  int64_t viewers_live() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Validates a (rates, config) pair for simulation (R_PB == 1, behavior and
/// piggyback options consistent).
Status ValidateMovieWorldInputs(const PlaybackRates& rates,
                                const MovieWorldConfig& config);

}  // namespace vod

#endif  // VOD_SIM_MOVIE_WORLD_H_
