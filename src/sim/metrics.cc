#include "sim/metrics.h"

namespace vod {

void SimulationMetrics::RecordResume(double t, VcrOp op, ResumeOutcome outcome,
                                     bool in_partition_before) {
  if (!InMeasurement(t)) return;
  ++total_resumes_;
  ++outcome_counts_[static_cast<int>(outcome)];
  const bool hit = outcome != ResumeOutcome::kMiss;
  hit_all_.Add(hit);
  hit_by_op_[static_cast<int>(op)].Add(hit);
  if (in_partition_before) {
    hit_in_partition_all_.Add(hit);
    hit_in_partition_batches_.Add(hit ? 1.0 : 0.0);
    hit_in_partition_[static_cast<int>(op)].Add(hit);
  }
}

void SimulationMetrics::RecordAdmission(double t, double wait, bool type2) {
  if (!InMeasurement(t)) return;
  ++admissions_;
  if (type2) ++type2_admissions_;
  wait_time_.Add(wait);
  wait_quantiles_.Add(wait);
}

void SimulationMetrics::RecordCompletion(double t) {
  if (!InMeasurement(t)) return;
  ++completions_;
}

void SimulationMetrics::RecordBlockedVcr(double t) {
  if (!InMeasurement(t)) return;
  ++blocked_vcr_;
}

void SimulationMetrics::RecordStall(double t, double wait) {
  if (!InMeasurement(t)) return;
  ++stalls_;
  stall_time_.Add(wait);
}

void SimulationMetrics::RecordQueuedVcr(double t) {
  if (!InMeasurement(t)) return;
  ++queued_vcr_;
}

void SimulationMetrics::RecordForcedReclaim(double t) {
  if (!InMeasurement(t)) return;
  ++forced_reclaims_;
}

void SimulationMetrics::RecordPiggybackMerge(double t, double drift) {
  if (!InMeasurement(t)) return;
  ++piggyback_merges_;
  merge_drift_time_.Add(drift);
}

void SimulationMetrics::SetDedicatedStreams(double t, int64_t count) {
  if (t < measurement_start_) {
    dedicated_streams_.Reset(measurement_start_, static_cast<double>(count));
  } else {
    dedicated_streams_.Set(t, static_cast<double>(count));
  }
}

void SimulationMetrics::SetConcurrentViewers(double t, int64_t count) {
  if (t < measurement_start_) {
    concurrent_viewers_.Reset(measurement_start_, static_cast<double>(count));
  } else {
    concurrent_viewers_.Set(t, static_cast<double>(count));
  }
}

}  // namespace vod
