#include "sim/metrics.h"

namespace vod {

void SimulationMetrics::RecordResume(double t, VcrOp op, ResumeOutcome outcome,
                                     bool in_partition_before) {
  if (!InMeasurement(t)) return;
  ++total_resumes_;
  ++outcome_counts_[static_cast<int>(outcome)];
  const bool hit = outcome != ResumeOutcome::kMiss;
  hit_all_.Add(hit);
  hit_by_op_[static_cast<int>(op)].Add(hit);
  if (in_partition_before) {
    hit_in_partition_all_.Add(hit);
    hit_in_partition_batches_.Add(hit ? 1.0 : 0.0);
    hit_in_partition_[static_cast<int>(op)].Add(hit);
  }
}

void SimulationMetrics::RecordAdmission(double t, double wait, bool type2) {
  if (!InMeasurement(t)) return;
  ++admissions_;
  if (type2) ++type2_admissions_;
  wait_time_.Add(wait);
  wait_quantiles_.Add(wait);
}

void SimulationMetrics::RecordCompletion(double t) {
  if (!InMeasurement(t)) return;
  ++completions_;
}

void SimulationMetrics::RecordBlockedVcr(double t) {
  if (!InMeasurement(t)) return;
  ++blocked_vcr_;
}

void SimulationMetrics::RecordStall(double t, double wait) {
  if (!InMeasurement(t)) return;
  ++stalls_;
  stall_time_.Add(wait);
}

void SimulationMetrics::RecordQueuedVcr(double t) {
  if (!InMeasurement(t)) return;
  ++queued_vcr_;
}

void SimulationMetrics::RecordForcedReclaim(double t) {
  if (!InMeasurement(t)) return;
  ++forced_reclaims_;
}

void SimulationMetrics::RecordPiggybackMerge(double t, double drift) {
  if (!InMeasurement(t)) return;
  ++piggyback_merges_;
  merge_drift_time_.Add(drift);
}

void SimulationMetrics::SetDedicatedStreams(double t, int64_t count) {
  if (t < measurement_start_) {
    dedicated_streams_.Reset(measurement_start_, static_cast<double>(count));
  } else {
    dedicated_streams_.Set(t, static_cast<double>(count));
  }
}

void SimulationMetrics::SetConcurrentViewers(double t, int64_t count) {
  if (t < measurement_start_) {
    concurrent_viewers_.Reset(measurement_start_, static_cast<double>(count));
  } else {
    concurrent_viewers_.Set(t, static_cast<double>(count));
  }
}

Status SimulationMetrics::MergeFrom(const SimulationMetrics& other) {
  if (other.measurement_start_ != measurement_start_) {
    return Status::InvalidArgument(
        "metrics merge: warmup boundaries differ (" +
        std::to_string(measurement_start_) + " vs " +
        std::to_string(other.measurement_start_) + ")");
  }
  hit_all_.Merge(other.hit_all_);
  hit_in_partition_all_.Merge(other.hit_in_partition_all_);
  VOD_RETURN_IF_ERROR(
      hit_in_partition_batches_.Merge(other.hit_in_partition_batches_));
  for (size_t i = 0; i < hit_by_op_.size(); ++i) {
    hit_by_op_[i].Merge(other.hit_by_op_[i]);
    hit_in_partition_[i].Merge(other.hit_in_partition_[i]);
  }
  for (size_t i = 0; i < outcome_counts_.size(); ++i) {
    outcome_counts_[i] += other.outcome_counts_[i];
  }
  total_resumes_ += other.total_resumes_;
  admissions_ += other.admissions_;
  type2_admissions_ += other.type2_admissions_;
  completions_ += other.completions_;
  blocked_vcr_ += other.blocked_vcr_;
  stalls_ += other.stalls_;
  queued_vcr_ += other.queued_vcr_;
  forced_reclaims_ += other.forced_reclaims_;
  piggyback_merges_ += other.piggyback_merges_;
  stall_time_.Merge(other.stall_time_);
  merge_drift_time_.Merge(other.merge_drift_time_);
  wait_time_.Merge(other.wait_time_);
  wait_quantiles_.Merge(other.wait_quantiles_);
  dedicated_streams_.MergePopulation(other.dedicated_streams_);
  concurrent_viewers_.MergePopulation(other.concurrent_viewers_);
  return Status::OK();
}

}  // namespace vod
