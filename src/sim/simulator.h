// Discrete-event simulation of one popular movie under batching + static
// partitioned buffering with interactive viewers (paper §4).
//
// Viewers arrive by a Poisson process. An arrival inside an open enrollment
// window joins that partition immediately (type 2); otherwise the viewer
// queues for the next restart (type 1, waiting at most w = (l − B)/n).
// Playing viewers issue FF/RW/PAU operations; each resume is classified as a
// hit (resume position inside some partition's buffer — the dedicated VCR
// stream is released) or a miss (the viewer keeps a dedicated stream until a
// later hit or the end of the movie). The measured hit fraction is the
// quantity the analytic model predicts.

#ifndef VOD_SIM_SIMULATOR_H_
#define VOD_SIM_SIMULATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/partition_layout.h"
#include "ctrl/admission_gate.h"
#include "core/piggyback.h"
#include "core/types.h"
#include "obs/observability.h"
#include "sim/arrival_process.h"
#include "sim/audit.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "sim/vcr_behavior.h"

namespace vod {

/// Knobs of a single-movie simulation run.
struct SimulationOptions {
  /// Mean viewer inter-arrival time 1/λ in minutes (paper Fig. 7 uses 2).
  /// Ignored when `arrivals` is set.
  double mean_interarrival_minutes = 2.0;
  /// Optional non-homogeneous arrival process (see sim/arrival_process.h).
  ArrivalProcessPtr arrivals;
  /// Viewer interactivity and operation mix.
  VcrBehavior behavior;
  /// Transient discarded before measurement starts, in minutes.
  double warmup_minutes = 1000.0;
  /// Measured span after warmup, in minutes.
  double measurement_minutes = 50000.0;
  /// Base seed; every stochastic entity derives a child stream from it.
  uint64_t seed = 42;
  /// Start in steady state (streams assumed started at every k·T, k < 0).
  bool stationary_start = true;
  /// Phase-2 merge policy for miss-viewers (off by default, as in the
  /// paper's evaluation).
  PiggybackOptions piggyback;
  /// Optional VCR activity log (see sim/trace.h); must outlive the run.
  VcrTrace* trace = nullptr;
  /// Optional pre-admission gate (ctrl/admission_gate.h): observes every
  /// arrival and may shed it before a viewer id is allocated. Must outlive
  /// the run; null = admit everything (the default).
  AdmissionGate* gate = nullptr;
  /// Optional viewer patience (session lifetime from playback start);
  /// null = everyone watches to the end.
  DistributionPtr patience;
  /// Runtime invariant auditing (sim/audit.h). When enabled, a violated
  /// conservation law turns the run into an error Status carrying an
  /// event-trace tail — it never aborts.
  AuditOptions audit;
  /// Observability wiring (obs/observability.h): structured event tracing
  /// and cadenced metrics sampling. Telemetry-only — cannot change a
  /// report byte.
  ObsOptions obs;
  /// Forces the event kernel onto its scalar (non-batched) dispatch loop.
  /// Reports are byte-identical either way — the differential test suite
  /// pins that; this switch exists for those tests and for bisecting.
  bool scalar_event_dispatch = false;
};

/// Aggregated outcome of a run.
struct SimulationReport {
  // Hit probability over all measured resumes, and the per-operation splits.
  double hit_probability = 0.0;
  double hit_probability_low = 0.0;   ///< 95% Wilson bound
  double hit_probability_high = 0.0;  ///< 95% Wilson bound
  double hit_probability_by_op[3] = {0.0, 0.0, 0.0};
  int64_t resumes_by_op[3] = {0, 0, 0};
  /// Restricted to resumes issued by viewers sharing a partition (the
  /// analytic model's population), with its own Wilson bounds.
  double hit_probability_in_partition = 0.0;
  double hit_probability_in_partition_low = 0.0;
  double hit_probability_in_partition_high = 0.0;
  /// Batch-means 95% half-width for the in-partition estimate (0 when too
  /// few batches completed). Wider than the Wilson interval when outcomes
  /// are autocorrelated — the honest uncertainty for model validation.
  double hit_probability_in_partition_bm_halfwidth = 0.0;
  int64_t in_partition_resumes = 0;

  int64_t total_resumes = 0;
  int64_t hits_within = 0;
  int64_t hits_jump = 0;
  int64_t end_releases = 0;
  int64_t misses = 0;

  int64_t admissions = 0;
  int64_t type2_admissions = 0;
  int64_t completions = 0;
  double mean_wait_minutes = 0.0;
  double max_wait_minutes = 0.0;
  /// Streaming quantiles of the admission wait (P² estimates).
  double p50_wait_minutes = 0.0;
  double p99_wait_minutes = 0.0;

  double mean_dedicated_streams = 0.0;
  double peak_dedicated_streams = 0.0;
  double mean_concurrent_viewers = 0.0;

  /// Piggyback merging (when enabled): completed merges and the mean drift
  /// time from miss to merge.
  int64_t piggyback_merges = 0;
  double mean_merge_minutes = 0.0;
  /// Blocked FF/RW requests and stalled resumes (always 0 with the default
  /// unlimited stream supply; populated by the server simulator's worlds).
  int64_t blocked_vcr_requests = 0;
  int64_t stalled_resumes = 0;
  /// Degraded-mode accounting (0 unless the server's degradation policy is
  /// on): FF/RW requests that entered the wait queue, and dedicated streams
  /// forcibly reclaimed from this movie's viewers.
  int64_t queued_vcr_requests = 0;
  int64_t forced_reclaims = 0;

  /// Viewers who abandoned mid-session (entire run, incl. warmup).
  int64_t abandonments = 0;

  double simulated_minutes = 0.0;

  /// Kernel events executed over the whole run (incl. warmup). Diagnostics
  /// only — excluded from ToString so report text stays stable across
  /// kernel-internal changes; the perf benches derive events/sec from it.
  uint64_t executed_events = 0;

  std::string ToString() const;
};

/// \brief Runs one simulation to completion.
///
/// Deterministic given (layout, rates, options): all randomness derives from
/// options.seed.
Result<SimulationReport> RunSimulation(const PartitionLayout& layout,
                                       const PlaybackRates& rates,
                                       const SimulationOptions& options);

/// Fills the metrics-derived fields of a report (shared with the server
/// simulator; max_wait_minutes is world-side and set by the caller).
void FillReportFromMetrics(const SimulationMetrics& metrics, double horizon,
                           SimulationReport* report);

}  // namespace vod

#endif  // VOD_SIM_SIMULATOR_H_
