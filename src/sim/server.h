// Multi-movie server simulation with a shared dynamic stream reserve.
//
// Several pre-allocated movies run in one event space; their VCR phase-1
// and post-miss streams all come from one finite reserve. When it runs dry,
// FF/RW requests are refused and missing resumes stall — quantifying the
// paper's warning that "without careful resource management, the benefits
// of these data sharing techniques can be lost": low hit probabilities pin
// streams until the end of the movie, exhaust the reserve, and degrade
// interactivity for everyone.
//
// Beyond the fault-free seed model, the server can inject disk failures
// (storage/fault_injector.h) that shrink the reserve while a disk is down,
// and walk a graceful-degradation ladder (sim/degradation.h) instead of
// falling off the hard-refusal cliff. Every refusal, queue outcome, stall,
// reclaim, and ladder transition is accounted in the report.

#ifndef VOD_SIM_SERVER_H_
#define VOD_SIM_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/controller.h"
#include "sim/degradation.h"
#include "sim/movie_world.h"
#include "sim/simulator.h"
#include "storage/fault_injector.h"

namespace vod {

/// One movie hosted by the server.
struct ServerMovieSpec {
  std::string name;
  PartitionLayout layout;
  /// Nominal (forecast) rate the layout was sized for. Always required —
  /// it anchors the controller's drift baseline and Little's-law sizing —
  /// even when `arrivals` overrides the actual process.
  double arrival_rate_per_minute = 0.5;
  /// Optional non-homogeneous arrival process (flash crowds, diurnal
  /// waves); null = homogeneous Poisson at the nominal rate.
  ArrivalProcessPtr arrivals;
  VcrBehavior behavior;
};

/// Disk-failure injection knobs for the server's stream reserve.
struct ServerFaultOptions {
  bool enabled = false;
  /// Disks the reserve is striped across; each failure removes one disk's
  /// share of streams until its repair completes.
  int disks = 4;
  /// Exponential MTBF/MTTR of each disk, in minutes.
  DiskFaultProfile profile;
};

/// Server-wide simulation knobs.
struct ServerOptions {
  PlaybackRates rates;
  /// Streams in the shared dynamic reserve (beyond the per-movie batching
  /// streams, which are implicit in each layout).
  int64_t dynamic_stream_reserve = 100;
  /// Phase-2 merge policy applied to every movie.
  PiggybackOptions piggyback;
  double warmup_minutes = 1000.0;
  double measurement_minutes = 20000.0;
  uint64_t seed = 42;
  bool stationary_start = true;
  /// Disk failures feeding time-varying reserve capacity.
  ServerFaultOptions faults;
  /// Degradation ladder (queueing, shedding, forced reclaim). With
  /// faults.enabled but degradation.enabled == false the reserve still
  /// shrinks and recovers, but requests keep the seed's hard-refusal
  /// semantics.
  DegradationPolicy degradation;
  /// Runtime invariant auditing (sim/audit.h). When enabled, a violated
  /// conservation law turns the run into an error Status carrying an
  /// event-trace tail — it never aborts mid-run.
  AuditOptions audit;
  /// Observability wiring (obs/observability.h): structured event tracing
  /// (admissions, VCR phases, faults, ladder transitions, ... stamped with
  /// each movie's index) and cadenced metrics sampling. Telemetry-only —
  /// cannot change a report byte.
  ObsOptions obs;
  /// Dynamic buffer-reallocation control plane (ctrl/controller.h):
  /// per-movie rate estimation, drift-triggered re-planning, staged
  /// migration, and selective admission shedding. Under zero drift an
  /// enabled controller never acts, and the report stays byte-identical to
  /// a controller-off run.
  ControllerOptions controller;
  /// Forces the event kernel onto its scalar (non-batched) dispatch loop.
  /// Reports are byte-identical either way — the differential test suite
  /// pins that; this switch exists for those tests and for bisecting.
  bool scalar_event_dispatch = false;
};

/// Resilience accounting for a run with faults and/or degradation enabled.
struct ResilienceReport {
  int64_t disk_failures = 0;  ///< failure events executed before the horizon
  int64_t disk_repairs = 0;
  int64_t min_reserve_capacity = 0;  ///< lowest capacity seen
  int64_t max_oversubscription = 0;  ///< peak of in_use - capacity
  DegradationLevel final_level = DegradationLevel::kNormal;
  /// Time integrated at each ladder rung over the whole run (sums to the
  /// horizon).
  double time_in_level[kNumDegradationLevels] = {0, 0, 0, 0, 0};
  int64_t total_transitions = 0;
  /// First recorded transitions (capped; total_transitions is exact).
  std::vector<DegradationTransition> transitions;

  // Queued-VCR outcomes (measurement window): queued = grants +
  // expirations + pending_at_horizon; per-movie blocked_vcr equals
  // denied + expirations.
  int64_t vcr_queued = 0;
  int64_t vcr_queue_grants = 0;
  int64_t vcr_queue_expirations = 0;
  int64_t vcr_queue_pending = 0;  ///< still waiting when the run ended
  int64_t vcr_denied = 0;
  double mean_queued_wait_minutes = 0.0;
  double p50_queued_wait_minutes = 0.0;
  double p90_queued_wait_minutes = 0.0;
  double p99_queued_wait_minutes = 0.0;

  int64_t forced_reclaims = 0;

  /// Completed excursions out of kNormal: count and mean duration — the
  /// observed mean time-to-recover after a capacity loss.
  int64_t recovery_episodes = 0;
  double mean_recovery_minutes = 0.0;
  double max_recovery_minutes = 0.0;
};

/// Aggregated server outcome.
struct ServerReport {
  struct PerMovie {
    std::string name;
    SimulationReport report;
  };
  std::vector<PerMovie> movies;

  int64_t reserve_capacity = 0;
  double mean_reserve_in_use = 0.0;
  int64_t peak_reserve_in_use = 0;
  /// Refused acquisitions vs total attempts (refused + granted).
  int64_t refused_acquisitions = 0;
  int64_t granted_acquisitions = 0;
  /// Fraction of dedicated-stream requests the reserve could not satisfy
  /// immediately.
  double refusal_probability = 0.0;
  int64_t total_blocked_vcr = 0;
  int64_t total_stalls = 0;
  int64_t total_resumes = 0;
  int64_t total_queued_vcr = 0;
  int64_t total_forced_reclaims = 0;

  /// Populated when options.faults.enabled || options.degradation.enabled.
  bool resilience_enabled = false;
  ResilienceReport resilience;

  /// Populated when options.controller.enabled. ToString prints the block
  /// only when the controller actually acted (ControllerReport::Active()),
  /// preserving zero-drift byte-identity with controller-off runs.
  bool controller_enabled = false;
  ControllerReport controller;

  /// Full-precision deterministic serialization of every field (including
  /// the transition log); two runs with identical options must produce
  /// byte-identical strings.
  std::string ToString() const;
};

/// \brief Validates a server configuration before any simulation state is
/// built: non-empty movie list; every layout finite with l > 0, n >= 1,
/// 0 <= B <= l, w >= 0; finite positive arrival rates; non-negative
/// reserve; sane horizon, degradation, fault, and audit knobs. Each
/// rejection is a one-line InvalidArgument naming the offending movie or
/// field. RunServerSimulation calls this itself; callers assembling
/// configurations from user input (vodctl) can call it earlier for
/// diagnostics before committing to a run.
Status ValidateServerInputs(const std::vector<ServerMovieSpec>& movies,
                            const ServerOptions& options);

/// \brief Runs all movies to the common horizon. Deterministic in
/// options.seed; movie i derives an independent RNG sub-stream, and the
/// fault schedule uses its own sub-stream, so enabling faults with an
/// infinite MTBF reproduces the fault-free run exactly.
Result<ServerReport> RunServerSimulation(
    const std::vector<ServerMovieSpec>& movies, const ServerOptions& options);

}  // namespace vod

#endif  // VOD_SIM_SERVER_H_
