// Multi-movie server simulation with a shared dynamic stream reserve.
//
// Several pre-allocated movies run in one event space; their VCR phase-1
// and post-miss streams all come from one finite reserve. When it runs dry,
// FF/RW requests are refused and missing resumes stall — quantifying the
// paper's warning that "without careful resource management, the benefits
// of these data sharing techniques can be lost": low hit probabilities pin
// streams until the end of the movie, exhaust the reserve, and degrade
// interactivity for everyone.

#ifndef VOD_SIM_SERVER_H_
#define VOD_SIM_SERVER_H_

#include <string>
#include <vector>

#include "sim/movie_world.h"
#include "sim/simulator.h"

namespace vod {

/// One movie hosted by the server.
struct ServerMovieSpec {
  std::string name;
  PartitionLayout layout;
  double arrival_rate_per_minute = 0.5;
  VcrBehavior behavior;
};

/// Server-wide simulation knobs.
struct ServerOptions {
  PlaybackRates rates;
  /// Streams in the shared dynamic reserve (beyond the per-movie batching
  /// streams, which are implicit in each layout).
  int64_t dynamic_stream_reserve = 100;
  /// Phase-2 merge policy applied to every movie.
  PiggybackOptions piggyback;
  double warmup_minutes = 1000.0;
  double measurement_minutes = 20000.0;
  uint64_t seed = 42;
  bool stationary_start = true;
};

/// Aggregated server outcome.
struct ServerReport {
  struct PerMovie {
    std::string name;
    SimulationReport report;
  };
  std::vector<PerMovie> movies;

  int64_t reserve_capacity = 0;
  double mean_reserve_in_use = 0.0;
  int64_t peak_reserve_in_use = 0;
  /// Refused acquisitions vs total attempts (refused + granted).
  int64_t refused_acquisitions = 0;
  int64_t granted_acquisitions = 0;
  /// Fraction of dedicated-stream requests the reserve could not satisfy.
  double refusal_probability = 0.0;
  int64_t total_blocked_vcr = 0;
  int64_t total_stalls = 0;
  int64_t total_resumes = 0;
};

/// \brief Runs all movies to the common horizon. Deterministic in
/// options.seed; movie i derives an independent RNG sub-stream.
Result<ServerReport> RunServerSimulation(
    const std::vector<ServerMovieSpec>& movies, const ServerOptions& options);

}  // namespace vod

#endif  // VOD_SIM_SERVER_H_
