// Sources of dedicated I/O streams for VCR phase-1 and post-miss playback.
//
// The single-movie simulator measures demand against an unlimited supply;
// the multi-movie server simulator shares a finite reserve, so VCR requests
// can be *refused* when it runs dry — the resource-exhaustion phenomenon
// the paper's pre-allocation is designed to avoid.

#ifndef VOD_SIM_STREAM_SUPPLIER_H_
#define VOD_SIM_STREAM_SUPPLIER_H_

#include <cstdint>
#include <functional>

#include "stats/time_weighted.h"

namespace vod {

/// \brief Allocator of dedicated streams, shared by one or more movies.
class StreamSupplier {
 public:
  virtual ~StreamSupplier() = default;

  /// Takes one stream at time t; false means the request is refused (the
  /// caller decides whether that blocks a VCR operation or stalls a
  /// resume).
  virtual bool TryAcquire(double t) = 0;

  /// Returns one stream at time t.
  virtual void Release(double t) = 0;

  /// Streams currently handed out.
  virtual int64_t in_use() const = 0;

  /// Asks to *wait* for a stream after TryAcquire failed. Suppliers that
  /// support queueing (sim/degradation.h) take ownership of the request and
  /// later invoke `on_decision(t, granted)` exactly once: granted=true means
  /// a stream was acquired on the caller's behalf (the caller now owns it),
  /// granted=false means the wait expired. The default supplier has no
  /// queue: returns false without invoking the callback, preserving the
  /// seed's hard-refusal semantics.
  virtual bool TryQueueAcquire(double t,
                               std::function<void(double, bool)> on_decision) {
    (void)t;
    (void)on_decision;
    return false;
  }
};

/// \brief Infinite supply that records demand statistics.
///
/// Used when measuring how many dedicated streams a workload *would* pin
/// (the paper's phase-1/phase-2 load), with no admission effects.
class UnlimitedStreamSupplier final : public StreamSupplier {
 public:
  UnlimitedStreamSupplier() { usage_.Reset(0.0, 0.0); }

  bool TryAcquire(double t) override {
    ++in_use_;
    if (in_use_ > peak_) peak_ = in_use_;
    usage_.Set(t, static_cast<double>(in_use_));
    return true;
  }

  void Release(double t) override {
    --in_use_;
    usage_.Set(t, static_cast<double>(in_use_));
  }

  int64_t in_use() const override { return in_use_; }
  int64_t peak_in_use() const { return peak_; }
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }

 private:
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  TimeWeightedValue usage_;
};

/// \brief Finite reserve; refuses requests beyond capacity.
class FiniteStreamSupplier final : public StreamSupplier {
 public:
  explicit FiniteStreamSupplier(int64_t capacity) : capacity_(capacity) {
    usage_.Reset(0.0, 0.0);
  }

  bool TryAcquire(double t) override {
    if (in_use_ >= capacity_) {
      ++refused_;
      return false;
    }
    ++in_use_;
    ++acquired_;
    if (in_use_ > peak_) peak_ = in_use_;
    usage_.Set(t, static_cast<double>(in_use_));
    return true;
  }

  void Release(double t) override {
    --in_use_;
    usage_.Set(t, static_cast<double>(in_use_));
  }

  int64_t in_use() const override { return in_use_; }
  int64_t capacity() const { return capacity_; }
  int64_t refused() const { return refused_; }
  int64_t acquired() const { return acquired_; }
  int64_t peak_in_use() const { return peak_; }
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }

 private:
  int64_t capacity_;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t refused_ = 0;
  int64_t acquired_ = 0;
  TimeWeightedValue usage_;
};

}  // namespace vod

#endif  // VOD_SIM_STREAM_SUPPLIER_H_
