#include "sim/server.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/run_loop.h"
#include "sim/stream_supplier.h"

namespace vod {

namespace {
// Stream-class tags for deriving independent child RNGs from the base seed.
// The fault schedule gets its own tag so enabling fault injection leaves
// every movie world's random streams untouched.
constexpr uint64_t kMovieWorldStream = 3;
constexpr uint64_t kFaultStream = 4;

// The controller's window onto the running server: layout commits go
// through MovieWorld::ApplyLayout (re-anchor, never preempt), and overload
// pressure is derived from the degradation ladder rung. Without a ladder
// (manager == nullptr) the server never reports pressure, so the traffic
// policy admits everything.
class WorldControllerHost final : public ControllerHost {
 public:
  WorldControllerHost(std::vector<std::unique_ptr<MovieWorld>>* worlds,
                      const ReserveManager* manager)
      : worlds_(worlds), manager_(manager) {}

  void CommitLayout(int32_t movie, double t,
                    const PartitionLayout& layout) override {
    (*worlds_)[static_cast<size_t>(movie)]->ApplyLayout(t, layout);
  }
  const PartitionLayout& LiveLayout(int32_t movie) const override {
    return (*worlds_)[static_cast<size_t>(movie)]->layout();
  }
  bool ReclaimBlocked() const override {
    return manager_ != nullptr &&
           manager_->level() >= DegradationLevel::kReclaim;
  }
  int PressureLevel() const override {
    if (manager_ == nullptr) return 0;
    if (manager_->level() >= DegradationLevel::kReclaim) return 2;
    if (manager_->level() >= DegradationLevel::kShedVcr) return 1;
    return 0;
  }

 private:
  std::vector<std::unique_ptr<MovieWorld>>* worlds_;
  const ReserveManager* manager_;
};

/// Everything the per-event observer touches, gathered into one POD so the
/// specialized instantiations below share a single context pointer
/// (DESIGN.md §15). Mutable emission state (the transition cursor) lives
/// here too, not in a capturing closure.
struct ServerObserverCtx {
  InvariantAuditor* auditor = nullptr;
  AuditSnapshot* audit_snapshot = nullptr;
  StreamSupplier* supplier = nullptr;
  ReserveManager* manager = nullptr;
  FiniteStreamSupplier* finite = nullptr;
  std::vector<std::unique_ptr<MovieWorld>>* worlds = nullptr;
  const std::vector<ServerMovieSpec>* movies = nullptr;
  Controller* controller = nullptr;
  EventLog* event_log = nullptr;
  size_t emitted_transitions = 0;
  DegradationLevel last_emitted_level = DegradationLevel::kNormal;
  MetricsRegistry* registry = nullptr;
  Gauge* g_in_use = nullptr;
  Gauge* g_capacity = nullptr;
  Gauge* g_level = nullptr;
  Gauge* g_ctrl_epoch = nullptr;
  Gauge* g_ctrl_plan_age = nullptr;
  Gauge* g_ctrl_migrations = nullptr;
  Gauge* g_ctrl_rollbacks = nullptr;
  Gauge* g_ctrl_alarms = nullptr;
  Gauge* g_ctrl_sheds = nullptr;
};

/// One observer instantiation per RunLoopVariant: the audit and telemetry
/// code is baked in or out at compile time; the kPlain variant installs no
/// observer, so the kernel runs its unobserved loop.
template <bool kAudit, bool kTraced>
void ServerObserveTick(void* raw, double t) {
  auto* ctx = static_cast<ServerObserverCtx*>(raw);
  if constexpr (kAudit) {
    InvariantAuditor* auditor = ctx->auditor;
    auditor->RecordEvent(t);
    if (auditor->AuditDue()) {
      AuditSnapshot& snapshot = *ctx->audit_snapshot;
      snapshot.time = t;
      snapshot.supplier_in_use = ctx->supplier->in_use();
      if (ctx->manager != nullptr) {
        snapshot.supplier_capacity = ctx->manager->capacity();
        snapshot.nominal_capacity = ctx->manager->nominal_capacity();
        snapshot.degradation_level = static_cast<int>(ctx->manager->level());
        snapshot.transitions = &ctx->manager->transitions();
        snapshot.total_transitions = ctx->manager->total_transitions();
      } else {
        snapshot.supplier_capacity = ctx->finite->capacity();
        snapshot.nominal_capacity = ctx->finite->capacity();
      }
      int64_t holds = 0;
      for (const auto& world : *ctx->worlds) {
        holds += world->dedicated_streams_held();
      }
      snapshot.sum_world_holds = holds;
      if (ctx->controller != nullptr) {
        // Migrations move partition geometry at runtime: refresh the
        // buffer view from the live layouts and fill the resource
        // ledger for the conservation laws.
        auto& cs = snapshot.controller;
        cs.enabled = true;
        cs.sum_live_streams = 0;
        cs.sum_live_buffer = 0.0;
        for (size_t i = 0; i < ctx->worlds->size(); ++i) {
          const PartitionLayout& live = (*ctx->worlds)[i]->layout();
          cs.sum_live_streams += live.streams();
          cs.sum_live_buffer += live.buffer_minutes();
          snapshot.movies[i] =
              BuildMovieAuditBuffers((*ctx->movies)[i].name, live);
        }
        const MigrationEngine& engine = ctx->controller->engine();
        cs.stream_budget = engine.stream_budget();
        cs.buffer_budget = engine.buffer_budget();
        cs.free_streams = engine.free_streams();
        cs.free_buffer = engine.free_buffer();
        cs.inflight_streams = engine.inflight_streams();
        cs.inflight_buffer = engine.inflight_buffer();
        cs.epoch = ctx->controller->epoch();
        cs.steps_applied = engine.steps_applied();
        cs.steps_planned = engine.steps_planned();
      }
      auditor->Audit(snapshot);
    }
  }
  if constexpr (kTraced) {
    EventLog* event_log = ctx->event_log;
    ReserveManager* manager = ctx->manager;
    if (manager != nullptr &&
        ObsEnabled(event_log, EventCategory::kDegradation)) {
      const auto& trs = manager->transitions();
      if (ctx->emitted_transitions < trs.size()) {
        while (ctx->emitted_transitions < trs.size()) {
          const DegradationTransition& tr = trs[ctx->emitted_transitions++];
          event_log->Emit(tr.time, EventCategory::kDegradation,
                          static_cast<uint8_t>(tr.to), /*movie=*/-1,
                          /*id=*/-1, static_cast<double>(tr.capacity),
                          static_cast<uint8_t>(tr.from));
          ctx->last_emitted_level = tr.to;
        }
      } else if (manager->total_transitions() >
                     static_cast<int64_t>(trs.size()) &&
                 manager->level() != ctx->last_emitted_level) {
        event_log->Emit(t, EventCategory::kDegradation,
                        static_cast<uint8_t>(manager->level()), /*movie=*/-1,
                        /*id=*/-1, static_cast<double>(manager->capacity()),
                        static_cast<uint8_t>(ctx->last_emitted_level));
        ctx->last_emitted_level = manager->level();
      }
    }
    MetricsRegistry* registry = ctx->registry;
    if (registry != nullptr) {
      ctx->g_in_use->Set(static_cast<double>(ctx->supplier->in_use()));
      if (manager != nullptr) {
        ctx->g_capacity->Set(static_cast<double>(manager->capacity()));
        ctx->g_level->Set(static_cast<double>(manager->level()));
      } else {
        ctx->g_capacity->Set(static_cast<double>(ctx->finite->capacity()));
      }
      if (ctx->controller != nullptr) {
        const ControllerReport cr = ctx->controller->Report();
        ctx->g_ctrl_epoch->Set(static_cast<double>(cr.final_epoch));
        ctx->g_ctrl_plan_age->Set(
            cr.last_commit_time >= 0.0 ? t - cr.last_commit_time : t);
        ctx->g_ctrl_migrations->Set(
            static_cast<double>(cr.migrations_started));
        ctx->g_ctrl_rollbacks->Set(static_cast<double>(cr.rollbacks));
        ctx->g_ctrl_alarms->Set(static_cast<double>(cr.drift_alarms));
        ctx->g_ctrl_sheds->Set(static_cast<double>(cr.admission_sheds));
      }
      registry->MaybeSample(t);
    }
  }
}

void InstallServerObserver(EventQueue& queue, RunLoopVariant variant,
                           ServerObserverCtx* ctx) {
  switch (variant) {
    case RunLoopVariant::kPlain:
      break;  // no observer: the kernel's unobserved loop runs
    case RunLoopVariant::kAudited:
      queue.set_observer(&ServerObserveTick<true, false>, ctx);
      break;
    case RunLoopVariant::kTraced:
      queue.set_observer(&ServerObserveTick<false, true>, ctx);
      break;
    case RunLoopVariant::kAuditedTraced:
      queue.set_observer(&ServerObserveTick<true, true>, ctx);
      break;
  }
}
}  // namespace

std::string ServerReport::ToString() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "ServerReport{reserve=" << reserve_capacity
     << " mean_in_use=" << mean_reserve_in_use
     << " peak_in_use=" << peak_reserve_in_use
     << " refused=" << refused_acquisitions
     << " granted=" << granted_acquisitions
     << " p_refuse=" << refusal_probability
     << " blocked_vcr=" << total_blocked_vcr << " stalls=" << total_stalls
     << " resumes=" << total_resumes << " queued_vcr=" << total_queued_vcr
     << " reclaims=" << total_forced_reclaims << "\n";
  for (const PerMovie& m : movies) {
    const SimulationReport& r = m.report;
    os << "  movie " << m.name << ": p_hit=" << r.hit_probability
       << " resumes=" << r.total_resumes << " (within=" << r.hits_within
       << " jump=" << r.hits_jump << " end=" << r.end_releases
       << " miss=" << r.misses << ")"
       << " admissions=" << r.admissions << " type2=" << r.type2_admissions
       << " completions=" << r.completions
       << " mean_wait=" << r.mean_wait_minutes
       << " max_wait=" << r.max_wait_minutes
       << " mean_dedicated=" << r.mean_dedicated_streams
       << " blocked=" << r.blocked_vcr_requests
       << " stalls=" << r.stalled_resumes
       << " queued=" << r.queued_vcr_requests
       << " reclaims=" << r.forced_reclaims
       << " merges=" << r.piggyback_merges << "\n";
  }
  if (resilience_enabled) {
    const ResilienceReport& rz = resilience;
    os << "  resilience: failures=" << rz.disk_failures
       << " repairs=" << rz.disk_repairs
       << " min_capacity=" << rz.min_reserve_capacity
       << " max_oversub=" << rz.max_oversubscription
       << " final_level=" << DegradationLevelName(rz.final_level) << "\n";
    os << "  time_in_level:";
    for (int i = 0; i < kNumDegradationLevels; ++i) {
      os << " " << DegradationLevelName(static_cast<DegradationLevel>(i))
         << "=" << rz.time_in_level[i];
    }
    os << "\n";
    os << "  queue: queued=" << rz.vcr_queued
       << " grants=" << rz.vcr_queue_grants
       << " expired=" << rz.vcr_queue_expirations
       << " pending=" << rz.vcr_queue_pending << " denied=" << rz.vcr_denied
       << " mean_wait=" << rz.mean_queued_wait_minutes
       << " p50=" << rz.p50_queued_wait_minutes
       << " p90=" << rz.p90_queued_wait_minutes
       << " p99=" << rz.p99_queued_wait_minutes
       << " reclaims=" << rz.forced_reclaims << "\n";
    os << "  recovery: episodes=" << rz.recovery_episodes
       << " mean=" << rz.mean_recovery_minutes
       << " max=" << rz.max_recovery_minutes
       << " transitions=" << rz.total_transitions << "\n";
    for (const DegradationTransition& tr : rz.transitions) {
      os << "    t=" << tr.time << " " << DegradationLevelName(tr.from)
         << "->" << DegradationLevelName(tr.to)
         << " capacity=" << tr.capacity << "\n";
    }
  }
  if (controller_enabled && controller.Active()) {
    os << "  controller: " << controller.ToString() << "\n";
  }
  os << "}";
  return os.str();
}

Status ValidateServerInputs(const std::vector<ServerMovieSpec>& movies,
                            const ServerOptions& options) {
  if (movies.empty()) {
    return Status::InvalidArgument("server needs at least one movie");
  }
  for (const ServerMovieSpec& spec : movies) {
    const std::string who =
        "movie '" + (spec.name.empty() ? std::string("<unnamed>") : spec.name) +
        "'";
    const double l = spec.layout.movie_length();
    const double b = spec.layout.buffer_minutes();
    const double w = spec.layout.max_wait();
    if (!std::isfinite(l) || l <= 0.0) {
      return Status::InvalidArgument(who + ": movie length l must be a " +
                                     "finite positive number of minutes, got " +
                                     std::to_string(l));
    }
    if (spec.layout.streams() < 1) {
      return Status::InvalidArgument(
          who + ": needs at least one stream, got " +
          std::to_string(spec.layout.streams()));
    }
    if (!std::isfinite(b) || b < 0.0 || b > l) {
      return Status::InvalidArgument(who + ": buffer B must be finite in " +
                                     "[0, l], got " + std::to_string(b));
    }
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(who + ": implied max wait w = (l-B)/n " +
                                     "must be finite and non-negative, got " +
                                     std::to_string(w));
    }
    if (!std::isfinite(spec.arrival_rate_per_minute) ||
        !(spec.arrival_rate_per_minute > 0.0)) {
      return Status::InvalidArgument(
          who + ": needs a finite positive arrival rate, got " +
          std::to_string(spec.arrival_rate_per_minute));
    }
  }
  if (options.dynamic_stream_reserve < 0) {
    return Status::InvalidArgument("reserve must be non-negative");
  }
  if (!std::isfinite(options.warmup_minutes) ||
      !std::isfinite(options.measurement_minutes) ||
      options.warmup_minutes < 0.0 || !(options.measurement_minutes > 0.0)) {
    return Status::InvalidArgument(
        "warmup must be >= 0 and measurement span positive (and both finite)");
  }
  VOD_RETURN_IF_ERROR(options.degradation.Validate());
  if (options.faults.enabled) {
    if (options.faults.disks < 1) {
      return Status::InvalidArgument("fault injection needs >= 1 disk");
    }
    VOD_RETURN_IF_ERROR(options.faults.profile.Validate());
  }
  VOD_RETURN_IF_ERROR(options.audit.Validate());
  if (options.controller.enabled) {
    VOD_RETURN_IF_ERROR(options.controller.Validate());
  }
  return Status::OK();
}

Result<ServerReport> RunServerSimulation(
    const std::vector<ServerMovieSpec>& movies, const ServerOptions& options) {
  VOD_RETURN_IF_ERROR(ValidateServerInputs(movies, options));

  EventQueue queue;
  // Pre-size the kernel for the steady-state population across all movies
  // (Little's law per movie), plus slack for arrival clocks and the fault
  // schedule.
  double est_population = 64.0;
  for (const ServerMovieSpec& spec : movies) {
    est_population += spec.arrival_rate_per_minute * spec.layout.movie_length();
  }
  queue.Reserve(
      static_cast<size_t>(std::clamp(est_population, 64.0, 1.0e6)));
  const Rng base_rng(options.seed);

  // The seed's hard-refusal supplier stays in place unless faults or the
  // degradation ladder are requested, preserving legacy runs bit-for-bit.
  const bool manager_mode =
      options.faults.enabled || options.degradation.enabled;
  std::unique_ptr<FiniteStreamSupplier> finite;
  std::unique_ptr<ReserveManager> manager;
  StreamSupplier* supplier = nullptr;
  if (manager_mode) {
    manager = std::make_unique<ReserveManager>(
        options.dynamic_stream_reserve, options.degradation, &queue,
        options.warmup_minutes);
    supplier = manager.get();
  } else {
    finite =
        std::make_unique<FiniteStreamSupplier>(options.dynamic_stream_reserve);
    supplier = finite.get();
  }

  std::vector<std::unique_ptr<SimulationMetrics>> metrics;
  std::vector<std::unique_ptr<MovieWorld>> worlds;
  metrics.reserve(movies.size());
  worlds.reserve(movies.size());

  // The control plane is created before the worlds so it can be wired in
  // as their admission gate; its host reads `worlds` only after they exist.
  std::unique_ptr<WorldControllerHost> ctrl_host;
  std::unique_ptr<Controller> controller;
  if (options.controller.enabled) {
    ctrl_host = std::make_unique<WorldControllerHost>(&worlds, manager.get());
    std::vector<ControllerMovie> ctrl_movies;
    ctrl_movies.reserve(movies.size());
    for (const ServerMovieSpec& spec : movies) {
      ControllerMovie cm;
      cm.movie_length = spec.layout.movie_length();
      cm.baseline_rate = spec.arrival_rate_per_minute;
      ctrl_movies.push_back(cm);
    }
    controller = std::make_unique<Controller>(options.controller,
                                              std::move(ctrl_movies),
                                              ctrl_host.get(),
                                              options.obs.event_log);
  }

  for (size_t i = 0; i < movies.size(); ++i) {
    const ServerMovieSpec& spec = movies[i];
    MovieWorldConfig config;
    config.mean_interarrival_minutes = 1.0 / spec.arrival_rate_per_minute;
    config.arrivals = spec.arrivals;
    config.behavior = spec.behavior;
    config.stationary_start = options.stationary_start;
    config.piggyback = options.piggyback;
    config.event_log = options.obs.event_log;
    config.movie_id = static_cast<int32_t>(i);
    config.gate = controller.get();
    VOD_RETURN_IF_ERROR(ValidateMovieWorldInputs(options.rates, config));

    metrics.push_back(
        std::make_unique<SimulationMetrics>(options.warmup_minutes));
    worlds.push_back(std::make_unique<MovieWorld>(
        spec.layout, options.rates, config,
        base_rng.MakeChild(kMovieWorldStream, i), &queue, supplier,
        metrics.back().get()));
  }
  if (controller != nullptr) controller->Start(0.0);

  // Forced reclaim sweeps the worlds round-robin, one stream at a time, so
  // no single movie absorbs the whole loss.
  if (manager != nullptr) {
    manager->set_reclaim_hook([&worlds](double t, int64_t need) {
      int64_t got = 0;
      bool progress = true;
      while (got < need && progress) {
        progress = false;
        for (auto& world : worlds) {
          if (got >= need) break;
          if (world->ReclaimDedicated(t, 1) > 0) {
            ++got;
            progress = true;
          }
        }
      }
      return got;
    });
  }

  // The auditor re-derives the conservation laws from live state at its
  // cadence; the movie partition geometry is static, so it is expanded once.
  std::unique_ptr<InvariantAuditor> auditor;
  AuditSnapshot audit_snapshot;
  if (options.audit.enabled) {
    auditor = std::make_unique<InvariantAuditor>(options.audit);
    for (const ServerMovieSpec& spec : movies) {
      audit_snapshot.movies.push_back(
          BuildMovieAuditBuffers(spec.name, spec.layout));
    }
  }

  // Live instruments sampled on the simulation clock (telemetry-only).
  MetricsRegistry* registry = options.obs.metrics;
  Gauge* g_in_use = nullptr;
  Gauge* g_capacity = nullptr;
  Gauge* g_level = nullptr;
  if (registry != nullptr) {
    if (options.obs.metrics_sample_minutes > 0.0) {
      registry->set_sample_every(options.obs.metrics_sample_minutes);
    }
    g_in_use = registry->AddGauge("server_reserve_in_use",
                                  "dynamic reserve streams handed out");
    g_capacity = registry->AddGauge(
        "server_reserve_capacity", "current reserve capacity under faults");
    g_level = registry->AddGauge("server_degradation_level",
                                 "degradation ladder rung (0 = normal)");
  }
  Gauge* g_ctrl_epoch = nullptr;
  Gauge* g_ctrl_plan_age = nullptr;
  Gauge* g_ctrl_migrations = nullptr;
  Gauge* g_ctrl_rollbacks = nullptr;
  Gauge* g_ctrl_alarms = nullptr;
  Gauge* g_ctrl_sheds = nullptr;
  if (registry != nullptr && controller != nullptr) {
    g_ctrl_epoch = registry->AddGauge("controller_epoch",
                                      "committed buffer-plan epoch");
    g_ctrl_plan_age = registry->AddGauge(
        "controller_plan_age", "minutes since the last committed re-plan");
    g_ctrl_migrations = registry->AddGauge(
        "controller_migrations", "migrations started over the run");
    g_ctrl_rollbacks = registry->AddGauge("controller_rollbacks",
                                          "migrations rolled back");
    g_ctrl_alarms = registry->AddGauge("controller_drift_alarms",
                                       "Page-Hinkley drift alarms latched");
    g_ctrl_sheds = registry->AddGauge(
        "controller_sheds", "arrivals shed by the admission policy");
  }

  // Ladder transitions surface on the event bus as they are recorded. Once
  // the stored transition log caps, fall back to diffing the live rung.
  EventLog* event_log = options.obs.event_log;

  // With audit + tracing both on, the auditor's tail ring joins the bus so
  // violation diagnostics carry admission/fault/ladder context.
  ScopedEventSink lend_ring(
      event_log, auditor != nullptr ? auditor->trace_ring() : nullptr);

  // Select the observer instantiation once per run (DESIGN.md §15): the
  // audited/traced axes are baked in at compile time instead of being
  // re-branched on every event. kPlain installs no observer at all.
  ServerObserverCtx observer_ctx;
  observer_ctx.auditor = auditor.get();
  observer_ctx.audit_snapshot = &audit_snapshot;
  observer_ctx.supplier = supplier;
  observer_ctx.manager = manager.get();
  observer_ctx.finite = finite.get();
  observer_ctx.worlds = &worlds;
  observer_ctx.movies = &movies;
  observer_ctx.controller = controller.get();
  observer_ctx.event_log = event_log;
  observer_ctx.registry = registry;
  observer_ctx.g_in_use = g_in_use;
  observer_ctx.g_capacity = g_capacity;
  observer_ctx.g_level = g_level;
  observer_ctx.g_ctrl_epoch = g_ctrl_epoch;
  observer_ctx.g_ctrl_plan_age = g_ctrl_plan_age;
  observer_ctx.g_ctrl_migrations = g_ctrl_migrations;
  observer_ctx.g_ctrl_rollbacks = g_ctrl_rollbacks;
  observer_ctx.g_ctrl_alarms = g_ctrl_alarms;
  observer_ctx.g_ctrl_sheds = g_ctrl_sheds;
  InstallServerObserver(
      queue,
      ComposeRunLoopVariant(auditor != nullptr,
                            registry != nullptr || event_log != nullptr),
      &observer_ctx);
  queue.set_scalar_dispatch(options.scalar_event_dispatch);

  const double horizon = options.warmup_minutes + options.measurement_minutes;

  // Pre-schedule the disk failure/repair trajectory. Scheduling before the
  // worlds start keeps the (time, insertion-seq) order deterministic.
  int64_t disk_failures = 0;
  int64_t disk_repairs = 0;
  if (options.faults.enabled) {
    FaultInjector injector(
        FaultInjector::SplitCapacity(options.dynamic_stream_reserve,
                                     options.faults.disks),
        options.faults.profile, base_rng.MakeChild(kFaultStream, 0));
    ReserveManager* mgr = manager.get();
    Controller* ctrl = controller.get();
    for (const FaultEvent& ev : injector.Schedule(horizon)) {
      queue.Schedule(ev.time,
                     [mgr, ctrl, ev, &disk_failures, &disk_repairs,
                      event_log] {
                       if (ev.failure) {
                         ++disk_failures;
                       } else {
                         ++disk_repairs;
                       }
                       if (ObsEnabled(event_log, EventCategory::kFault)) {
                         event_log->Emit(
                             ev.time, EventCategory::kFault,
                             /*subtype=*/ev.failure ? 0 : 1, /*movie=*/-1,
                             /*id=*/ev.disk,
                             static_cast<double>(ev.capacity_after));
                       }
                       mgr->SetCapacity(ev.time, ev.capacity_after);
                       // A capacity collapse mid-migration aborts it; the
                       // controller checks the ladder after the change.
                       if (ctrl != nullptr) ctrl->OnCapacityChange(ev.time);
                     });
    }
  }

  // The controller's decision clock: a self-rescheduling wake-up. OnWakeup
  // returns the next time it needs (poll cadence, a migration backoff, or
  // a drain landing — always > t), so the chain never busy-loops.
  std::function<void(double)> controller_pump;
  if (controller != nullptr) {
    Controller* ctrl = controller.get();
    controller_pump = [&queue, &controller_pump, ctrl, horizon](double t) {
      const double next = ctrl->OnWakeup(t);
      if (next < horizon) {
        queue.Schedule(next, [&controller_pump, next] {
          controller_pump(next);
        });
      }
    };
    const double first = options.controller.poll_interval_minutes;
    if (first < horizon) {
      queue.Schedule(first,
                     [&controller_pump, first] { controller_pump(first); });
    }
  }

  for (auto& world : worlds) world->Start();
  queue.RunUntil(horizon);
  if (manager != nullptr) manager->Finalize(horizon);
  if (registry != nullptr) registry->SampleAt(horizon);
  if (auditor != nullptr && auditor->total_violations() > 0) {
    return auditor->status();
  }

  ServerReport report;
  if (manager != nullptr) {
    report.reserve_capacity = manager->nominal_capacity();
    report.mean_reserve_in_use = manager->MeanInUse(horizon);
    report.peak_reserve_in_use = manager->peak_in_use();
    report.refused_acquisitions = manager->refused();
    report.granted_acquisitions = manager->acquired();
  } else {
    report.reserve_capacity = finite->capacity();
    report.mean_reserve_in_use = finite->MeanInUse(horizon);
    report.peak_reserve_in_use = finite->peak_in_use();
    report.refused_acquisitions = finite->refused();
    report.granted_acquisitions = finite->acquired();
  }
  const int64_t attempts =
      report.refused_acquisitions + report.granted_acquisitions;
  report.refusal_probability =
      attempts > 0
          ? static_cast<double>(report.refused_acquisitions) / attempts
          : 0.0;
  for (size_t i = 0; i < movies.size(); ++i) {
    ServerReport::PerMovie per_movie;
    per_movie.name = movies[i].name;
    FillReportFromMetrics(*metrics[i], horizon, &per_movie.report);
    per_movie.report.max_wait_minutes = worlds[i]->max_wait_seen();
    per_movie.report.abandonments = worlds[i]->abandonments();
    report.total_blocked_vcr += per_movie.report.blocked_vcr_requests;
    report.total_stalls += per_movie.report.stalled_resumes;
    report.total_resumes += per_movie.report.total_resumes;
    report.total_queued_vcr += per_movie.report.queued_vcr_requests;
    report.total_forced_reclaims += per_movie.report.forced_reclaims;
    report.movies.push_back(std::move(per_movie));
  }

  if (manager != nullptr) {
    report.resilience_enabled = true;
    ResilienceReport& rz = report.resilience;
    rz.disk_failures = disk_failures;
    rz.disk_repairs = disk_repairs;
    rz.min_reserve_capacity = manager->min_capacity_seen();
    rz.max_oversubscription = manager->max_oversubscription();
    rz.final_level = manager->level();
    for (int i = 0; i < kNumDegradationLevels; ++i) {
      rz.time_in_level[i] =
          manager->time_in_level(static_cast<DegradationLevel>(i));
    }
    rz.total_transitions = manager->total_transitions();
    rz.transitions = manager->transitions();
    rz.vcr_queued = manager->vcr_queued();
    rz.vcr_queue_grants = manager->vcr_queue_grants();
    rz.vcr_queue_expirations = manager->vcr_queue_expirations();
    rz.vcr_queue_pending = manager->measured_queue_pending();
    rz.vcr_denied = manager->vcr_denied();
    rz.mean_queued_wait_minutes = manager->queued_wait().mean();
    if (manager->queued_wait_quantiles().count() > 0) {
      rz.p50_queued_wait_minutes = manager->queued_wait_quantiles().p50();
      rz.p90_queued_wait_minutes = manager->queued_wait_quantiles().p90();
      rz.p99_queued_wait_minutes = manager->queued_wait_quantiles().p99();
    }
    rz.forced_reclaims = manager->forced_reclaims();
    rz.recovery_episodes = manager->recovery_times().count();
    rz.mean_recovery_minutes = manager->recovery_times().mean();
    rz.max_recovery_minutes =
        rz.recovery_episodes > 0 ? manager->recovery_times().max() : 0.0;
  }
  if (controller != nullptr) {
    report.controller_enabled = true;
    report.controller = controller->Report();
  }
  return report;
}

}  // namespace vod
