#include "sim/server.h"

#include <memory>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/stream_supplier.h"

namespace vod {

namespace {
constexpr uint64_t kMovieWorldStream = 3;
}  // namespace

Result<ServerReport> RunServerSimulation(
    const std::vector<ServerMovieSpec>& movies, const ServerOptions& options) {
  if (movies.empty()) {
    return Status::InvalidArgument("server needs at least one movie");
  }
  if (options.dynamic_stream_reserve < 0) {
    return Status::InvalidArgument("reserve must be non-negative");
  }
  if (options.warmup_minutes < 0.0 || !(options.measurement_minutes > 0.0)) {
    return Status::InvalidArgument(
        "warmup must be >= 0 and measurement span positive");
  }

  EventQueue queue;
  FiniteStreamSupplier supplier(options.dynamic_stream_reserve);
  const Rng base_rng(options.seed);

  std::vector<std::unique_ptr<SimulationMetrics>> metrics;
  std::vector<std::unique_ptr<MovieWorld>> worlds;
  metrics.reserve(movies.size());
  worlds.reserve(movies.size());
  for (size_t i = 0; i < movies.size(); ++i) {
    const ServerMovieSpec& spec = movies[i];
    if (!(spec.arrival_rate_per_minute > 0.0)) {
      return Status::InvalidArgument("movie '" + spec.name +
                                     "' needs a positive arrival rate");
    }
    MovieWorldConfig config;
    config.mean_interarrival_minutes = 1.0 / spec.arrival_rate_per_minute;
    config.behavior = spec.behavior;
    config.stationary_start = options.stationary_start;
    config.piggyback = options.piggyback;
    VOD_RETURN_IF_ERROR(ValidateMovieWorldInputs(options.rates, config));

    metrics.push_back(
        std::make_unique<SimulationMetrics>(options.warmup_minutes));
    worlds.push_back(std::make_unique<MovieWorld>(
        spec.layout, options.rates, config,
        base_rng.MakeChild(kMovieWorldStream, i), &queue, &supplier,
        metrics.back().get()));
    worlds.back()->Start();
  }

  const double horizon =
      options.warmup_minutes + options.measurement_minutes;
  queue.RunUntil(horizon);

  ServerReport report;
  report.reserve_capacity = supplier.capacity();
  report.mean_reserve_in_use = supplier.MeanInUse(horizon);
  report.peak_reserve_in_use = supplier.peak_in_use();
  report.refused_acquisitions = supplier.refused();
  report.granted_acquisitions = supplier.acquired();
  const int64_t attempts =
      report.refused_acquisitions + report.granted_acquisitions;
  report.refusal_probability =
      attempts > 0
          ? static_cast<double>(report.refused_acquisitions) / attempts
          : 0.0;
  for (size_t i = 0; i < movies.size(); ++i) {
    ServerReport::PerMovie per_movie;
    per_movie.name = movies[i].name;
    FillReportFromMetrics(*metrics[i], horizon, &per_movie.report);
    per_movie.report.max_wait_minutes = worlds[i]->max_wait_seen();
    report.total_blocked_vcr += per_movie.report.blocked_vcr_requests;
    report.total_stalls += per_movie.report.stalled_resumes;
    report.total_resumes += per_movie.report.total_resumes;
    report.movies.push_back(std::move(per_movie));
  }
  return report;
}

}  // namespace vod
