#include "sim/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vod {

namespace {
// Slack for divisible (double) buffer accounting; stream counts are exact.
constexpr double kBufferEps = 1e-9;
}  // namespace

AuditSnapshot::MovieBuffers BuildMovieAuditBuffers(
    const std::string& name, const PartitionLayout& layout) {
  AuditSnapshot::MovieBuffers buffers;
  buffers.name = name;
  buffers.budget = layout.buffer_minutes();
  buffers.partitions.reserve(static_cast<size_t>(layout.streams()));
  for (int k = 0; k < layout.streams(); ++k) {
    buffers.partitions.push_back(
        {k * layout.restart_period(), layout.window()});
  }
  return buffers;
}

Status AuditOptions::Validate() const {
  if (every_events < 1) {
    return Status::InvalidArgument("audit.every_events must be >= 1, got " +
                                   std::to_string(every_events));
  }
  if (trace_tail < 0) {
    return Status::InvalidArgument("audit.trace_tail must be >= 0");
  }
  return Status::OK();
}

InvariantAuditor::InvariantAuditor(const AuditOptions& options)
    : options_(options),
      recent_(static_cast<size_t>(std::max(options.trace_tail, 0))) {}

void InvariantAuditor::RecordEvent(double t) {
  ++events_seen_;
  ++events_since_audit_;
  if (options_.trace_tail <= 0) return;
  TraceEvent event;
  event.time = t;
  event.category = EventCategory::kTick;
  event.seq = static_cast<uint64_t>(events_seen_);
  recent_.Append(event);
}

void InvariantAuditor::AddViolation(double t, const char* invariant,
                                    std::string detail) {
  ++total_violations_;
  if (static_cast<int64_t>(violations_.size()) < kMaxRecorded) {
    AuditViolation v;
    v.time = t;
    v.event_index = static_cast<uint64_t>(events_seen_);
    v.invariant = invariant;
    v.detail = std::move(detail);
    violations_.push_back(std::move(v));
  }
}

std::string InvariantAuditor::TraceTail() const {
  if (recent_.empty()) return "(no event trace)";
  std::ostringstream os;
  os << "last " << recent_.size() << " events:";
  for (const TraceEvent& event : recent_.Snapshot()) {
    os << " #" << event.seq << "@t=" << event.time;
    // Rich records (the ring doubles as an EventLog sink when tracing is on)
    // carry their category so the diagnostic shows *what* happened, not just
    // when.
    if (event.category != EventCategory::kTick) {
      os << '[' << EventCategoryName(event.category) << ']';
    }
  }
  return os.str();
}

void InvariantAuditor::Audit(const AuditSnapshot& s) {
  events_since_audit_ = 0;
  ++audits_run_;
  const double t = s.time;

  // --- stream counters -----------------------------------------------------
  if (s.supplier_in_use < 0 || s.sum_world_holds < 0) {
    AddViolation(t, "negative-streams",
                 "supplier in_use=" + std::to_string(s.supplier_in_use) +
                     ", world holds=" + std::to_string(s.sum_world_holds) +
                     " (a stream was released twice)");
  }
  if (s.supplier_in_use != s.sum_world_holds) {
    AddViolation(
        t, "stream-conservation",
        "supplier believes " + std::to_string(s.supplier_in_use) +
            " streams are out, the movie worlds hold " +
            std::to_string(s.sum_world_holds) +
            " (a stream was leaked or double-held)");
  }
  if (s.supplier_capacity >= 0) {
    if (s.nominal_capacity >= 0 && s.supplier_capacity > s.nominal_capacity) {
      AddViolation(t, "capacity-exceeds-nominal",
                   "capacity " + std::to_string(s.supplier_capacity) +
                       " exceeds nominal " +
                       std::to_string(s.nominal_capacity));
    }
    const bool fault_shrunk = s.nominal_capacity >= 0 &&
                              s.supplier_capacity < s.nominal_capacity;
    if (s.supplier_in_use > s.supplier_capacity && !fault_shrunk) {
      AddViolation(
          t, "capacity-bound",
          std::to_string(s.supplier_in_use) + " streams in use exceed " +
              "capacity " + std::to_string(s.supplier_capacity) +
              " with no outstanding capacity loss to explain it");
    }
  }

  // --- buffer partitions ---------------------------------------------------
  for (const auto& movie : s.movies) {
    double total = 0.0;
    for (const AuditPartition& p : movie.partitions) {
      if (p.size < -kBufferEps) {
        AddViolation(t, "partition-budget",
                     "movie '" + movie.name + "' has a negative partition (" +
                         std::to_string(p.size) + " min)");
      }
      total += p.size;
    }
    if (total > movie.budget + kBufferEps) {
      AddViolation(t, "partition-budget",
                   "movie '" + movie.name + "' partitions sum to " +
                       std::to_string(total) + " min, budget B = " +
                       std::to_string(movie.budget));
    }
    std::vector<AuditPartition> sorted = movie.partitions;
    std::sort(sorted.begin(), sorted.end(),
              [](const AuditPartition& a, const AuditPartition& b) {
                return a.start < b.start;
              });
    for (size_t i = 1; i < sorted.size(); ++i) {
      const double prev_end = sorted[i - 1].start + sorted[i - 1].size;
      if (sorted[i].start < prev_end - kBufferEps) {
        AddViolation(
            t, "partition-overlap",
            "movie '" + movie.name + "' partitions overlap: [" +
                std::to_string(sorted[i - 1].start) + ", " +
                std::to_string(prev_end) + ") and [" +
                std::to_string(sorted[i].start) + ", " +
                std::to_string(sorted[i].start + sorted[i].size) + ")");
      }
    }
  }

  // --- controller resource ledger ------------------------------------------
  if (s.controller.enabled) {
    const auto& c = s.controller;
    const int64_t stream_sum =
        c.sum_live_streams + c.free_streams + c.inflight_streams;
    if (stream_sum != c.stream_budget) {
      AddViolation(t, "ctrl-stream-conservation",
                   "live " + std::to_string(c.sum_live_streams) + " + free " +
                       std::to_string(c.free_streams) + " + in-flight " +
                       std::to_string(c.inflight_streams) + " = " +
                       std::to_string(stream_sum) + " streams, budget is " +
                       std::to_string(c.stream_budget) +
                       " (a migration leaked or double-granted a stream)");
    }
    const double buffer_sum =
        c.sum_live_buffer + c.free_buffer + c.inflight_buffer;
    if (std::fabs(buffer_sum - c.buffer_budget) > 1e-6) {
      AddViolation(t, "ctrl-buffer-conservation",
                   "live " + std::to_string(c.sum_live_buffer) + " + free " +
                       std::to_string(c.free_buffer) + " + in-flight " +
                       std::to_string(c.inflight_buffer) + " = " +
                       std::to_string(buffer_sum) + " buffer minutes, " +
                       "budget is " + std::to_string(c.buffer_budget));
    }
    if (c.steps_applied > c.steps_planned) {
      AddViolation(t, "ctrl-no-double-grant",
                   std::to_string(c.steps_applied) +
                       " migration steps applied but only " +
                       std::to_string(c.steps_planned) +
                       " were ever planned (a step ran twice)");
    }
    if (c.epoch < last_controller_epoch_) {
      AddViolation(t, "ctrl-epoch-monotonic",
                   "plan epoch moved backward: " +
                       std::to_string(last_controller_epoch_) + " -> " +
                       std::to_string(c.epoch));
    }
    last_controller_epoch_ = std::max(last_controller_epoch_, c.epoch);
  }

  // --- cross-shard ledgers -------------------------------------------------
  if (s.shard.enabled) {
    const auto& sh = s.shard;
    int64_t ledger = 0;
    for (const auto& m : sh.movies) {
      if (m.held < 0 || m.credit < 0 || m.debt < 0) {
        AddViolation(t, "shard-credit-negative",
                     "movie " + std::to_string(m.movie) + " ledger held=" +
                         std::to_string(m.held) + " credit=" +
                         std::to_string(m.credit) + " debt=" +
                         std::to_string(m.debt) +
                         " (a credit was spent or repaid twice)");
      }
      ledger += m.held + m.credit - m.debt;
      if (m.live != m.entered - m.exited) {
        AddViolation(t, "shard-viewer-conservation",
                     "movie " + std::to_string(m.movie) + " reports " +
                         std::to_string(m.live) + " live viewers but " +
                         std::to_string(m.entered) + " entered - " +
                         std::to_string(m.exited) + " exited = " +
                         std::to_string(m.entered - m.exited) +
                         " (a viewer was lost or duplicated in a handoff)");
      }
    }
    if (ledger != sh.capacity) {
      AddViolation(t, "shard-reserve-ledger",
                   "sum of per-movie (held + credit - debt) = " +
                       std::to_string(ledger) + ", global capacity is " +
                       std::to_string(sh.capacity) +
                       " (a shard grant minted or leaked reserve)");
    }
    if (sh.messages_posted != sh.messages_drained) {
      AddViolation(t, "shard-mailbox-conservation",
                   std::to_string(sh.messages_posted) +
                       " messages posted but " +
                       std::to_string(sh.messages_drained) +
                       " drained (a cross-shard message was lost)");
    }
    if (sh.sequence_gaps != 0) {
      AddViolation(t, "shard-mailbox-conservation",
                   std::to_string(sh.sequence_gaps) +
                       " mailbox sequence gaps (a message was dropped, "
                       "duplicated, or reordered)");
    }

    // --- windowed cross-shard ladder ---------------------------------------
    if (sh.ladder.enabled) {
      const auto& ld = sh.ladder;
      // The rung must be the pure fold of the summed pressure: recompute
      // StepWindowedLadder with the published inputs and require an exact
      // match (both sides run the same function, so there is no tolerance).
      WindowedPressure pressure;
      pressure.capacity = sh.capacity;
      pressure.nominal_capacity = ld.nominal_capacity;
      pressure.sum_held = ld.sum_held;
      pressure.sum_queued = ld.sum_queued;
      DegradationPolicy policy;
      policy.enabled = true;
      policy.shed_below_fraction = ld.shed_below_fraction;
      policy.batching_below_fraction = ld.batching_below_fraction;
      WindowedLadderState prev;
      prev.level = static_cast<DegradationLevel>(ld.prev_level);
      prev.below_streak = ld.prev_streak;
      const WindowedLadderState expect =
          StepWindowedLadder(prev, pressure, policy, ld.recover_windows);
      if (static_cast<int>(expect.level) != ld.next_level ||
          expect.below_streak != ld.next_streak) {
        AddViolation(
            t, "shard-ladder-rung",
            "barrier decided rung " + std::to_string(ld.next_level) +
                " streak " + std::to_string(ld.next_streak) +
                " but StepWindowedLadder(prev=" +
                std::to_string(ld.prev_level) + "/" +
                std::to_string(ld.prev_streak) + ", held=" +
                std::to_string(ld.sum_held) + ", queued=" +
                std::to_string(ld.sum_queued) + ", capacity=" +
                std::to_string(sh.capacity) + "/" +
                std::to_string(ld.nominal_capacity) + ") gives " +
                std::to_string(static_cast<int>(expect.level)) + "/" +
                std::to_string(expect.below_streak) +
                " (the rung is not a pure function of the summed pressure)");
      }
      int64_t quota_echoed = 0;
      for (const auto& m : sh.movies) {
        quota_echoed += m.reclaim_quota;
        if (m.reclaim_applied > m.reclaim_quota) {
          AddViolation(t, "shard-ladder-reclaim",
                       "movie " + std::to_string(m.movie) + " reclaimed " +
                           std::to_string(m.reclaim_applied) +
                           " streams against a quota of " +
                           std::to_string(m.reclaim_quota) +
                           " (a shard reclaimed beyond its quota)");
        }
        const int64_t accounted =
            m.queue_grants + m.queue_expirations + m.queue_pending;
        if (m.vcr_queued != accounted) {
          AddViolation(t, "shard-ladder-queue",
                       "movie " + std::to_string(m.movie) + " queued " +
                           std::to_string(m.vcr_queued) + " but grants " +
                           std::to_string(m.queue_grants) + " + expirations " +
                           std::to_string(m.queue_expirations) + " + pending " +
                           std::to_string(m.queue_pending) + " = " +
                           std::to_string(accounted) +
                           " (a queued viewer was lost across a window)");
        }
      }
      if (quota_echoed != ld.quota_issued_prev) {
        AddViolation(t, "shard-ladder-reclaim",
                     "shards echoed reclaim quotas summing to " +
                         std::to_string(quota_echoed) +
                         " but the barrier issued " +
                         std::to_string(ld.quota_issued_prev) +
                         " last window (a reclaim quota was minted or lost)");
      }
    }
  }

  // --- degradation ladder --------------------------------------------------
  if (s.degradation_level != -1 &&
      (s.degradation_level < 0 ||
       s.degradation_level >= kNumDegradationLevels)) {
    AddViolation(t, "ladder-level-range",
                 "degradation level " + std::to_string(s.degradation_level) +
                     " is not a rung of the ladder");
  }
  if (s.transitions != nullptr && !s.transitions->empty()) {
    const auto& trs = *s.transitions;
    if (trs.front().from != DegradationLevel::kNormal) {
      AddViolation(t, "ladder-continuity",
                   std::string("first transition starts at ") +
                       DegradationLevelName(trs.front().from) +
                       ", runs begin at normal");
    }
    for (size_t i = 1; i < trs.size(); ++i) {
      if (trs[i].from != trs[i - 1].to) {
        AddViolation(
            t, "ladder-continuity",
            std::string("transition ") + std::to_string(i) + " leaves " +
                DegradationLevelName(trs[i].from) +
                " but the previous transition ended at " +
                DegradationLevelName(trs[i - 1].to) +
                " (a level change was skipped or rewritten)");
      }
      if (trs[i].time < trs[i - 1].time) {
        AddViolation(t, "ladder-continuity",
                     "transition " + std::to_string(i) + " at t=" +
                         std::to_string(trs[i].time) +
                         " precedes its predecessor at t=" +
                         std::to_string(trs[i - 1].time));
      }
    }
    const bool log_complete =
        s.total_transitions < 0 ||
        s.total_transitions == static_cast<int64_t>(trs.size());
    if (log_complete && s.degradation_level >= 0 &&
        s.degradation_level < kNumDegradationLevels &&
        static_cast<int>(trs.back().to) != s.degradation_level) {
      AddViolation(t, "ladder-continuity",
                   std::string("recorded transitions end at ") +
                       DegradationLevelName(trs.back().to) +
                       " but the live level is " +
                       DegradationLevelName(static_cast<DegradationLevel>(
                           s.degradation_level)));
    }
  }
}

Status InvariantAuditor::status() const {
  if (total_violations_ == 0) return Status::OK();
  const AuditViolation& first = violations_.front();
  std::ostringstream os;
  os << "invariant '" << first.invariant << "' violated at t=" << first.time
     << " (event #" << first.event_index << "): " << first.detail;
  if (total_violations_ > 1) {
    os << "; " << (total_violations_ - 1) << " further violation(s)";
  }
  os << "; " << TraceTail();
  return Status::Internal(os.str());
}

}  // namespace vod
