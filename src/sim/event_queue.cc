#include "sim/event_queue.h"

#include "common/check.h"

namespace vod {

EventToken EventQueue::Schedule(double time, std::function<void()> action) {
  VOD_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  const uint64_t seq = next_seq_++;
  const EventToken token = seq;
  heap_.push(Entry{time, seq, token, std::move(action)});
  live_.insert(token);
  return token;
}

void EventQueue::Cancel(EventToken token) {
  // Only tokens that are actually pending move to the cancelled set; this
  // makes cancelling a stale or sentinel token harmless and keeps pending()
  // exact.
  if (live_.erase(token) > 0) cancelled_.insert(token);
}

bool EventQueue::RunNext() {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; the action must be moved out, so
    // copy the metadata and move via const_cast before pop (safe: the entry
    // is removed immediately after).
    Entry& top = const_cast<Entry&>(heap_.top());
    const auto cancelled_it = cancelled_.find(top.token);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      heap_.pop();
      continue;
    }
    const double time = top.time;
    std::function<void()> action = std::move(top.action);
    live_.erase(top.token);
    heap_.pop();
    now_ = time;
    action();
    return true;
  }
  return false;
}

void EventQueue::RunUntil(double horizon) {
  while (!heap_.empty()) {
    // Drop cancelled heads first so the horizon check sees a live event.
    const Entry& top = heap_.top();
    const auto cancelled_it = cancelled_.find(top.token);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      heap_.pop();
      continue;
    }
    if (top.time > horizon) break;
    RunNext();
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace vod
