#include "sim/event_queue.h"

#include <algorithm>

#include "common/check.h"
#include "common/serialize.h"

namespace vod {

EventToken EventQueue::ScheduleEntry(Entry entry) {
  VOD_CHECK_MSG(entry.time >= now_, "cannot schedule an event in the past");
  const EventToken token = entry.token;
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), RunsAfter{});
  live_.insert(token);
  return token;
}

EventToken EventQueue::Schedule(double time, std::function<void()> action) {
  Entry entry;
  entry.time = time;
  entry.seq = next_seq_++;
  entry.token = entry.seq;
  entry.action = std::move(action);
  return ScheduleEntry(std::move(entry));
}

EventToken EventQueue::ScheduleTagged(double time, uint64_t kind,
                                      uint64_t payload,
                                      std::function<void()> action) {
  Entry entry;
  entry.time = time;
  entry.seq = next_seq_++;
  entry.token = entry.seq;
  entry.action = std::move(action);
  entry.tagged = true;
  entry.kind = kind;
  entry.payload = payload;
  return ScheduleEntry(std::move(entry));
}

void EventQueue::Cancel(EventToken token) {
  // Only tokens that are actually pending move to the cancelled set; this
  // makes cancelling a stale or sentinel token harmless and keeps pending()
  // exact.
  if (live_.erase(token) > 0) cancelled_.insert(token);
}

bool EventQueue::RunNext() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), RunsAfter{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    const auto cancelled_it = cancelled_.find(entry.token);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    live_.erase(entry.token);
    now_ = entry.time;
    entry.action();
    ++executed_;
    if (observer_) observer_(now_);
    return true;
  }
  return false;
}

void EventQueue::RunUntil(double horizon) {
  while (!heap_.empty()) {
    // Drop cancelled heads first so the horizon check sees a live event.
    const Entry& top = heap_.front();
    const auto cancelled_it = cancelled_.find(top.token);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      std::pop_heap(heap_.begin(), heap_.end(), RunsAfter{});
      heap_.pop_back();
      continue;
    }
    if (top.time > horizon) break;
    RunNext();
  }
  if (now_ < horizon) now_ = horizon;
}

Status EventQueue::Snapshot(ByteWriter* out) const {
  // Collect the live entries and order them deterministically; the heap's
  // internal array order depends on the push/pop history.
  std::vector<const Entry*> pending_entries;
  pending_entries.reserve(heap_.size());
  for (const Entry& entry : heap_) {
    if (cancelled_.count(entry.token) > 0) continue;  // will never run
    if (!entry.tagged) {
      return Status::NotSupported(
          "event queue holds an untagged event (seq " +
          std::to_string(entry.seq) +
          ", t=" + std::to_string(entry.time) +
          "); only ScheduleTagged events can be snapshotted");
    }
    pending_entries.push_back(&entry);
  }
  std::sort(pending_entries.begin(), pending_entries.end(),
            [](const Entry* a, const Entry* b) {
              if (a->time != b->time) return a->time < b->time;
              return a->seq < b->seq;
            });

  out->PutDouble(now_);
  out->PutU64(next_seq_);
  out->PutU64(executed_);
  out->PutU64(pending_entries.size());
  for (const Entry* entry : pending_entries) {
    out->PutDouble(entry->time);
    out->PutU64(entry->seq);
    out->PutU64(entry->kind);
    out->PutU64(entry->payload);
  }
  return Status::OK();
}

Status EventQueue::Restore(ByteReader* in, const ActionFactory& factory) {
  if (!heap_.empty() || !live_.empty()) {
    return Status::InvalidArgument(
        "event queue restore requires an empty queue");
  }
  double now;
  uint64_t next_seq, executed, count;
  VOD_RETURN_IF_ERROR(in->ReadDouble(&now));
  VOD_RETURN_IF_ERROR(in->ReadU64(&next_seq));
  VOD_RETURN_IF_ERROR(in->ReadU64(&executed));
  VOD_RETURN_IF_ERROR(in->ReadU64(&count));

  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Entry entry;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&entry.time));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.seq));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.kind));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.payload));
    if (!(entry.time >= now)) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry at t=" +
          std::to_string(entry.time) + " precedes the snapshot clock t=" +
          std::to_string(now));
    }
    if (entry.seq >= next_seq) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry seq " +
          std::to_string(entry.seq) + " >= sequence counter " +
          std::to_string(next_seq));
    }
    entry.token = entry.seq;
    entry.tagged = true;
    entry.action = factory(entry.kind, entry.payload, entry.time);
    if (!entry.action) {
      return Status::InvalidArgument(
          "event queue restore: factory rejected event kind " +
          std::to_string(entry.kind));
    }
    entries.push_back(std::move(entry));
  }

  // All-or-nothing: mutate the queue only after every entry decoded.
  now_ = now;
  next_seq_ = next_seq;
  executed_ = executed;
  for (Entry& entry : entries) {
    live_.insert(entry.token);
    heap_.push_back(std::move(entry));
  }
  std::make_heap(heap_.begin(), heap_.end(), RunsAfter{});
  return Status::OK();
}

}  // namespace vod
