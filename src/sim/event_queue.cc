#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <string>

#include "common/check.h"
#include "common/serialize.h"

namespace vod {

namespace {

// First word of a current-format snapshot. Its bit pattern is a NaN, and the
// PR 3 layout opened with the clock double (never NaN), so one u64 read
// distinguishes the formats.
constexpr uint64_t kSnapshotMagicV2 = 0xFFF7'4551'4232'0002ULL;

// Largest slot index a snapshot may reference; rejects corrupt blobs before
// they size the slab (real peaks are orders of magnitude below this).
constexpr uint64_t kMaxRestoreSlot = 1ULL << 26;

// Trampoline for the std::function handler compatibility overload.
void BoxedHandlerTrampoline(void* ctx, uint64_t payload) {
  (*static_cast<EventQueue::Handler*>(ctx))(payload);
}

// Trampoline for the std::function observer compatibility overload.
void BoxedObserverTrampoline(void* ctx, double time) {
  (*static_cast<std::function<void(double)>*>(ctx))(time);
}

}  // namespace

uint64_t EventQueue::AddHandler(Handler handler) {
  VOD_CHECK_MSG(handler != nullptr, "event handler must be callable");
  boxed_handlers_.push_back(std::make_unique<Handler>(std::move(handler)));
  return AddHandler(&BoxedHandlerTrampoline, boxed_handlers_.back().get());
}

uint64_t EventQueue::AddHandler(RawHandler fn, void* ctx) {
  VOD_CHECK_MSG(fn != nullptr, "event handler must be callable");
  handlers_.push_back(HandlerRec{fn, ctx});
  batch_.push_back(BatchRec{});  // keep the batch table parallel
  return handlers_.size() - 1;
}

void EventQueue::AddBatchHandler(uint64_t kind, BatchHandler fn, void* ctx) {
  VOD_CHECK_MSG(kind < handlers_.size(),
                "batch handler requires a registered scalar kind");
  VOD_CHECK_MSG(fn != nullptr, "batch handler must be callable");
  batch_[kind] = BatchRec{fn, ctx};
  have_batch_ = true;
}

void EventQueue::set_observer(std::function<void(double)> observer) {
  if (observer) {
    observer_boxed_ = std::move(observer);
    observer_fn_ = &BoxedObserverTrampoline;
    observer_ctx_ = &observer_boxed_;
  } else {
    observer_boxed_ = nullptr;
    observer_fn_ = nullptr;
    observer_ctx_ = nullptr;
  }
}

void EventQueue::set_observer(RawObserver fn, void* ctx) {
  observer_boxed_ = nullptr;
  observer_fn_ = fn;
  observer_ctx_ = fn != nullptr ? ctx : nullptr;
}

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  VOD_CHECK_MSG(slots_.size() < kNilSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.kind & kHasActionBit) {
    actions_[slot] = nullptr;  // release any captured state promptly
  }
  s.gen = kFreeGen;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::EnsureActionCapacity(uint32_t slot) {
  if (actions_.size() <= slot) actions_.resize(slots_.size());
}

EventToken EventQueue::ScheduleSlot(double time, uint64_t kind,
                                    uint64_t payload,
                                    std::function<void()> action) {
  VOD_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  if (next_gen_ == kFreeGen) next_gen_ = 0;  // skip the free sentinel on wrap
  const uint32_t gen = next_gen_++;
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.gen = gen;
  s.kind = kind;
  s.payload = payload;
  EnsureActionCapacity(slot);
  actions_[slot] = std::move(action);
  PushKey(HeapKey{time, gen, slot});
  ++live_;
  return (static_cast<uint64_t>(gen) << 32) | slot;
}

EventToken EventQueue::ScheduleHandler(double time, uint64_t kind,
                                       uint64_t payload) {
  VOD_CHECK_MSG(kind < handlers_.size(), "unregistered event handler kind");
  VOD_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  // Steady-state fast path: identical to ScheduleSlot minus the action —
  // the side action column is never touched, so this never constructs,
  // moves, or destroys a std::function.
  if (next_gen_ == kFreeGen) next_gen_ = 0;
  const uint32_t gen = next_gen_++;
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.gen = gen;
  s.kind = kind;
  s.payload = payload;
  PushKey(HeapKey{time, gen, slot});
  ++live_;
  return (static_cast<uint64_t>(gen) << 32) | slot;
}

EventToken EventQueue::Schedule(double time, std::function<void()> action) {
  // kUntagged carries kHasActionBit (it is all-ones).
  return ScheduleSlot(time, kUntagged, 0, std::move(action));
}

EventToken EventQueue::ScheduleTagged(double time, uint64_t kind,
                                      uint64_t payload,
                                      std::function<void()> action) {
  // The tag must leave bit 63 free for the action marker and must not
  // collide with kUntagged once the marker is set.
  VOD_CHECK_MSG(kind < kHasActionBit - 1, "reserved event kind");
  return ScheduleSlot(time, kind | kHasActionBit, payload, std::move(action));
}

void EventQueue::Cancel(EventToken token) {
  const uint32_t slot = static_cast<uint32_t>(token);
  const uint32_t gen = static_cast<uint32_t>(token >> 32);
  // kNoEvent, stale, and malformed tokens all fail one of these compares;
  // gen == kFreeGen can never belong to a live event.
  if (gen == kFreeGen || slot >= slots_.size() || slots_[slot].gen != gen) {
    return;
  }
  FreeSlot(slot);
  --live_;
  ++tombstones_;
  // Lazy deletion must not pin memory after a cancel-heavy burst: once
  // tombstones dominate, drop them all and re-heapify in O(n).
  if (tombstones_ > heap_.size() / 2 && heap_.size() > 64) CompactHeap();
}

void EventQueue::AppendUnsifted(HeapKey key) {
  if (heap_.size() == 1) {
    // Crossing one element: insert the dead pads so level-1 starts at
    // index 4 (one cache line per sibling group; see HeapChild).
    heap_.resize(1 + kHeapPads,
                 HeapKey{std::numeric_limits<double>::infinity(), 0, 0});
  }
  heap_.push_back(key);
}

void EventQueue::HeapifyAll() {
  // In the aligned layout children always sit at higher indices than their
  // parent, so one descending SiftDown pass over the internal nodes (every
  // index up to the last element's parent — HeapParent is monotone) is the
  // standard O(n) heapify; leaves are skipped, not rewritten.
  if (heap_.size() <= 1) return;
  for (size_t i = HeapParent(heap_.size() - 1);; --i) {
    if (!IsHeapPad(i)) SiftDown(i);
    if (i == 0) break;
  }
}

void EventQueue::PushKey(HeapKey key) {
  AppendUnsifted(key);
  SiftUp(heap_.size() - 1);
}

void EventQueue::PopRoot() {
  const size_t n = heap_.size();
  if (n <= 1) {
    heap_.clear();
    return;
  }
  if (n == 2 + kHeapPads) {
    // Dropping to one key: retire the pads too so physical size is again
    // 0, 1, or keys + pads (PushKey's crossing test depends on it).
    heap_[0] = heap_[1 + kHeapPads];
    heap_.resize(1);
    return;
  }
  heap_.front() = heap_.back();
  heap_.pop_back();
  SiftDown(0);
}

void EventQueue::SiftUp(size_t i) {
  const HeapKey key = heap_[i];
  while (i > 0) {
    const size_t parent = HeapParent(i);
    if (!RunsBefore(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const HeapKey key = heap_[i];
  for (;;) {
    const size_t first = HeapChild(i);
    if (first + 4 <= n) {
      // Full group of four: tournament min with branch-free comparisons
      // and index arithmetic, so the only data-dependent branch per level
      // is the loop exit. The naive scan's selection branches mispredict
      // ~50% on random keys and dominated the pop cost.
      const HeapKey* g = &heap_[first];
      const size_t b01 = first + static_cast<size_t>(RunsBefore(g[1], g[0]));
      const size_t b23 =
          first + 2 + static_cast<size_t>(RunsBefore(g[3], g[2]));
      const size_t best = RunsBefore(heap_[b23], heap_[b01]) ? b23 : b01;
      if (!RunsBefore(heap_[best], key)) break;
      heap_[i] = heap_[best];
      i = best;
      continue;
    }
    if (first >= n) break;
    // Partial trailing group (its members are leaves; one more level ends
    // the walk).
    size_t best = first;
    for (size_t c = first + 1; c < n; ++c) {
      if (RunsBefore(heap_[c], heap_[best])) best = c;
    }
    if (!RunsBefore(heap_[best], key)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = key;
}

void EventQueue::CompactHeap() {
  // In-place: slide the live keys down over the tombstones (the write
  // cursor hops the pad indices, the read cursor skips them), truncate,
  // and heapify bottom-up. No allocation — Cancel calls this from inside
  // cancel-heavy bursts, where a scratch vector per compaction measurably
  // drags the whole mix.
  size_t write = 0;
  for (size_t read = 0; read < heap_.size(); ++read) {
    if (IsHeapPad(read)) continue;
    const HeapKey key = heap_[read];
    if (slots_[key.slot].gen != key.gen) continue;  // tombstone
    heap_[write] = key;
    write = (write == 0) ? 1 + kHeapPads : write + 1;
  }
  // One live key leaves write just past the pads; physical size must be 1.
  if (write == 1 + kHeapPads) write = 1;
  heap_.resize(write);
  tombstones_ = 0;
  HeapifyAll();
}

void EventQueue::ExecuteHead(const HeapKey& head) {
  PopRoot();
  Slot& s = slots_[head.slot];
  const uint64_t kind = s.kind;
  const uint64_t payload = s.payload;
  std::function<void()> action;
  if (kind & kHasActionBit) action = std::move(actions_[head.slot]);
  FreeSlot(head.slot);  // before dispatch: the action may reuse the slot
  --live_;
  now_ = head.time;
  if (kind & kHasActionBit) {
    action();
  } else {
    const HandlerRec h = handlers_[kind];
    h.fn(h.ctx, payload);
  }
  ++executed_;
  if (observer_fn_ != nullptr) observer_fn_(observer_ctx_, now_);
}

bool EventQueue::RunNext() {
  while (!heap_.empty()) {
    const HeapKey head = heap_.front();
    if (slots_[head.slot].gen != head.gen) {  // tombstone: discard lazily
      PopRoot();
      --tombstones_;
      continue;
    }
    ExecuteHead(head);
    return true;
  }
  return false;
}

template <bool kObserved>
void EventQueue::RunBatchHead(HeapKey head, uint64_t kind) {
  // Extraction is safe for byte-identity precisely because the run shares
  // one timestamp: any event a handler schedules during the run gets a
  // strictly higher generation than every extracted entry, so the scalar
  // loop would also have executed it after the whole run (DESIGN.md §15).
  const double t = head.time;
  run_buf_.clear();
  for (;;) {
    PopRoot();
    Slot& s = slots_[head.slot];
    run_buf_.push_back(RunEvent{t, s.payload});
    // Inline slot free: run members are handler events, never closures,
    // so the side action column is untouched.
    s.gen = kFreeGen;
    s.next_free = free_head_;
    free_head_ = head.slot;
    --live_;
    // Advance to the next live root; the run ends on a time or kind
    // change. Tombstones are discarded exactly where the scalar loop
    // would have discarded them.
    bool extend = false;
    while (!heap_.empty()) {
      const HeapKey next = heap_.front();
      const Slot& ns = slots_[next.slot];
      if (ns.gen != next.gen) {
        PopRoot();
        --tombstones_;
        continue;
      }
      if (next.time == t && ns.kind == kind) {
        head = next;
        extend = true;
      }
      break;
    }
    if (!extend) break;
  }
  now_ = t;
  const BatchRec rec = batch_[kind];
  rec.fn(rec.ctx, std::span<const RunEvent>(run_buf_.data(), run_buf_.size()));
  executed_ += run_buf_.size();
  if constexpr (kObserved) {
    // Per-event cadence is preserved: the observer fires once per run
    // member, at the settled post-run state (all at the shared timestamp).
    const size_t n = run_buf_.size();
    for (size_t i = 0; i < n; ++i) observer_fn_(observer_ctx_, t);
  }
}

template <bool kObserved, bool kBatched>
void EventQueue::RunLoop(double horizon) {
  while (!heap_.empty()) {
    const HeapKey head = heap_.front();
    Slot& s = slots_[head.slot];
    if (s.gen != head.gen) {  // tombstone: discard lazily
      PopRoot();
      --tombstones_;
      continue;
    }
    if (head.time > horizon) break;
    const uint64_t kind = s.kind;
    if (kind & kHasActionBit) {
      // Closure event (faults, timers, tests): cold path, scalar dispatch;
      // ExecuteHead fires the observer itself.
      ExecuteHead(head);
      continue;
    }
    if constexpr (kBatched) {
      if (batch_[kind].fn != nullptr) {
        RunBatchHead<kObserved>(head, kind);
        continue;
      }
    }
    // Scalar handler dispatch, inlined (no action column, no std::function).
    PopRoot();
    const uint64_t payload = s.payload;
    s.gen = kFreeGen;
    s.next_free = free_head_;
    free_head_ = head.slot;
    --live_;
    now_ = head.time;
    // Pull the next event's slab line in while this handler runs — one
    // handler execution (~100 ns) of prefetch distance.
    if (!heap_.empty()) __builtin_prefetch(&slots_[heap_.front().slot]);
    const HandlerRec h = handlers_[kind];
    h.fn(h.ctx, payload);
    ++executed_;
    if constexpr (kObserved) observer_fn_(observer_ctx_, now_);
  }
  if (now_ < horizon) now_ = horizon;
}

void EventQueue::RunUntil(double horizon) {
  const bool batched = have_batch_ && !scalar_dispatch_;
  if (observer_fn_ != nullptr) {
    batched ? RunLoop<true, true>(horizon) : RunLoop<true, false>(horizon);
  } else {
    batched ? RunLoop<false, true>(horizon) : RunLoop<false, false>(horizon);
  }
}

Status EventQueue::Snapshot(ByteWriter* out) const {
  // Collect the live keys and order them deterministically; the heap's
  // internal array order depends on the push/pop history.
  std::vector<HeapKey> pending_keys;
  pending_keys.reserve(live_);
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (IsHeapPad(i)) continue;
    const HeapKey& key = heap_[i];
    const Slot& s = slots_[key.slot];
    if (s.gen != key.gen) continue;  // tombstone: will never run
    if (s.kind == kUntagged) {
      return Status::NotSupported(
          "event queue holds an untagged event (seq " +
          std::to_string(key.gen) + ", t=" + std::to_string(key.time) +
          "); only tagged or handler events can be snapshotted");
    }
    pending_keys.push_back(key);
  }
  std::sort(pending_keys.begin(), pending_keys.end(), RunsBefore);

  out->PutU64(kSnapshotMagicV2);
  out->PutDouble(now_);
  out->PutU64(next_gen_);
  out->PutU64(executed_);
  out->PutU64(pending_keys.size());
  for (const HeapKey& key : pending_keys) {
    const Slot& s = slots_[key.slot];
    out->PutDouble(key.time);
    out->PutU64((static_cast<uint64_t>(key.gen) << 32) | key.slot);
    out->PutU64(s.kind & ~kHasActionBit);  // the marker is in-memory only
    out->PutU64(s.payload);
  }
  return Status::OK();
}

struct EventQueue::PendingRestore {
  double time = 0.0;
  uint32_t gen = 0;
  uint32_t slot = 0;
  uint64_t kind = 0;
  uint64_t payload = 0;
  std::function<void()> action;  ///< empty when a registered handler serves
};

void EventQueue::CommitRestore(double now, uint32_t next_gen,
                               uint64_t executed,
                               std::vector<PendingRestore> entries) {
  now_ = now;
  next_gen_ = next_gen;
  executed_ = executed;
  heap_.clear();
  slots_.clear();
  actions_.clear();
  free_head_ = kNilSlot;
  tombstones_ = 0;
  uint32_t max_slot = 0;
  for (const PendingRestore& entry : entries) {
    max_slot = std::max(max_slot, entry.slot);
  }
  slots_.resize(entries.empty() ? 0 : static_cast<size_t>(max_slot) + 1);
  heap_.reserve(entries.size() + kHeapPads);
  for (PendingRestore& entry : entries) {
    Slot& s = slots_[entry.slot];
    s.gen = entry.gen;
    s.payload = entry.payload;
    if (entry.action) {
      s.kind = entry.kind | kHasActionBit;
      EnsureActionCapacity(entry.slot);
      actions_[entry.slot] = std::move(entry.action);
    } else {
      s.kind = entry.kind;
    }
    AppendUnsifted(HeapKey{entry.time, entry.gen, entry.slot});
  }
  // Unoccupied slots join the free list lowest-index-first, keeping token
  // assignment after a restore deterministic.
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].gen == kFreeGen) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
  }
  live_ = entries.size();
  HeapifyAll();
}

Status EventQueue::Restore(ByteReader* in, const ActionFactory& factory) {
  if (!heap_.empty() || live_ != 0) {
    return Status::InvalidArgument(
        "event queue restore requires an empty queue");
  }
  uint64_t first_word;
  VOD_RETURN_IF_ERROR(in->ReadU64(&first_word));
  if (first_word == kSnapshotMagicV2) return RestoreV2(in, factory);
  // PR 3-era layout: the first word is the clock's IEEE bit pattern.
  const double now = std::bit_cast<double>(first_word);
  uint64_t next_seq, executed, count;
  VOD_RETURN_IF_ERROR(in->ReadU64(&next_seq));
  VOD_RETURN_IF_ERROR(in->ReadU64(&executed));
  VOD_RETURN_IF_ERROR(in->ReadU64(&count));

  struct V1Entry {
    double time;
    uint64_t seq;
    uint64_t kind;
    uint64_t payload;
  };
  std::vector<V1Entry> raw;
  raw.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    V1Entry entry;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&entry.time));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.seq));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.kind));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.payload));
    if (!(entry.time >= now)) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry at t=" +
          std::to_string(entry.time) + " precedes the snapshot clock t=" +
          std::to_string(now));
    }
    if (entry.seq >= next_seq) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry seq " +
          std::to_string(entry.seq) + " >= sequence counter " +
          std::to_string(next_seq));
    }
    raw.push_back(entry);
  }

  // The old format ordered by a 64-bit sequence; generations replicate that
  // order by ranking the stored sequences. (Old token values are seq-based
  // and are not honored after a cross-format restore.)
  std::vector<size_t> by_seq(raw.size());
  std::iota(by_seq.begin(), by_seq.end(), size_t{0});
  std::sort(by_seq.begin(), by_seq.end(), [&raw](size_t a, size_t b) {
    return raw[a].seq < raw[b].seq;
  });
  std::vector<PendingRestore> entries(raw.size());
  for (size_t rank = 0; rank < by_seq.size(); ++rank) {
    const V1Entry& src = raw[by_seq[rank]];
    PendingRestore& dst = entries[by_seq[rank]];
    dst.time = src.time;
    dst.gen = static_cast<uint32_t>(rank);
    dst.slot = static_cast<uint32_t>(rank);
    dst.kind = src.kind;
    dst.payload = src.payload;
    if (!(src.kind < handlers_.size() && handlers_[src.kind].fn != nullptr)) {
      dst.action = factory(src.kind, src.payload, src.time);
      if (!dst.action) {
        return Status::InvalidArgument(
            "event queue restore: factory rejected event kind " +
            std::to_string(src.kind));
      }
    }
  }
  // Evaluated before the move below — argument order is unspecified.
  const uint32_t restored_gen = static_cast<uint32_t>(entries.size());
  CommitRestore(now, restored_gen, executed, std::move(entries));
  return Status::OK();
}

Status EventQueue::RestoreV2(ByteReader* in, const ActionFactory& factory) {
  double now;
  uint64_t next_gen, executed, count;
  VOD_RETURN_IF_ERROR(in->ReadDouble(&now));
  VOD_RETURN_IF_ERROR(in->ReadU64(&next_gen));
  VOD_RETURN_IF_ERROR(in->ReadU64(&executed));
  VOD_RETURN_IF_ERROR(in->ReadU64(&count));
  if (next_gen > kFreeGen) {
    return Status::InvalidArgument(
        "event queue snapshot corrupt: generation counter " +
        std::to_string(next_gen) + " out of range");
  }

  std::vector<PendingRestore> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PendingRestore entry;
    uint64_t token, kind;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&entry.time));
    VOD_RETURN_IF_ERROR(in->ReadU64(&token));
    VOD_RETURN_IF_ERROR(in->ReadU64(&kind));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.payload));
    entry.gen = static_cast<uint32_t>(token >> 32);
    entry.slot = static_cast<uint32_t>(token);
    entry.kind = kind;
    if (!(entry.time >= now)) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry at t=" +
          std::to_string(entry.time) + " precedes the snapshot clock t=" +
          std::to_string(now));
    }
    if (entry.gen == kFreeGen || entry.gen >= next_gen) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry seq " +
          std::to_string(entry.gen) + " >= sequence counter " +
          std::to_string(next_gen));
    }
    if (entry.slot >= kMaxRestoreSlot) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: slot " +
          std::to_string(entry.slot) + " is implausibly large");
    }
    if (!(kind < handlers_.size() && handlers_[kind].fn != nullptr)) {
      entry.action = factory(kind, entry.payload, entry.time);
      if (!entry.action) {
        return Status::InvalidArgument(
            "event queue restore: factory rejected event kind " +
            std::to_string(kind));
      }
    }
    entries.push_back(std::move(entry));
  }
  // Reject blobs that map two events to one slot — tokens would alias.
  std::vector<PendingRestore*> by_slot;
  by_slot.reserve(entries.size());
  for (PendingRestore& entry : entries) by_slot.push_back(&entry);
  std::sort(by_slot.begin(), by_slot.end(),
            [](const PendingRestore* a, const PendingRestore* b) {
              return a->slot < b->slot;
            });
  for (size_t i = 1; i < by_slot.size(); ++i) {
    if (by_slot[i]->slot == by_slot[i - 1]->slot) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: duplicate slot " +
          std::to_string(by_slot[i]->slot));
    }
  }
  CommitRestore(now, static_cast<uint32_t>(next_gen), executed,
                std::move(entries));
  return Status::OK();
}

}  // namespace vod
