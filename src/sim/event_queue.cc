#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <string>

#include "common/check.h"
#include "common/serialize.h"

namespace vod {

namespace {

// First word of a current-format snapshot. Its bit pattern is a NaN, and the
// PR 3 layout opened with the clock double (never NaN), so one u64 read
// distinguishes the formats.
constexpr uint64_t kSnapshotMagicV2 = 0xFFF7'4551'4232'0002ULL;

// Largest slot index a snapshot may reference; rejects corrupt blobs before
// they size the slab (real peaks are orders of magnitude below this).
constexpr uint64_t kMaxRestoreSlot = 1ULL << 26;

}  // namespace

uint64_t EventQueue::AddHandler(Handler handler) {
  VOD_CHECK_MSG(handler != nullptr, "event handler must be callable");
  handlers_.push_back(std::move(handler));
  return handlers_.size() - 1;
}

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  VOD_CHECK_MSG(slots_.size() < kNilSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.gen = kFreeGen;
  s.kind = kUntagged;
  s.action = nullptr;  // release any captured state promptly
  s.next_free = free_head_;
  free_head_ = slot;
}

EventToken EventQueue::ScheduleSlot(double time, uint64_t kind,
                                    uint64_t payload,
                                    std::function<void()> action) {
  VOD_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  if (next_gen_ == kFreeGen) next_gen_ = 0;  // skip the free sentinel on wrap
  const uint32_t gen = next_gen_++;
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.gen = gen;
  s.kind = kind;
  s.payload = payload;
  s.action = std::move(action);
  PushKey(HeapKey{time, gen, slot});
  ++live_;
  return (static_cast<uint64_t>(gen) << 32) | slot;
}

EventToken EventQueue::ScheduleHandler(double time, uint64_t kind,
                                       uint64_t payload) {
  VOD_CHECK_MSG(kind < handlers_.size(), "unregistered event handler kind");
  VOD_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  // Steady-state fast path: identical to ScheduleSlot minus the action —
  // free slots always hold an empty closure (FreeSlot clears it), so this
  // never constructs, moves, or destroys a std::function.
  if (next_gen_ == kFreeGen) next_gen_ = 0;
  const uint32_t gen = next_gen_++;
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.gen = gen;
  s.kind = kind;
  s.payload = payload;
  PushKey(HeapKey{time, gen, slot});
  ++live_;
  return (static_cast<uint64_t>(gen) << 32) | slot;
}

EventToken EventQueue::Schedule(double time, std::function<void()> action) {
  return ScheduleSlot(time, kUntagged, 0, std::move(action));
}

EventToken EventQueue::ScheduleTagged(double time, uint64_t kind,
                                      uint64_t payload,
                                      std::function<void()> action) {
  VOD_CHECK_MSG(kind != kUntagged, "reserved event kind");
  return ScheduleSlot(time, kind, payload, std::move(action));
}

void EventQueue::Cancel(EventToken token) {
  const uint32_t slot = static_cast<uint32_t>(token);
  const uint32_t gen = static_cast<uint32_t>(token >> 32);
  // kNoEvent, stale, and malformed tokens all fail one of these compares;
  // gen == kFreeGen can never belong to a live event.
  if (gen == kFreeGen || slot >= slots_.size() || slots_[slot].gen != gen) {
    return;
  }
  FreeSlot(slot);
  --live_;
  ++tombstones_;
  // Lazy deletion must not pin memory after a cancel-heavy burst: once
  // tombstones dominate, drop them all and re-heapify in O(n).
  if (tombstones_ > heap_.size() / 2 && heap_.size() > 64) CompactHeap();
}

void EventQueue::PushKey(HeapKey key) {
  heap_.push_back(key);
  SiftUp(heap_.size() - 1);
}

void EventQueue::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::SiftUp(size_t i) {
  const HeapKey key = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    if (!RunsBefore(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const HeapKey key = heap_[i];
  for (;;) {
    const size_t first = (i << 2) + 1;
    if (first >= n) break;
    const size_t last = std::min(first + 4, n);
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (RunsBefore(heap_[c], heap_[best])) best = c;
    }
    if (!RunsBefore(heap_[best], key)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = key;
}

void EventQueue::CompactHeap() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapKey& key) {
                               return slots_[key.slot].gen != key.gen;
                             }),
              heap_.end());
  tombstones_ = 0;
  if (heap_.size() > 1) {
    for (size_t i = (heap_.size() - 2) >> 2; ; --i) {
      SiftDown(i);
      if (i == 0) break;
    }
  }
}

void EventQueue::ExecuteHead(const HeapKey& head) {
  PopRoot();
  Slot& s = slots_[head.slot];
  const uint64_t kind = s.kind;
  const uint64_t payload = s.payload;
  std::function<void()> action;
  if (s.action) action = std::move(s.action);
  FreeSlot(head.slot);  // before dispatch: the action may reuse the slot
  --live_;
  now_ = head.time;
  if (action) {
    action();
  } else {
    handlers_[kind](payload);
  }
  ++executed_;
  if (observer_) observer_(now_);
}

bool EventQueue::RunNext() {
  while (!heap_.empty()) {
    const HeapKey head = heap_.front();
    if (slots_[head.slot].gen != head.gen) {  // tombstone: discard lazily
      PopRoot();
      --tombstones_;
      continue;
    }
    ExecuteHead(head);
    return true;
  }
  return false;
}

void EventQueue::RunUntil(double horizon) {
  while (!heap_.empty()) {
    const HeapKey head = heap_.front();
    if (slots_[head.slot].gen != head.gen) {  // tombstone: discard lazily
      PopRoot();
      --tombstones_;
      continue;
    }
    if (head.time > horizon) break;
    ExecuteHead(head);  // one liveness compare per executed event, done above
  }
  if (now_ < horizon) now_ = horizon;
}

Status EventQueue::Snapshot(ByteWriter* out) const {
  // Collect the live keys and order them deterministically; the heap's
  // internal array order depends on the push/pop history.
  std::vector<HeapKey> pending_keys;
  pending_keys.reserve(live_);
  for (const HeapKey& key : heap_) {
    const Slot& s = slots_[key.slot];
    if (s.gen != key.gen) continue;  // tombstone: will never run
    if (s.kind == kUntagged) {
      return Status::NotSupported(
          "event queue holds an untagged event (seq " +
          std::to_string(key.gen) + ", t=" + std::to_string(key.time) +
          "); only tagged or handler events can be snapshotted");
    }
    pending_keys.push_back(key);
  }
  std::sort(pending_keys.begin(), pending_keys.end(), RunsBefore);

  out->PutU64(kSnapshotMagicV2);
  out->PutDouble(now_);
  out->PutU64(next_gen_);
  out->PutU64(executed_);
  out->PutU64(pending_keys.size());
  for (const HeapKey& key : pending_keys) {
    const Slot& s = slots_[key.slot];
    out->PutDouble(key.time);
    out->PutU64((static_cast<uint64_t>(key.gen) << 32) | key.slot);
    out->PutU64(s.kind);
    out->PutU64(s.payload);
  }
  return Status::OK();
}

struct EventQueue::PendingRestore {
  double time = 0.0;
  uint32_t gen = 0;
  uint32_t slot = 0;
  uint64_t kind = 0;
  uint64_t payload = 0;
  std::function<void()> action;  ///< empty when a registered handler serves
};

void EventQueue::CommitRestore(double now, uint32_t next_gen,
                               uint64_t executed,
                               std::vector<PendingRestore> entries) {
  now_ = now;
  next_gen_ = next_gen;
  executed_ = executed;
  heap_.clear();
  slots_.clear();
  free_head_ = kNilSlot;
  tombstones_ = 0;
  uint32_t max_slot = 0;
  for (const PendingRestore& entry : entries) {
    max_slot = std::max(max_slot, entry.slot);
  }
  slots_.resize(entries.empty() ? 0 : static_cast<size_t>(max_slot) + 1);
  heap_.reserve(entries.size());
  for (PendingRestore& entry : entries) {
    Slot& s = slots_[entry.slot];
    s.gen = entry.gen;
    s.kind = entry.kind;
    s.payload = entry.payload;
    s.action = std::move(entry.action);
    heap_.push_back(HeapKey{entry.time, entry.gen, entry.slot});
  }
  // Unoccupied slots join the free list lowest-index-first, keeping token
  // assignment after a restore deterministic.
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].gen == kFreeGen) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
  }
  live_ = entries.size();
  if (heap_.size() > 1) {
    for (size_t i = (heap_.size() - 2) >> 2; ; --i) {
      SiftDown(i);
      if (i == 0) break;
    }
  }
}

Status EventQueue::Restore(ByteReader* in, const ActionFactory& factory) {
  if (!heap_.empty() || live_ != 0) {
    return Status::InvalidArgument(
        "event queue restore requires an empty queue");
  }
  uint64_t first_word;
  VOD_RETURN_IF_ERROR(in->ReadU64(&first_word));
  if (first_word == kSnapshotMagicV2) return RestoreV2(in, factory);
  // PR 3-era layout: the first word is the clock's IEEE bit pattern.
  const double now = std::bit_cast<double>(first_word);
  uint64_t next_seq, executed, count;
  VOD_RETURN_IF_ERROR(in->ReadU64(&next_seq));
  VOD_RETURN_IF_ERROR(in->ReadU64(&executed));
  VOD_RETURN_IF_ERROR(in->ReadU64(&count));

  struct V1Entry {
    double time;
    uint64_t seq;
    uint64_t kind;
    uint64_t payload;
  };
  std::vector<V1Entry> raw;
  raw.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    V1Entry entry;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&entry.time));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.seq));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.kind));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.payload));
    if (!(entry.time >= now)) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry at t=" +
          std::to_string(entry.time) + " precedes the snapshot clock t=" +
          std::to_string(now));
    }
    if (entry.seq >= next_seq) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry seq " +
          std::to_string(entry.seq) + " >= sequence counter " +
          std::to_string(next_seq));
    }
    raw.push_back(entry);
  }

  // The old format ordered by a 64-bit sequence; generations replicate that
  // order by ranking the stored sequences. (Old token values are seq-based
  // and are not honored after a cross-format restore.)
  std::vector<size_t> by_seq(raw.size());
  std::iota(by_seq.begin(), by_seq.end(), size_t{0});
  std::sort(by_seq.begin(), by_seq.end(), [&raw](size_t a, size_t b) {
    return raw[a].seq < raw[b].seq;
  });
  std::vector<PendingRestore> entries(raw.size());
  for (size_t rank = 0; rank < by_seq.size(); ++rank) {
    const V1Entry& src = raw[by_seq[rank]];
    PendingRestore& dst = entries[by_seq[rank]];
    dst.time = src.time;
    dst.gen = static_cast<uint32_t>(rank);
    dst.slot = static_cast<uint32_t>(rank);
    dst.kind = src.kind;
    dst.payload = src.payload;
    if (!(src.kind < handlers_.size() && handlers_[src.kind] != nullptr)) {
      dst.action = factory(src.kind, src.payload, src.time);
      if (!dst.action) {
        return Status::InvalidArgument(
            "event queue restore: factory rejected event kind " +
            std::to_string(src.kind));
      }
    }
  }
  // Evaluated before the move below — argument order is unspecified.
  const uint32_t restored_gen = static_cast<uint32_t>(entries.size());
  CommitRestore(now, restored_gen, executed, std::move(entries));
  return Status::OK();
}

Status EventQueue::RestoreV2(ByteReader* in, const ActionFactory& factory) {
  double now;
  uint64_t next_gen, executed, count;
  VOD_RETURN_IF_ERROR(in->ReadDouble(&now));
  VOD_RETURN_IF_ERROR(in->ReadU64(&next_gen));
  VOD_RETURN_IF_ERROR(in->ReadU64(&executed));
  VOD_RETURN_IF_ERROR(in->ReadU64(&count));
  if (next_gen > kFreeGen) {
    return Status::InvalidArgument(
        "event queue snapshot corrupt: generation counter " +
        std::to_string(next_gen) + " out of range");
  }

  std::vector<PendingRestore> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PendingRestore entry;
    uint64_t token, kind;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&entry.time));
    VOD_RETURN_IF_ERROR(in->ReadU64(&token));
    VOD_RETURN_IF_ERROR(in->ReadU64(&kind));
    VOD_RETURN_IF_ERROR(in->ReadU64(&entry.payload));
    entry.gen = static_cast<uint32_t>(token >> 32);
    entry.slot = static_cast<uint32_t>(token);
    entry.kind = kind;
    if (!(entry.time >= now)) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry at t=" +
          std::to_string(entry.time) + " precedes the snapshot clock t=" +
          std::to_string(now));
    }
    if (entry.gen == kFreeGen || entry.gen >= next_gen) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: entry seq " +
          std::to_string(entry.gen) + " >= sequence counter " +
          std::to_string(next_gen));
    }
    if (entry.slot >= kMaxRestoreSlot) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: slot " +
          std::to_string(entry.slot) + " is implausibly large");
    }
    if (!(kind < handlers_.size() && handlers_[kind] != nullptr)) {
      entry.action = factory(kind, entry.payload, entry.time);
      if (!entry.action) {
        return Status::InvalidArgument(
            "event queue restore: factory rejected event kind " +
            std::to_string(kind));
      }
    }
    entries.push_back(std::move(entry));
  }
  // Reject blobs that map two events to one slot — tokens would alias.
  std::vector<PendingRestore*> by_slot;
  by_slot.reserve(entries.size());
  for (PendingRestore& entry : entries) by_slot.push_back(&entry);
  std::sort(by_slot.begin(), by_slot.end(),
            [](const PendingRestore* a, const PendingRestore* b) {
              return a->slot < b->slot;
            });
  for (size_t i = 1; i < by_slot.size(); ++i) {
    if (by_slot[i]->slot == by_slot[i - 1]->slot) {
      return Status::InvalidArgument(
          "event queue snapshot corrupt: duplicate slot " +
          std::to_string(by_slot[i]->slot));
    }
  }
  CommitRestore(now, static_cast<uint32_t>(next_gen), executed,
                std::move(entries));
  return Status::OK();
}

}  // namespace vod
