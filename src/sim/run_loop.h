// Compile-time specialization matrix for the per-event observer.
//
// The event kernel's RunUntil already instantiates its loop with and without
// an observer; this header names the *observer-side* matrix. A run is
// observed along two independent axes — invariant auditing and telemetry
// (metrics gauges / trace emission) — and the drivers (simulator.cc,
// server.cc) instantiate one observer function per combination, selected
// once per run through this enum. The runtime `if (auditor) ... if
// (registry) ...` masks the hot loop used to re-evaluate per event are gone:
// each instantiation contains only the code its variant needs, and the
// kPlain variant installs no observer at all, so the kernel runs its
// unobserved loop. std::function observers survive only on the cold
// configuration path (EventQueue::set_observer's boxing overload).

#ifndef VOD_SIM_RUN_LOOP_H_
#define VOD_SIM_RUN_LOOP_H_

namespace vod {

/// The four observer instantiations a driver chooses between, once per run.
enum class RunLoopVariant {
  kPlain,          ///< no auditor, no telemetry: no observer installed
  kAudited,        ///< invariant auditor only
  kTraced,         ///< telemetry (gauges/trace) only
  kAuditedTraced,  ///< both
};

/// Folds the two observation axes into the variant enum.
constexpr RunLoopVariant ComposeRunLoopVariant(bool audited, bool traced) {
  if (audited && traced) return RunLoopVariant::kAuditedTraced;
  if (audited) return RunLoopVariant::kAudited;
  if (traced) return RunLoopVariant::kTraced;
  return RunLoopVariant::kPlain;
}

}  // namespace vod

#endif  // VOD_SIM_RUN_LOOP_H_
