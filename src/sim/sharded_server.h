// Sharded multi-core simulation of one giant server.
//
// The movies of one simulated server are partitioned across shards
// (movie i -> shard i % shards); each shard owns its movies' event kernel,
// viewer slabs, metrics, and stream-credit ledgers outright and runs them on
// a worker thread. Simulated time advances in fixed windows: all shards run
// their private EventQueues to the window end in parallel (the thread-pool
// join is the barrier), then the single-threaded coordinator handles every
// cross-movie interaction — disk-fault capacity changes, reserve-credit
// redistribution, controller arrival replay / wakeups / layout commits,
// conservation audits, and checkpoints — before releasing the next window.
//
// Determinism across shard counts is by construction, not by luck:
//   * every movie's RNG stream derives from its *global* index (the same
//     CellSeed discipline the experiment grid uses);
//   * movies interact with nothing shard-local except their own per-movie
//     supplier/metrics, so cross-movie event interleaving inside a shard
//     cannot influence any number;
//   * every coordinator computation iterates movies in global index order
//     and every mailbox message is keyed by movie, making the message
//     stream itself shard-count-invariant;
//   * the windowed credit semantics below are *the* semantics of a sharded
//     run — a one-shard run uses the identical barrier path, so reports are
//     byte-identical for shards ∈ {1, 2, ..., N} and any thread count.
//
// Reserve semantics (vs. the live shared counter of RunServerSimulation):
// the global reserve is lent to movies as per-window acquisition credits,
// redistributed at each barrier by demand-weighted largest-remainder
// apportionment. A movie that exhausts its credit mid-window is refused
// (the same hard-refusal surface the seed model has); a fault that shrinks
// capacity below what is already held converts the deficit into retirement
// debt, repaid from releases before any stream is re-lent. The
// shard-reserve-ledger audit law checks Σ(held + credit − debt) == capacity
// at every barrier.
//
// Degradation semantics (base.degradation.enabled): the ladder is *windowed*
// (sim/degradation.h, ComputeWindowedLevel/StepWindowedLadder). Shards
// accumulate pressure locally — queue depth, queued-VCR outcomes, held
// streams — and publish it through the mailboxes; the barrier sums it in
// global movie order, steps the pure hysteresis ladder (degrading rungs
// apply immediately, recovery needs ladder_recover_windows consecutive calm
// windows), and broadcasts the new rung plus per-movie forced-reclaim quotas
// (largest-remainder over holdings) that shards apply at the next window
// open. The decision therefore lags live pressure by at most one window —
// the quantified semantic delta vs. the single-server per-event ladder (see
// EXPERIMENTS.md) — but it is a pure function of summed pressure, which the
// shard-ladder-rung/-reclaim/-queue audit laws re-verify at every barrier,
// and it folds into the ledger-digest chain so checkpoints replay-verify it.

#ifndef VOD_SIM_SHARDED_SERVER_H_
#define VOD_SIM_SHARDED_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/server.h"

namespace vod {

/// Replay-verify checkpointing for a sharded run (see DESIGN.md §12.5):
/// the checkpoint pins the run's identity (config fingerprint + shard
/// count) and its trajectory (a ledger-digest chain sampled at barriers).
/// Resume replays deterministically from t = 0 and *verifies* the digest at
/// the checkpointed window — a divergence (corrupted state, changed binary,
/// changed config) is an Internal error instead of a silently different
/// report.
struct ShardedCheckpointOptions {
  /// Snapshot path; empty = checkpointing off.
  std::string path;
  /// Windows between snapshots.
  int64_t every_windows = 8;
  /// Resume from `path` if it exists (fresh run otherwise). The snapshot's
  /// shard count must match the run's — a changed shard count is rejected
  /// with InvalidArgument (determinism makes the restriction unnecessary in
  /// principle, but a mismatch almost always means a mis-assembled resume
  /// command, and refusing loudly beats re-running 10M viewers to discover
  /// it).
  bool resume = false;
  /// Test hook: stop (with report.complete = false) after this many windows,
  /// writing a final checkpoint — in-process crash emulation for the
  /// round-trip tests. <= 0 runs to the horizon.
  int64_t stop_after_windows = 0;
};

/// Crash flight recorder wiring (obs/flight_recorder.h): the coordinator
/// always retains a bounded ring of barrier-window ledger summaries plus
/// one bounded event ring per shard, and dumps the whole context as a
/// postmortem bundle when an audit law fails, a resumed run's
/// replay-verify digest rejects, or a checkpoint write fails. Render the
/// bundle with `vodctl inspect --postmortem=PATH`.
struct ShardedPostmortemOptions {
  /// Bundle path; empty = record (cheap, always-on) but never dump.
  std::string path;
  /// Barrier windows of ledger history retained.
  int64_t windows = 16;
  /// Per-shard trace events retained. The rings only fill while the shard
  /// telemetry lanes are lit — tracing enabled or `path` non-empty — so a
  /// dark run pays nothing per event.
  int64_t events_per_shard = 256;
};

/// Knobs of a sharded run, wrapping the single-threaded server's options.
struct ShardedServerOptions {
  /// Base options. Faults, audit, the controller, the degradation ladder
  /// (windowed — see the header comment), and observability (obs.event_log
  /// / obs.metrics / obs.profiler; see DESIGN.md §14 for the per-shard
  /// telemetry lanes and the barrier merge) are all supported,
  /// simultaneously.
  ServerOptions base;
  /// Shards the movie catalog is partitioned over (movie i -> i % shards).
  int shards = 1;
  /// Worker threads executing shard windows; results never depend on it.
  int threads = 1;
  /// Barrier cadence in simulated minutes.
  double window_minutes = 60.0;
  /// Consecutive calm windows (raw level below the held rung) before the
  /// windowed ladder steps down — hysteresis against rung flapping. Only
  /// read when base.degradation.enabled; must be >= 1.
  int64_t ladder_recover_windows = 2;
  ShardedCheckpointOptions checkpoint;
  ShardedPostmortemOptions postmortem;
  /// Test hook: at this barrier window (1-based), misstate movie 0's held
  /// count by +1 in the coordinator's *audit snapshot copy* — the
  /// simulation trajectory is untouched, but the shard-reserve-ledger law
  /// fires, proving an injected audit failure produces a postmortem bundle.
  /// Requires base.audit.enabled; <= 0 = off.
  int64_t corrupt_audit_window = 0;
};

/// Outcome of a sharded run. `server` carries the same per-movie and
/// reserve aggregates RunServerSimulation reports; `aggregate` pools every
/// movie's metrics through SimulationMetrics::MergeFrom (in global movie
/// order) into one whole-server view.
struct ShardedServerReport {
  ServerReport server;
  /// All movies' metrics merged into one report (hit probabilities with
  /// exact per-stream batch-means uncertainty, pooled waits/quantiles).
  SimulationReport aggregate;

  int64_t windows = 0;
  double window_minutes = 0.0;
  /// Mailbox traffic totals; per-movie message keying makes them invariant
  /// across shard counts, so they print in ToString as a free determinism
  /// cross-check.
  uint64_t messages_posted = 0;
  uint64_t messages_drained = 0;
  /// FNV-1a chain over every barrier's ledger (capacity + per-movie
  /// held/credit/debt/entered/exited) — the run's trajectory fingerprint.
  uint64_t ledger_digest = 0;

  /// Execution-shape diagnostics, excluded from ToString: reports must be
  /// byte-identical across shard/thread counts, and `complete` only varies
  /// via the stop_after_windows test hook.
  int shards = 0;
  int threads = 0;
  uint64_t executed_events = 0;
  bool complete = true;

  /// Deterministic full-precision serialization; byte-identical across
  /// shard counts and thread counts for a fixed configuration.
  std::string ToString() const;
};

/// Validates sharded options (on top of ValidateServerInputs on the base).
Status ValidateShardedInputs(const std::vector<ServerMovieSpec>& movies,
                             const ShardedServerOptions& options);

/// \brief Runs the sharded simulation to the horizon.
///
/// Deterministic in options.base.seed; byte-identical for any
/// (shards, threads) pair. With audit enabled, a violated conservation law
/// (including the cross-shard laws) returns the auditor's error Status.
Result<ShardedServerReport> RunShardedServerSimulation(
    const std::vector<ServerMovieSpec>& movies,
    const ShardedServerOptions& options);

}  // namespace vod

#endif  // VOD_SIM_SHARDED_SERVER_H_
