// Graceful-degradation ladder over the shared dynamic stream reserve.
//
// The seed server reproduced the paper's warning as a hard cliff: a dry
// reserve refuses FF/RW outright and stalls resumes. A production server
// must keep serving under disk failures and overload by *degrading policy*,
// not by dropping viewers. ReserveManager wraps the reserve with
// time-varying capacity (fed by storage/fault_injector.h) and walks a
// declared degradation ladder as capacity erodes:
//
//   L0 kNormal       reserve healthy; requests granted immediately.
//   L1 kQueueing     reserve dry: FF/RW requests queue with a retry
//                    deadline and exponential-backoff re-offers instead of
//                    being refused.
//   L2 kShedVcr      deep capacity loss: new VCR phase-1 requests are
//                    denied outright (queue admission closes).
//   L3 kReclaim      capacity fell below in-use (oversubscribed): post-miss
//                    dedicated streams are forcibly reclaimed — their
//                    viewers fall back to pure-batching service (stall
//                    until the next partition window covers them).
//   L4 kBatchingOnly catastrophic loss: every dedicated stream is
//                    reclaimed and all VCR service is denied; the server
//                    runs as a pure batching system until repairs land.
//
// Every transition is recorded (time, from, to) and the time spent in each
// level is integrated, so a run can account for every refusal, stall, and
// degradation episode — no viewer session is ever silently dropped.

#ifndef VOD_SIM_DEGRADATION_H_
#define VOD_SIM_DEGRADATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "sim/event_queue.h"
#include "sim/stream_supplier.h"
#include "stats/quantile.h"
#include "stats/summary.h"
#include "stats/time_weighted.h"

namespace vod {

/// Rungs of the degradation ladder, shallow to deep.
enum class DegradationLevel {
  kNormal = 0,
  kQueueing = 1,
  kShedVcr = 2,
  kReclaim = 3,
  kBatchingOnly = 4,
};

inline constexpr int kNumDegradationLevels = 5;

/// Short stable name ("normal", "queueing", ...).
const char* DegradationLevelName(DegradationLevel level);

/// Knobs of the ladder. Fractions are of *nominal* (fault-free) capacity.
struct DegradationPolicy {
  /// Master switch. Off = the seed's hard-refusal semantics (requests are
  /// never queued, nothing is reclaimed); levels are still tracked for
  /// reporting when capacity varies.
  bool enabled = false;
  /// Longest a queued FF/RW request may wait before it is refused.
  double queue_deadline_minutes = 5.0;
  /// First re-offer delay; subsequent retries back off geometrically.
  double backoff_initial_minutes = 0.25;
  double backoff_factor = 2.0;
  /// Capacity below this fraction of nominal enters kShedVcr.
  double shed_below_fraction = 0.5;
  /// Capacity below this fraction of nominal enters kBatchingOnly.
  double batching_below_fraction = 0.2;

  Status Validate() const;
};

/// One recorded ladder transition.
struct DegradationTransition {
  double time = 0.0;
  DegradationLevel from = DegradationLevel::kNormal;
  DegradationLevel to = DegradationLevel::kNormal;
  int64_t capacity = 0;  ///< reserve capacity when the transition fired
};

// ---- windowed cross-shard ladder -----------------------------------------
//
// The sharded coordinator (sim/sharded_server) cannot run ReserveManager:
// the ladder there is inherently cross-shard-live, but shards only meet at
// window barriers. Instead each shard accumulates pressure locally and the
// barrier folds the per-movie sums into ONE global rung decision per window
// using the pure functions below. They mirror ReserveManager::ComputeLevel
// exactly, over summed state, and are shared with the auditor so the
// `shard-ladder-rung` law can recompute the decision bit-for-bit.

/// Global pressure summed across shards at a window barrier.
struct WindowedPressure {
  int64_t capacity = 0;          ///< current reserve capacity (post-faults)
  int64_t nominal_capacity = 0;  ///< fault-free reserve capacity
  int64_t sum_held = 0;          ///< Σ shard-held dedicated streams
  int64_t sum_queued = 0;        ///< Σ shard queue depth (waiting FF/RW)
};

/// Barrier-owned ladder state. `below_streak` counts consecutive windows
/// whose raw (memoryless) level sat strictly below the held level — the
/// hysteresis that keeps one quiet window from instantly lifting a rung.
struct WindowedLadderState {
  DegradationLevel level = DegradationLevel::kNormal;
  int64_t below_streak = 0;
};

/// Memoryless rung for the summed pressure — ReserveManager::ComputeLevel
/// with (in_use, queue) replaced by the cross-shard sums.
DegradationLevel ComputeWindowedLevel(const WindowedPressure& pressure,
                                      const DegradationPolicy& policy);

/// One barrier step of the windowed ladder: degradation (raw above held
/// level) applies immediately; recovery (raw below) must persist for
/// `recover_windows` consecutive windows before the rung drops to raw.
WindowedLadderState StepWindowedLadder(const WindowedLadderState& state,
                                       const WindowedPressure& pressure,
                                       const DegradationPolicy& policy,
                                       int64_t recover_windows);

/// \brief Stream reserve with time-varying capacity and a degradation ladder.
///
/// Implements StreamSupplier so MovieWorld uses it unchanged for the grant
/// path; the queueing path goes through TryQueueAcquire. Reclaim is
/// delegated to a hook the server installs (it knows the movie worlds).
class ReserveManager final : public StreamSupplier {
 public:
  /// `queue` must outlive the manager. Counters that pair with per-movie
  /// metrics (queue outcomes, denials, waits) honor `measurement_start`
  /// exactly like SimulationMetrics; raw acquire/refuse counters cover the
  /// whole run, matching FiniteStreamSupplier.
  ReserveManager(int64_t nominal_capacity, const DegradationPolicy& policy,
                 EventQueue* queue, double measurement_start);

  // ---- StreamSupplier -----------------------------------------------------
  bool TryAcquire(double t) override;
  void Release(double t) override;
  int64_t in_use() const override { return in_use_; }
  bool TryQueueAcquire(
      double t, std::function<void(double, bool)> on_decision) override;

  // ---- fault wiring -------------------------------------------------------
  /// Applies a capacity change (failure or repair). May trigger forced
  /// reclaim through the hook when the pool becomes oversubscribed or the
  /// ladder reaches kBatchingOnly.
  void SetCapacity(double t, int64_t capacity);

  /// Reclaims up to `need` dedicated streams across the movie worlds,
  /// returning how many were actually reclaimed. Installed by the server.
  using ReclaimHook = std::function<int64_t(double t, int64_t need)>;
  void set_reclaim_hook(ReclaimHook hook) { reclaim_hook_ = std::move(hook); }

  /// Closes the time-in-level integration at the horizon. Call once, after
  /// the event queue drains.
  void Finalize(double t);

  // ---- state --------------------------------------------------------------
  DegradationLevel level() const { return level_; }
  int64_t capacity() const { return capacity_; }
  int64_t nominal_capacity() const { return nominal_capacity_; }
  int64_t min_capacity_seen() const { return min_capacity_seen_; }
  int64_t oversubscription() const {
    return in_use_ > capacity_ ? in_use_ - capacity_ : 0;
  }
  int64_t max_oversubscription() const { return max_oversubscription_; }

  // ---- whole-run counters (FiniteStreamSupplier-compatible) ---------------
  int64_t refused() const { return refused_; }
  int64_t acquired() const { return acquired_; }
  int64_t peak_in_use() const { return peak_; }
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }

  // ---- resilience accounting (measurement window only) --------------------
  int64_t vcr_queued() const { return vcr_queued_; }
  int64_t vcr_queue_grants() const { return vcr_queue_grants_; }
  int64_t vcr_queue_expirations() const { return vcr_queue_expirations_; }
  int64_t vcr_denied() const { return vcr_denied_; }
  int64_t forced_reclaims() const { return forced_reclaims_; }
  const RunningStats& queued_wait() const { return queued_wait_; }
  const LatencyQuantiles& queued_wait_quantiles() const {
    return queued_wait_quantiles_;
  }

  // ---- ladder accounting (whole run) --------------------------------------
  const std::vector<DegradationTransition>& transitions() const {
    return transitions_;
  }
  int64_t total_transitions() const { return total_transitions_; }
  /// Time spent at `level` up to the last Finalize/transition.
  double time_in_level(DegradationLevel level) const {
    return time_in_level_[static_cast<int>(level)];
  }
  /// Durations of completed excursions out of kNormal (time-to-recover).
  const RunningStats& recovery_times() const { return recovery_times_; }
  int64_t queue_length() const {
    return static_cast<int64_t>(waiting_.size());
  }
  /// Waiters still queued whose request arrived inside the measurement
  /// window (the `pending` term of the queued-accounting identity).
  int64_t measured_queue_pending() const {
    int64_t n = 0;
    for (const Waiter& w : waiting_) {
      if (w.enqueued >= measurement_start_) ++n;
    }
    return n;
  }

 private:
  struct Waiter {
    uint64_t id = 0;
    double enqueued = 0.0;
    double deadline = 0.0;
    double backoff = 0.0;
    std::function<void(double, bool)> on_decision;
    EventToken deadline_token = kNoEvent;
    EventToken retry_token = kNoEvent;
  };

  bool InMeasurement(double t) const { return t >= measurement_start_; }
  /// Pure function of (capacity, in_use, queue) → ladder rung.
  DegradationLevel ComputeLevel() const;
  /// Records a level change (if any) at time t and runs entry actions
  /// (reclaim on kReclaim / kBatchingOnly).
  void UpdateLevel(double t);
  void GrantStream(double t);  // raw in_use_++ bookkeeping
  void OnRetry(double t, uint64_t waiter_id);
  void OnDeadline(double t, uint64_t waiter_id);
  /// Grants to queued waiters while capacity allows and the ladder permits.
  void DrainQueue(double t);
  std::deque<Waiter>::iterator FindWaiter(uint64_t waiter_id);

  int64_t nominal_capacity_;
  int64_t capacity_;
  DegradationPolicy policy_;
  EventQueue* queue_;
  double measurement_start_;

  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t refused_ = 0;
  int64_t acquired_ = 0;
  int64_t min_capacity_seen_;
  int64_t max_oversubscription_ = 0;
  TimeWeightedValue usage_;

  DegradationLevel level_ = DegradationLevel::kNormal;
  double level_since_ = 0.0;
  double time_in_level_[kNumDegradationLevels] = {0, 0, 0, 0, 0};
  std::vector<DegradationTransition> transitions_;
  int64_t total_transitions_ = 0;
  double excursion_start_ = 0.0;  ///< valid while level_ != kNormal
  RunningStats recovery_times_;

  std::deque<Waiter> waiting_;
  uint64_t next_waiter_id_ = 0;
  int64_t vcr_queued_ = 0;
  int64_t vcr_queue_grants_ = 0;
  int64_t vcr_queue_expirations_ = 0;
  int64_t vcr_denied_ = 0;
  int64_t forced_reclaims_ = 0;
  RunningStats queued_wait_;
  LatencyQuantiles queued_wait_quantiles_;

  ReclaimHook reclaim_hook_;
  bool reclaiming_ = false;  ///< guards against reclaim reentrancy
};

}  // namespace vod

#endif  // VOD_SIM_DEGRADATION_H_
