// One shard of the sharded multi-core server simulation.
//
// A shard owns a subset of the server's movies outright: their event kernel
// (one EventQueue per shard), viewer slabs, per-movie metrics, and per-movie
// stream-credit suppliers. Nothing a shard touches while a window runs is
// visible to any other thread; all cross-movie coupling (the shared disk
// reserve, the controller, faults) is quantized to the window barriers and
// carried by mailbox messages (common/mailbox.h). See sharded_server.h for
// the coordinator protocol and DESIGN.md §12 for the full semantics.
//
// The per-movie decomposition is what makes results independent of the
// shard count: every movie's RNG stream is derived from its *global* index,
// every supplier ledger is per movie, and every mailbox message is keyed by
// movie — so moving a movie between shards relocates computation without
// changing a single number.

#ifndef VOD_SIM_SHARD_H_
#define VOD_SIM_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mailbox.h"
#include "common/rng.h"
#include "ctrl/admission_gate.h"
#include "obs/event_log.h"
#include "sim/degradation.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/movie_world.h"
#include "sim/stream_supplier.h"

namespace vod {

/// \brief Per-movie stream source funded by barrier-granted credits.
///
/// The global reserve is distributed to movies as acquisition credits at
/// every window barrier. Within a window a movie spends only its own
/// credit — TryAcquire refuses when it is exhausted — so no cross-shard
/// state is touched on the hot path. Releases repay retirement debt first
/// (owed after a fault shrank capacity below what was already held), then
/// return to local credit. The coordinator's conservation law:
/// Σ over movies of (held + credit - debt) == global capacity, at every
/// barrier (the shard-reserve-ledger audit law).
///
/// When the degradation ladder is enabled (ArmLadder), the supplier also
/// carries the shard-side half of the windowed cross-shard ladder
/// (sim/degradation.h): the coordinator broadcasts a global rung once per
/// window, and within the window the supplier enforces it locally —
/// admission closes at >= kShedVcr, and refused FF/RW requests may queue
/// with the same deadline + exponential-backoff re-offer semantics as
/// ReserveManager, granted strictly from this movie's own credit. The
/// queue outcome counters feed the barrier's pressure fold and the
/// shard-ladder-queue conservation law. Unarmed (faults-only) sharded runs
/// are bit-for-bit unchanged.
class CreditStreamSupplier final : public StreamSupplier {
 public:
  CreditStreamSupplier() { usage_.Reset(0.0, 0.0); }

  bool TryAcquire(double t) override {
    if (armed_ && rung_ >= DegradationLevel::kShedVcr) {
      // The declared shedding order: a deep rung closes admission even if
      // credit is available (mirrors ReserveManager's admission_closed).
      ++refused_;
      ++window_refused_;
      return false;
    }
    if (credit_ <= 0) {
      ++refused_;
      ++window_refused_;
      return false;
    }
    GrantStream(t);
    return true;
  }

  void Release(double t) override {
    --held_;
    if (debt_ > 0) {
      --debt_;  // retire an over-held stream instead of re-lending it
    } else {
      ++credit_;
    }
    usage_.Set(t, static_cast<double>(held_));
  }

  int64_t in_use() const override { return held_; }

  /// Queues a refused FF/RW request for a deadline-bounded wait, exactly
  /// like ReserveManager::TryQueueAcquire but gated by the windowed rung
  /// instead of a live ladder. No-op (refusal) unless the ladder is armed.
  bool TryQueueAcquire(
      double t, std::function<void(double, bool)> on_decision) override;

  /// Barrier-side ledger rewrite (coordinator redistribution).
  void SetLedger(int64_t credit, int64_t debt) {
    credit_ = credit;
    debt_ = debt;
  }

  // ---- windowed ladder (shard side) ---------------------------------------
  /// Arms the shard-side ladder machinery. `queue` (the owning shard's
  /// event kernel) must outlive the supplier; `measurement_start` scopes the
  /// queue-outcome counters exactly like ReserveManager.
  void ArmLadder(const DegradationPolicy& policy, EventQueue* queue,
                 double measurement_start) {
    armed_ = true;
    policy_ = policy;
    queue_ = queue;
    measurement_start_ = measurement_start;
  }
  bool ladder_armed() const { return armed_; }

  /// Coordinator rung broadcast, applied at the window open that drains it.
  void SetRung(DegradationLevel rung) { rung_ = rung; }
  DegradationLevel rung() const { return rung_; }

  /// Records the barrier-issued reclaim quota and how much of it the shard
  /// actually reclaimed at window open (echoed back for the
  /// shard-ladder-reclaim audit law).
  void NoteReclaim(int64_t quota, int64_t applied) {
    window_quota_ = quota;
    window_reclaimed_ = applied;
  }

  /// Window-open hook: re-offers queued requests against the fresh credit
  /// grant and the just-applied rung.
  void OpenWindow(double t);

  int64_t held() const { return held_; }
  int64_t credit() const { return credit_; }
  int64_t debt() const { return debt_; }
  int64_t refused() const { return refused_; }
  int64_t acquired() const { return acquired_; }
  int64_t peak_held() const { return peak_held_; }
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }

  // ---- queue accounting (measurement window only, ladder armed) -----------
  int64_t queue_length() const {
    return static_cast<int64_t>(waiting_.size());
  }
  int64_t vcr_queued() const { return vcr_queued_; }
  int64_t vcr_queue_grants() const { return vcr_queue_grants_; }
  int64_t vcr_queue_expirations() const { return vcr_queue_expirations_; }
  int64_t vcr_denied() const { return vcr_denied_; }
  /// Waiters still queued whose request arrived inside the measurement
  /// window (the `pending` term of the queued-accounting identity).
  int64_t measured_queue_pending() const {
    int64_t n = 0;
    for (const Waiter& w : waiting_) {
      if (w.enqueued >= measurement_start_) ++n;
    }
    return n;
  }
  const RunningStats& queued_wait() const { return queued_wait_; }
  const LatencyQuantiles& queued_wait_quantiles() const {
    return queued_wait_quantiles_;
  }

  /// Demand observed since the last barrier (refusals + grants); the
  /// coordinator weights next window's credit split by it, then resets.
  int64_t window_refused() const { return window_refused_; }
  int64_t window_acquired() const { return window_acquired_; }
  /// Reclaim quota received / applied at this window's open (echo terms).
  int64_t window_quota() const { return window_quota_; }
  int64_t window_reclaimed() const { return window_reclaimed_; }
  void ResetWindow() {
    window_refused_ = 0;
    window_acquired_ = 0;
    window_quota_ = 0;
    window_reclaimed_ = 0;
  }

 private:
  struct Waiter {
    uint64_t id = 0;
    double enqueued = 0.0;
    double deadline = 0.0;
    double backoff = 0.0;
    std::function<void(double, bool)> on_decision;
    EventToken deadline_token = kNoEvent;
    EventToken retry_token = kNoEvent;
  };

  bool InMeasurement(double t) const { return t >= measurement_start_; }
  void GrantStream(double t) {
    --credit_;
    ++held_;
    ++acquired_;
    ++window_acquired_;
    if (held_ > peak_held_) peak_held_ = held_;
    usage_.Set(t, static_cast<double>(held_));
  }
  void OnRetry(double t, uint64_t waiter_id);
  void OnDeadline(double t, uint64_t waiter_id);
  /// Grants to queued waiters FIFO while credit remains and the rung allows.
  void DrainQueue(double t);
  std::deque<Waiter>::iterator FindWaiter(uint64_t waiter_id);

  int64_t credit_ = 0;
  int64_t held_ = 0;
  int64_t debt_ = 0;
  int64_t refused_ = 0;
  int64_t acquired_ = 0;
  int64_t peak_held_ = 0;
  int64_t window_refused_ = 0;
  int64_t window_acquired_ = 0;
  TimeWeightedValue usage_{};

  // Windowed-ladder state; inert until ArmLadder.
  bool armed_ = false;
  DegradationPolicy policy_;
  EventQueue* queue_ = nullptr;
  double measurement_start_ = 0.0;
  DegradationLevel rung_ = DegradationLevel::kNormal;
  std::deque<Waiter> waiting_;
  uint64_t next_waiter_id_ = 0;
  int64_t vcr_queued_ = 0;
  int64_t vcr_queue_grants_ = 0;
  int64_t vcr_queue_expirations_ = 0;
  int64_t vcr_denied_ = 0;
  int64_t window_quota_ = 0;
  int64_t window_reclaimed_ = 0;
  RunningStats queued_wait_;
  LatencyQuantiles queued_wait_quantiles_;
};

/// \brief Admission gate that records offered arrivals instead of deciding.
///
/// In sharded mode the controller lives above the barrier and cannot be
/// consulted per arrival. Every arrival is admitted shard-side, and the
/// (time, movie) record is replayed into the controller's rate estimators
/// at the next barrier. Pressure-driven shedding still happens — but
/// through the windowed rung the barrier broadcasts to every supplier
/// (admission closes at >= kShedVcr), not per arrival; the decision lags
/// live pressure by at most one window.
class RecordingGate final : public AdmissionGate {
 public:
  struct Offered {
    double t = 0.0;
    int32_t movie = -1;
  };

  bool OnArrival(int32_t movie, double t) override {
    offered_.push_back(Offered{t, movie});
    return true;
  }

  /// Coordinator-side: moves out everything recorded this window.
  std::vector<Offered> TakeOffered() {
    std::vector<Offered> out;
    out.swap(offered_);
    return out;
  }

 private:
  std::vector<Offered> offered_;
};

/// Message kinds on the shard <-> coordinator mailboxes. Every message is
/// keyed by global movie index, so for a fixed configuration the per-movie
/// message stream is identical for every shard count.
enum ShardMessageKind : uint32_t {
  /// shard -> coordinator, one per movie per window:
  /// a=held, b=credit, c=debt, x=window_refused, y=window_acquired.
  kShardMsgLedger = 1,
  /// shard -> coordinator, one per movie per window:
  /// a=entered, b=exited, c=live.
  kShardMsgViewers = 2,
  /// coordinator -> shard: a=credit, b=debt.
  kShardMsgCreditSet = 3,
  /// coordinator -> shard: a=streams, x=movie_length, y=buffer_minutes
  /// (a controller layout commit, applied at the next window start).
  kShardMsgLayout = 4,
  /// shard -> coordinator, one per movie per window when the ladder is
  /// armed: a=queue_length, b=vcr_queued, c=vcr_queue_grants,
  /// x=vcr_queue_expirations, y=measured_queue_pending. (The double fields
  /// carry integer counts; they are exact well past any feasible count.)
  kShardMsgLadderPressure = 5,
  /// shard -> coordinator, one per movie per window when the ladder is
  /// armed: a=reclaim quota received at window open, b=streams actually
  /// reclaimed against it.
  kShardMsgReclaimEcho = 6,
  /// coordinator -> shard, one per movie per window when the ladder is
  /// armed: a=global rung, b=this movie's forced-reclaim quota.
  kShardMsgRung = 7,
};

/// \brief One shard: a private event kernel plus the movies it owns.
///
/// Single-threaded within a window; the coordinator guarantees at most one
/// thread runs a shard at a time and reads its state only between windows.
class ServerShard {
 public:
  /// One movie assigned to this shard.
  struct MovieSlot {
    int32_t global_index = -1;
    std::unique_ptr<CreditStreamSupplier> supplier;
    std::unique_ptr<SimulationMetrics> metrics;
    std::unique_ptr<MovieWorld> world;
    /// Reclaim quota from the latest rung message, consumed at window open.
    int64_t pending_reclaim = 0;
  };

  ServerShard(int shard_index, ShardMailbox* inbox, ShardMailbox* outbox)
      : shard_index_(shard_index), inbox_(inbox), outbox_(outbox) {}

  ServerShard(const ServerShard&) = delete;
  ServerShard& operator=(const ServerShard&) = delete;

  EventQueue& queue() { return queue_; }
  RecordingGate& gate() { return gate_; }
  int shard_index() const { return shard_index_; }

  /// \brief The shard's private telemetry lane (DESIGN.md §14).
  ///
  /// Movie worlds on this shard emit into the lane instead of the main bus;
  /// with no sinks attached every emission site costs one branch, so a dark
  /// run pays nothing. The coordinator arms the lane before the run (mask +
  /// buffer/ring sinks) and drains lane_buffer() at each barrier for the
  /// deterministic (window, shard, local-seq) merge into the main bus. Lane
  /// payloads are deterministic by contract — never wall clock.
  EventLog& lane() { return lane_; }
  VectorSink& lane_buffer() { return lane_buffer_; }

  std::vector<MovieSlot>& movies() { return movies_; }
  const std::vector<MovieSlot>& movies() const { return movies_; }

  void AddMovie(MovieSlot slot) { movies_.push_back(std::move(slot)); }

  /// Schedules every owned movie's first arrival.
  void Start() {
    for (MovieSlot& m : movies_) m.world->Start();
  }

  /// \brief Runs one window: drains the inbox (credit grants, layout
  /// commits, rung broadcasts), applies rung entry actions (forced reclaim
  /// against the barrier quota, queued-request re-offers), executes all
  /// events up to and including `t_end`, then posts one ledger and one
  /// viewer summary — plus ladder pressure and reclaim-echo messages when
  /// the ladder is armed — per owned movie.
  ///
  /// `t_start` is the barrier time the drained messages were posted at;
  /// layout commits re-anchor there (never in this window's past).
  void RunWindow(double t_start, double t_end);

 private:
  int shard_index_;
  ShardMailbox* inbox_;   ///< coordinator -> this shard
  ShardMailbox* outbox_;  ///< this shard -> coordinator
  EventQueue queue_;
  RecordingGate gate_;
  EventLog lane_;
  VectorSink lane_buffer_;
  std::vector<MovieSlot> movies_;
};

}  // namespace vod

#endif  // VOD_SIM_SHARD_H_
