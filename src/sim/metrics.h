// Measurement collection for simulation runs.

#ifndef VOD_SIM_METRICS_H_
#define VOD_SIM_METRICS_H_

#include <array>
#include <cstdint>

#include "common/status.h"
#include "core/types.h"
#include "stats/batch_means.h"
#include "stats/quantile.h"
#include "stats/summary.h"
#include "stats/time_weighted.h"

namespace vod {

/// Why a VCR resume released (or failed to release) its dedicated stream.
enum class ResumeOutcome {
  kHitWithin,   ///< rejoined the partition the operation started from
  kHitJump,     ///< joined a different partition
  kEndOfMovie,  ///< fast-forwarded to the end (released; paper's P(end))
  kMiss,        ///< resumed in a gap; keeps the dedicated stream
};

/// \brief Accumulates everything a simulation run reports.
///
/// Metrics honor a warmup boundary: events before `measurement_start` are
/// counted separately and excluded from the headline estimators.
class SimulationMetrics {
 public:
  explicit SimulationMetrics(double measurement_start)
      : measurement_start_(measurement_start) {
    dedicated_streams_.Reset(measurement_start, 0.0);
    concurrent_viewers_.Reset(measurement_start, 0.0);
  }

  double measurement_start() const { return measurement_start_; }

  /// Records a VCR resume. `in_partition_before` marks viewers who were
  /// sharing a partition when they issued the operation (the analytic model
  /// assumes all are).
  void RecordResume(double t, VcrOp op, ResumeOutcome outcome,
                    bool in_partition_before);

  /// Records a viewer admission. `wait` is the queueing delay before
  /// playback starts (0 for type-2 viewers who join a partition on arrival).
  void RecordAdmission(double t, double wait, bool type2);

  void RecordCompletion(double t);

  /// A FF/RW request refused because no dedicated stream was available.
  void RecordBlockedVcr(double t);

  /// A resume stalled (no stream for a miss); `wait` is the forced pause
  /// until a partition window swept over the viewer's position.
  void RecordStall(double t, double wait);

  /// A FF/RW request entered the supplier's wait queue instead of being
  /// refused outright (degraded-mode queueing, sim/degradation.h).
  void RecordQueuedVcr(double t);

  /// A dedicated stream was forcibly reclaimed from this movie's viewer
  /// (graceful degradation under capacity loss).
  void RecordForcedReclaim(double t);

  /// A piggyback merge completed `drift` minutes after the miss.
  void RecordPiggybackMerge(double t, double drift);

  /// Step changes of the dedicated-stream count / viewer count.
  void SetDedicatedStreams(double t, int64_t count);
  void SetConcurrentViewers(double t, int64_t count);

  /// \brief Pools another collector's measurements (per-shard collection:
  /// each shard observes a disjoint slice of one run's events over the same
  /// clock, e.g. one movie of a multi-movie server).
  ///
  /// Counts, proportion estimators, and running stats merge exactly (the
  /// merged values equal single-stream collection of the concatenated
  /// event sequence, Welford means up to FP rounding). Batch means merge
  /// exactly with per-stream batch formation — completed batches are the
  /// union of the shards' batches and partial remainders are carried, never
  /// folded into a cross-stream batch (see BatchMeans::Merge); P² wait
  /// quantiles pool approximately (see
  /// P2Quantile::Merge); time-weighted levels sum pointwise, so their
  /// max/min become bounds that are exact only when shard peaks coincide.
  /// InvalidArgument when the warmup boundaries differ.
  Status MergeFrom(const SimulationMetrics& other);

  // ---- accessors ---------------------------------------------------------
  const ProportionEstimator& hit_all() const { return hit_all_; }
  const ProportionEstimator& hit_by_op(VcrOp op) const {
    return hit_by_op_[static_cast<int>(op)];
  }
  /// Hit estimate restricted to resumes issued from inside a partition.
  const ProportionEstimator& hit_in_partition(VcrOp op) const {
    return hit_in_partition_[static_cast<int>(op)];
  }
  const ProportionEstimator& hit_in_partition_all() const {
    return hit_in_partition_all_;
  }
  /// Batch-means view of the same estimator: autocorrelation-robust CI.
  const BatchMeans& hit_in_partition_batches() const {
    return hit_in_partition_batches_;
  }

  int64_t resumes(ResumeOutcome outcome) const {
    return outcome_counts_[static_cast<int>(outcome)];
  }
  int64_t total_resumes() const { return total_resumes_; }
  int64_t admissions() const { return admissions_; }
  int64_t type2_admissions() const { return type2_admissions_; }
  int64_t completions() const { return completions_; }
  int64_t blocked_vcr() const { return blocked_vcr_; }
  int64_t stalls() const { return stalls_; }
  int64_t queued_vcr() const { return queued_vcr_; }
  int64_t forced_reclaims() const { return forced_reclaims_; }
  int64_t piggyback_merges() const { return piggyback_merges_; }
  const RunningStats& stall_time() const { return stall_time_; }
  const RunningStats& merge_drift_time() const { return merge_drift_time_; }
  const RunningStats& wait_time() const { return wait_time_; }
  /// Streaming p50/p90/p99 of admission waits.
  const LatencyQuantiles& wait_quantiles() const { return wait_quantiles_; }
  const TimeWeightedValue& dedicated_streams() const {
    return dedicated_streams_;
  }
  const TimeWeightedValue& concurrent_viewers() const {
    return concurrent_viewers_;
  }

 private:
  bool InMeasurement(double t) const { return t >= measurement_start_; }

  double measurement_start_;
  ProportionEstimator hit_all_;
  ProportionEstimator hit_in_partition_all_;
  /// 500 resumes per batch keeps 20+ batches for the Fig-7 run lengths.
  BatchMeans hit_in_partition_batches_{500};
  std::array<ProportionEstimator, 3> hit_by_op_;
  std::array<ProportionEstimator, 3> hit_in_partition_;
  std::array<int64_t, 4> outcome_counts_ = {0, 0, 0, 0};
  int64_t total_resumes_ = 0;
  int64_t admissions_ = 0;
  int64_t type2_admissions_ = 0;
  int64_t completions_ = 0;
  int64_t blocked_vcr_ = 0;
  int64_t stalls_ = 0;
  int64_t queued_vcr_ = 0;
  int64_t forced_reclaims_ = 0;
  int64_t piggyback_merges_ = 0;
  RunningStats stall_time_;
  RunningStats merge_drift_time_;
  RunningStats wait_time_;
  LatencyQuantiles wait_quantiles_;
  TimeWeightedValue dedicated_streams_;
  TimeWeightedValue concurrent_viewers_;
};

}  // namespace vod

#endif  // VOD_SIM_METRICS_H_
