// VCR activity tracing and behavior fitting.
//
// The paper assumes "the pdf of VCR requests can be obtained by statistics
// while the movie is displayed" (§2.1). This module closes that loop: the
// simulator (standing in for a production server) logs every VCR operation
// into a VcrTrace; FitBehaviorFromTrace turns the log into an operation mix
// plus empirical duration distributions that plug straight into the
// analytic model and the sizing pipeline.

#ifndef VOD_SIM_TRACE_H_
#define VOD_SIM_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "core/hit_model.h"
#include "core/types.h"

namespace vod {

/// One logged VCR operation.
struct VcrTraceRecord {
  double time = 0.0;      ///< simulation time of the request
  VcrOp op = VcrOp::kFastForward;
  double duration = 0.0;  ///< the sampled duration parameter x
};

/// \brief Append-only log of VCR operations.
class VcrTrace {
 public:
  void Record(double time, VcrOp op, double duration) {
    records_.push_back({time, op, duration});
  }

  const std::vector<VcrTraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Count of records of one operation type.
  int64_t CountOf(VcrOp op) const;

  /// Durations of one operation type, in log order.
  std::vector<double> DurationsOf(VcrOp op) const;

  /// Writes "time,op,duration" CSV (with header).
  void WriteCsv(std::ostream& os) const;

  /// Parses the CSV format written by WriteCsv.
  static Result<VcrTrace> ReadCsv(std::istream& is);

 private:
  std::vector<VcrTraceRecord> records_;
};

/// Behavior model estimated from a trace.
struct FittedVcrBehavior {
  VcrMix mix;
  /// Empirical duration distribution per operation; null for operations
  /// absent from the trace (their mix probability is 0).
  VcrDurations durations;
  int64_t samples = 0;
};

/// \brief Estimates the operation mix and per-op duration distributions.
///
/// Requires at least `min_samples_per_op` records for every operation that
/// appears (EmpiricalDistribution needs >= 2; more keeps the fit usable).
/// Returns InvalidArgument on an empty trace.
Result<FittedVcrBehavior> FitBehaviorFromTrace(const VcrTrace& trace,
                                               int min_samples_per_op = 10);

}  // namespace vod

#endif  // VOD_SIM_TRACE_H_
