#include "sim/degradation.h"

#include <algorithm>

#include "common/check.h"

namespace vod {

namespace {
// Bound on the stored transition log; total_transitions_ keeps the true
// count so long runs cannot exhaust memory through level flapping.
constexpr size_t kMaxStoredTransitions = 10000;
}  // namespace

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNormal:
      return "normal";
    case DegradationLevel::kQueueing:
      return "queueing";
    case DegradationLevel::kShedVcr:
      return "shed-vcr";
    case DegradationLevel::kReclaim:
      return "reclaim";
    case DegradationLevel::kBatchingOnly:
      return "batching-only";
  }
  return "unknown";
}

Status DegradationPolicy::Validate() const {
  if (queue_deadline_minutes < 0.0) {
    return Status::InvalidArgument("queue deadline must be non-negative");
  }
  if (!(backoff_initial_minutes > 0.0)) {
    return Status::InvalidArgument("backoff must start positive");
  }
  if (!(backoff_factor >= 1.0)) {
    return Status::InvalidArgument("backoff factor must be >= 1");
  }
  if (shed_below_fraction < 0.0 || shed_below_fraction > 1.0 ||
      batching_below_fraction < 0.0 || batching_below_fraction > 1.0) {
    return Status::InvalidArgument("ladder fractions must be in [0, 1]");
  }
  if (batching_below_fraction > shed_below_fraction) {
    return Status::InvalidArgument(
        "the batching-only threshold cannot exceed the shed threshold");
  }
  return Status::OK();
}

DegradationLevel ComputeWindowedLevel(const WindowedPressure& pressure,
                                      const DegradationPolicy& policy) {
  const double nominal = pressure.nominal_capacity > 0
                             ? static_cast<double>(pressure.nominal_capacity)
                             : 1.0;
  const double fraction = static_cast<double>(pressure.capacity) / nominal;
  if (fraction < policy.batching_below_fraction) {
    return DegradationLevel::kBatchingOnly;
  }
  if (pressure.sum_held > pressure.capacity) return DegradationLevel::kReclaim;
  if (fraction < policy.shed_below_fraction) return DegradationLevel::kShedVcr;
  if (pressure.sum_queued > 0) return DegradationLevel::kQueueing;
  return DegradationLevel::kNormal;
}

WindowedLadderState StepWindowedLadder(const WindowedLadderState& state,
                                       const WindowedPressure& pressure,
                                       const DegradationPolicy& policy,
                                       int64_t recover_windows) {
  const DegradationLevel raw = ComputeWindowedLevel(pressure, policy);
  WindowedLadderState next = state;
  if (raw > state.level) {
    next.level = raw;
    next.below_streak = 0;
  } else if (raw < state.level) {
    next.below_streak = state.below_streak + 1;
    if (next.below_streak >= std::max<int64_t>(1, recover_windows)) {
      next.level = raw;
      next.below_streak = 0;
    }
  } else {
    next.below_streak = 0;
  }
  return next;
}

ReserveManager::ReserveManager(int64_t nominal_capacity,
                               const DegradationPolicy& policy,
                               EventQueue* queue, double measurement_start)
    : nominal_capacity_(nominal_capacity),
      capacity_(nominal_capacity),
      policy_(policy),
      queue_(queue),
      measurement_start_(measurement_start),
      min_capacity_seen_(nominal_capacity) {
  VOD_CHECK_MSG(nominal_capacity >= 0, "reserve must be non-negative");
  VOD_CHECK(queue != nullptr);
  usage_.Reset(0.0, 0.0);
}

DegradationLevel ReserveManager::ComputeLevel() const {
  const double nominal =
      nominal_capacity_ > 0 ? static_cast<double>(nominal_capacity_) : 1.0;
  const double fraction = static_cast<double>(capacity_) / nominal;
  if (fraction < policy_.batching_below_fraction) {
    return DegradationLevel::kBatchingOnly;
  }
  if (in_use_ > capacity_) return DegradationLevel::kReclaim;
  if (fraction < policy_.shed_below_fraction) {
    return DegradationLevel::kShedVcr;
  }
  if (!waiting_.empty()) return DegradationLevel::kQueueing;
  return DegradationLevel::kNormal;
}

void ReserveManager::UpdateLevel(double t) {
  const DegradationLevel next = ComputeLevel();
  if (next != level_) {
    time_in_level_[static_cast<int>(level_)] += t - level_since_;
    level_since_ = t;
    if (transitions_.size() < kMaxStoredTransitions) {
      transitions_.push_back({t, level_, next, capacity_});
    }
    ++total_transitions_;
    if (level_ == DegradationLevel::kNormal) {
      excursion_start_ = t;
    } else if (next == DegradationLevel::kNormal) {
      recovery_times_.Add(t - excursion_start_);
    }
    level_ = next;
  }
  // Entry actions: forcibly reclaim dedicated streams when the ladder says
  // so. Guarded so the releases triggered by the reclaim (which re-enter
  // UpdateLevel) cannot recurse into another reclaim.
  if (policy_.enabled && reclaim_hook_ && !reclaiming_) {
    int64_t need = 0;
    if (level_ == DegradationLevel::kBatchingOnly) {
      need = in_use_;  // shed everything: pure batching until repairs land
    } else if (level_ == DegradationLevel::kReclaim) {
      need = oversubscription();
    }
    if (need > 0) {
      reclaiming_ = true;
      const int64_t got = reclaim_hook_(t, need);
      reclaiming_ = false;
      if (InMeasurement(t)) forced_reclaims_ += got;
      // The releases above already re-ran UpdateLevel (with entry actions
      // suppressed); recompute once more so level_ reflects the new state.
      // Only when the hook made progress, though: every eligible victim
      // may already be reclaimed (the remaining holders frozen mid-VCR-op,
      // or the deficit held by the reallocation controller's ledger rather
      // than by any viewer), and recursing on got == 0 would loop forever
      // at one timestamp. The deficit then clears through the normal
      // release/repair path, each of which re-enters UpdateLevel.
      if (got > 0) UpdateLevel(t);
    }
  }
}

void ReserveManager::GrantStream(double t) {
  ++in_use_;
  ++acquired_;
  peak_ = std::max(peak_, in_use_);
  usage_.Set(t, static_cast<double>(in_use_));
}

bool ReserveManager::TryAcquire(double t) {
  // With the policy on, a deeply degraded ladder closes admission even if a
  // few units are free — that is the declared shedding order.
  const double nominal =
      nominal_capacity_ > 0 ? static_cast<double>(nominal_capacity_) : 1.0;
  const bool admission_closed =
      policy_.enabled &&
      (static_cast<double>(capacity_) / nominal < policy_.shed_below_fraction ||
       in_use_ > capacity_);
  if (admission_closed || in_use_ >= capacity_) {
    ++refused_;
    return false;
  }
  GrantStream(t);
  UpdateLevel(t);
  return true;
}

void ReserveManager::Release(double t) {
  VOD_CHECK_MSG(in_use_ > 0, "reserve release without acquire");
  --in_use_;
  usage_.Set(t, static_cast<double>(in_use_));
  UpdateLevel(t);
}

bool ReserveManager::TryQueueAcquire(
    double t, std::function<void(double, bool)> on_decision) {
  if (!policy_.enabled || policy_.queue_deadline_minutes <= 0.0 ||
      ComputeLevel() >= DegradationLevel::kShedVcr) {
    if (InMeasurement(t)) ++vcr_denied_;
    return false;
  }
  Waiter waiter;
  waiter.id = next_waiter_id_++;
  waiter.enqueued = t;
  waiter.deadline = t + policy_.queue_deadline_minutes;
  waiter.backoff = policy_.backoff_initial_minutes;
  waiter.on_decision = std::move(on_decision);
  const uint64_t id = waiter.id;
  waiter.deadline_token = queue_->Schedule(
      waiter.deadline, [this, id] { OnDeadline(queue_->Now(), id); });
  const double first_retry = std::min(t + waiter.backoff, waiter.deadline);
  if (first_retry < waiter.deadline) {
    waiter.retry_token = queue_->Schedule(
        first_retry, [this, id] { OnRetry(queue_->Now(), id); });
  }
  waiting_.push_back(std::move(waiter));
  if (InMeasurement(t)) ++vcr_queued_;
  UpdateLevel(t);
  return true;
}

std::deque<ReserveManager::Waiter>::iterator ReserveManager::FindWaiter(
    uint64_t waiter_id) {
  return std::find_if(
      waiting_.begin(), waiting_.end(),
      [waiter_id](const Waiter& w) { return w.id == waiter_id; });
}

void ReserveManager::DrainQueue(double t) {
  // FIFO: any re-offer opportunity serves the longest-waiting request
  // first, regardless of whose retry timer fired.
  while (!waiting_.empty() && in_use_ < capacity_ &&
         ComputeLevel() < DegradationLevel::kShedVcr) {
    Waiter waiter = std::move(waiting_.front());
    waiting_.pop_front();
    queue_->Cancel(waiter.deadline_token);
    queue_->Cancel(waiter.retry_token);
    GrantStream(t);
    // Classify the whole wait episode by its enqueue time so queued ==
    // grants + expirations + pending holds exactly across the warmup
    // boundary.
    if (InMeasurement(waiter.enqueued)) {
      ++vcr_queue_grants_;
      queued_wait_.Add(t - waiter.enqueued);
      queued_wait_quantiles_.Add(t - waiter.enqueued);
    }
    UpdateLevel(t);
    waiter.on_decision(t, true);
  }
}

void ReserveManager::OnRetry(double t, uint64_t waiter_id) {
  auto it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;  // already granted or expired
  DrainQueue(t);
  it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;  // granted by the drain above
  it->backoff *= policy_.backoff_factor;
  const double next_retry = t + it->backoff;
  if (next_retry < it->deadline) {
    const uint64_t id = waiter_id;
    it->retry_token = queue_->Schedule(
        next_retry, [this, id] { OnRetry(queue_->Now(), id); });
  } else {
    it->retry_token = kNoEvent;  // the deadline event resolves this waiter
  }
}

void ReserveManager::OnDeadline(double t, uint64_t waiter_id) {
  auto it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;
  Waiter waiter = std::move(*it);
  waiting_.erase(it);
  queue_->Cancel(waiter.retry_token);
  if (InMeasurement(waiter.enqueued)) ++vcr_queue_expirations_;
  UpdateLevel(t);
  waiter.on_decision(t, false);
}

void ReserveManager::SetCapacity(double t, int64_t capacity) {
  VOD_CHECK_MSG(capacity >= 0, "capacity must be non-negative");
  const int64_t previous = capacity_;
  capacity_ = capacity;
  min_capacity_seen_ = std::min(min_capacity_seen_, capacity_);
  max_oversubscription_ = std::max(max_oversubscription_, oversubscription());
  UpdateLevel(t);
  if (policy_.enabled && capacity_ > previous) DrainQueue(t);
}

void ReserveManager::Finalize(double t) {
  time_in_level_[static_cast<int>(level_)] += t - level_since_;
  level_since_ = t;
}

}  // namespace vod
