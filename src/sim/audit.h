// Runtime invariant auditor for the simulation engines.
//
// Interactive VCR handling plus dynamic buffer/stream bookkeeping is exactly
// where silent state corruption hides: a leaked dedicated stream, a partition
// pair that drifted into overlap, or a degradation transition that skipped a
// recorded rung will not crash the run — it will quietly bias every number in
// the final report. The auditor re-derives the system's conservation laws
// from live state every K executed events (K = 1 in --paranoid mode) and
// reports violations through Status with a tail of recently executed events,
// instead of aborting: a long sweep keeps its completed work and the caller
// decides whether to fail the run.
//
// Invariants checked (names are stable; tests assert on them):
//   stream-conservation   supplier in_use == Σ per-movie dedicated holds
//   negative-streams      no stream counter below zero (double release)
//   capacity-bound        in_use <= capacity unless a fault shrank capacity
//                         below nominal (legal oversubscription drains)
//   capacity-exceeds-nominal  repaired capacity never exceeds nominal
//   partition-overlap     a movie's buffer partitions are pairwise disjoint
//   partition-budget      Σ partition sizes <= the movie's buffer budget B
//   ladder-level-range    degradation level is a real rung
//   ladder-continuity     recorded transitions chain from->to without a
//                         skipped or rewritten step, times non-decreasing,
//                         and end at the current level
//   ctrl-stream-conservation  Σ live layout streams + free + in-flight ==
//                         the controller's stream budget across migrations
//   ctrl-buffer-conservation  same for buffer minutes (within epsilon)
//   ctrl-no-double-grant  applied migration steps never exceed planned ones
//   ctrl-epoch-monotonic  the committed plan epoch never moves backward
//
// Cross-shard laws (checked by the sharded-server coordinator at barriers):
//   shard-reserve-ledger  Σ per-movie (held + credit - debt) == the global
//                         reserve capacity — shard grants never mint or
//                         leak capacity
//   shard-credit-negative no per-movie held/credit/debt counter below zero
//   shard-viewer-conservation  per movie, live == entered - exited across
//                         every barrier handoff
//   shard-mailbox-conservation all posted messages drained, sequence
//                         numbers gap-free (no lost/duplicated message)
//   shard-ladder-rung     the windowed global rung is exactly the pure
//                         StepWindowedLadder function of the previous state
//                         and the summed pressure (no rung invented or
//                         hysteresis skipped)
//   shard-ladder-reclaim  per movie, forced reclaims applied <= quota, and
//                         Σ echoed quotas == the quota the barrier issued
//                         last window (no reclaim minted or lost)
//   shard-ladder-queue    per movie, queued == grants + expirations +
//                         pending across windows (no queued viewer lost)

#ifndef VOD_SIM_AUDIT_H_
#define VOD_SIM_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partition_layout.h"
#include "obs/event_log.h"
#include "sim/degradation.h"

namespace vod {

/// Auditing knobs, carried by SimulationOptions / ServerOptions.
struct AuditOptions {
  bool enabled = false;
  /// Executed events between full invariant sweeps; 1 = check after every
  /// event (paranoid mode).
  int64_t every_events = 1024;
  /// Recently executed events kept for the violation diagnostic.
  int trace_tail = 16;

  Status Validate() const;
};

/// One detected invariant violation.
struct AuditViolation {
  double time = 0.0;
  uint64_t event_index = 0;   ///< executed-event count when detected
  std::string invariant;      ///< stable name from the table above
  std::string detail;
};

/// One buffer partition in offset space (start within the restart period).
struct AuditPartition {
  double start = 0.0;
  double size = 0.0;
};

/// \brief Point-in-time view of everything the auditor checks.
///
/// Producers (the simulators) fill this from live state; tests fill it with
/// deliberately corrupted values to prove each invariant fires.
struct AuditSnapshot {
  double time = 0.0;
  /// Streams the supplier believes are handed out.
  int64_t supplier_in_use = 0;
  /// Current reserve capacity; -1 = unlimited supply (single-movie runs).
  int64_t supplier_capacity = -1;
  /// Fault-free capacity; -1 when the supply is unlimited.
  int64_t nominal_capacity = -1;
  /// Σ dedicated streams the movie worlds believe they hold.
  int64_t sum_world_holds = 0;
  /// Current degradation rung, or -1 when no ladder is active.
  int degradation_level = -1;
  /// Recorded ladder transitions (borrowed; may be null).
  const std::vector<DegradationTransition>* transitions = nullptr;
  /// True transition count; the stored log is capped, and the "log ends at
  /// the live level" check only applies while nothing has been dropped.
  /// -1 = the log is complete.
  int64_t total_transitions = -1;

  struct MovieBuffers {
    std::string name;
    double budget = 0.0;  ///< B, in movie-minutes
    std::vector<AuditPartition> partitions;
  };
  std::vector<MovieBuffers> movies;

  /// \brief Control-plane conservation view (ctrl/migration.h ledger).
  ///
  /// Filled when the reallocation controller runs. The migration engine
  /// moves streams and buffer between movies through a free pool and
  /// draining in-flight landings; at every instant the three must sum to
  /// the budget, applied steps can never outrun planned ones, and the plan
  /// epoch only moves forward.
  struct ControllerState {
    bool enabled = false;
    int64_t stream_budget = 0;
    double buffer_budget = 0.0;
    int64_t sum_live_streams = 0;  ///< Σ live layout streams across movies
    double sum_live_buffer = 0.0;  ///< Σ live layout buffer minutes
    int64_t free_streams = 0;
    double free_buffer = 0.0;
    int64_t inflight_streams = 0;
    double inflight_buffer = 0.0;
    int64_t epoch = 0;
    int64_t steps_applied = 0;
    int64_t steps_planned = 0;
  };
  ControllerState controller;

  /// \brief Cross-shard conservation view (sharded server barriers).
  ///
  /// Filled by the sharded-run coordinator after draining every mailbox at
  /// a window barrier. Stream reserve is distributed as per-movie credits:
  /// at any barrier Σ(held + credit - debt) over movies must equal the
  /// global capacity, viewers must be conserved per movie, and every
  /// mailbox message posted must have been drained in sequence.
  struct ShardState {
    bool enabled = false;
    /// Global reserve capacity at this barrier (post-fault).
    int64_t capacity = 0;

    struct MovieLedger {
      int32_t movie = -1;
      int64_t held = 0;    ///< dedicated streams this movie's viewers hold
      int64_t credit = 0;  ///< unspent acquisition credit
      int64_t debt = 0;    ///< retirement owed after a capacity loss
      int64_t entered = 0;
      int64_t exited = 0;
      int64_t live = 0;
      // Windowed-ladder terms (meaningful when shard.ladder.enabled):
      int64_t vcr_queued = 0;         ///< cumulative measured queue entries
      int64_t queue_grants = 0;       ///< cumulative measured queue grants
      int64_t queue_expirations = 0;  ///< cumulative measured expirations
      int64_t queue_pending = 0;      ///< measured waiters still queued
      int64_t reclaim_quota = 0;      ///< quota echoed for last window open
      int64_t reclaim_applied = 0;    ///< streams reclaimed against it
    };
    std::vector<MovieLedger> movies;

    uint64_t messages_posted = 0;
    uint64_t messages_drained = 0;
    uint64_t sequence_gaps = 0;

    /// \brief Windowed cross-shard ladder view (one decision per barrier).
    ///
    /// The barrier publishes its rung decision here so the auditor can
    /// recompute it from first principles: next == StepWindowedLadder(prev,
    /// pressure, policy, recover_windows), with pressure summed from the
    /// per-movie ledgers above. Quota and queue conservation ride on the
    /// MovieLedger ladder terms.
    struct Ladder {
      bool enabled = false;
      int prev_level = 0;          ///< rung before this barrier's decision
      int64_t prev_streak = 0;     ///< below-streak before the decision
      int next_level = 0;          ///< rung the barrier decided
      int64_t next_streak = 0;     ///< below-streak after the decision
      int64_t nominal_capacity = 0;
      int64_t sum_held = 0;        ///< pressure term the barrier summed
      int64_t sum_queued = 0;      ///< pressure term the barrier summed
      double shed_below_fraction = 0.0;
      double batching_below_fraction = 0.0;
      int64_t recover_windows = 1;
      /// Total forced-reclaim quota the barrier issued at the *previous*
      /// window close (what this window's echoes must sum to).
      int64_t quota_issued_prev = 0;
    };
    Ladder ladder;
  };
  ShardState shard;
};

/// Expands a movie's static partition layout (n windows of B/n minutes, one
/// per restart offset) into the auditor's buffer view.
AuditSnapshot::MovieBuffers BuildMovieAuditBuffers(
    const std::string& name, const PartitionLayout& layout);

/// \brief Cadenced invariant checker with an event-trace tail.
///
/// Not thread-safe; lives on the (single-threaded) event loop of one run.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const AuditOptions& options);

  /// Called by the event-loop observer after every executed event. Cheap:
  /// one counter bump plus a ring-buffer write.
  void RecordEvent(double t);

  /// True when `every_events` have executed since the last Audit().
  bool AuditDue() const {
    return options_.enabled && events_since_audit_ >= options_.every_events;
  }

  /// Runs every invariant against `snapshot`, recording violations (capped;
  /// the count stays exact) and resetting the cadence counter.
  void Audit(const AuditSnapshot& snapshot);

  int64_t audits_run() const { return audits_run_; }
  int64_t events_seen() const { return events_seen_; }
  int64_t total_violations() const { return total_violations_; }
  const std::vector<AuditViolation>& violations() const { return violations_; }

  /// \brief The event-trace tail, shared with the observability layer.
  ///
  /// The tail is an obs/event_log EventRing of TraceEvent records — the
  /// same record format every other sink uses. RecordEvent appends a kTick
  /// record per executed event; when a run also traces rich categories, the
  /// caller may register this ring as a sink on its EventLog so violation
  /// diagnostics carry admission/resume/fault context too.
  EventRing* trace_ring() { return &recent_; }
  const EventRing& trace_ring() const { return recent_; }

  /// OK when no violation was ever recorded; otherwise Internal carrying the
  /// first violation, the total count, and the event-trace tail.
  Status status() const;

 private:
  void AddViolation(double t, const char* invariant, std::string detail);
  std::string TraceTail() const;

  AuditOptions options_;
  /// Highest controller epoch seen; the monotonicity law compares against
  /// it across Audit() calls.
  int64_t last_controller_epoch_ = -1;
  int64_t events_since_audit_ = 0;
  int64_t events_seen_ = 0;
  int64_t audits_run_ = 0;
  int64_t total_violations_ = 0;
  std::vector<AuditViolation> violations_;  ///< capped at kMaxRecorded
  /// Bounded ring of recently executed events (obs TraceEvent records).
  EventRing recent_;

  static constexpr int64_t kMaxRecorded = 32;
};

}  // namespace vod

#endif  // VOD_SIM_AUDIT_H_
