#include "sim/shard.h"

#include <algorithm>

#include "common/check.h"
#include "core/partition_layout.h"

namespace vod {

bool CreditStreamSupplier::TryQueueAcquire(
    double t, std::function<void(double, bool)> on_decision) {
  if (!armed_ || policy_.queue_deadline_minutes <= 0.0 ||
      rung_ >= DegradationLevel::kShedVcr) {
    if (armed_ && InMeasurement(t)) ++vcr_denied_;
    return false;
  }
  Waiter waiter;
  waiter.id = next_waiter_id_++;
  waiter.enqueued = t;
  waiter.deadline = t + policy_.queue_deadline_minutes;
  waiter.backoff = policy_.backoff_initial_minutes;
  waiter.on_decision = std::move(on_decision);
  const uint64_t id = waiter.id;
  waiter.deadline_token = queue_->Schedule(
      waiter.deadline, [this, id] { OnDeadline(queue_->Now(), id); });
  const double first_retry = std::min(t + waiter.backoff, waiter.deadline);
  if (first_retry < waiter.deadline) {
    waiter.retry_token = queue_->Schedule(
        first_retry, [this, id] { OnRetry(queue_->Now(), id); });
  }
  waiting_.push_back(std::move(waiter));
  if (InMeasurement(t)) ++vcr_queued_;
  return true;
}

std::deque<CreditStreamSupplier::Waiter>::iterator
CreditStreamSupplier::FindWaiter(uint64_t waiter_id) {
  return std::find_if(
      waiting_.begin(), waiting_.end(),
      [waiter_id](const Waiter& w) { return w.id == waiter_id; });
}

void CreditStreamSupplier::DrainQueue(double t) {
  // FIFO: any re-offer opportunity serves the longest-waiting request
  // first, regardless of whose retry timer fired.
  while (!waiting_.empty() && credit_ > 0 &&
         rung_ < DegradationLevel::kShedVcr) {
    Waiter waiter = std::move(waiting_.front());
    waiting_.pop_front();
    queue_->Cancel(waiter.deadline_token);
    queue_->Cancel(waiter.retry_token);
    GrantStream(t);
    // Classify the whole wait episode by its enqueue time so queued ==
    // grants + expirations + pending holds exactly across the warmup
    // boundary.
    if (InMeasurement(waiter.enqueued)) {
      ++vcr_queue_grants_;
      queued_wait_.Add(t - waiter.enqueued);
      queued_wait_quantiles_.Add(t - waiter.enqueued);
    }
    waiter.on_decision(t, true);
  }
}

void CreditStreamSupplier::OnRetry(double t, uint64_t waiter_id) {
  auto it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;  // already granted or expired
  DrainQueue(t);
  it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;  // granted by the drain above
  it->backoff *= policy_.backoff_factor;
  const double next_retry = t + it->backoff;
  if (next_retry < it->deadline) {
    const uint64_t id = waiter_id;
    it->retry_token = queue_->Schedule(
        next_retry, [this, id] { OnRetry(queue_->Now(), id); });
  } else {
    it->retry_token = kNoEvent;  // the deadline event resolves this waiter
  }
}

void CreditStreamSupplier::OnDeadline(double t, uint64_t waiter_id) {
  auto it = FindWaiter(waiter_id);
  if (it == waiting_.end()) return;
  Waiter waiter = std::move(*it);
  waiting_.erase(it);
  queue_->Cancel(waiter.retry_token);
  if (InMeasurement(waiter.enqueued)) ++vcr_queue_expirations_;
  waiter.on_decision(t, false);
}

void CreditStreamSupplier::OpenWindow(double t) { DrainQueue(t); }

void ServerShard::RunWindow(double t_start, double t_end) {
  // Lane records carry only deterministic payloads (movie counts,
  // executed-event deltas, quotas) so the merged trace is byte-stable for a
  // fixed shard count; wall-clock timing belongs to the profiler.
  const uint64_t executed_at_open = queue_.executed();
  if (lane_.ShouldEmit(EventCategory::kShard)) {
    lane_.Emit(t_start, EventCategory::kShard,
               static_cast<uint8_t>(ShardEvent::kWindowOpen),
               /*movie=*/-1, /*id=*/shard_index_,
               static_cast<double>(movies_.size()));
  }
  for (const ShardMessage& msg : inbox_->Drain()) {
    // Find the owned slot for the message's movie. Shards own few movies,
    // so a linear scan beats a map and allocates nothing.
    MovieSlot* slot = nullptr;
    for (MovieSlot& m : movies_) {
      if (m.global_index == msg.movie) {
        slot = &m;
        break;
      }
    }
    VOD_CHECK_MSG(slot != nullptr,
                  "cross-shard message routed to a shard that does not own "
                  "the movie");
    switch (msg.kind) {
      case kShardMsgCreditSet:
        slot->supplier->SetLedger(msg.a, msg.b);
        break;
      case kShardMsgLayout: {
        auto layout = PartitionLayout::FromBuffer(
            msg.x, static_cast<int>(msg.a), msg.y);
        VOD_CHECK_MSG(layout.ok(), "controller committed an invalid layout");
        slot->world->ApplyLayout(t_start, layout.value());
        break;
      }
      case kShardMsgRung:
        slot->supplier->SetRung(static_cast<DegradationLevel>(msg.a));
        slot->pending_reclaim = msg.b;
        break;
      default:
        VOD_CHECK_MSG(false, "unknown coordinator->shard message kind");
    }
  }

  // Window-open entry actions for the freshly applied rung: force-reclaim
  // against the barrier quota (the releases refund credit/retire debt),
  // then re-offer queued requests against the new credit grant. Ordered
  // after the full drain so every movie sees both its credit and its rung.
  for (MovieSlot& m : movies_) {
    if (!m.supplier->ladder_armed()) continue;
    const int64_t quota = m.pending_reclaim;
    m.pending_reclaim = 0;
    const int64_t applied =
        quota > 0 ? m.world->ReclaimDedicated(t_start, quota) : 0;
    m.supplier->NoteReclaim(quota, applied);
    if (quota > 0 && lane_.ShouldEmit(EventCategory::kShard)) {
      lane_.Emit(t_start, EventCategory::kShard,
                 static_cast<uint8_t>(ShardEvent::kQuotaApply),
                 m.global_index, /*id=*/quota, static_cast<double>(applied));
    }
    m.supplier->OpenWindow(t_start);
  }

  queue_.RunUntil(t_end);

  for (MovieSlot& m : movies_) {
    ShardMessage ledger;
    ledger.kind = kShardMsgLedger;
    ledger.movie = m.global_index;
    ledger.a = m.supplier->held();
    ledger.b = m.supplier->credit();
    ledger.c = m.supplier->debt();
    ledger.x = static_cast<double>(m.supplier->window_refused());
    ledger.y = static_cast<double>(m.supplier->window_acquired());
    outbox_->Post(ledger);

    ShardMessage viewers;
    viewers.kind = kShardMsgViewers;
    viewers.movie = m.global_index;
    viewers.a = m.world->viewers_entered();
    viewers.b = m.world->viewers_exited();
    viewers.c = m.world->viewers_live();
    outbox_->Post(viewers);

    if (m.supplier->ladder_armed()) {
      ShardMessage pressure;
      pressure.kind = kShardMsgLadderPressure;
      pressure.movie = m.global_index;
      pressure.a = m.supplier->queue_length();
      pressure.b = m.supplier->vcr_queued();
      pressure.c = m.supplier->vcr_queue_grants();
      pressure.x = static_cast<double>(m.supplier->vcr_queue_expirations());
      pressure.y = static_cast<double>(m.supplier->measured_queue_pending());
      outbox_->Post(pressure);

      ShardMessage echo;
      echo.kind = kShardMsgReclaimEcho;
      echo.movie = m.global_index;
      echo.a = m.supplier->window_quota();
      echo.b = m.supplier->window_reclaimed();
      outbox_->Post(echo);
    }

    m.supplier->ResetWindow();
  }

  if (lane_.ShouldEmit(EventCategory::kShard)) {
    lane_.Emit(t_end, EventCategory::kShard,
               static_cast<uint8_t>(ShardEvent::kWindowClose),
               /*movie=*/-1, /*id=*/shard_index_,
               static_cast<double>(queue_.executed() - executed_at_open));
  }
}

}  // namespace vod
