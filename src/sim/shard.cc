#include "sim/shard.h"

#include "common/check.h"
#include "core/partition_layout.h"

namespace vod {

void ServerShard::RunWindow(double t_start, double t_end) {
  for (const ShardMessage& msg : inbox_->Drain()) {
    // Find the owned slot for the message's movie. Shards own few movies,
    // so a linear scan beats a map and allocates nothing.
    MovieSlot* slot = nullptr;
    for (MovieSlot& m : movies_) {
      if (m.global_index == msg.movie) {
        slot = &m;
        break;
      }
    }
    VOD_CHECK_MSG(slot != nullptr,
                  "cross-shard message routed to a shard that does not own "
                  "the movie");
    switch (msg.kind) {
      case kShardMsgCreditSet:
        slot->supplier->SetLedger(msg.a, msg.b);
        break;
      case kShardMsgLayout: {
        auto layout = PartitionLayout::FromBuffer(
            msg.x, static_cast<int>(msg.a), msg.y);
        VOD_CHECK_MSG(layout.ok(), "controller committed an invalid layout");
        slot->world->ApplyLayout(t_start, layout.value());
        break;
      }
      default:
        VOD_CHECK_MSG(false, "unknown coordinator->shard message kind");
    }
  }

  queue_.RunUntil(t_end);

  for (MovieSlot& m : movies_) {
    ShardMessage ledger;
    ledger.kind = kShardMsgLedger;
    ledger.movie = m.global_index;
    ledger.a = m.supplier->held();
    ledger.b = m.supplier->credit();
    ledger.c = m.supplier->debt();
    ledger.x = static_cast<double>(m.supplier->window_refused());
    ledger.y = static_cast<double>(m.supplier->window_acquired());
    outbox_->Post(ledger);
    m.supplier->ResetWindow();

    ShardMessage viewers;
    viewers.kind = kShardMsgViewers;
    viewers.movie = m.global_index;
    viewers.a = m.world->viewers_entered();
    viewers.b = m.world->viewers_exited();
    viewers.c = m.world->viewers_live();
    outbox_->Post(viewers);
  }
}

}  // namespace vod
