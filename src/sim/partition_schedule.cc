#include "sim/partition_schedule.h"

#include <cmath>

#include "common/check.h"

namespace vod {

std::vector<int64_t> PartitionSchedule::ActiveStreams(double t) const {
  const double period = layout_.restart_period();
  const double l = layout_.movie_length();
  const double window = layout_.window();
  std::vector<int64_t> out;
  // Streams with lead ∈ (0, l + W): k ∈ ((t − a − l − W)/T, (t − a)/T).
  const auto k_low = static_cast<int64_t>(
      std::floor((t - anchor_ - l - window) / period + 1e-12)) + 1;
  const auto k_high =
      static_cast<int64_t>(std::floor((t - anchor_) / period + 1e-12));
  for (int64_t k = k_low; k <= k_high; ++k) {
    if (!StreamExists(k)) continue;
    const double lead = StreamLead(k, t);
    if (lead > 0.0 && lead < l + window) out.push_back(k);
  }
  return out;
}

}  // namespace vod
