#include "sim/partition_schedule.h"

#include <cmath>

#include "common/check.h"

namespace vod {

double PartitionSchedule::NextRestart(double t) const {
  const double period = layout_.restart_period();
  double k = std::ceil(t / period - 1e-12);
  if (!stationary_ && k < 0) k = 0;
  return k * period;
}

std::optional<int64_t> PartitionSchedule::FindCoveringStream(
    double t, double position) const {
  const double window = layout_.window();
  if (window <= 0.0) return std::nullopt;
  const double l = layout_.movie_length();
  if (position < 0.0 || position > l) return std::nullopt;
  const double period = layout_.restart_period();

  // Need lead = t − kT with position <= min(lead, l) and lead − W <= position,
  // i.e. lead ∈ [position, position + W] (leads past l still cover p <= l).
  // k ∈ [(t − position − W)/T, (t − position)/T]; take the largest such k
  // (youngest stream, smallest lead).
  int64_t k = static_cast<int64_t>(
      std::floor((t - position) / period + 1e-12));
  const double lead = StreamLead(k, t);
  if (lead >= position - 1e-12 && lead <= position + window + 1e-12 &&
      StreamExists(k)) {
    return k;
  }
  return std::nullopt;
}

std::vector<int64_t> PartitionSchedule::ActiveStreams(double t) const {
  const double period = layout_.restart_period();
  const double l = layout_.movie_length();
  const double window = layout_.window();
  std::vector<int64_t> out;
  // Streams with lead ∈ (0, l + W): k ∈ ((t − l − W)/T, t/T).
  const auto k_low = static_cast<int64_t>(
      std::floor((t - l - window) / period + 1e-12)) + 1;
  const auto k_high = static_cast<int64_t>(std::floor(t / period + 1e-12));
  for (int64_t k = k_low; k <= k_high; ++k) {
    if (!StreamExists(k)) continue;
    const double lead = StreamLead(k, t);
    if (lead > 0.0 && lead < l + window) out.push_back(k);
  }
  return out;
}

}  // namespace vod
