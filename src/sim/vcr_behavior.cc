#include "sim/vcr_behavior.h"

#include "common/check.h"

namespace vod {

Status VcrBehavior::Validate() const {
  if (passive()) return Status::OK();
  VOD_RETURN_IF_ERROR(mix.Validate());
  for (VcrOp op : kAllVcrOps) {
    if (mix.Probability(op) > 0.0 && durations.ForOp(op) == nullptr) {
      return Status::InvalidArgument(
          std::string("mix assigns probability to ") + VcrOpName(op) +
          " but no duration distribution was provided");
    }
  }
  if (interactivity->SupportLower() < 0.0) {
    return Status::InvalidArgument(
        "interactivity gaps must be non-negative");
  }
  return Status::OK();
}

VcrOp VcrBehavior::SampleOp(Rng* rng) const {
  double u = rng->Uniform01();
  for (VcrOp op : kAllVcrOps) {
    const double p = mix.Probability(op);
    if (u < p) return op;
    u -= p;
  }
  return VcrOp::kPause;  // numerical leftover lands on the last op
}

double VcrBehavior::SampleDuration(VcrOp op, Rng* rng) const {
  const Distribution* dist = durations.ForOp(op);
  VOD_CHECK_MSG(dist != nullptr, "no duration distribution for operation");
  return dist->Sample(rng);
}

}  // namespace vod
