// Discrete-event simulation kernel: a future-event list with cancellation,
// an execution observer (for runtime invariant auditing), and a tagged
// snapshot/restore path (for crash-recoverable runs).
//
// Internals are built for throughput: event payloads live in a slab of
// generation-stamped slots threaded by an intrusive free list, the ordering
// structure is a cache-friendly 4-ary implicit heap of 16-byte
// (time, gen, slot) keys, and steady-state events dispatch through a
// registered (kind, payload) handler table so the hot path never allocates.
// std::function closures remain supported for one-off events (fault
// injection, tests); only those pay an allocation.

#ifndef VOD_SIM_EVENT_QUEUE_H_
#define VOD_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace vod {

class ByteWriter;
class ByteReader;

/// Handle identifying a scheduled event (for cancellation). Packs the slab
/// slot index (low 32 bits) and the slot's generation stamp at schedule time
/// (high 32 bits); validation is a single generation compare.
using EventToken = uint64_t;

/// Sentinel for "no event scheduled"; Cancel(kNoEvent) is always a no-op.
/// (Decodes to an out-of-range slot with the never-issued generation.)
inline constexpr EventToken kNoEvent = ~EventToken{0};

/// \brief Future-event list ordered by (time, insertion sequence).
///
/// Insertion-sequence tiebreak makes simultaneous events run in schedule
/// order, which keeps runs deterministic. Cancellation is O(1): the slot is
/// tombstoned (generation bumped, payload freed for reuse) and its heap key
/// is discarded lazily at pop time — or eagerly, when tombstones come to
/// dominate the heap (see CompactHeap), so cancel-heavy bursts cannot pin
/// memory.
///
/// Closures are not serializable, so snapshotting works through *tags*: an
/// event scheduled with ScheduleTagged or via a registered handler kind
/// carries a (kind, payload) identity that Snapshot can persist and Restore
/// can turn back into a runnable event — through the handler table when the
/// kind is registered, else via a caller-supplied closure factory. Untagged
/// events make the queue unsnapshottable (Snapshot reports which is fine for
/// workloads that never checkpoint).
class EventQueue {
 public:
  /// A steady-state event handler: receives the payload stamped at schedule
  /// time; the event time is Now(). Registered once, reused by every event
  /// of its kind — scheduling such events allocates nothing.
  using Handler = std::function<void(uint64_t payload)>;

  /// Registers `handler` and returns its kind id. Kinds are assigned
  /// sequentially from 0 in registration order, so a deterministic
  /// construction order yields deterministic (snapshottable) kinds.
  uint64_t AddHandler(Handler handler);

  /// Schedules the registered handler `kind` with `payload` at absolute time
  /// `time` (>= Now()). The fast path: no allocation, snapshot-compatible.
  EventToken ScheduleHandler(double time, uint64_t kind, uint64_t payload);

  /// Schedules `action` at absolute time `time` (>= Now()). Returns a token
  /// usable with Cancel. Closure-only events cannot be snapshotted.
  EventToken Schedule(double time, std::function<void()> action);

  /// Schedules `action` with a serializable identity. `kind` names the
  /// handler (a caller-defined enum), `payload` its argument (an entity id,
  /// an encoded value, ...). Snapshot persists (time, kind, payload);
  /// Restore rebuilds the closure from them.
  EventToken ScheduleTagged(double time, uint64_t kind, uint64_t payload,
                            std::function<void()> action);

  /// Pre-sizes the heap and slab for about `events` concurrently pending
  /// events, so a run that stays under the estimate never grows kernel
  /// storage mid-simulation. Purely an optimization hint.
  void Reserve(size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
  }

  /// Cancels a scheduled event. Cancelling an already-run, already-cancelled,
  /// or unknown token (including kNoEvent) is a safe no-op.
  void Cancel(EventToken token);

  /// Runs the earliest pending event, advancing Now(). Returns false when
  /// the queue is empty.
  bool RunNext();

  /// Runs events until the queue empties or the next event is after
  /// `horizon`; Now() ends at min(horizon, last event time). Events at
  /// exactly `horizon` are executed.
  void RunUntil(double horizon);

  /// Current simulation time (time of the last executed event).
  double Now() const { return now_; }

  size_t pending() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Total events executed by RunNext (cancelled pops excluded).
  uint64_t executed() const { return executed_; }

  /// Heap keys currently held, live + tombstoned (diagnostics; the
  /// compaction regression test bounds this against pending()).
  size_t heap_nodes() const { return heap_.size(); }

  /// Slab slots allocated so far (diagnostics; bounded by the peak number
  /// of concurrently pending events, not by throughput).
  size_t slab_slots() const { return slots_.size(); }

  /// Installs an observer invoked after each executed event with the event
  /// time (state is settled when it fires — the auditor's hook point).
  /// Pass nullptr to remove. The observer must not mutate the queue beyond
  /// scheduling/cancelling (no nested RunNext).
  void set_observer(std::function<void(double)> observer) {
    observer_ = std::move(observer);
  }

  /// \brief Serializes clock, generation counter, and all pending events.
  ///
  /// Pending events are written in deterministic (time, sequence) order.
  /// Fails with NotSupported if any live event was scheduled without a tag —
  /// closures cannot be persisted. Cancelled entries are already gone (their
  /// slots were freed at Cancel time).
  Status Snapshot(ByteWriter* out) const;

  /// Rebuilds `action` closures at restore time: given the persisted
  /// (kind, payload, time), return the closure to run. Returning an empty
  /// function makes Restore fail (unknown kind). Consulted only for kinds
  /// with no registered handler.
  using ActionFactory =
      std::function<std::function<void()>(uint64_t kind, uint64_t payload,
                                          double time)>;

  /// \brief Restores a queue serialized by Snapshot.
  ///
  /// The queue must be empty and unstarted (pending() == 0). Accepts both
  /// the current format and PR 3-era snapshots (the pre-slab layout).
  /// Entries whose kind has a registered handler are restored onto the
  /// allocation-free handler path; others go through `factory`. Tokens are
  /// preserved by current-format snapshots: a token obtained before the
  /// snapshot still cancels the same logical event after restore (for
  /// PR 3-era snapshots the events restore and run identically, but old
  /// token values are not honored — nothing in-tree held tokens across
  /// those snapshots). Returns InvalidArgument on truncated or inconsistent
  /// input (entry time before the snapshot clock, sequence beyond the
  /// counter, duplicate slot, unknown kind).
  Status Restore(ByteReader* in, const ActionFactory& factory);

 private:
  /// Generation value of free slots; never issued to a live event, so a
  /// token or heap key can never match a freed slot.
  static constexpr uint32_t kFreeGen = 0xFFFFFFFFu;
  /// Kind value marking a closure-only (untagged) event.
  static constexpr uint64_t kUntagged = ~uint64_t{0};
  /// Free-list terminator.
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  /// One slab slot: the event's payload stays put here while the heap
  /// shuffles only 16-byte keys. `gen` is stamped from a global counter at
  /// schedule time and reset to kFreeGen on free, so liveness of a heap key
  /// or token is a single compare.
  struct Slot {
    uint64_t kind = kUntagged;  ///< handler index, tag, or kUntagged
    uint64_t payload = 0;
    std::function<void()> action;  ///< set iff untagged or legacy-tagged
    uint32_t gen = kFreeGen;
    uint32_t next_free = kNilSlot;
  };

  /// 16-byte heap key. `gen` doubles as the determinism tiebreak: it is
  /// issued by a monotone counter per Schedule call, so (time, gen) order
  /// equals (time, insertion sequence) order. (The u32 counter wraps after
  /// 2^32 schedules; simultaneous events 4e9 schedules apart cannot occur
  /// in these workloads, and a token would have to survive that long while
  /// its slot is reused to alias — live tokens never do.)
  struct HeapKey {
    double time;
    uint32_t gen;
    uint32_t slot;
  };

  /// True when `a` must run before `b`.
  static bool RunsBefore(const HeapKey& a, const HeapKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.gen < b.gen;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  EventToken ScheduleSlot(double time, uint64_t kind, uint64_t payload,
                          std::function<void()> action);
  void PushKey(HeapKey key);
  void PopRoot();
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  /// Drops every tombstoned key and re-heapifies in O(n). Called from
  /// Cancel when tombstones exceed the live keys, so a cancel-heavy burst
  /// (mass abandonment) cannot pin heap memory until pop time.
  void CompactHeap();
  /// Executes the live head key (caller validated liveness). Advances the
  /// clock, dispatches, and fires the observer.
  void ExecuteHead(const HeapKey& head);

  Status RestoreV2(ByteReader* in, const ActionFactory& factory);
  /// Commits decoded entries: places them in the slab (at their stored slot
  /// for V2, densely for V1), rebuilds the free list and heap.
  struct PendingRestore;
  void CommitRestore(double now, uint32_t next_gen, uint64_t executed,
                     std::vector<PendingRestore> entries);

  std::vector<HeapKey> heap_;  ///< 4-ary implicit min-heap
  std::vector<Slot> slots_;    ///< payload slab, indexed by HeapKey::slot
  uint32_t free_head_ = kNilSlot;
  uint32_t next_gen_ = 0;   ///< monotone generation/sequence counter
  size_t live_ = 0;         ///< scheduled, not yet run or cancelled
  size_t tombstones_ = 0;   ///< cancelled keys still in heap_
  double now_ = 0.0;
  uint64_t executed_ = 0;
  std::vector<Handler> handlers_;
  std::function<void(double)> observer_;
};

}  // namespace vod

#endif  // VOD_SIM_EVENT_QUEUE_H_
