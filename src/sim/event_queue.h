// Discrete-event simulation kernel: a future-event list with cancellation,
// an execution observer (for runtime invariant auditing), and a tagged
// snapshot/restore path (for crash-recoverable runs).

#ifndef VOD_SIM_EVENT_QUEUE_H_
#define VOD_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace vod {

class ByteWriter;
class ByteReader;

/// Handle identifying a scheduled event (for cancellation).
using EventToken = uint64_t;

/// Sentinel for "no event scheduled"; Cancel(kNoEvent) is always a no-op.
inline constexpr EventToken kNoEvent = ~EventToken{0};

/// \brief Future-event list ordered by (time, insertion sequence).
///
/// Insertion-sequence tiebreak makes simultaneous events run in schedule
/// order, which keeps runs deterministic. Cancellation is lazy: cancelled
/// tokens are skipped at pop time, so Cancel is O(1).
///
/// Closures are not serializable, so snapshotting works through *tags*: an
/// event scheduled with ScheduleTagged carries a (kind, payload) identity
/// that Snapshot can persist and Restore can turn back into a closure via a
/// caller-supplied factory. Untagged events make the queue unsnapshottable
/// (Snapshot reports which is fine for workloads that never checkpoint).
class EventQueue {
 public:
  /// Schedules `action` at absolute time `time` (>= Now()). Returns a token
  /// usable with Cancel.
  EventToken Schedule(double time, std::function<void()> action);

  /// Schedules `action` with a serializable identity. `kind` names the
  /// handler (a caller-defined enum), `payload` its argument (an entity id,
  /// an encoded value, ...). Snapshot persists (time, seq, kind, payload);
  /// Restore rebuilds the closure from them.
  EventToken ScheduleTagged(double time, uint64_t kind, uint64_t payload,
                            std::function<void()> action);

  /// Cancels a scheduled event. Cancelling an already-run, already-cancelled,
  /// or unknown token (including kNoEvent) is a safe no-op.
  void Cancel(EventToken token);

  /// Runs the earliest pending event, advancing Now(). Returns false when
  /// the queue is empty.
  bool RunNext();

  /// Runs events until the queue empties or the next event is after
  /// `horizon`; Now() ends at min(horizon, last event time). Events at
  /// exactly `horizon` are executed.
  void RunUntil(double horizon);

  /// Current simulation time (time of the last executed event).
  double Now() const { return now_; }

  size_t pending() const { return live_.size(); }
  bool empty() const { return pending() == 0; }

  /// Total events executed by RunNext (cancelled pops excluded).
  uint64_t executed() const { return executed_; }

  /// Installs an observer invoked after each executed event with the event
  /// time (state is settled when it fires — the auditor's hook point).
  /// Pass nullptr to remove. The observer must not mutate the queue beyond
  /// scheduling/cancelling (no nested RunNext).
  void set_observer(std::function<void(double)> observer) {
    observer_ = std::move(observer);
  }

  /// \brief Serializes clock, sequence counter, and all pending events.
  ///
  /// Pending events are written in deterministic (time, seq) order. Fails
  /// with NotSupported if any live event was scheduled without a tag —
  /// closures cannot be persisted. Cancelled-but-unpopped entries are
  /// dropped (they would never run anyway).
  Status Snapshot(ByteWriter* out) const;

  /// Rebuilds `action` closures at restore time: given the persisted
  /// (kind, payload, time), return the closure to run. Returning an empty
  /// function makes Restore fail (unknown kind).
  using ActionFactory =
      std::function<std::function<void()>(uint64_t kind, uint64_t payload,
                                          double time)>;

  /// \brief Restores a queue serialized by Snapshot.
  ///
  /// The queue must be empty and unstarted (pending() == 0). Tokens are
  /// preserved: a token obtained before the snapshot still cancels the same
  /// logical event after restore. Returns InvalidArgument on truncated or
  /// inconsistent input (entry time before the snapshot clock, seq beyond
  /// the counter, unknown kind).
  Status Restore(ByteReader* in, const ActionFactory& factory);

 private:
  struct Entry {
    double time;
    uint64_t seq;
    EventToken token;
    std::function<void()> action;
    bool tagged = false;
    uint64_t kind = 0;
    uint64_t payload = 0;
  };

  /// Min-heap comparator: true when `a` runs after `b`.
  struct RunsAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  EventToken ScheduleEntry(Entry entry);

  std::vector<Entry> heap_;                   ///< std::*_heap with RunsAfter
  std::unordered_set<EventToken> live_;       ///< scheduled, not yet run
  std::unordered_set<EventToken> cancelled_;  ///< cancelled, still in heap_
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::function<void(double)> observer_;
};

}  // namespace vod

#endif  // VOD_SIM_EVENT_QUEUE_H_
