// Discrete-event simulation kernel: a future-event list with cancellation.

#ifndef VOD_SIM_EVENT_QUEUE_H_
#define VOD_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace vod {

/// Handle identifying a scheduled event (for cancellation).
using EventToken = uint64_t;

/// Sentinel for "no event scheduled"; Cancel(kNoEvent) is always a no-op.
inline constexpr EventToken kNoEvent = ~EventToken{0};

/// \brief Future-event list ordered by (time, insertion sequence).
///
/// Insertion-sequence tiebreak makes simultaneous events run in schedule
/// order, which keeps runs deterministic. Cancellation is lazy: cancelled
/// tokens are skipped at pop time, so Cancel is O(1).
class EventQueue {
 public:
  /// Schedules `action` at absolute time `time` (>= Now()). Returns a token
  /// usable with Cancel.
  EventToken Schedule(double time, std::function<void()> action);

  /// Cancels a scheduled event. Cancelling an already-run, already-cancelled,
  /// or unknown token (including kNoEvent) is a safe no-op.
  void Cancel(EventToken token);

  /// Runs the earliest pending event, advancing Now(). Returns false when
  /// the queue is empty.
  bool RunNext();

  /// Runs events until the queue empties or the next event is after
  /// `horizon`; Now() ends at min(horizon, last event time). Events at
  /// exactly `horizon` are executed.
  void RunUntil(double horizon);

  /// Current simulation time (time of the last executed event).
  double Now() const { return now_; }

  size_t pending() const { return live_.size(); }
  bool empty() const { return pending() == 0; }

 private:
  struct Entry {
    double time;
    uint64_t seq;
    EventToken token;
    std::function<void()> action;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventToken> live_;       ///< scheduled, not yet run
  std::unordered_set<EventToken> cancelled_;  ///< cancelled, still in heap_
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace vod

#endif  // VOD_SIM_EVENT_QUEUE_H_
