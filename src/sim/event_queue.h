// Discrete-event simulation kernel: a future-event list with cancellation,
// an execution observer (for runtime invariant auditing), and a tagged
// snapshot/restore path (for crash-recoverable runs).
//
// Internals are built for throughput: event payloads live in a slab of
// generation-stamped 24-byte POD slots threaded by an intrusive free list,
// the ordering structure is a cache-friendly 4-ary implicit heap of 16-byte
// (time, gen, slot) keys, and steady-state events dispatch through a
// registered (kind, payload) handler table of raw function pointers so the
// hot path never allocates and never touches a std::function. Closures
// remain supported for one-off events (fault injection, tests); their
// std::function state lives in a side column touched only by that cold path.
//
// Round 2 (DESIGN.md §15) adds *run extraction*: when consecutive heap roots
// share one kind and one timestamp, RunUntil pops the whole run and hands it
// to a registered batch handler as a span of (time, payload) entries, so
// dispatch indirection, liveness checks, and observer gating amortize over
// the run. The run loop itself is a template instantiated with and without
// an observer, so an unobserved run carries no per-event observer branch.

#ifndef VOD_SIM_EVENT_QUEUE_H_
#define VOD_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "common/status.h"

namespace vod {

class ByteWriter;
class ByteReader;

/// Handle identifying a scheduled event (for cancellation). Packs the slab
/// slot index (low 32 bits) and the slot's generation stamp at schedule time
/// (high 32 bits); validation is a single generation compare.
using EventToken = uint64_t;

/// Sentinel for "no event scheduled"; Cancel(kNoEvent) is always a no-op.
/// (Decodes to an out-of-range slot with the never-issued generation.)
inline constexpr EventToken kNoEvent = ~EventToken{0};

/// \brief Future-event list ordered by (time, insertion sequence).
///
/// Insertion-sequence tiebreak makes simultaneous events run in schedule
/// order, which keeps runs deterministic. Cancellation is O(1): the slot is
/// tombstoned (generation bumped, payload freed for reuse) and its heap key
/// is discarded lazily at pop time — or eagerly, when tombstones come to
/// dominate the heap (see CompactHeap), so cancel-heavy bursts cannot pin
/// memory.
///
/// Closures are not serializable, so snapshotting works through *tags*: an
/// event scheduled with ScheduleTagged or via a registered handler kind
/// carries a (kind, payload) identity that Snapshot can persist and Restore
/// can turn back into a runnable event — through the handler table when the
/// kind is registered, else via a caller-supplied closure factory. Untagged
/// events make the queue unsnapshottable (Snapshot reports which is fine for
/// workloads that never checkpoint).
class EventQueue {
 public:
  /// A steady-state event handler: receives the payload stamped at schedule
  /// time; the event time is Now(). Registered once, reused by every event
  /// of its kind — scheduling such events allocates nothing.
  using Handler = std::function<void(uint64_t payload)>;

  /// The allocation- and indirection-free handler form: a raw function
  /// pointer plus an opaque context (typically a static member trampoline
  /// and the owning object). The std::function overload boxes into this.
  using RawHandler = void (*)(void* ctx, uint64_t payload);

  /// One entry of an extracted run, as handed to a batch handler. All
  /// entries of one run share `time`; they are ordered by insertion
  /// sequence, exactly as the scalar loop would have executed them.
  struct RunEvent {
    double time;
    uint64_t payload;
  };

  /// A batch handler consumes a whole extracted run of same-kind,
  /// same-timestamp events in one call. Contract (DESIGN.md §15): once
  /// extraction begins the run is committed — the handler must not cancel
  /// pending events of its own kind at the current timestamp (their slots
  /// are already recycled; such a Cancel is a stale-token no-op, whereas
  /// the scalar loop would have honored it). Cancelling any other event,
  /// and scheduling new events, behaves identically to the scalar loop.
  using BatchHandler = void (*)(void* ctx, std::span<const RunEvent> run);

  /// Observer in raw form; see set_observer.
  using RawObserver = void (*)(void* ctx, double time);

  /// Registers `handler` and returns its kind id. Kinds are assigned
  /// sequentially from 0 in registration order, so a deterministic
  /// construction order yields deterministic (snapshottable) kinds.
  /// This overload boxes the std::function and dispatches it through a
  /// trampoline; the RawHandler overload below avoids even that.
  uint64_t AddHandler(Handler handler);

  /// Registers a raw handler: `fn(ctx, payload)` is called directly from
  /// the run loop with zero indirection beyond the table load.
  uint64_t AddHandler(RawHandler fn, void* ctx);

  /// Attaches a batch handler to a registered kind. When the run loop finds
  /// two or more (or even one) events of `kind` at the heap root sharing a
  /// timestamp, it extracts the maximal run and calls `fn` once instead of
  /// the scalar handler per event. The scalar handler registered for `kind`
  /// still serves RunNext and non-batched loops, so both must implement
  /// identical semantics (the differential tests pin this).
  void AddBatchHandler(uint64_t kind, BatchHandler fn, void* ctx);

  /// Schedules the registered handler `kind` with `payload` at absolute time
  /// `time` (>= Now()). The fast path: no allocation, snapshot-compatible.
  EventToken ScheduleHandler(double time, uint64_t kind, uint64_t payload);

  /// Schedules `action` at absolute time `time` (>= Now()). Returns a token
  /// usable with Cancel. Closure-only events cannot be snapshotted.
  EventToken Schedule(double time, std::function<void()> action);

  /// Schedules `action` with a serializable identity. `kind` names the
  /// handler (a caller-defined enum), `payload` its argument (an entity id,
  /// an encoded value, ...). Snapshot persists (time, kind, payload);
  /// Restore rebuilds the closure from them.
  EventToken ScheduleTagged(double time, uint64_t kind, uint64_t payload,
                            std::function<void()> action);

  /// Pre-sizes the heap and slab for about `events` concurrently pending
  /// events, so a run that stays under the estimate never grows kernel
  /// storage mid-simulation. Purely an optimization hint.
  void Reserve(size_t events) {
    heap_.reserve(events + kHeapPads);
    slots_.reserve(events);
  }

  /// Cancels a scheduled event. Cancelling an already-run, already-cancelled,
  /// or unknown token (including kNoEvent) is a safe no-op.
  void Cancel(EventToken token);

  /// Runs the earliest pending event, advancing Now(). Returns false when
  /// the queue is empty. Always scalar — batch handlers never fire from
  /// RunNext, so single-step drivers and tests see per-event granularity.
  bool RunNext();

  /// Runs events until the queue empties or the next event is after
  /// `horizon`; Now() ends at min(horizon, last event time). Events at
  /// exactly `horizon` are executed. Dispatches to one of four specialized
  /// loop instantiations (observed × batched) selected once per call, so
  /// the per-event path carries no observer or batching branches it does
  /// not need.
  void RunUntil(double horizon);

  /// Forces RunUntil onto the scalar (non-batched) loop even when batch
  /// handlers are registered. For differential testing: the property suite
  /// pins scalar and batched runs byte-identical.
  void set_scalar_dispatch(bool scalar) { scalar_dispatch_ = scalar; }

  /// Current simulation time (time of the last executed event).
  double Now() const { return now_; }

  size_t pending() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Total events executed by RunNext (cancelled pops excluded).
  uint64_t executed() const { return executed_; }

  /// Heap keys currently held, live + tombstoned (diagnostics; the
  /// compaction regression test bounds this against pending()).
  size_t heap_nodes() const { return heap_.size(); }

  /// Slab slots allocated so far (diagnostics; bounded by the peak number
  /// of concurrently pending events, not by throughput).
  size_t slab_slots() const { return slots_.size(); }

  /// Installs an observer invoked after each executed event with the event
  /// time (state is settled when it fires — the auditor's hook point).
  /// Pass an empty function to remove. The observer must not mutate the
  /// queue beyond scheduling/cancelling (no nested RunNext); under batch
  /// dispatch it fires once per event *after* the run settles, so it must
  /// also not schedule new events (none of the in-tree observers do).
  /// This overload boxes through a trampoline — it is the cold
  /// configuration path. Hot callers install a raw observer below.
  void set_observer(std::function<void(double)> observer);

  /// Raw observer: called as `fn(ctx, time)`. Pass fn == nullptr to remove.
  void set_observer(RawObserver fn, void* ctx);

  /// \brief Serializes clock, generation counter, and all pending events.
  ///
  /// Pending events are written in deterministic (time, sequence) order.
  /// Fails with NotSupported if any live event was scheduled without a tag —
  /// closures cannot be persisted. Cancelled entries are already gone (their
  /// slots were freed at Cancel time).
  Status Snapshot(ByteWriter* out) const;

  /// Rebuilds `action` closures at restore time: given the persisted
  /// (kind, payload, time), return the closure to run. Returning an empty
  /// function makes Restore fail (unknown kind). Consulted only for kinds
  /// with no registered handler.
  using ActionFactory =
      std::function<std::function<void()>(uint64_t kind, uint64_t payload,
                                          double time)>;

  /// \brief Restores a queue serialized by Snapshot.
  ///
  /// The queue must be empty and unstarted (pending() == 0). Accepts both
  /// the current format and PR 3-era snapshots (the pre-slab layout).
  /// Entries whose kind has a registered handler are restored onto the
  /// allocation-free handler path; others go through `factory`. Tokens are
  /// preserved by current-format snapshots: a token obtained before the
  /// snapshot still cancels the same logical event after restore (for
  /// PR 3-era snapshots the events restore and run identically, but old
  /// token values are not honored — nothing in-tree held tokens across
  /// those snapshots). Returns InvalidArgument on truncated or inconsistent
  /// input (entry time before the snapshot clock, sequence beyond the
  /// counter, duplicate slot, unknown kind).
  Status Restore(ByteReader* in, const ActionFactory& factory);

 private:
  /// Generation value of free slots; never issued to a live event, so a
  /// token or heap key can never match a freed slot.
  static constexpr uint32_t kFreeGen = 0xFFFFFFFFu;
  /// Kind value marking a closure-only (untagged) event. Note bit 63 is
  /// set: kUntagged naturally carries kHasActionBit.
  static constexpr uint64_t kUntagged = ~uint64_t{0};
  /// Bit 63 of Slot::kind marks "this slot has a closure in actions_".
  /// Handler kinds are small sequential ids and tag enums are small values,
  /// so the top bit is free; keeping the marker inside the kind word means
  /// the hot loop classifies an event with one load and one mask.
  static constexpr uint64_t kHasActionBit = uint64_t{1} << 63;
  /// Free-list terminator.
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  /// One slab slot: 24-byte POD. The event's payload stays put here while
  /// the heap shuffles only 16-byte keys. `gen` is stamped from a global
  /// counter at schedule time and reset to kFreeGen on free, so liveness of
  /// a heap key or token is a single compare. Closure state lives in the
  /// actions_ side column (indexed by slot), touched only when kind carries
  /// kHasActionBit — the steady-state path never constructs, moves, or
  /// destroys a std::function.
  struct Slot {
    uint64_t kind = kUntagged;  ///< handler index or tag; bit 63 = has action
    uint64_t payload = 0;
    uint32_t gen = kFreeGen;
    uint32_t next_free = kNilSlot;
  };

  /// 16-byte heap key. `gen` doubles as the determinism tiebreak: it is
  /// issued by a monotone counter per Schedule call, so (time, gen) order
  /// equals (time, insertion sequence) order. (The u32 counter wraps after
  /// 2^32 schedules; simultaneous events 4e9 schedules apart cannot occur
  /// in these workloads, and a token would have to survive that long while
  /// its slot is reused to alias — live tokens never do.)
  struct HeapKey {
    double time;
    uint32_t gen;
    uint32_t slot;
  };

  /// Minimal over-aligning allocator for the heap array. Four 16-byte keys
  /// are one 64-byte cache line; the aligned layout below only pays off if
  /// index-group boundaries coincide with line boundaries, which needs the
  /// base pointer itself line-aligned (std::allocator only guarantees 16).
  template <typename T, std::size_t kAlign>
  struct AlignedAlloc {
    using value_type = T;
    /// Explicit rebind: the default allocator_traits rebind cannot rewrite
    /// the first argument past a non-type template parameter.
    template <typename U>
    struct rebind {
      using other = AlignedAlloc<U, kAlign>;
    };
    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, kAlign>&) {}
    T* allocate(std::size_t n) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
    }
    void deallocate(T* p, std::size_t n) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{kAlign});
    }
    template <typename U>
    bool operator==(const AlignedAlloc<U, kAlign>&) const {
      return true;
    }
  };

  /// Cache-aligned 4-ary layout. The textbook children(i) = 4i+1 places
  /// every sibling group astride a cache-line boundary (groups start at
  /// odd offsets 1, 5, 9, ...), so each SiftDown level touches two lines.
  /// Shifting the tree so groups start at multiples of 4 — root at 0,
  /// indices 1..3 dead padding, level ℓ ≥ 1 packed contiguously — makes
  /// every group exactly one line: children(0) = {4..7} and
  /// children(i) = {4i-8 .. 4i-5} for i ≥ 4; parent(c) = 0 for c < 8,
  /// (c >> 2) + 2 otherwise. Pads are never compared or iterated (index
  /// checks, not sentinel values, keep them out of every walk).
  static constexpr std::size_t kHeapPads = 3;
  static std::size_t HeapChild(std::size_t i) {
    return i == 0 ? 4 : (i << 2) - 8;
  }
  static std::size_t HeapParent(std::size_t i) {
    return i < 8 ? 0 : (i >> 2) + 2;
  }
  static bool IsHeapPad(std::size_t i) { return i >= 1 && i <= kHeapPads; }

  /// Raw handler record: one direct call, no virtual, no std::function.
  struct HandlerRec {
    RawHandler fn = nullptr;
    void* ctx = nullptr;
  };

  /// Batch handler record, indexed by kind (parallel to handlers_).
  struct BatchRec {
    BatchHandler fn = nullptr;
    void* ctx = nullptr;
  };

  /// True when `a` must run before `b`. Written branch-free on purpose
  /// (setcc + bitwise ops, no jumps): SiftDown's min-of-4 selection runs
  /// this on effectively random keys ~15 times per pop, and the
  /// short-circuit form mispredicts about half of them — the single
  /// largest cost in the whole kernel before this change.
  static bool RunsBefore(const HeapKey& a, const HeapKey& b) {
    return (a.time < b.time) | ((a.time == b.time) & (a.gen < b.gen));
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  /// Grows the side action column to cover `slot` (cold path only).
  void EnsureActionCapacity(uint32_t slot);
  EventToken ScheduleSlot(double time, uint64_t kind, uint64_t payload,
                          std::function<void()> action);
  void PushKey(HeapKey key);
  /// Appends without restoring heap order (bulk-build path); inserts the
  /// alignment pads when the array crosses one element.
  void AppendUnsifted(HeapKey key);
  /// Bottom-up O(n) heapify over the aligned layout (children always have
  /// higher indices than their parent, so one descending SiftDown pass).
  void HeapifyAll();
  void PopRoot();
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  /// Drops every tombstoned key and re-heapifies in O(n). Called from
  /// Cancel when tombstones exceed the live keys, so a cancel-heavy burst
  /// (mass abandonment) cannot pin heap memory until pop time.
  void CompactHeap();
  /// Executes the live head key (caller validated liveness). Advances the
  /// clock, dispatches, and fires the observer. Scalar — shared by RunNext
  /// and the closure path of the run loops.
  void ExecuteHead(const HeapKey& head);

  /// The specialized hot loop. kObserved bakes the observer call in or out;
  /// kBatched bakes run extraction in or out. RunUntil picks one of the
  /// four instantiations per call.
  template <bool kObserved, bool kBatched>
  void RunLoop(double horizon);

  /// Extracts the maximal same-kind same-timestamp run starting at the
  /// validated live head and dispatches it to the kind's batch handler.
  template <bool kObserved>
  void RunBatchHead(HeapKey head, uint64_t kind);

  Status RestoreV2(ByteReader* in, const ActionFactory& factory);
  /// Commits decoded entries: places them in the slab (at their stored slot
  /// for V2, densely for V1), rebuilds the free list and heap.
  struct PendingRestore;
  void CommitRestore(double now, uint32_t next_gen, uint64_t executed,
                     std::vector<PendingRestore> entries);

  /// 4-ary implicit min-heap in the cache-aligned layout above: physical
  /// size is 0, 1, or live-keys + kHeapPads.
  std::vector<HeapKey, AlignedAlloc<HeapKey, 64>> heap_;
  std::vector<Slot> slots_;    ///< POD payload slab, indexed by HeapKey::slot
  /// Side column for closure events, indexed by slot. Sized lazily: a run
  /// that never schedules a closure never allocates it.
  std::vector<std::function<void()>> actions_;
  uint32_t free_head_ = kNilSlot;
  uint32_t next_gen_ = 0;   ///< monotone generation/sequence counter
  size_t live_ = 0;         ///< scheduled, not yet run or cancelled
  size_t tombstones_ = 0;   ///< cancelled keys still in heap_
  double now_ = 0.0;
  uint64_t executed_ = 0;
  bool scalar_dispatch_ = false;  ///< differential-test override
  bool have_batch_ = false;       ///< any batch handler registered
  std::vector<HandlerRec> handlers_;
  std::vector<BatchRec> batch_;  ///< parallel to handlers_
  /// Boxed std::function handlers (the compat AddHandler overload); heap
  /// allocation keeps their addresses stable across vector growth.
  std::vector<std::unique_ptr<Handler>> boxed_handlers_;
  std::vector<RunEvent> run_buf_;  ///< scratch for run extraction
  RawObserver observer_fn_ = nullptr;
  void* observer_ctx_ = nullptr;
  std::function<void(double)> observer_boxed_;  ///< backing for the overload
};

}  // namespace vod

#endif  // VOD_SIM_EVENT_QUEUE_H_
