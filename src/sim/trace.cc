#include "sim/trace.h"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "dist/empirical.h"

namespace vod {

int64_t VcrTrace::CountOf(VcrOp op) const {
  int64_t count = 0;
  for (const auto& record : records_) {
    if (record.op == op) ++count;
  }
  return count;
}

std::vector<double> VcrTrace::DurationsOf(VcrOp op) const {
  std::vector<double> durations;
  for (const auto& record : records_) {
    if (record.op == op) durations.push_back(record.duration);
  }
  return durations;
}

void VcrTrace::WriteCsv(std::ostream& os) const {
  // max_digits10 so ReadCsv(WriteCsv(t)) round-trips every double exactly.
  const auto saved = os.precision(17);
  os << "time,op,duration\n";
  for (const auto& record : records_) {
    os << record.time << ',' << VcrOpName(record.op) << ','
       << record.duration << '\n';
  }
  os.precision(saved);
}

namespace {

/// Strict double parse: the whole field must be consumed (a trailing comma,
/// units suffix, or second value is an error, not silently dropped) and the
/// result must be finite.
bool ParseCsvDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

Result<VcrTrace> VcrTrace::ReadCsv(std::istream& is) {
  VcrTrace trace;
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("missing trace CSV header");
  }
  // Tolerate Windows line endings throughout: a trailing CR is not data.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "time,op,duration") {
    return Status::InvalidArgument("missing trace CSV header");
  }
  int line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string time_text;
    std::string op_text;
    std::string duration_text;
    if (!std::getline(fields, time_text, ',') ||
        !std::getline(fields, op_text, ',') ||
        !std::getline(fields, duration_text)) {
      return Status::InvalidArgument("malformed trace line " +
                                     std::to_string(line_number));
    }
    VcrTraceRecord record;
    if (!ParseCsvDouble(time_text, &record.time)) {
      return Status::InvalidArgument("bad time on line " +
                                     std::to_string(line_number));
    }
    if (op_text == "FF") {
      record.op = VcrOp::kFastForward;
    } else if (op_text == "RW") {
      record.op = VcrOp::kRewind;
    } else if (op_text == "PAU") {
      record.op = VcrOp::kPause;
    } else {
      return Status::InvalidArgument("unknown op '" + op_text +
                                     "' on line " +
                                     std::to_string(line_number));
    }
    if (!ParseCsvDouble(duration_text, &record.duration)) {
      return Status::InvalidArgument("bad duration on line " +
                                     std::to_string(line_number));
    }
    if (record.duration < 0.0) {
      return Status::InvalidArgument("negative duration on line " +
                                     std::to_string(line_number));
    }
    trace.records_.push_back(record);
  }
  return trace;
}

Result<FittedVcrBehavior> FitBehaviorFromTrace(const VcrTrace& trace,
                                               int min_samples_per_op) {
  if (trace.empty()) {
    return Status::InvalidArgument("cannot fit from an empty trace");
  }
  FittedVcrBehavior fitted;
  fitted.samples = static_cast<int64_t>(trace.size());
  const double total = static_cast<double>(trace.size());
  double* mix_slot[3] = {&fitted.mix.p_fast_forward, &fitted.mix.p_rewind,
                         &fitted.mix.p_pause};
  for (VcrOp op : kAllVcrOps) {
    const int64_t count = trace.CountOf(op);
    *mix_slot[static_cast<int>(op)] = static_cast<double>(count) / total;
    if (count == 0) continue;
    if (count < min_samples_per_op) {
      return Status::InvalidArgument(
          std::string("too few samples for ") + VcrOpName(op) + " (" +
          std::to_string(count) + " < " +
          std::to_string(min_samples_per_op) + ")");
    }
    const auto empirical =
        std::make_shared<EmpiricalDistribution>(trace.DurationsOf(op));
    switch (op) {
      case VcrOp::kFastForward:
        fitted.durations.fast_forward = empirical;
        break;
      case VcrOp::kRewind:
        fitted.durations.rewind = empirical;
        break;
      case VcrOp::kPause:
        fitted.durations.pause = empirical;
        break;
    }
  }
  return fitted;
}

}  // namespace vod
