// Case-by-case transcription of OUR rewind/pause derivations.
//
// The paper derives P(hit | FF) in full (Eqs. 3–21) and states that RW and
// PAU "are derived in a manner similar" in tech report CS-TR-96-03, which
// is not publicly available. DESIGN.md §5 reconstructs those derivations;
// this module is their executable, case-by-case form — deliberately written
// in the paper's style (explicit hit_w / hit_j^j decomposition, nested
// unconditioning integrals, boundary cases spelled out) rather than the
// production interval-geometry engine, so the two can be cross-checked the
// same way paper_equations.cc cross-checks the FF case.
//
// Rewind geometry (γ = R_RW/(R_PB + R_RW), Eq. 1):
//   hit_w  — resume in the partition of issue: the viewer's backward
//            displacement relative to the window pattern is x/γ; he stays
//            inside his own window while x ≤ γ(B/n − d), d = V_f − V_c.
//   hit_j^j — resume in the j-th partition behind: x ∈ γ·[jT − d, jT − d + W].
//   boundary — a rewind cannot pass the movie start: x > V_c is a MISS
//            (the paper's §4 convention; the tech-report model matches).
// Pause is the γ → 1 limit with no start boundary (the pattern is periodic
// and restarts continue forever; x > l wraps).

#ifndef VOD_CORE_EXTENDED_EQUATIONS_H_
#define VOD_CORE_EXTENDED_EQUATIONS_H_

#include <vector>

#include "core/partition_layout.h"
#include "core/types.h"
#include "dist/distribution.h"

namespace vod {

/// Term-by-term rewind/pause result, mirroring PaperFfComponents.
struct ExtendedComponents {
  /// P(hit_w | op): hit within the partition of issue.
  double hit_within = 0.0;
  /// P(hit_j^j | op) for the j-th partition behind, j = 1, 2, ...
  std::vector<double> hit_jump_per_partition;

  double JumpTotal() const {
    double sum = 0.0;
    for (double p : hit_jump_per_partition) sum += p;
    return sum;
  }
  double Total() const { return hit_within + JumpTotal(); }
};

/// \brief Evaluates the casewise rewind equations.
///
/// \param quadrature_points Gauss–Legendre order per nested integral.
/// Cost O(j_max · points²); intended for validation, not sweeps.
Result<ExtendedComponents> ExtendedRewindHitProbability(
    const PartitionLayout& layout, const PlaybackRates& rates,
    const Distribution& duration, int quadrature_points = 32);

/// \brief Evaluates the casewise pause equations.
///
/// `tail_epsilon` bounds the enumerated windows: generation stops once the
/// remaining duration mass is below it.
Result<ExtendedComponents> ExtendedPauseHitProbability(
    const PartitionLayout& layout, const Distribution& duration,
    int quadrature_points = 32, double tail_epsilon = 1e-10);

/// Largest behind-partition index a rewinding viewer can reach:
/// the j-th window requires x ≥ γ(jT − d) with x ≤ V_c ≤ l, so
/// j ≤ (l/γ + W)/T.
int ExtendedMaxRewindJumpIndex(const PartitionLayout& layout,
                               const PlaybackRates& rates);

}  // namespace vod

#endif  // VOD_CORE_EXTENDED_EQUATIONS_H_
