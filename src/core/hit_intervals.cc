#include "core/hit_intervals.h"

#include <algorithm>

#include "common/check.h"

namespace vod {

IntervalSet BuildHitIntervals(VcrOp op, const PartitionLayout& layout,
                              const PlaybackRates& rates, double lead_distance,
                              double x_max) {
  const double window = layout.window();          // W = B/n
  const double period = layout.restart_period();  // T = l/n
  VOD_DCHECK(lead_distance >= -1e-12 && lead_distance <= window + 1e-9);
  const double d = std::clamp(lead_distance, 0.0, window);

  IntervalSet set;
  if (window <= 0.0) return set;  // pure batching: no buffered windows

  // Scale factor from relative displacement to operation duration x.
  double scale = 1.0;
  switch (op) {
    case VcrOp::kFastForward:
      scale = rates.Alpha();
      break;
    case VcrOp::kRewind:
      scale = rates.Gamma();
      break;
    case VcrOp::kPause:
      scale = 1.0;
      break;
  }

  if (op == VcrOp::kFastForward) {
    // Window i >= 0 ahead: x ∈ α·[iT + d − W, iT + d].
    for (int i = 0;; ++i) {
      const double lo = scale * (i * period + d - window);
      const double hi = scale * (i * period + d);
      if (lo > x_max) break;
      set.Add(Interval{std::max(lo, 0.0), hi});
    }
  } else {
    // Window j >= 0 behind: x ∈ scale·[jT − d, jT − d + W].
    for (int j = 0;; ++j) {
      const double lo = scale * (j * period - d);
      const double hi = scale * (j * period - d + window);
      if (lo > x_max) break;
      if (hi < 0.0) continue;
      set.Add(Interval{std::max(lo, 0.0), hi});
    }
  }
  return set;
}

}  // namespace vod
