#include "core/reference_model.h"

#include <algorithm>
#include <cmath>

#include "core/hit_intervals.h"
#include "numerics/interval_set.h"
#include "numerics/quadrature.h"

namespace vod {

Result<double> ReferenceHitProbability(VcrOp op, const PartitionLayout& layout,
                                       const PlaybackRates& rates,
                                       const Distribution& duration,
                                       const ReferenceModelOptions& options) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  if (duration.SupportLower() < 0.0) {
    return Status::InvalidArgument("VCR durations must be non-negative");
  }
  const double l = layout.movie_length();
  const double window = layout.window();
  const auto F = [&duration](double x) { return duration.Cdf(x); };

  double x_max;
  if (duration.Cdf(duration.SupportUpper()) >= 1.0 &&
      std::isfinite(duration.SupportUpper())) {
    x_max = duration.SupportUpper();
  } else {
    x_max = duration.Quantile(1.0 - options.tail_epsilon);
  }
  if (op != VcrOp::kPause) x_max = std::min(x_max, l);

  // Hit probability for a fixed (V_c, d).
  const auto hit_at = [&](double vc, double d) {
    IntervalSet set = BuildHitIntervals(op, layout, rates, d, x_max);
    switch (op) {
      case VcrOp::kFastForward:
        set.ClipTo(Interval{0.0, l - vc});
        break;
      case VcrOp::kRewind:
        set.ClipTo(Interval{0.0, vc});
        break;
      case VcrOp::kPause:
        break;  // no position clip; pattern is periodic
    }
    double p = set.MeasureThrough(F);
    if (op == VcrOp::kFastForward && options.include_end_release) {
      p += 1.0 - F(l - vc);  // reaching (or passing) the movie end releases
    }
    return p;
  };

  // Average over d for a fixed V_c.
  const auto averaged_over_d = [&](double vc) {
    if (window <= 0.0) return hit_at(vc, 0.0);
    return GaussLegendre([&](double d) { return hit_at(vc, d); }, 0.0, window,
                         options.d_points) /
           window;
  };

  // Average over V_c — uniformly, or weighted by the position density.
  if (options.position_density == nullptr) {
    return CompositeGaussLegendre(averaged_over_d, 0.0, l, options.vc_panels,
                                  options.vc_points) /
           l;
  }
  const Distribution& q = *options.position_density;
  if (q.SupportLower() < -1e-9 || q.SupportUpper() > l + 1e-9) {
    return Status::InvalidArgument(
        "position density must be supported on [0, movie length]");
  }
  const auto weighted = [&](double vc) {
    return q.Pdf(vc) * averaged_over_d(vc);
  };
  return CompositeGaussLegendre(weighted, 0.0, l, options.vc_panels,
                                options.vc_points);
}

}  // namespace vod
