// Literal transcription of the paper's fast-forward derivation (Eqs. 3–21).
//
// This module exists as an executable specification: it follows the paper's
// case-by-case integrals verbatim (hit within the partition, complete and
// partial jumps to the i-th partition ahead, fast-forward to the end), with
// plain nested numerical integration and no algebraic simplification. The
// production path (AnalyticHitModel) uses the equivalent interval-geometry
// formulation; tests assert the two agree to quadrature tolerance.

#ifndef VOD_CORE_PAPER_EQUATIONS_H_
#define VOD_CORE_PAPER_EQUATIONS_H_

#include <vector>

#include "core/partition_layout.h"
#include "core/types.h"
#include "dist/distribution.h"

namespace vod {

/// Term-by-term result of the paper's Eq. (21).
struct PaperFfComponents {
  /// P(hit_w | FF): Eqs. (7) + (8).
  double hit_within = 0.0;
  /// P(hit_j^i | FF) for i = 1, 2, ...: Eqs. (15)–(18) summed per i.
  std::vector<double> hit_jump_per_partition;
  /// P(end): Eq. (20).
  double end = 0.0;

  double JumpTotal() const {
    double sum = 0.0;
    for (double p : hit_jump_per_partition) sum += p;
    return sum;
  }
  /// P(hit | FF), Eq. (21).
  double Total() const { return hit_within + JumpTotal() + end; }
};

/// \brief Evaluates the paper's FF equations for the given configuration.
///
/// \param quadrature_points  Gauss–Legendre order used for each of the
///        nested (V_f inner, V_c outer) integrals of every case.
/// Cost grows as O(i_max · points²); intended for validation, not sweeps.
Result<PaperFfComponents> PaperFastForwardHitProbability(
    const PartitionLayout& layout, const PlaybackRates& rates,
    const Distribution& duration, int quadrature_points = 32);

/// The paper's Eq. (19): the largest partition index i a viewer can jump to,
/// ⌊(n(l + wα) − lα) / (lα)⌋ (0 when negative).
int PaperMaxJumpIndex(const PartitionLayout& layout,
                      const PlaybackRates& rates);

}  // namespace vod

#endif  // VOD_CORE_PAPER_EQUATIONS_H_
