// Resource pre-allocation and system sizing (paper §5).
//
// Given per-movie performance requirements — maximum waiting time w_i and
// minimum hit probability P*_i — the sizing layer:
//   1. enumerates the feasible (B_i, n_i) pairs connected by Eq. (2)
//      (B = l − n·w) whose model-predicted hit probability meets P*_i,
//   2. picks the minimum-buffer pair per movie (the paper's objective
//      min Σ B_i, since buffer dominates cost at 1997 prices), and
//   3. allocates a shared stream budget n_s across movies, greedily trading
//      streams for buffer at each movie's exchange rate w_i.

#ifndef VOD_CORE_SIZING_H_
#define VOD_CORE_SIZING_H_

#include <string>
#include <vector>

#include "core/hit_model.h"
#include "core/partition_layout.h"
#include "core/types.h"

namespace vod {

/// Sizing inputs for one popular movie.
struct MovieSizingSpec {
  std::string name;
  double length_minutes = 0.0;        ///< l_i
  double max_wait_minutes = 0.0;      ///< w_i (constraint C1)
  double min_hit_probability = 0.0;   ///< P*_i (constraint C2)
  VcrMix mix = VcrMix::Only(VcrOp::kFastForward);
  VcrDurations durations;
  PlaybackRates rates;

  Status Validate() const;
};

/// One point of a movie's trade-off curve.
struct SizingPoint {
  int streams = 0;              ///< n
  double buffer_minutes = 0.0;  ///< B = l − n·w
  double hit_probability = 0.0; ///< model P(hit)
  bool feasible = false;        ///< hit_probability >= P*
};

/// \brief Full (B, n) sweep for one movie (Figure 8).
///
/// Evaluates n = 1, 1 + step, ... up to ⌊l/w⌋ (where B reaches 0). The
/// evaluation reuses one compiled duration table per operation, so sweeps of
/// hundreds of points stay fast.
Result<std::vector<SizingPoint>> ComputeSizingCurve(
    const MovieSizingSpec& spec, int stream_step = 1,
    const AnalyticHitModel::Options& model_options = {});

/// \brief Minimum-buffer feasible pair (B*, n*) for one movie.
///
/// Exploits that the hit probability is non-increasing in n at fixed w
/// (more streams ⇒ less buffer ⇒ less coverage) to binary-search the
/// largest feasible n; the result is verified against its neighbors.
/// Returns Infeasible if even n = 1 misses P*.
Result<SizingPoint> MinimumBufferChoice(
    const MovieSizingSpec& spec,
    const AnalyticHitModel::Options& model_options = {});

/// Per-movie allocation bounds used by the budgeted allocator and the cost
/// curves: all n in [1, max_feasible_streams] are assumed feasible.
struct MovieAllocationBound {
  std::string name;
  double length_minutes = 0.0;
  double max_wait_minutes = 0.0;
  int max_feasible_streams = 0;
};

/// Result of allocating a shared stream budget across movies.
struct AllocationResult {
  struct PerMovie {
    std::string name;
    int streams = 0;
    double buffer_minutes = 0.0;
  };
  std::vector<PerMovie> movies;
  double total_buffer_minutes = 0.0;
  int total_streams = 0;
};

/// \brief min Σ B_i subject to Σ n_i <= stream_budget, n_i ∈ [1, n_i^max].
///
/// Since B_i = l_i − n_i·w_i, the objective is linear and the greedy
/// exchange (give surplus streams to the movie with the largest w_i) is
/// optimal. Returns Infeasible when stream_budget < #movies.
Result<AllocationResult> AllocateStreamBudget(
    const std::vector<MovieAllocationBound>& bounds, int stream_budget);

/// \brief Full sizing pipeline (paper §5 steps 1–3 + Example 1).
///
/// Computes each movie's minimum-buffer choice, then fits the shared stream
/// budget n_s (and optional buffer budget B_s, ignored when <= 0). Returns
/// Infeasible when the budgets cannot be met.
Result<AllocationResult> SizeSystem(
    const std::vector<MovieSizingSpec>& movies, int stream_budget,
    double buffer_budget_minutes = -1.0,
    const AnalyticHitModel::Options& model_options = {});

/// Streams needed by the pure-batching baseline: Σ ⌈l_i / w_i⌉ (the paper's
/// 1230-stream figure for Example 1, with zero buffer and zero hit
/// probability).
int PureBatchingStreams(const std::vector<MovieSizingSpec>& movies);

}  // namespace vod

#endif  // VOD_CORE_SIZING_H_
