#include "core/extended_equations.h"

#include <algorithm>
#include <cmath>

#include "numerics/quadrature.h"

namespace vod {

int ExtendedMaxRewindJumpIndex(const PartitionLayout& layout,
                               const PlaybackRates& rates) {
  const double gamma = rates.Gamma();
  const double period = layout.restart_period();
  if (period <= 0.0) return 0;
  const double bound =
      (layout.movie_length() / gamma + layout.window()) / period;
  return static_cast<int>(std::floor(bound + 1e-12));
}

namespace {

Status ValidateInputs(const PartitionLayout& layout, int quadrature_points) {
  if (quadrature_points < 2 || quadrature_points > 128) {
    return Status::InvalidArgument("quadrature_points must be in [2, 128]");
  }
  if (layout.is_pure_batching()) {
    return Status::InvalidArgument(
        "the casewise equations assume B > 0 (P(V_f) = 1/(B/n))");
  }
  return Status::OK();
}

}  // namespace

Result<ExtendedComponents> ExtendedRewindHitProbability(
    const PartitionLayout& layout, const PlaybackRates& rates,
    const Distribution& duration, int quadrature_points) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  VOD_RETURN_IF_ERROR(ValidateInputs(layout, quadrature_points));

  const double l = layout.movie_length();
  const double window = layout.window();          // W = B/n
  const double period = layout.restart_period();  // T = l/n
  const double gamma = rates.Gamma();
  const auto F = [&duration](double x) { return duration.Cdf(x); };
  const int q = quadrature_points;

  ExtendedComponents out;

  // ---- P(hit_w | RW): resume within the partition of issue. --------------
  //
  // Given (V_c, V_f) with d = V_f − V_c: hit iff x ≤ γ(W − d) AND x ≤ V_c
  // (cannot rewind past the start). Two cases split on which bound binds:
  //   case a (V_c ≥ γ(W − d)): the movie start never interferes,
  //     P = F(γ(W − d));
  //   case b (V_c < γ(W − d)): a start-capped rewind,
  //     P = F(V_c).
  // Unconditioning uses P(V_f) = 1/(B/n) on [V_c, V_c + W] and
  // P(V_c) = 1/l on [0, l]; the case boundary in V_f is
  // d* = W − V_c/γ (case b applies for d < d*, possible only when
  // V_c < γW).
  {
    const auto p_given_vc = [&](double vc) {
      // Case boundary in d.
      const double d_star = std::clamp(window - vc / gamma, 0.0, window);
      // Case b: d ∈ [0, d*) — capped at the movie start.
      const double part_b = d_star * F(vc);
      // Case a: d ∈ [d*, W] — the own-window bound binds.
      const double part_a =
          GaussLegendre([&](double d) { return F(gamma * (window - d)); },
                        d_star, window, q);
      return (part_a + part_b) / window;
    };
    out.hit_within =
        GaussLegendre(p_given_vc, 0.0, l, q) / l;
  }

  // ---- P(hit_j^j | RW): resume in the j-th partition behind. -------------
  //
  // Hit iff x ∈ γ·[jT − d, jT − d + W], clipped by the start bound x ≤ V_c.
  // Three cases per (V_c, d):
  //   complete: V_c ≥ γ(jT − d + W)       → F(hi) − F(lo)
  //   partial:  γ(jT − d) < V_c < γ(...)  → F(V_c) − F(lo)
  //   none:     V_c ≤ γ(jT − d)           → 0
  const int j_max = ExtendedMaxRewindJumpIndex(layout, rates);
  for (int j = 1; j <= j_max; ++j) {
    const double shift = j * period;  // jT
    const auto p_given_vc = [&](double vc) {
      // Case boundaries in d for this (j, V_c):
      //   complete for d ≥ d_c = jT + W − V_c/γ,
      //   none     for d ≤ d_n = jT − V_c/γ.
      const double d_c = std::clamp(shift + window - vc / gamma, 0.0, window);
      const double d_n = std::clamp(shift - vc / gamma, 0.0, window);
      // none: d ∈ [0, d_n] contributes 0.
      // partial: d ∈ (d_n, d_c).
      const double partial = GaussLegendre(
          [&](double d) {
            return std::max(F(vc) - F(gamma * (shift - d)), 0.0);
          },
          d_n, d_c, q);
      // complete: d ∈ [d_c, W].
      const double complete = GaussLegendre(
          [&](double d) {
            return F(gamma * (shift - d + window)) - F(gamma * (shift - d));
          },
          d_c, window, q);
      return (partial + complete) / window;
    };
    out.hit_jump_per_partition.push_back(
        GaussLegendre(p_given_vc, 0.0, l, q) / l);
  }
  return out;
}

Result<ExtendedComponents> ExtendedPauseHitProbability(
    const PartitionLayout& layout, const Distribution& duration,
    int quadrature_points, double tail_epsilon) {
  VOD_RETURN_IF_ERROR(ValidateInputs(layout, quadrature_points));
  if (!(tail_epsilon > 0.0 && tail_epsilon < 0.5)) {
    return Status::InvalidArgument("tail_epsilon must be in (0, 0.5)");
  }

  const double window = layout.window();
  const double period = layout.restart_period();
  const auto F = [&duration](double x) { return duration.Cdf(x); };
  const int q = quadrature_points;

  ExtendedComponents out;

  // ---- P(hit_w | PAU): own partition, no position boundary. --------------
  // Hit iff x ≤ W − d (the trailing edge has not yet swept past).
  out.hit_within =
      GaussLegendre([&](double d) { return F(window - d); }, 0.0, window,
                    q) /
      window;

  // ---- P(hit_j^j | PAU): the j-th window behind sweeps over the viewer
  // during [jT − d, jT − d + W]. Restarts continue forever, so j is bounded
  // only by the duration tail.
  for (int j = 1;; ++j) {
    const double shift = j * period;
    if (1.0 - F(shift - window) < tail_epsilon) break;
    const double p =
        GaussLegendre(
            [&](double d) {
              return F(shift - d + window) - F(shift - d);
            },
            0.0, window, q) /
        window;
    out.hit_jump_per_partition.push_back(p);
    if (j > 100000) break;  // safety against pathological inputs
  }
  return out;
}

}  // namespace vod
