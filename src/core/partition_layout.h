// Static partitioned-buffer layout (paper §3.1, Eq. 2).
//
// A popular movie of length l is restarted every l/n minutes; n I/O streams
// are active at any time and each owns a buffer partition holding B/n
// movie-minutes of frames. The maximum viewer waiting time is
// w = (l − B)/n, realized by a viewer arriving just after the enrollment
// window closes.

#ifndef VOD_CORE_PARTITION_LAYOUT_H_
#define VOD_CORE_PARTITION_LAYOUT_H_

#include <string>

#include "common/status.h"

namespace vod {

/// \brief Immutable description of a movie's batching/buffering layout.
///
/// Invariants: l > 0, n >= 1 integer, 0 <= B <= l. All quantities are in
/// movie-minutes (buffer sizes are expressed as the playback time the
/// buffered frames cover, as in the paper).
class PartitionLayout {
 public:
  /// Layout from an explicit buffer budget B. Returns InvalidArgument if
  /// l <= 0, n < 1, or B outside [0, l].
  static Result<PartitionLayout> FromBuffer(double movie_length, int streams,
                                            double buffer_minutes);

  /// Layout from a target maximum waiting time w via Eq. (2): B = l − n·w.
  /// Returns InvalidArgument if the implied B falls outside [0, l].
  static Result<PartitionLayout> FromMaxWait(double movie_length, int streams,
                                             double max_wait);

  /// Pure batching (B = 0) with restart period equal to the target wait:
  /// n = ceil(l / w) streams, zero buffer. This is the paper's baseline.
  static Result<PartitionLayout> PureBatching(double movie_length,
                                              double max_wait);

  double movie_length() const { return movie_length_; }  ///< l
  int streams() const { return streams_; }                ///< n
  double buffer_minutes() const { return buffer_; }       ///< B

  /// Restart period l/n — the spacing between partition leading edges.
  double restart_period() const { return movie_length_ / streams_; }

  /// Per-partition window width B/n — the viewer enrollment window length.
  double window() const { return buffer_ / streams_; }

  /// Maximum viewer waiting time w = (l − B)/n (Eq. 2); also the width of
  /// the uncovered gap between consecutive partitions.
  double max_wait() const {
    return (movie_length_ - buffer_) / streams_;
  }

  /// Fraction of the movie resident in buffers, B/l ∈ [0, 1].
  double coverage() const { return buffer_ / movie_length_; }

  /// \brief Physical buffer including the per-partition refresh reserve δ.
  ///
  /// The paper's B is *net* of a reserve that keeps the first viewer of a
  /// partition from overwriting frames the last viewer still needs
  /// (§3.1: B = B' − n·δ). Memory provisioning must use the gross
  /// B' = B + n·δ; the hit geometry and Eq. (2) use the net B.
  double gross_buffer_minutes(double per_partition_reserve) const {
    return buffer_ + streams_ * per_partition_reserve;
  }

  /// True if B == 0 (pure batching; hit probability degenerates).
  bool is_pure_batching() const { return buffer_ == 0.0; }

  std::string ToString() const;

 private:
  PartitionLayout(double movie_length, int streams, double buffer)
      : movie_length_(movie_length), streams_(streams), buffer_(buffer) {}

  double movie_length_;
  int streams_;
  double buffer_;
};

}  // namespace vod

#endif  // VOD_CORE_PARTITION_LAYOUT_H_
