#include "core/hit_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/hit_intervals.h"
#include "numerics/quadrature.h"

namespace vod {

Result<CompiledDuration> CompiledDuration::Create(
    DistributionPtr duration, double movie_length, int table_cells,
    double tail_epsilon, DistributionPtr position_density) {
  if (duration == nullptr) {
    return Status::InvalidArgument("duration distribution is null");
  }
  if (!(movie_length > 0.0)) {
    return Status::InvalidArgument("movie length must be positive");
  }
  if (duration->SupportLower() < 0.0) {
    return Status::InvalidArgument(
        "VCR durations must be non-negative (support lower bound < 0)");
  }
  if (table_cells < 16) {
    return Status::InvalidArgument("table_cells must be at least 16");
  }
  if (!(tail_epsilon > 0.0 && tail_epsilon < 0.5)) {
    return Status::InvalidArgument("tail_epsilon must be in (0, 0.5)");
  }
  if (position_density != nullptr &&
      (position_density->SupportLower() < -1e-9 ||
       position_density->SupportUpper() > movie_length + 1e-9)) {
    return Status::InvalidArgument(
        "position density must be supported on [0, movie length]");
  }
  CompiledDuration compiled;
  compiled.duration_ = duration;
  compiled.position_density_ = position_density;
  compiled.movie_length_ = movie_length;

  // Position-weighted tables. With q uniform the weight is the constant
  // 1/l and A_ff == A_rw == Fint/l, recovering the paper's Eqs. (7)/(8).
  const double l = movie_length;
  const auto weight_ff = [&](double c) {
    const double w = position_density == nullptr
                         ? 1.0 / l
                         : position_density->Pdf(l - c);
    return w * duration->Cdf(c);
  };
  const auto weight_rw = [&](double c) {
    const double w = position_density == nullptr
                         ? 1.0 / l
                         : position_density->Pdf(c);
    return w * duration->Cdf(c);
  };
  compiled.weighted_ff_ = std::make_shared<TabulatedAntiderivative>(
      weight_ff, 0.0, movie_length, table_cells);
  compiled.weighted_rw_ = std::make_shared<TabulatedAntiderivative>(
      weight_rw, 0.0, movie_length, table_cells);

  // Tail quantile; for distributions with bounded support Quantile may equal
  // the support end.
  if (duration->Cdf(duration->SupportUpper()) >= 1.0 &&
      std::isfinite(duration->SupportUpper())) {
    compiled.tail_quantile_ = duration->SupportUpper();
  } else {
    compiled.tail_quantile_ = duration->Quantile(1.0 - tail_epsilon);
  }
  return compiled;
}

double CompiledDuration::PositionCdf(double v) const {
  if (position_density_ == nullptr) {
    if (v <= 0.0) return 0.0;
    if (v >= movie_length_) return 1.0;
    return v / movie_length_;
  }
  return position_density_->Cdf(v);
}

double CompiledDuration::FastForwardClipAverage(double b) const {
  // E_q[F(min(b, l − V_c))] = ∫_0^min(b,l) q(l−c)F(c)dc
  //                           + F(b)·P(V_c < l − min(b,l)).
  if (b <= 0.0) return 0.0;
  const double capped = std::min(b, movie_length_);
  return (*weighted_ff_)(capped) +
         duration_->Cdf(b) * PositionCdf(movie_length_ - capped);
}

double CompiledDuration::RewindClipAverage(double b) const {
  // E_q[F(min(b, V_c))] = ∫_0^min(b,l) q(c)F(c)dc + F(b)·P(V_c > min(b,l)).
  if (b <= 0.0) return 0.0;
  const double capped = std::min(b, movie_length_);
  return (*weighted_rw_)(capped) +
         duration_->Cdf(b) * (1.0 - PositionCdf(capped));
}

double CompiledDuration::EndReleaseProbability() const {
  // E_q[1 − F(l − V_c)] = 1 − A_ff(l).
  return 1.0 - (*weighted_ff_)(movie_length_);
}

Result<AnalyticHitModel> AnalyticHitModel::Create(
    const PartitionLayout& layout, const PlaybackRates& rates,
    const Options& options) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  if (options.d_quadrature_points < 1 || options.d_quadrature_points > 128) {
    return Status::InvalidArgument("d_quadrature_points must be in [1, 128]");
  }
  return AnalyticHitModel(layout, rates, options);
}

namespace {

/// Measure of `set` through the op-specific V_c-averaged clipped CDF: the
/// probability that the duration lands in `set` after clipping at the movie
/// end (FF) or start (RW), averaged over the viewer position.
double ClipAveragedMeasure(const CompiledDuration& duration,
                           const IntervalSet& set, VcrOp op) {
  double sum = 0.0;
  for (const Interval& iv : set.intervals()) {
    if (op == VcrOp::kFastForward) {
      sum += duration.FastForwardClipAverage(iv.hi) -
             duration.FastForwardClipAverage(iv.lo);
    } else {
      sum += duration.RewindClipAverage(iv.hi) -
             duration.RewindClipAverage(iv.lo);
    }
  }
  return sum;
}

}  // namespace

HitProbabilityBreakdown AnalyticHitModel::BreakdownAtLeadDistance(
    VcrOp op, const CompiledDuration& duration, double d) const {
  HitProbabilityBreakdown out;
  const double l = layout_.movie_length();
  const double window = layout_.window();

  // Enumeration cap: FF/RW traverse at most l movie-minutes before hitting a
  // movie boundary; PAU durations are unbounded (periodic restarts).
  double x_max = duration.tail_quantile();
  if (op != VcrOp::kPause) x_max = std::min(x_max, l);

  const IntervalSet set =
      BuildHitIntervals(op, layout_, rates_, d, x_max);

  // The "own partition" (i = 0 / j = 0) interval, for the within/jump split.
  double own_hi = 0.0;
  switch (op) {
    case VcrOp::kFastForward:
      own_hi = rates_.Alpha() * d;
      break;
    case VcrOp::kRewind:
      own_hi = rates_.Gamma() * (window - d);
      break;
    case VcrOp::kPause:
      own_hi = window - d;
      break;
  }
  IntervalSet own;
  own.Add(Interval{0.0, own_hi});

  double total_hit = 0.0;
  double within = 0.0;
  if (op == VcrOp::kPause) {
    // No position-dependent clip: measure directly through the CDF.
    const auto cdf = [&duration](double x) { return duration.Cdf(x); };
    total_hit = set.MeasureThrough(cdf);
    within = own.MeasureThrough(cdf);
  } else {
    // FF clips at c = l − V_c, RW clips at c = V_c; both reduce to the
    // position-averaged clipped CDF tables.
    total_hit = ClipAveragedMeasure(duration, set, op);
    within = ClipAveragedMeasure(duration, own, op);
  }
  out.within = within;
  out.jump = std::max(total_hit - within, 0.0);

  if (op == VcrOp::kFastForward && options_.include_end_release) {
    // P(end) = E_q[1 − F(l − V_c)] (Eq. 20 under the position density).
    // Duration mass beyond l also counts as reaching the end (a
    // fast-forward longer than the remaining movie terminates there).
    out.end = duration.EndReleaseProbability();
  }
  return out;
}

Result<HitProbabilityBreakdown> AnalyticHitModel::Breakdown(
    VcrOp op, const CompiledDuration& duration) const {
  if (std::fabs(duration.movie_length() - layout_.movie_length()) > 1e-9) {
    return Status::InvalidArgument(
        "CompiledDuration was built for a different movie length");
  }
  const double window = layout_.window();
  if (window <= 0.0) {
    // Pure batching: no buffered windows, only the FF end-release survives.
    return BreakdownAtLeadDistance(op, duration, 0.0);
  }
  // Expectation over d ~ U[0, window] by Gauss–Legendre.
  const GaussLegendreRule& rule =
      GetGaussLegendreRule(options_.d_quadrature_points);
  HitProbabilityBreakdown sum;
  for (size_t i = 0; i < rule.nodes.size(); ++i) {
    const double d = 0.5 * window * (1.0 + rule.nodes[i]);
    const HitProbabilityBreakdown at =
        BreakdownAtLeadDistance(op, duration, d);
    // Weights sum to 2 over [-1, 1]; the 1/2 normalizes the average.
    const double weight = 0.5 * rule.weights[i];
    sum.within += weight * at.within;
    sum.jump += weight * at.jump;
    sum.end += weight * at.end;
  }
  return sum;
}

Result<double> AnalyticHitModel::HitProbability(
    VcrOp op, const CompiledDuration& duration) const {
  VOD_ASSIGN_OR_RETURN(const HitProbabilityBreakdown breakdown,
                       Breakdown(op, duration));
  return breakdown.total();
}

Result<HitProbabilityBreakdown> AnalyticHitModel::Breakdown(
    VcrOp op, DistributionPtr duration) const {
  VOD_ASSIGN_OR_RETURN(
      const CompiledDuration compiled,
      CompiledDuration::Create(std::move(duration), layout_.movie_length(),
                               options_.cdf_table_cells,
                               options_.tail_epsilon,
                               options_.position_density));
  return Breakdown(op, compiled);
}

Result<double> AnalyticHitModel::HitProbability(VcrOp op,
                                                DistributionPtr duration) const {
  VOD_ASSIGN_OR_RETURN(const HitProbabilityBreakdown breakdown,
                       Breakdown(op, std::move(duration)));
  return breakdown.total();
}

Result<double> AnalyticHitModel::HitProbability(
    const VcrMix& mix, const VcrDurations& durations) const {
  VOD_RETURN_IF_ERROR(mix.Validate());
  double total = 0.0;
  for (VcrOp op : kAllVcrOps) {
    const double p_op = mix.Probability(op);
    if (p_op <= 0.0) continue;
    DistributionPtr dist;
    switch (op) {
      case VcrOp::kFastForward:
        dist = durations.fast_forward;
        break;
      case VcrOp::kRewind:
        dist = durations.rewind;
        break;
      case VcrOp::kPause:
        dist = durations.pause;
        break;
    }
    if (dist == nullptr) {
      return Status::InvalidArgument(
          std::string("mix assigns probability to ") + VcrOpName(op) +
          " but no duration distribution was provided");
    }
    VOD_ASSIGN_OR_RETURN(const double p_hit, HitProbability(op, dist));
    total += p_op * p_hit;
  }
  return total;
}

}  // namespace vod
