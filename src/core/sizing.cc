#include "core/sizing.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/check.h"

namespace vod {

Status MovieSizingSpec::Validate() const {
  if (!(length_minutes > 0.0)) {
    return Status::InvalidArgument("movie length must be positive");
  }
  if (!(max_wait_minutes > 0.0)) {
    return Status::InvalidArgument("max wait must be positive");
  }
  if (max_wait_minutes > length_minutes) {
    return Status::InvalidArgument("max wait cannot exceed the movie length");
  }
  if (min_hit_probability < 0.0 || min_hit_probability > 1.0) {
    return Status::InvalidArgument("P* must lie in [0, 1]");
  }
  VOD_RETURN_IF_ERROR(mix.Validate());
  VOD_RETURN_IF_ERROR(rates.Validate());
  for (VcrOp op : kAllVcrOps) {
    if (mix.Probability(op) > 0.0 && durations.ForOp(op) == nullptr) {
      return Status::InvalidArgument(
          std::string("mix assigns probability to ") + VcrOpName(op) +
          " but no duration distribution was provided");
    }
  }
  return Status::OK();
}

namespace {

// Duration tables compiled once per movie, reused across the n sweep.
struct CompiledSpecDurations {
  std::optional<CompiledDuration> per_op[3];
};

Result<CompiledSpecDurations> CompileSpecDurations(
    const MovieSizingSpec& spec, const AnalyticHitModel::Options& options) {
  CompiledSpecDurations out;
  for (VcrOp op : kAllVcrOps) {
    if (spec.mix.Probability(op) <= 0.0) continue;
    DistributionPtr dist;
    switch (op) {
      case VcrOp::kFastForward:
        dist = spec.durations.fast_forward;
        break;
      case VcrOp::kRewind:
        dist = spec.durations.rewind;
        break;
      case VcrOp::kPause:
        dist = spec.durations.pause;
        break;
    }
    VOD_ASSIGN_OR_RETURN(
        CompiledDuration compiled,
        CompiledDuration::Create(dist, spec.length_minutes,
                                 options.cdf_table_cells,
                                 options.tail_epsilon,
                                 options.position_density));
    out.per_op[static_cast<int>(op)].emplace(std::move(compiled));
  }
  return out;
}

Result<double> MixedHitProbabilityAt(
    const MovieSizingSpec& spec, const CompiledSpecDurations& compiled,
    int streams, const AnalyticHitModel::Options& options) {
  VOD_ASSIGN_OR_RETURN(
      const PartitionLayout layout,
      PartitionLayout::FromMaxWait(spec.length_minutes, streams,
                                   spec.max_wait_minutes));
  VOD_ASSIGN_OR_RETURN(const AnalyticHitModel model,
                       AnalyticHitModel::Create(layout, spec.rates, options));
  double total = 0.0;
  for (VcrOp op : kAllVcrOps) {
    const double p_op = spec.mix.Probability(op);
    if (p_op <= 0.0) continue;
    const auto& maybe = compiled.per_op[static_cast<int>(op)];
    VOD_CHECK(maybe.has_value());
    VOD_ASSIGN_OR_RETURN(const double p_hit,
                         model.HitProbability(op, *maybe));
    total += p_op * p_hit;
  }
  return total;
}

int MaxStreams(const MovieSizingSpec& spec) {
  // Largest n with B = l − n·w >= 0.
  return static_cast<int>(
      std::floor(spec.length_minutes / spec.max_wait_minutes + 1e-9));
}

}  // namespace

Result<std::vector<SizingPoint>> ComputeSizingCurve(
    const MovieSizingSpec& spec, int stream_step,
    const AnalyticHitModel::Options& model_options) {
  VOD_RETURN_IF_ERROR(spec.Validate());
  if (stream_step < 1) {
    return Status::InvalidArgument("stream_step must be >= 1");
  }
  VOD_ASSIGN_OR_RETURN(const CompiledSpecDurations compiled,
                       CompileSpecDurations(spec, model_options));
  std::vector<SizingPoint> points;
  const int n_max = MaxStreams(spec);
  for (int n = 1; n <= n_max; n += stream_step) {
    VOD_ASSIGN_OR_RETURN(
        const double p,
        MixedHitProbabilityAt(spec, compiled, n, model_options));
    SizingPoint point;
    point.streams = n;
    point.buffer_minutes =
        std::max(spec.length_minutes - n * spec.max_wait_minutes, 0.0);
    point.hit_probability = p;
    point.feasible = p >= spec.min_hit_probability;
    points.push_back(point);
  }
  return points;
}

Result<SizingPoint> MinimumBufferChoice(
    const MovieSizingSpec& spec,
    const AnalyticHitModel::Options& model_options) {
  VOD_RETURN_IF_ERROR(spec.Validate());
  VOD_ASSIGN_OR_RETURN(const CompiledSpecDurations compiled,
                       CompileSpecDurations(spec, model_options));
  const int n_max = MaxStreams(spec);

  const auto evaluate = [&](int n) -> Result<SizingPoint> {
    VOD_ASSIGN_OR_RETURN(
        const double p,
        MixedHitProbabilityAt(spec, compiled, n, model_options));
    SizingPoint point;
    point.streams = n;
    point.buffer_minutes =
        std::max(spec.length_minutes - n * spec.max_wait_minutes, 0.0);
    point.hit_probability = p;
    point.feasible = p >= spec.min_hit_probability;
    return point;
  };

  VOD_ASSIGN_OR_RETURN(SizingPoint at_one, evaluate(1));
  if (!at_one.feasible) {
    return Status::Infeasible(
        "P* cannot be met even with a single stream (n = 1); relax P* or w");
  }
  VOD_ASSIGN_OR_RETURN(SizingPoint at_max, evaluate(n_max));
  if (at_max.feasible) return at_max;

  // Binary search the feasibility boundary, assuming P(hit) non-increasing
  // in n (coverage B/l shrinks as streams grow at fixed w).
  int lo = 1;       // feasible
  int hi = n_max;   // infeasible
  SizingPoint best = at_one;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    VOD_ASSIGN_OR_RETURN(SizingPoint at_mid, evaluate(mid));
    if (at_mid.feasible) {
      lo = mid;
      best = at_mid;
    } else {
      hi = mid;
    }
  }
  // Verification against non-monotonic wobble: nudge upward while the next
  // point happens to be feasible again.
  for (int n = best.streams + 1; n <= std::min(best.streams + 4, n_max);
       ++n) {
    VOD_ASSIGN_OR_RETURN(SizingPoint at_n, evaluate(n));
    if (at_n.feasible) best = at_n;
  }
  return best;
}

Result<AllocationResult> AllocateStreamBudget(
    const std::vector<MovieAllocationBound>& bounds, int stream_budget) {
  if (bounds.empty()) {
    return Status::InvalidArgument("no movies to allocate");
  }
  for (const auto& b : bounds) {
    if (b.max_feasible_streams < 1) {
      return Status::InvalidArgument("movie '" + b.name +
                                     "' has no feasible stream count");
    }
    if (!(b.length_minutes > 0.0) || !(b.max_wait_minutes > 0.0)) {
      return Status::InvalidArgument("movie '" + b.name +
                                     "' has invalid length or wait");
    }
  }
  const int m = static_cast<int>(bounds.size());
  if (stream_budget < m) {
    return Status::Infeasible(
        "stream budget is below one stream per movie (" +
        std::to_string(stream_budget) + " < " + std::to_string(m) + ")");
  }

  // Every movie starts at 1 stream; surplus goes to movies in descending
  // order of w_i (each extra stream saves w_i minutes of buffer).
  std::vector<int> order(bounds.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return bounds[a].max_wait_minutes > bounds[b].max_wait_minutes;
  });

  std::vector<int> streams(bounds.size(), 1);
  int surplus = stream_budget - m;
  for (int idx : order) {
    const int want = bounds[idx].max_feasible_streams - 1;
    const int give = std::min(want, surplus);
    streams[idx] += give;
    surplus -= give;
    if (surplus == 0) break;
  }

  AllocationResult result;
  for (size_t i = 0; i < bounds.size(); ++i) {
    AllocationResult::PerMovie pm;
    pm.name = bounds[i].name;
    pm.streams = streams[i];
    pm.buffer_minutes = std::max(
        bounds[i].length_minutes - streams[i] * bounds[i].max_wait_minutes,
        0.0);
    result.total_streams += pm.streams;
    result.total_buffer_minutes += pm.buffer_minutes;
    result.movies.push_back(std::move(pm));
  }
  return result;
}

Result<AllocationResult> SizeSystem(
    const std::vector<MovieSizingSpec>& movies, int stream_budget,
    double buffer_budget_minutes,
    const AnalyticHitModel::Options& model_options) {
  if (movies.empty()) {
    return Status::InvalidArgument("no movies to size");
  }
  std::vector<MovieAllocationBound> bounds;
  bounds.reserve(movies.size());
  for (const auto& spec : movies) {
    VOD_ASSIGN_OR_RETURN(const SizingPoint choice,
                         MinimumBufferChoice(spec, model_options));
    MovieAllocationBound bound;
    bound.name = spec.name;
    bound.length_minutes = spec.length_minutes;
    bound.max_wait_minutes = spec.max_wait_minutes;
    bound.max_feasible_streams = choice.streams;
    bounds.push_back(std::move(bound));
  }
  VOD_ASSIGN_OR_RETURN(AllocationResult result,
                       AllocateStreamBudget(bounds, stream_budget));
  if (buffer_budget_minutes > 0.0 &&
      result.total_buffer_minutes > buffer_budget_minutes + 1e-9) {
    return Status::Infeasible(
        "minimum total buffer " + std::to_string(result.total_buffer_minutes) +
        " min exceeds the buffer budget " +
        std::to_string(buffer_budget_minutes) + " min");
  }
  return result;
}

int PureBatchingStreams(const std::vector<MovieSizingSpec>& movies) {
  int total = 0;
  for (const auto& spec : movies) {
    total += static_cast<int>(
        std::ceil(spec.length_minutes / spec.max_wait_minutes - 1e-9));
  }
  return total;
}

}  // namespace vod
