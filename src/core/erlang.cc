#include "core/erlang.h"

namespace vod {

Result<double> ErlangBlockingProbability(int servers, double offered_load) {
  if (servers < 0) {
    return Status::InvalidArgument("server count must be non-negative");
  }
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  if (offered_load == 0.0) return servers == 0 ? 1.0 : 0.0;
  double blocking = 1.0;  // B(0, a)
  for (int c = 1; c <= servers; ++c) {
    blocking = offered_load * blocking /
               (static_cast<double>(c) + offered_load * blocking);
  }
  return blocking;
}

Result<int> MinStreamsForBlocking(double offered_load, double target_blocking,
                                  int max_servers) {
  if (!(target_blocking > 0.0 && target_blocking <= 1.0)) {
    return Status::InvalidArgument("target blocking must be in (0, 1]");
  }
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  if (max_servers < 0) {
    return Status::InvalidArgument("max_servers must be non-negative");
  }
  if (offered_load == 0.0) return 0;
  double blocking = 1.0;
  if (blocking <= target_blocking) return 0;
  for (int c = 1; c <= max_servers; ++c) {
    blocking = offered_load * blocking /
               (static_cast<double>(c) + offered_load * blocking);
    if (blocking <= target_blocking) return c;
  }
  return Status::Infeasible("blocking target unreachable within max_servers");
}

Result<double> ErlangCarriedLoad(int servers, double offered_load) {
  VOD_ASSIGN_OR_RETURN(const double blocking,
                       ErlangBlockingProbability(servers, offered_load));
  return offered_load * (1.0 - blocking);
}

}  // namespace vod
