#include "core/erlang.h"

#include <vector>

namespace vod {

Result<double> ErlangBlockingProbability(int servers, double offered_load) {
  if (servers < 0) {
    return Status::InvalidArgument("server count must be non-negative");
  }
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  if (offered_load == 0.0) return servers == 0 ? 1.0 : 0.0;
  double blocking = 1.0;  // B(0, a)
  for (int c = 1; c <= servers; ++c) {
    blocking = offered_load * blocking /
               (static_cast<double>(c) + offered_load * blocking);
  }
  return blocking;
}

Result<int> MinStreamsForBlocking(double offered_load, double target_blocking,
                                  int max_servers) {
  if (!(target_blocking > 0.0 && target_blocking <= 1.0)) {
    return Status::InvalidArgument("target blocking must be in (0, 1]");
  }
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  if (max_servers < 0) {
    return Status::InvalidArgument("max_servers must be non-negative");
  }
  if (offered_load == 0.0) return 0;
  double blocking = 1.0;
  if (blocking <= target_blocking) return 0;
  for (int c = 1; c <= max_servers; ++c) {
    blocking = offered_load * blocking /
               (static_cast<double>(c) + offered_load * blocking);
    if (blocking <= target_blocking) return c;
  }
  return Status::Infeasible("blocking target unreachable within max_servers");
}

Result<double> ErlangCarriedLoad(int servers, double offered_load) {
  VOD_ASSIGN_OR_RETURN(const double blocking,
                       ErlangBlockingProbability(servers, offered_load));
  return offered_load * (1.0 - blocking);
}

Result<double> ErlangBlockingWithFailures(int disks, int streams_per_disk,
                                          double offered_load,
                                          double availability) {
  if (disks < 1) return Status::InvalidArgument("need at least one disk");
  if (streams_per_disk < 0) {
    return Status::InvalidArgument("streams per disk must be non-negative");
  }
  if (!(availability >= 0.0 && availability <= 1.0)) {
    return Status::InvalidArgument("availability must be in [0, 1]");
  }
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  // P(k of d disks up) via the numerically stable Pascal recurrence, then
  // mix the conditional Erlang-B blocking at each surviving capacity.
  std::vector<double> up_prob(static_cast<size_t>(disks) + 1, 0.0);
  up_prob[0] = 1.0;
  for (int d = 0; d < disks; ++d) {
    for (int k = d + 1; k >= 1; --k) {
      up_prob[static_cast<size_t>(k)] =
          up_prob[static_cast<size_t>(k)] * (1.0 - availability) +
          up_prob[static_cast<size_t>(k) - 1] * availability;
    }
    up_prob[0] *= 1.0 - availability;
  }
  double blocking = 0.0;
  for (int k = 0; k <= disks; ++k) {
    VOD_ASSIGN_OR_RETURN(
        const double conditional,
        ErlangBlockingProbability(k * streams_per_disk, offered_load));
    blocking += up_prob[static_cast<size_t>(k)] * conditional;
  }
  return blocking;
}

}  // namespace vod
