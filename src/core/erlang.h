// Erlang-B loss analysis for the dynamic VCR stream reserve.
//
// Dedicated-stream demand behaves as an M/G/∞-like process: VCR phase-1
// holdings and post-miss holdings arrive (approximately) as a Poisson
// stream and hold a stream for some service time. When the reserve is a
// finite pool of c streams with blocked-requests-lost semantics (the server
// simulator's behavior), the blocking probability is given by the Erlang-B
// formula — which is *insensitive* to the holding-time distribution and
// needs only the offered load a = (arrival rate) × (mean holding time).
//
// Measuring a is easy: it equals the mean number of busy streams under an
// unlimited supply, which RunSimulation reports as mean_dedicated_streams.
// Feed that into ErlangBlockingProbability / MinStreamsForBlocking to size
// the reserve for a refusal target — the analytic counterpart of
// bench/ext_blocking.

#ifndef VOD_CORE_ERLANG_H_
#define VOD_CORE_ERLANG_H_

#include "common/status.h"

namespace vod {

/// \brief Erlang-B blocking probability B(c, a).
///
/// Computed with the numerically stable recurrence
/// B(0, a) = 1, B(c, a) = a·B(c−1, a) / (c + a·B(c−1, a)).
/// \param servers  pool size c >= 0.
/// \param offered_load  a = λ·E[S] >= 0, in Erlangs.
Result<double> ErlangBlockingProbability(int servers, double offered_load);

/// \brief Smallest pool size whose blocking is <= `target_blocking`.
///
/// Returns InvalidArgument for targets outside (0, 1]; the result is capped
/// at `max_servers` (Infeasible if even that is not enough).
Result<int> MinStreamsForBlocking(double offered_load, double target_blocking,
                                  int max_servers = 1000000);

/// \brief Carried load: a·(1 − B(c, a)), the mean number of busy servers in
/// the finite pool. Useful for utilization reporting.
Result<double> ErlangCarriedLoad(int servers, double offered_load);

/// \brief Blocking probability of a pool striped over failure-prone disks.
///
/// The reserve is served by `disks` independent disks contributing
/// `streams_per_disk` streams each; every disk is up with stationary
/// probability `availability` (MTBF / (MTBF + MTTR)). Under the
/// quasi-stationary approximation — failures and repairs are slow compared
/// to stream holding times, so the pool reaches Erlang equilibrium between
/// capacity changes — the blocking probability is the binomial mixture
///   Σ_k C(disks, k)·A^k·(1−A)^(disks−k) · B(k·streams_per_disk, a).
/// availability = 1 recovers plain Erlang-B at full capacity; availability
/// = 0 gives certain blocking.
Result<double> ErlangBlockingWithFailures(int disks, int streams_per_disk,
                                          double offered_load,
                                          double availability);

}  // namespace vod

#endif  // VOD_CORE_ERLANG_H_
