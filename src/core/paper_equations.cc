#include "core/paper_equations.h"

#include <algorithm>
#include <cmath>

#include "numerics/quadrature.h"

namespace vod {

int PaperMaxJumpIndex(const PartitionLayout& layout,
                      const PlaybackRates& rates) {
  const double l = layout.movie_length();
  const double n = layout.streams();
  const double w = layout.max_wait();
  const double alpha = rates.Alpha();
  const double bound = (n * (l + w * alpha) - l * alpha) / (l * alpha);
  if (bound < 0.0) return 0;
  return static_cast<int>(std::floor(bound + 1e-12));
}

Result<PaperFfComponents> PaperFastForwardHitProbability(
    const PartitionLayout& layout, const PlaybackRates& rates,
    const Distribution& duration, int quadrature_points) {
  VOD_RETURN_IF_ERROR(rates.Validate());
  if (quadrature_points < 2 || quadrature_points > 128) {
    return Status::InvalidArgument("quadrature_points must be in [2, 128]");
  }
  if (layout.is_pure_batching()) {
    return Status::InvalidArgument(
        "the paper's equations assume B > 0 (P(V_f) = 1/(B/n))");
  }

  const double l = layout.movie_length();
  const double n = layout.streams();
  const double alpha = rates.Alpha();
  const double window = layout.window();  // B/n
  const double b_alpha_n = layout.buffer_minutes() * alpha / n;
  const auto F = [&duration](double x) { return duration.Cdf(x); };
  const int q = quadrature_points;

  PaperFfComponents out;

  // ---- P(hit_w | FF): Eqs. (3)–(8). -------------------------------------
  {
    // Case a, Eq. (4): V_f ∈ [V_c, V_c + B/n], catch-up always possible.
    const auto p_a_given_vc = [&](double vc) {
      return GaussLegendre(
                 [&](double vf) { return F(alpha * (vf - vc)); }, vc,
                 vc + window, q) /
             window;
    };
    // Case b, Eq. (6): V_t = (l + (α − 1)V_c)/α caps the catchable V_f.
    const auto p_b_given_vc = [&](double vc) {
      const double vt = std::clamp((l + (alpha - 1.0) * vc) / alpha, vc,
                                   vc + window);
      const double first =
          GaussLegendre([&](double vf) { return F(alpha * (vf - vc)); }, vc,
                        vt, q);
      const double second = (vc + window - vt) * F(alpha * (vt - vc));
      return (first + second) / window;
    };
    const double split = std::clamp(l - b_alpha_n, 0.0, l);
    // Eq. (7): case a over V_c ∈ [0, l − Bα/n].
    const double part_a =
        GaussLegendre(p_a_given_vc, 0.0, split, q) / l;
    // Eq. (8): case b over V_c ∈ [l − Bα/n, l].
    const double part_b = GaussLegendre(p_b_given_vc, split, l, q) / l;
    out.hit_within = part_a + part_b;
  }

  // ---- P(hit_j^i | FF): Eqs. (9)–(18). ----------------------------------
  const int i_max = PaperMaxJumpIndex(layout, rates);
  for (int i = 1; i <= i_max; ++i) {
    const double shift = i * l / n;  // phase difference to the i-th partition
    // Complete hit, Eq. (9): integrate f over [αΔ_jump_l, αΔ_jump_f].
    const auto p_complete = [&](double vc, double vf) {
      const double delta_f = shift + vf - vc;
      const double delta_l = delta_f - window;
      return F(alpha * delta_f) - F(alpha * delta_l);
    };
    // Partial hit, Eq. (10): upper limit becomes l − V_c.
    const auto p_partial = [&](double vc, double vf) {
      const double delta_l = shift + vf - vc - window;
      return std::max(F(l - vc) - F(alpha * delta_l), 0.0);
    };
    const auto vt_i = [&](double vc) {
      return (l + (alpha - 1.0) * vc - shift * alpha) / alpha;
    };
    const auto vt_prime_i = [&](double vc) {
      return (l + (alpha - 1.0) * vc -
              alpha * (i * l - layout.buffer_minutes()) / n) /
             alpha;
    };

    // Ranges of V_c for the four cases (Eqs. 15–18), clamped to [0, l].
    const double a_i = std::clamp(l - b_alpha_n - shift * alpha, 0.0, l);
    const double c_i = std::clamp(l - shift * alpha, 0.0, l);
    const double d_i =
        std::clamp(l - (i * l - layout.buffer_minutes()) * alpha / n, 0.0, l);

    // Eq. (15): complete hit over the full V_f window.
    const double p1 =
        GaussLegendre(
            [&](double vc) {
              return GaussLegendre(
                         [&](double vf) { return p_complete(vc, vf); }, vc,
                         vc + window, q) /
                     window;
            },
            0.0, a_i, q) /
        l;
    // Eq. (16): complete hit for V_f ∈ [V_c, V_t].
    const double p2 =
        GaussLegendre(
            [&](double vc) {
              const double vt = std::clamp(vt_i(vc), vc, vc + window);
              return GaussLegendre(
                         [&](double vf) { return p_complete(vc, vf); }, vc,
                         vt, q) /
                     window;
            },
            a_i, c_i, q) /
        l;
    // Eq. (17): partial hit for V_f ∈ [V_t, V_c + B/n].
    const double p3 =
        GaussLegendre(
            [&](double vc) {
              const double vt = std::clamp(vt_i(vc), vc, vc + window);
              return GaussLegendre(
                         [&](double vf) { return p_partial(vc, vf); }, vt,
                         vc + window, q) /
                     window;
            },
            a_i, c_i, q) /
        l;
    // Eq. (18): partial hit only, V_f ∈ [V_c, V_t'].
    const double p4 =
        GaussLegendre(
            [&](double vc) {
              const double vtp = std::clamp(vt_prime_i(vc), vc, vc + window);
              return GaussLegendre(
                         [&](double vf) { return p_partial(vc, vf); }, vc,
                         vtp, q) /
                     window;
            },
            c_i, d_i, q) /
        l;

    out.hit_jump_per_partition.push_back(p1 + p2 + p3 + p4);
  }

  // ---- P(end): Eq. (20). -------------------------------------------------
  out.end = GaussLegendre([&](double vc) { return F(l) - F(l - vc); }, 0.0,
                          l, q) /
            l;

  return out;
}

}  // namespace vod
