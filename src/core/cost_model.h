// Dollar-cost model for buffer and I/O resources (paper §5, Eq. 23).
//
// C = C_n · (φ · Σ B_i  +  Σ n_i),  φ = C_b / C_n,
// where C_b is the cost of buffering one movie-minute and C_n the cost of
// one I/O stream. Example 2 derives C_b = $750 and C_n = $70 (φ ≈ 11) from
// 1997 hardware: a $700 2GB SCSI disk at 5 MB/s, $25/MB DRAM, 4 Mbps MPEG-2.

#ifndef VOD_CORE_COST_MODEL_H_
#define VOD_CORE_COST_MODEL_H_

#include <vector>

#include "common/status.h"
#include "core/sizing.h"

namespace vod {

/// Hardware price/performance parameters (defaults reproduce Example 2).
struct HardwareCosts {
  double disk_price_dollars = 700.0;
  double disk_transfer_mbytes_per_sec = 5.0;
  double memory_price_per_mbyte = 25.0;
  double video_rate_mbits_per_sec = 4.0;

  /// C_b: dollars to buffer one minute of video.
  /// 60 s · (rate/8) MB/s · $/MB — $750 with the defaults.
  double BufferCostPerMovieMinute() const {
    return 60.0 * (video_rate_mbits_per_sec / 8.0) * memory_price_per_mbyte;
  }

  /// Streams one disk sustains: transfer / (rate/8) — 10 with the defaults.
  double StreamsPerDisk() const {
    return disk_transfer_mbytes_per_sec / (video_rate_mbits_per_sec / 8.0);
  }

  /// C_n: dollars per I/O stream = disk price / streams-per-disk — $70 with
  /// the defaults.
  double StreamCost() const { return disk_price_dollars / StreamsPerDisk(); }

  /// φ = C_b / C_n — ≈ 10.7 (the paper rounds to 11) with the defaults.
  double Phi() const { return BufferCostPerMovieMinute() / StreamCost(); }

  Status Validate() const;
};

/// Dollar cost of an allocation under Eq. (23).
double AllocationCostDollars(const AllocationResult& allocation,
                             const HardwareCosts& costs);

/// Normalized cost φ·ΣB + Σn (units of C_n), as plotted in Figure 9.
double AllocationCostNormalized(const AllocationResult& allocation,
                                double phi);

/// One point of a Figure-9 cost curve.
struct CostCurvePoint {
  int total_streams = 0;
  double total_buffer_minutes = 0.0;
  /// φ·ΣB + Σn.
  double normalized_cost = 0.0;
};

/// \brief Cost versus total stream count (Figure 9).
///
/// For each stream budget N from #movies up to Σ n_i^max (subsampled to at
/// most `max_points` points, always including both endpoints), computes the
/// minimum-buffer allocation and its normalized cost for the given φ.
Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<MovieAllocationBound>& bounds, double phi,
    int max_points = 200);

/// The cost-minimizing point of a curve (ties broken toward fewer streams).
CostCurvePoint MinimumCostPoint(const std::vector<CostCurvePoint>& curve);

}  // namespace vod

#endif  // VOD_CORE_COST_MODEL_H_
