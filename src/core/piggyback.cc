#include "core/piggyback.h"

namespace vod {

Status PiggybackOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (!(speed_delta > 0.0) || speed_delta >= 1.0) {
    return Status::InvalidArgument(
        "piggyback speed_delta must lie in (0, 1)");
  }
  return Status::OK();
}

Result<PiggybackPlan> PlanPiggybackMerge(const PartitionLayout& layout,
                                         double gap_phase,
                                         const PiggybackOptions& options) {
  VOD_RETURN_IF_ERROR(options.Validate());
  if (!options.enabled) {
    return Status::InvalidArgument("piggybacking is disabled");
  }
  const double window = layout.window();
  const double period = layout.restart_period();
  if (window <= 0.0 || window >= period) {
    return Status::InvalidArgument(
        "piggyback merging needs 0 < window < period");
  }
  if (gap_phase < window - 1e-9 || gap_phase > period + 1e-9) {
    return Status::InvalidArgument("phase is not inside the gap");
  }
  const double to_ahead = gap_phase - window;  // shrink g by speeding up
  const double to_behind = period - gap_phase;  // grow g by slowing down
  PiggybackPlan plan;
  if (to_ahead <= to_behind) {
    plan.direction = PiggybackDirection::kSpeedUp;
    plan.rate_factor = 1.0 + options.speed_delta;
    plan.merge_minutes = to_ahead / options.speed_delta;
  } else {
    plan.direction = PiggybackDirection::kSlowDown;
    plan.rate_factor = 1.0 - options.speed_delta;
    plan.merge_minutes = to_behind / options.speed_delta;
  }
  return plan;
}

double ExpectedPiggybackMergeMinutes(const PartitionLayout& layout,
                                     const PiggybackOptions& options) {
  const double gap = layout.restart_period() - layout.window();  // == w
  if (gap <= 0.0 || !options.enabled || options.speed_delta <= 0.0) {
    return 0.0;
  }
  return gap / (4.0 * options.speed_delta);
}

}  // namespace vod
