// Hit-interval geometry for VCR resume events.
//
// Every VCR operation is reduced to a union of intervals of the duration
// variable x (movie-minutes traversed for FF/RW, wall-minutes for PAU) in
// which the resuming viewer lands inside some buffer partition. This is the
// geometric core of the paper's Section 3: the paper's Eqs. (3) and (9) are
// the i = 0 and i >= 1 fast-forward intervals.
//
// Derivation (DESIGN.md §5): work in the viewer's displacement relative to
// the forward-moving window pattern. Windows have width W = B/n and leading
// edges spaced T = l/n apart. A viewer at distance d ∈ [0, W] behind his
// partition's leading edge:
//  * FF traverses x movie-minutes, moving x/α forward relative to the
//    pattern (α = R_FF/(R_FF − R_PB)); he is inside the i-th window ahead
//    iff x ∈ α·[iT + d − W, iT + d].
//  * RW traverses x movie-minutes, moving x/γ backward relative to the
//    pattern (γ = R_RW/(R_PB + R_RW)); he is inside the j-th window behind
//    iff x ∈ γ·[jT − d, jT − d + W].
//  * PAU for x wall-minutes moves x backward relative to the pattern (the
//    R_RW → ∞ limit of RW); he is inside the j-th window behind iff
//    x ∈ [jT − d, jT − d + W].
//
// Boundary clips (movie start/end, FF-past-end) depend on the viewer
// position V_c and are applied by the caller (AnalyticHitModel does this
// analytically; see hit_model.cc).

#ifndef VOD_CORE_HIT_INTERVALS_H_
#define VOD_CORE_HIT_INTERVALS_H_

#include "core/partition_layout.h"
#include "core/types.h"
#include "numerics/interval_set.h"

namespace vod {

/// \brief Builds the (V_c-independent) hit-interval union for one operation.
///
/// \param op              the VCR operation.
/// \param layout          the movie's batching/buffering layout.
/// \param rates           playback/FF/RW speeds (must validate).
/// \param lead_distance   d = V_f − V_c ∈ [0, layout.window()], the viewer's
///                        distance behind his partition's leading edge.
/// \param x_max           enumeration cap: windows whose interval starts
///                        beyond x_max are not generated (choose the
///                        duration distribution's ~1−1e-10 quantile, or the
///                        movie length for FF/RW, whichever is smaller).
/// Intervals are clipped to x >= 0 and merged.
IntervalSet BuildHitIntervals(VcrOp op, const PartitionLayout& layout,
                              const PlaybackRates& rates, double lead_distance,
                              double x_max);

}  // namespace vod

#endif  // VOD_CORE_HIT_INTERVALS_H_
