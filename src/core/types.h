// Core vocabulary types for the resource pre-allocation model.

#ifndef VOD_CORE_TYPES_H_
#define VOD_CORE_TYPES_H_

#include <array>
#include <string>

#include "common/status.h"

namespace vod {

/// The interactive VCR operations of the paper (§2): fast-forward with
/// viewing, rewind with viewing, and pause.
enum class VcrOp : int {
  kFastForward = 0,
  kRewind = 1,
  kPause = 2,
};

inline constexpr std::array<VcrOp, 3> kAllVcrOps = {
    VcrOp::kFastForward, VcrOp::kRewind, VcrOp::kPause};

/// Short name ("FF", "RW", "PAU").
const char* VcrOpName(VcrOp op);

/// \brief Display-speed configuration (paper §3, Eq. 1).
///
/// All rates are in movie-minutes per wall-minute; normal playback is 1.0 by
/// convention and FF/RW are expressed as multiples of it (the paper uses 3x).
struct PlaybackRates {
  double playback = 1.0;      ///< R_PB
  double fast_forward = 3.0;  ///< R_FF, must exceed playback
  double rewind = 3.0;        ///< R_RW, must be positive

  /// α = R_FF / (R_FF − R_PB): movie-time fast-forwarded per unit of initial
  /// lag closed (Eq. 1). Always > 1.
  double Alpha() const { return fast_forward / (fast_forward - playback); }

  /// γ = R_RW / (R_PB + R_RW): movie-time rewound per unit of relative
  /// displacement against the forward-moving partitions (Eq. 1). In (0, 1).
  double Gamma() const { return rewind / (playback + rewind); }

  /// Validates playback > 0, fast_forward > playback, rewind > 0.
  Status Validate() const;
};

/// \brief Probability mix over VCR operation types (paper Eq. 22).
///
/// P_FF + P_RW + P_PAU must sum to 1 (within tolerance). Operations with
/// zero probability are skipped by the model.
struct VcrMix {
  double p_fast_forward = 0.0;
  double p_rewind = 0.0;
  double p_pause = 0.0;

  double Probability(VcrOp op) const {
    switch (op) {
      case VcrOp::kFastForward:
        return p_fast_forward;
      case VcrOp::kRewind:
        return p_rewind;
      case VcrOp::kPause:
        return p_pause;
    }
    return 0.0;
  }

  /// A mix concentrated on a single operation.
  static VcrMix Only(VcrOp op);

  /// The paper's Figure 7(d) mix: P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6.
  static VcrMix PaperMixed() { return VcrMix{0.2, 0.2, 0.6}; }

  /// Validates non-negativity and unit sum (tolerance 1e-9).
  Status Validate() const;
};

}  // namespace vod

#endif  // VOD_CORE_TYPES_H_
