// Analytic hit-probability model (paper §3).
//
// Computes P(hit) — the probability that a viewer resuming from a VCR
// operation lands inside some buffer partition, releasing the I/O stream
// dedicated to the operation — as a function of the layout (l, B, n, w), the
// playback rates, and a *general* duration distribution per operation.
//
// Formulation (equivalent to the paper's Eqs. 3–21 for FF; see
// paper_equations.h for the literal transcription used in cross-tests):
//
//   P(hit | op) = E_{V_c, d} [ P(X ∈ HitIntervals(op, d) ∩ Clip(op, V_c)) ]
//                 (+ P(fast-forward past movie end), for FF)
//
// with V_c ~ U[0, l] (paper's P(V_c) = 1/l) and d ~ U[0, B/n] (paper's
// P(V_f) = 1/(B/n)). The V_c expectation is evaluated *analytically*:
// for a clip boundary c (c = l − V_c for FF, c = V_c for RW), the average of
// F(min(b, c)) over c ∈ [0, l] equals J(b)/l with
//
//   J(b) = Fint(min(b, l)) + (l − min(b, l))·F(b),   Fint(b) = ∫_0^b F,
//
// so only the d expectation needs quadrature. PAU needs no clip at all (the
// window pattern is periodic in time; "pause of x > l is equivalent to
// x mod l", §2.1).

#ifndef VOD_CORE_HIT_MODEL_H_
#define VOD_CORE_HIT_MODEL_H_

#include <memory>

#include "core/partition_layout.h"
#include "core/types.h"
#include "dist/distribution.h"
#include "numerics/antiderivative.h"

namespace vod {

/// Per-operation duration distributions. The paper allows a different f(x)
/// per operation (Figure 7 uses the same gamma for all three).
struct VcrDurations {
  DistributionPtr fast_forward;
  DistributionPtr rewind;
  DistributionPtr pause;

  /// All three operations draw from the same distribution.
  static VcrDurations AllSame(DistributionPtr d) {
    return VcrDurations{d, d, d};
  }

  const Distribution* ForOp(VcrOp op) const {
    switch (op) {
      case VcrOp::kFastForward:
        return fast_forward.get();
      case VcrOp::kRewind:
        return rewind.get();
      case VcrOp::kPause:
        return pause.get();
    }
    return nullptr;
  }
};

/// Decomposition of the release probability (paper Eq. 21 terms).
struct HitProbabilityBreakdown {
  /// Hit within the partition where the operation was issued (hit_w).
  double within = 0.0;
  /// Hit in another partition (Σ_i hit_j^i).
  double jump = 0.0;
  /// FF past the movie end (P(end)); the stream is also released. Zero for
  /// RW and PAU (the model counts a rewind past the beginning as a miss,
  /// matching the paper's stated convention in §4).
  double end = 0.0;

  double total() const { return within + jump + end; }
};

/// \brief Duration distribution pre-processed for repeated model queries.
///
/// Compilation tabulates position-weighted integrals of the duration CDF on
/// [0, l] and the tail quantile; reuse one CompiledDuration across a sweep
/// of layouts for the same movie length (Figure 8 sweeps hundreds of (B, n)
/// pairs per movie).
///
/// The optional `position_density` generalizes the paper's uniformity
/// assumption P(V_c) = 1/l: pass any distribution q on [0, l] (e.g. a
/// truncated exponential modeling viewer abandonment — active viewers skew
/// toward early positions) and the model unconditions over V_c ~ q instead.
/// Null means uniform, exactly the paper's Eqs. (7)/(8).
class CompiledDuration {
 public:
  /// \param movie_length  l; the tables cover [0, l].
  /// \param table_cells   resolution of the weighted-CDF tables.
  /// \param tail_epsilon  hit windows beyond the (1 − tail_epsilon) duration
  ///                      quantile are ignored.
  /// \param position_density  V_c density q on [0, l]; null = uniform.
  static Result<CompiledDuration> Create(
      DistributionPtr duration, double movie_length, int table_cells = 4096,
      double tail_epsilon = 1e-10, DistributionPtr position_density = nullptr);

  double Cdf(double x) const { return duration_->Cdf(x); }

  /// E_{V_c~q}[ F(min(b, l − V_c)) ]: the V_c-averaged probability of a
  /// fast-forward landing below its end-of-movie clip. Non-decreasing in b;
  /// at b >= l it equals 1 − P(end).
  double FastForwardClipAverage(double b) const;

  /// E_{V_c~q}[ F(min(b, V_c)) ]: the rewind analogue (clip at the movie
  /// start).
  double RewindClipAverage(double b) const;

  /// P(end) = E_{V_c~q}[ 1 − F(l − V_c) ] (paper Eq. 20 under q).
  double EndReleaseProbability() const;

  double movie_length() const { return movie_length_; }
  double tail_quantile() const { return tail_quantile_; }
  const Distribution& distribution() const { return *duration_; }
  /// Null when the paper's uniform assumption is in force.
  const Distribution* position_density() const {
    return position_density_.get();
  }

 private:
  CompiledDuration() = default;

  /// q's CDF (uniform when position_density_ is null).
  double PositionCdf(double v) const;

  DistributionPtr duration_;
  DistributionPtr position_density_;  // null = uniform on [0, l]
  /// A_ff(b) = ∫_0^b q(l − c)·F(c) dc.
  std::shared_ptr<TabulatedAntiderivative> weighted_ff_;
  /// A_rw(b) = ∫_0^b q(c)·F(c) dc.
  std::shared_ptr<TabulatedAntiderivative> weighted_rw_;
  double movie_length_ = 0.0;
  double tail_quantile_ = 0.0;
};

/// Tuning knobs of AnalyticHitModel.
struct HitModelOptions {
  /// Gauss–Legendre points for the expectation over d ∈ [0, B/n].
  int d_quadrature_points = 32;
  /// Cells of the integrated-CDF table (when compiling on the fly).
  int cdf_table_cells = 4096;
  /// Tail cut for hit-window enumeration.
  double tail_epsilon = 1e-10;
  /// Include P(end) in FF results (paper Eq. 21 does). Setting this false
  /// isolates the pure in-buffer hit probability.
  bool include_end_release = true;
  /// Viewer-position density q on [0, l] used when compiling durations on
  /// the fly; null = the paper's uniform P(V_c) = 1/l.
  DistributionPtr position_density;
};

/// \brief The analytic model, bound to one layout and rate configuration.
class AnalyticHitModel {
 public:
  using Options = HitModelOptions;

  /// Returns InvalidArgument if the rates are inconsistent.
  static Result<AnalyticHitModel> Create(const PartitionLayout& layout,
                                         const PlaybackRates& rates,
                                         const Options& options = {});

  /// Release-probability decomposition for one operation.
  Result<HitProbabilityBreakdown> Breakdown(
      VcrOp op, const CompiledDuration& duration) const;

  /// P(hit | op) per the paper's Eq. 21 convention.
  Result<double> HitProbability(VcrOp op,
                                const CompiledDuration& duration) const;

  /// Convenience overloads that compile the distribution on the fly.
  Result<HitProbabilityBreakdown> Breakdown(VcrOp op,
                                            DistributionPtr duration) const;
  Result<double> HitProbability(VcrOp op, DistributionPtr duration) const;

  /// P(hit) = Σ_op P_op · P(hit | op)  (paper Eq. 22). Operations with zero
  /// mix probability are skipped and may have null distributions.
  Result<double> HitProbability(const VcrMix& mix,
                                const VcrDurations& durations) const;

  const PartitionLayout& layout() const { return layout_; }
  const PlaybackRates& rates() const { return rates_; }
  const Options& options() const { return options_; }

 private:
  AnalyticHitModel(const PartitionLayout& layout, const PlaybackRates& rates,
                   const Options& options)
      : layout_(layout), rates_(rates), options_(options) {}

  /// Per-d release components, V_c already averaged out.
  HitProbabilityBreakdown BreakdownAtLeadDistance(
      VcrOp op, const CompiledDuration& duration, double d) const;

  PartitionLayout layout_;
  PlaybackRates rates_;
  Options options_;
};

}  // namespace vod

#endif  // VOD_CORE_HIT_MODEL_H_
