// Piggyback merging for phase-2 misses (paper §2, citing Golubchik–Lui–Muntz
// adaptive piggybacking).
//
// A viewer who misses on resume keeps a dedicated stream "until he can join
// a partition, for instance, using the piggybacking technique". Piggyback
// merging alters his playback speed by ±Δ so he drifts — relative to the
// forward-moving window pattern — toward the nearest partition window; on
// contact he joins it and releases the stream.
//
// Geometry: let T = l/n, W = B/n, and let g ∈ (W, T) be the viewer's
// pattern phase (the time offset between him and the leading edge of the
// nearest window ahead; g ≤ W would be a hit). Playing at (1 + Δ)·R_PB
// shrinks g at rate Δ·R_PB until g = W (he catches the window ahead);
// playing at (1 − Δ)·R_PB grows g until g = T ≡ 0 (the window behind
// catches him). The time to merge toward the nearest edge is
// min(g − W, T − g) / (Δ·R_PB).

#ifndef VOD_CORE_PIGGYBACK_H_
#define VOD_CORE_PIGGYBACK_H_

#include "common/status.h"
#include "core/partition_layout.h"
#include "core/types.h"

namespace vod {

/// Phase-2 merge policy knobs (consumed by the simulator).
struct PiggybackOptions {
  /// Enable drift-to-merge after a miss.
  bool enabled = false;
  /// Speed offset Δ as a fraction of the playback rate. Classic piggyback
  /// studies use ~5% (imperceptible to viewers).
  double speed_delta = 0.05;

  Status Validate() const;
};

/// Direction a piggybacking viewer drifts.
enum class PiggybackDirection {
  kSpeedUp,   ///< play at (1 + Δ): catch the window ahead
  kSlowDown,  ///< play at (1 − Δ): let the window behind catch up
};

/// Merge plan for a viewer at a given pattern phase.
struct PiggybackPlan {
  PiggybackDirection direction = PiggybackDirection::kSpeedUp;
  /// Playback-rate multiplier (1 ± Δ).
  double rate_factor = 1.0;
  /// Wall-minutes until the window edge is reached (with R_PB = 1).
  double merge_minutes = 0.0;
};

/// \brief Merge plan for a miss at pattern phase `gap_phase` ∈ [W, T].
///
/// Chooses the faster direction. Returns InvalidArgument if the phase is
/// not in the gap or the layout has no gap/window.
Result<PiggybackPlan> PlanPiggybackMerge(const PartitionLayout& layout,
                                         double gap_phase,
                                         const PiggybackOptions& options);

/// \brief Expected merge time over a uniformly random miss phase.
///
/// The distance to the nearest window edge is uniform on [0, (T − W)/2]
/// (g ~ U(W, T) ⇒ min(g − W, T − g) uniform), so
/// E[t_merge] = (T − W)/(4Δ) = w/(4Δ) wall-minutes at R_PB = 1. The
/// simulator's measured mean differs slightly because resume phases are not
/// exactly uniform in the gap.
double ExpectedPiggybackMergeMinutes(const PartitionLayout& layout,
                                     const PiggybackOptions& options);

}  // namespace vod

#endif  // VOD_CORE_PIGGYBACK_H_
