#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

Status HardwareCosts::Validate() const {
  if (!(disk_price_dollars > 0.0) || !(disk_transfer_mbytes_per_sec > 0.0) ||
      !(memory_price_per_mbyte > 0.0) || !(video_rate_mbits_per_sec > 0.0)) {
    return Status::InvalidArgument("hardware cost parameters must be positive");
  }
  if (StreamsPerDisk() < 1.0) {
    return Status::InvalidArgument(
        "disk transfer rate cannot sustain a single stream");
  }
  return Status::OK();
}

double AllocationCostDollars(const AllocationResult& allocation,
                             const HardwareCosts& costs) {
  return costs.BufferCostPerMovieMinute() * allocation.total_buffer_minutes +
         costs.StreamCost() * allocation.total_streams;
}

double AllocationCostNormalized(const AllocationResult& allocation,
                                double phi) {
  return phi * allocation.total_buffer_minutes + allocation.total_streams;
}

Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<MovieAllocationBound>& bounds, double phi,
    int max_points) {
  if (!(phi > 0.0)) {
    return Status::InvalidArgument("phi must be positive");
  }
  if (max_points < 2) {
    return Status::InvalidArgument("max_points must be >= 2");
  }
  int n_min = static_cast<int>(bounds.size());
  int n_max = 0;
  for (const auto& b : bounds) n_max += b.max_feasible_streams;
  if (n_max < n_min) {
    return Status::InvalidArgument("allocation bounds are empty or invalid");
  }

  const int span = n_max - n_min;
  const int points = std::min(max_points, span + 1);
  std::vector<CostCurvePoint> curve;
  curve.reserve(static_cast<size_t>(points));
  int previous_budget = -1;
  for (int k = 0; k < points; ++k) {
    const int budget =
        points == 1
            ? n_min
            : n_min + static_cast<int>(std::llround(
                          static_cast<double>(span) * k / (points - 1)));
    if (budget == previous_budget) continue;
    previous_budget = budget;
    VOD_ASSIGN_OR_RETURN(const AllocationResult allocation,
                         AllocateStreamBudget(bounds, budget));
    CostCurvePoint point;
    point.total_streams = allocation.total_streams;
    point.total_buffer_minutes = allocation.total_buffer_minutes;
    point.normalized_cost = AllocationCostNormalized(allocation, phi);
    curve.push_back(point);
  }
  return curve;
}

CostCurvePoint MinimumCostPoint(const std::vector<CostCurvePoint>& curve) {
  VOD_CHECK_MSG(!curve.empty(), "cost curve is empty");
  CostCurvePoint best = curve.front();
  for (const auto& point : curve) {
    if (point.normalized_cost < best.normalized_cost) best = point;
  }
  return best;
}

}  // namespace vod
