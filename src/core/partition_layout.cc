#include "core/partition_layout.h"

#include <cmath>
#include <sstream>

namespace vod {

Result<PartitionLayout> PartitionLayout::FromBuffer(double movie_length,
                                                    int streams,
                                                    double buffer_minutes) {
  if (!(movie_length > 0.0)) {
    return Status::InvalidArgument("movie length must be positive");
  }
  if (streams < 1) {
    return Status::InvalidArgument("stream count must be at least 1");
  }
  if (buffer_minutes < 0.0 || buffer_minutes > movie_length) {
    return Status::InvalidArgument(
        "buffer must lie in [0, movie length] (B <= l, paper Eq. 2)");
  }
  return PartitionLayout(movie_length, streams, buffer_minutes);
}

Result<PartitionLayout> PartitionLayout::FromMaxWait(double movie_length,
                                                     int streams,
                                                     double max_wait) {
  if (max_wait < 0.0) {
    return Status::InvalidArgument("max wait must be non-negative");
  }
  const double buffer = movie_length - streams * max_wait;
  if (buffer < -1e-9) {
    return Status::InvalidArgument(
        "n * w exceeds the movie length; no feasible buffer (Eq. 2)");
  }
  return FromBuffer(movie_length, streams, std::max(buffer, 0.0));
}

Result<PartitionLayout> PartitionLayout::PureBatching(double movie_length,
                                                      double max_wait) {
  if (!(max_wait > 0.0)) {
    return Status::InvalidArgument("max wait must be positive");
  }
  if (!(movie_length > 0.0)) {
    return Status::InvalidArgument("movie length must be positive");
  }
  const int n = static_cast<int>(std::ceil(movie_length / max_wait - 1e-12));
  return FromBuffer(movie_length, n, 0.0);
}

std::string PartitionLayout::ToString() const {
  std::ostringstream os;
  os << "PartitionLayout{l=" << movie_length_ << "min, n=" << streams_
     << ", B=" << buffer_ << "min, window=" << window()
     << "min, w=" << max_wait() << "min}";
  return os.str();
}

}  // namespace vod
