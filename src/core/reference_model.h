// Brute-force 2D-quadrature reference for the analytic hit model.
//
// Integrates the hit probability directly over (V_c, d) with explicit
// boundary clips, using the same hit-interval geometry as AnalyticHitModel
// but none of its analytic V_c unconditioning. Exists to validate the fast
// path for all three operations (the literal paper equations only cover FF).

#ifndef VOD_CORE_REFERENCE_MODEL_H_
#define VOD_CORE_REFERENCE_MODEL_H_

#include "core/partition_layout.h"
#include "core/types.h"
#include "dist/distribution.h"

namespace vod {

/// Options for the reference quadrature.
struct ReferenceModelOptions {
  /// Panels of the composite rule over V_c ∈ [0, l].
  int vc_panels = 256;
  /// Gauss–Legendre order within each V_c panel.
  int vc_points = 8;
  /// Gauss–Legendre order over d ∈ [0, B/n].
  int d_points = 32;
  /// Tail cut for the hit-window enumeration.
  double tail_epsilon = 1e-10;
  /// Count FF-past-end as a release (paper Eq. 21).
  bool include_end_release = true;
  /// Viewer-position density q on [0, l]; null = uniform (the paper).
  DistributionPtr position_density;
};

/// \brief P(hit | op) by direct 2D numerical integration.
Result<double> ReferenceHitProbability(
    VcrOp op, const PartitionLayout& layout, const PlaybackRates& rates,
    const Distribution& duration, const ReferenceModelOptions& options = {});

}  // namespace vod

#endif  // VOD_CORE_REFERENCE_MODEL_H_
