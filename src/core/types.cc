#include "core/types.h"

#include <cmath>

namespace vod {

const char* VcrOpName(VcrOp op) {
  switch (op) {
    case VcrOp::kFastForward:
      return "FF";
    case VcrOp::kRewind:
      return "RW";
    case VcrOp::kPause:
      return "PAU";
  }
  return "?";
}

Status PlaybackRates::Validate() const {
  if (playback <= 0.0) {
    return Status::InvalidArgument("playback rate must be positive");
  }
  if (fast_forward <= playback) {
    return Status::InvalidArgument(
        "fast-forward rate must exceed the playback rate");
  }
  if (rewind <= 0.0) {
    return Status::InvalidArgument("rewind rate must be positive");
  }
  return Status::OK();
}

VcrMix VcrMix::Only(VcrOp op) {
  VcrMix mix;
  switch (op) {
    case VcrOp::kFastForward:
      mix.p_fast_forward = 1.0;
      break;
    case VcrOp::kRewind:
      mix.p_rewind = 1.0;
      break;
    case VcrOp::kPause:
      mix.p_pause = 1.0;
      break;
  }
  return mix;
}

Status VcrMix::Validate() const {
  if (p_fast_forward < 0.0 || p_rewind < 0.0 || p_pause < 0.0) {
    return Status::InvalidArgument("mix probabilities must be non-negative");
  }
  const double sum = p_fast_forward + p_rewind + p_pause;
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("mix probabilities must sum to 1");
  }
  return Status::OK();
}

}  // namespace vod
