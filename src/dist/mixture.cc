#include "dist/mixture.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace vod {

MixtureDistribution::MixtureDistribution(
    std::vector<MixtureComponent> components)
    : components_(std::move(components)) {
  VOD_CHECK_MSG(!components_.empty(), "mixture needs at least one component");
  double total = 0.0;
  for (const auto& c : components_) {
    VOD_CHECK_MSG(c.distribution != nullptr, "component distribution null");
    VOD_CHECK_MSG(c.weight > 0.0, "component weights must be positive");
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

double MixtureDistribution::Pdf(double x) const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.distribution->Pdf(x);
  return sum;
}

double MixtureDistribution::Cdf(double x) const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.distribution->Cdf(x);
  return sum;
}

double MixtureDistribution::Mean() const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.distribution->Mean();
  return sum;
}

double MixtureDistribution::Variance() const {
  // Var = Σ w_i (Var_i + Mean_i²) − Mean².
  const double m = Mean();
  double ex2 = 0.0;
  for (const auto& c : components_) {
    const double mi = c.distribution->Mean();
    ex2 += c.weight * (c.distribution->Variance() + mi * mi);
  }
  return ex2 - m * m;
}

double MixtureDistribution::Sample(Rng* rng) const {
  double u = rng->Uniform01();
  for (const auto& c : components_) {
    if (u < c.weight) return c.distribution->Sample(rng);
    u -= c.weight;
  }
  return components_.back().distribution->Sample(rng);
}

double MixtureDistribution::SupportLower() const {
  double lo = components_[0].distribution->SupportLower();
  for (const auto& c : components_) {
    lo = std::min(lo, c.distribution->SupportLower());
  }
  return lo;
}

double MixtureDistribution::SupportUpper() const {
  double hi = components_[0].distribution->SupportUpper();
  for (const auto& c : components_) {
    hi = std::max(hi, c.distribution->SupportUpper());
  }
  return hi;
}

std::string MixtureDistribution::ToString() const {
  std::ostringstream os;
  os << "mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ", ";
    os << components_[i].weight << "*" << components_[i].distribution->ToString();
  }
  os << ")";
  return os.str();
}

std::unique_ptr<Distribution> MixtureDistribution::Clone() const {
  return std::make_unique<MixtureDistribution>(components_);
}

}  // namespace vod
