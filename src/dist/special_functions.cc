#include "dist/special_functions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace vod {

double LogGamma(double x) {
  VOD_CHECK_MSG(x > 0.0, "LogGamma requires x > 0");
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula to keep the approximation in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

// Series expansion of P(a, x), convergent and efficient for x < a + 1.
double GammaPSeries(double a, double x) {
  const double log_prefix = a * std::log(x) - x - LogGamma(a);
  double term = 1.0 / a;
  double sum = term;
  double denom = a;
  for (int i = 0; i < 500; ++i) {
    denom += 1.0;
    term *= x / denom;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(log_prefix);
}

// Lentz continued fraction for Q(a, x), convergent for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double log_prefix = a * std::log(x) - x - LogGamma(a);
  const double tiny = std::numeric_limits<double>::min() / 1e-10;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(log_prefix);
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  VOD_CHECK_MSG(a > 0.0 && x >= 0.0, "RegularizedGammaP domain");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  VOD_CHECK_MSG(a > 0.0 && x >= 0.0, "RegularizedGammaQ domain");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StandardNormalQuantile(double p) {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "StandardNormalQuantile domain");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton polish step: x -= (Phi(x) - p) / phi(x).
  const double e = StandardNormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u;
}

}  // namespace vod
