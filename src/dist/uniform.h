// Continuous uniform distribution on [lo, hi].

#ifndef VOD_DIST_UNIFORM_H_
#define VOD_DIST_UNIFORM_H_

#include "dist/distribution.h"

namespace vod {

/// Uniform(lo, hi), lo < hi.
class UniformDistribution final : public Distribution {
 public:
  /// Precondition: lo < hi.
  UniformDistribution(double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double Variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return lo_; }
  double SupportUpper() const override { return hi_; }
  double Quantile(double p) const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double lo_;
  double hi_;
};

}  // namespace vod

#endif  // VOD_DIST_UNIFORM_H_
