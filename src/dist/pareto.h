// Lomax (Pareto type II) distribution: a heavy-tailed duration model.
//
// VCR-duration measurements in later VOD studies show heavy tails (a few
// viewers scan across most of the movie); Lomax provides that regime for
// sensitivity studies while keeping support [0, ∞) like the paper's
// exponential/gamma choices.

#ifndef VOD_DIST_PARETO_H_
#define VOD_DIST_PARETO_H_

#include "dist/distribution.h"

namespace vod {

/// Lomax(shape a, scale s): CDF 1 − (1 + x/s)^{−a} on [0, ∞).
/// Mean s/(a − 1) for a > 1; variance finite for a > 2.
class LomaxDistribution final : public Distribution {
 public:
  /// Precondition: shape > 0, scale > 0.
  LomaxDistribution(double shape, double scale);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  /// Infinite for shape <= 1.
  double Mean() const override;
  /// Infinite for shape <= 2.
  double Variance() const override;
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override;
  double Quantile(double p) const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// The Lomax with the given shape (> 1) whose mean equals `mean`.
  static LomaxDistribution FromMean(double mean, double shape);

 private:
  double shape_;
  double scale_;
};

}  // namespace vod

#endif  // VOD_DIST_PARETO_H_
