// Gamma distribution (shape/scale parameterization).
//
// The paper's Figure 7 draws VCR durations from "a skewed gamma distribution
// with a mean = 8 minutes (α = 2, γ = 4)" — shape 2, scale 4 in our terms.

#ifndef VOD_DIST_GAMMA_H_
#define VOD_DIST_GAMMA_H_

#include "dist/distribution.h"

namespace vod {

/// Gamma(shape k, scale θ) with density x^{k-1} e^{-x/θ} / (Γ(k) θ^k) on
/// [0, ∞). Mean kθ, variance kθ².
class GammaDistribution final : public Distribution {
 public:
  /// Precondition: shape > 0, scale > 0.
  GammaDistribution(double shape, double scale);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return shape_ * scale_; }
  double Variance() const override { return shape_ * scale_ * scale_; }
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
  double log_norm_;  // precomputed log of the density normalizer
};

}  // namespace vod

#endif  // VOD_DIST_GAMMA_H_
