// Finite mixture of distributions.
//
// Lets experiments model heterogeneous VCR behavior (e.g. "mostly short
// skips, occasionally a long scan") without extending the analytic engine —
// mixtures compose at the CDF level, which is all the model consumes.

#ifndef VOD_DIST_MIXTURE_H_
#define VOD_DIST_MIXTURE_H_

#include <vector>

#include "dist/distribution.h"

namespace vod {

/// One weighted component of a mixture.
struct MixtureComponent {
  DistributionPtr distribution;
  double weight = 0.0;
};

/// \brief Convex combination of component distributions.
///
/// Weights must be positive; they are normalized to sum to 1.
class MixtureDistribution final : public Distribution {
 public:
  /// Precondition: at least one component, all weights > 0.
  explicit MixtureDistribution(std::vector<MixtureComponent> components);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  double Sample(Rng* rng) const override;
  double SupportLower() const override;
  double SupportUpper() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  size_t num_components() const { return components_.size(); }

 private:
  std::vector<MixtureComponent> components_;  // weights normalized
};

}  // namespace vod

#endif  // VOD_DIST_MIXTURE_H_
