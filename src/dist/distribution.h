// Abstract probability distribution interface.
//
// The paper's model is deliberately general: "we assume that the VCR behavior
// has a general distribution and construct a model which is able to handle a
// general probability distribution" (§3.1). Everything the analytic engine
// needs from a duration distribution is Cdf(); the simulator additionally
// needs Sample().

#ifndef VOD_DIST_DISTRIBUTION_H_
#define VOD_DIST_DISTRIBUTION_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace vod {

/// \brief A univariate probability distribution on (a subset of) the reals.
///
/// Implementations are immutable and thread-compatible; Sample() mutates only
/// the caller-supplied Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x. For distributions with atoms (Deterministic),
  /// returns 0 away from atoms; use Cdf() for probabilistic statements.
  virtual double Pdf(double x) const = 0;

  /// P(X <= x). Must be non-decreasing with limits 0 and 1.
  virtual double Cdf(double x) const = 0;

  /// E[X]. Infinite means are not used by this library.
  virtual double Mean() const = 0;

  /// Var[X].
  virtual double Variance() const = 0;

  /// Draws one variate using the supplied generator.
  virtual double Sample(Rng* rng) const = 0;

  /// Smallest point of the support (may be -infinity).
  virtual double SupportLower() const = 0;

  /// Largest point of the support (may be +infinity).
  virtual double SupportUpper() const = 0;

  /// Generalized inverse CDF: smallest x with Cdf(x) >= p, p in (0, 1).
  /// The default implementation bisects the CDF; subclasses with closed
  /// forms override.
  virtual double Quantile(double p) const;

  /// Human-readable spec, e.g. "gamma(shape=2, scale=4)". Round-trips
  /// through ParseDistributionSpec for the canonical spellings.
  virtual std::string ToString() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> Clone() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// \brief Parses a textual distribution spec into a distribution.
///
/// Grammar (case-insensitive names, whitespace ignored):
///   exp(mean) | exponential(mean)
///   gamma(shape, scale)
///   uniform(lo, hi)
///   det(value) | deterministic(value)
///   weibull(shape, scale)
///   lognormal(mu, sigma)
/// Used by bench/example binaries to accept e.g. --duration='gamma(2,4)'.
Result<DistributionPtr> ParseDistributionSpec(const std::string& spec);

}  // namespace vod

#endif  // VOD_DIST_DISTRIBUTION_H_
