#include "dist/transformed.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "numerics/quadrature.h"

namespace vod {

TruncatedDistribution::TruncatedDistribution(DistributionPtr base, double lo,
                                             double hi)
    : base_(std::move(base)), lo_(lo), hi_(hi) {
  VOD_CHECK_MSG(base_ != nullptr, "base distribution required");
  VOD_CHECK_MSG(lo < hi, "truncation requires lo < hi");
  f_lo_ = base_->Cdf(lo_);
  mass_ = base_->Cdf(hi_) - f_lo_;
  VOD_CHECK_MSG(mass_ > 0.0, "base has no mass on the truncation interval");
}

double TruncatedDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return base_->Pdf(x) / mass_;
}

double TruncatedDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (base_->Cdf(x) - f_lo_) / mass_;
}

double TruncatedDistribution::Mean() const {
  // E[X | lo <= X <= hi] = ∫ x f(x) dx / mass.
  const auto integrand = [this](double x) { return x * base_->Pdf(x); };
  return AdaptiveSimpson(integrand, lo_, hi_).value / mass_;
}

double TruncatedDistribution::Variance() const {
  const double m = Mean();
  const auto integrand = [this, m](double x) {
    return (x - m) * (x - m) * base_->Pdf(x);
  };
  return AdaptiveSimpson(integrand, lo_, hi_).value / mass_;
}

double TruncatedDistribution::Sample(Rng* rng) const {
  // Inversion: map U(0,1) into the CDF range of the truncation window.
  const double u = f_lo_ + mass_ * rng->Uniform01();
  const double clipped = std::min(std::max(u, 1e-15), 1.0 - 1e-15);
  return std::min(std::max(base_->Quantile(clipped), lo_), hi_);
}

std::string TruncatedDistribution::ToString() const {
  std::ostringstream os;
  os << "truncated(" << base_->ToString() << ", [" << lo_ << ", " << hi_
     << "])";
  return os.str();
}

std::unique_ptr<Distribution> TruncatedDistribution::Clone() const {
  return std::make_unique<TruncatedDistribution>(base_, lo_, hi_);
}

WrappedDistribution::WrappedDistribution(DistributionPtr base, double period)
    : base_(std::move(base)), period_(period) {
  VOD_CHECK_MSG(base_ != nullptr, "base distribution required");
  VOD_CHECK_MSG(period > 0.0, "period must be positive");
  VOD_CHECK_MSG(base_->SupportLower() >= 0.0,
                "WrappedDistribution requires a non-negative base");
}

double WrappedDistribution::Pdf(double x) const {
  if (x < 0.0 || x >= period_) return 0.0;
  double sum = 0.0;
  for (int k = 0; k < 10000; ++k) {
    const double shifted = x + k * period_;
    sum += base_->Pdf(shifted);
    // Stop when the tail beyond the next period is negligible.
    if (1.0 - base_->Cdf((k + 1) * period_) < 1e-12) break;
  }
  return sum;
}

double WrappedDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= period_) return 1.0;
  double sum = 0.0;
  for (int k = 0; k < 10000; ++k) {
    const double base_k = base_->Cdf(k * period_);
    sum += base_->Cdf(x + k * period_) - base_k;
    if (1.0 - base_->Cdf((k + 1) * period_) < 1e-12) break;
  }
  return std::min(sum, 1.0);
}

double WrappedDistribution::Mean() const {
  // E[X] = ∫_0^period (1 - F(x)) dx for a non-negative variable on
  // [0, period).
  const auto survival = [this](double x) { return 1.0 - Cdf(x); };
  return AdaptiveSimpson(survival, 0.0, period_).value;
}

double WrappedDistribution::Variance() const {
  const double m = Mean();
  // E[X^2] = ∫ 2x (1 - F(x)) dx on [0, period).
  const auto integrand = [this](double x) { return 2.0 * x * (1.0 - Cdf(x)); };
  const double ex2 = AdaptiveSimpson(integrand, 0.0, period_).value;
  return ex2 - m * m;
}

double WrappedDistribution::Sample(Rng* rng) const {
  return std::fmod(base_->Sample(rng), period_);
}

std::string WrappedDistribution::ToString() const {
  std::ostringstream os;
  os << "wrapped(" << base_->ToString() << ", mod " << period_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> WrappedDistribution::Clone() const {
  return std::make_unique<WrappedDistribution>(base_, period_);
}

}  // namespace vod
