// Exponential distribution, parameterized by its mean.
//
// The paper's Example 1 uses exponential VCR durations (means 5 and 2
// minutes); Poisson viewer arrivals correspond to exponential interarrival
// times with mean 1/λ.

#ifndef VOD_DIST_EXPONENTIAL_H_
#define VOD_DIST_EXPONENTIAL_H_

#include "dist/distribution.h"

namespace vod {

/// Exponential(mean) with density (1/mean) e^{-x/mean} on [0, ∞).
class ExponentialDistribution final : public Distribution {
 public:
  /// Precondition: mean > 0.
  explicit ExponentialDistribution(double mean);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return mean_; }
  double Variance() const override { return mean_ * mean_; }
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override;
  double Quantile(double p) const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double mean_;
};

}  // namespace vod

#endif  // VOD_DIST_EXPONENTIAL_H_
