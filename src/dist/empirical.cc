#include "dist/empirical.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace vod {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  VOD_CHECK_MSG(sorted_.size() >= 2, "need at least 2 samples");
  for (double s : sorted_) VOD_CHECK_MSG(std::isfinite(s), "samples finite");
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0.0;
  for (double s : sorted_) sum += s;
  mean_ = sum / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (double s : sorted_) ss += (s - mean_) * (s - mean_);
  variance_ = ss / static_cast<double>(sorted_.size() - 1);
}

double EmpiricalDistribution::Cdf(double x) const {
  if (x <= sorted_.front()) return x < sorted_.front() ? 0.0 : 0.0;
  if (x >= sorted_.back()) return 1.0;
  // Piecewise-linear CDF through points (x_(i), i/(n-1)).
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const size_t i = static_cast<size_t>(it - sorted_.begin());  // i >= 1
  const double x0 = sorted_[i - 1];
  const double x1 = sorted_[i];
  const double n1 = static_cast<double>(sorted_.size() - 1);
  const double f0 = static_cast<double>(i - 1) / n1;
  const double f1 = static_cast<double>(i) / n1;
  if (x1 == x0) return f1;
  return f0 + (f1 - f0) * (x - x0) / (x1 - x0);
}

double EmpiricalDistribution::Pdf(double x) const {
  if (x < sorted_.front() || x > sorted_.back()) return 0.0;
  // Slope of the piecewise-linear CDF on the containing segment.
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  size_t i = static_cast<size_t>(it - sorted_.begin());
  if (i == 0) i = 1;
  if (i == sorted_.size()) i = sorted_.size() - 1;
  const double x0 = sorted_[i - 1];
  const double x1 = sorted_[i];
  if (x1 == x0) return 0.0;
  const double n1 = static_cast<double>(sorted_.size() - 1);
  return (1.0 / n1) / (x1 - x0);
}

double EmpiricalDistribution::Sample(Rng* rng) const {
  const double u = rng->Uniform01() * static_cast<double>(sorted_.size() - 1);
  const size_t i = static_cast<size_t>(u);
  const double frac = u - static_cast<double>(i);
  if (i + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[i] + frac * (sorted_[i + 1] - sorted_[i]);
}

std::string EmpiricalDistribution::ToString() const {
  std::ostringstream os;
  os << "empirical(n=" << sorted_.size() << ", mean=" << mean_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> EmpiricalDistribution::Clone() const {
  return std::make_unique<EmpiricalDistribution>(sorted_);
}

}  // namespace vod
