#include "dist/uniform.h"

#include <sstream>

#include "common/check.h"

namespace vod {

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  VOD_CHECK_MSG(lo < hi, "uniform requires lo < hi");
}

double UniformDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Sample(Rng* rng) const {
  return rng->Uniform(lo_, hi_);
}

double UniformDistribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  return lo_ + p * (hi_ - lo_);
}

std::string UniformDistribution::ToString() const {
  std::ostringstream os;
  os << "uniform(" << lo_ << ", " << hi_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> UniformDistribution::Clone() const {
  return std::make_unique<UniformDistribution>(lo_, hi_);
}

}  // namespace vod
