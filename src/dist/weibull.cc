#include "dist/weibull.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "dist/special_functions.h"

namespace vod {

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  VOD_CHECK_MSG(shape > 0.0 && scale > 0.0,
                "weibull shape and scale must be positive");
}

double WeibullDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDistribution::Mean() const {
  return scale_ * std::exp(LogGamma(1.0 + 1.0 / shape_));
}

double WeibullDistribution::Variance() const {
  const double g1 = std::exp(LogGamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(LogGamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

double WeibullDistribution::Sample(Rng* rng) const {
  const double u = 1.0 - rng->Uniform01();  // in (0, 1]
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double WeibullDistribution::SupportUpper() const {
  return std::numeric_limits<double>::infinity();
}

double WeibullDistribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

std::string WeibullDistribution::ToString() const {
  std::ostringstream os;
  os << "weibull(" << shape_ << ", " << scale_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> WeibullDistribution::Clone() const {
  return std::make_unique<WeibullDistribution>(shape_, scale_);
}

}  // namespace vod
