#include "dist/pareto.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace vod {

LomaxDistribution::LomaxDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  VOD_CHECK_MSG(shape > 0.0 && scale > 0.0,
                "Lomax shape and scale must be positive");
}

LomaxDistribution LomaxDistribution::FromMean(double mean, double shape) {
  VOD_CHECK_MSG(shape > 1.0, "FromMean requires shape > 1 (finite mean)");
  VOD_CHECK_MSG(mean > 0.0, "mean must be positive");
  return LomaxDistribution(shape, mean * (shape - 1.0));
}

double LomaxDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return (shape_ / scale_) * std::pow(1.0 + x / scale_, -(shape_ + 1.0));
}

double LomaxDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 + x / scale_, -shape_);
}

double LomaxDistribution::Mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ / (shape_ - 1.0);
}

double LomaxDistribution::Variance() const {
  if (shape_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double a = shape_;
  return scale_ * scale_ * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
}

double LomaxDistribution::Sample(Rng* rng) const {
  // Inversion: x = s·(U^{-1/a} − 1) with U in (0, 1].
  const double u = 1.0 - rng->Uniform01();
  return scale_ * (std::pow(u, -1.0 / shape_) - 1.0);
}

double LomaxDistribution::SupportUpper() const {
  return std::numeric_limits<double>::infinity();
}

double LomaxDistribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  return scale_ * (std::pow(1.0 - p, -1.0 / shape_) - 1.0);
}

std::string LomaxDistribution::ToString() const {
  std::ostringstream os;
  os << "lomax(" << shape_ << ", " << scale_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> LomaxDistribution::Clone() const {
  return std::make_unique<LomaxDistribution>(shape_, scale_);
}

}  // namespace vod
