// Empirical distribution built from observed samples.
//
// The paper notes that "the pdf of VCR requests can be obtained by statistics
// while the movie is displayed" (§2.1): in deployment, an operator would fit
// the model with measured durations. EmpiricalDistribution closes that loop —
// feed it a duration log (or simulator output) and hand it to the analytic
// model directly.

#ifndef VOD_DIST_EMPIRICAL_H_
#define VOD_DIST_EMPIRICAL_H_

#include <vector>

#include "dist/distribution.h"

namespace vod {

/// \brief Piecewise-linear empirical distribution from a sample vector.
///
/// The CDF linearly interpolates between order statistics (a continuous
/// version of the ECDF); sampling draws a uniform index and interpolates,
/// which is equivalent to inverse-CDF sampling of that piecewise-linear CDF.
class EmpiricalDistribution final : public Distribution {
 public:
  /// Precondition: at least 2 samples, all finite.
  explicit EmpiricalDistribution(std::vector<double> samples);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return mean_; }
  double Variance() const override { return variance_; }
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return sorted_.front(); }
  double SupportUpper() const override { return sorted_.back(); }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  size_t sample_count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace vod

#endif  // VOD_DIST_EMPIRICAL_H_
