// Special functions backing the distribution CDFs.
//
// Self-contained implementations (Lanczos log-gamma, regularized incomplete
// gamma by series/continued-fraction) so results are bit-stable across
// platforms and directly unit-testable against reference values.

#ifndef VOD_DIST_SPECIAL_FUNCTIONS_H_
#define VOD_DIST_SPECIAL_FUNCTIONS_H_

namespace vod {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~15 significant digits).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), for a > 0,
/// x >= 0. Uses the series expansion for x < a + 1 and the Lentz continued
/// fraction otherwise. This is the Gamma(a, 1) CDF.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Standard normal CDF Φ(x).
double StandardNormalCdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation
/// polished by one Newton step; max error < 1e-12). Precondition:
/// 0 < p < 1.
double StandardNormalQuantile(double p);

}  // namespace vod

#endif  // VOD_DIST_SPECIAL_FUNCTIONS_H_
