// Point-mass (degenerate) distribution.
//
// Useful for modeling fixed-length VCR operations (e.g. "skip exactly one
// scene") and for making simulator tests exactly predictable.

#ifndef VOD_DIST_DETERMINISTIC_H_
#define VOD_DIST_DETERMINISTIC_H_

#include "dist/distribution.h"

namespace vod {

/// Degenerate distribution concentrated at `value`.
///
/// Pdf() reports 0 everywhere (the density does not exist as a function);
/// probabilistic statements must go through Cdf(), which is the step
/// function 1{x >= value}.
class DeterministicDistribution final : public Distribution {
 public:
  explicit DeterministicDistribution(double value) : value_(value) {}

  double Pdf(double /*x*/) const override { return 0.0; }
  double Cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
  double Mean() const override { return value_; }
  double Variance() const override { return 0.0; }
  double Sample(Rng* /*rng*/) const override { return value_; }
  double SupportLower() const override { return value_; }
  double SupportUpper() const override { return value_; }
  double Quantile(double /*p*/) const override { return value_; }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double value_;
};

}  // namespace vod

#endif  // VOD_DIST_DETERMINISTIC_H_
