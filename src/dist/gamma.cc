#include "dist/gamma.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "dist/special_functions.h"

namespace vod {

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  VOD_CHECK_MSG(shape > 0.0 && scale > 0.0,
                "gamma shape and scale must be positive");
  log_norm_ = -LogGamma(shape_) - shape_ * std::log(scale_);
}

double GammaDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return std::exp(log_norm_ + (shape_ - 1.0) * std::log(x) - x / scale_);
}

double GammaDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(shape_, x / scale_);
}

double GammaDistribution::Sample(Rng* rng) const {
  return rng->Gamma(shape_, scale_);
}

double GammaDistribution::SupportUpper() const {
  return std::numeric_limits<double>::infinity();
}

std::string GammaDistribution::ToString() const {
  std::ostringstream os;
  os << "gamma(" << shape_ << ", " << scale_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> GammaDistribution::Clone() const {
  return std::make_unique<GammaDistribution>(shape_, scale_);
}

}  // namespace vod
