#include "dist/lognormal.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "dist/special_functions.h"

namespace vod {

LognormalDistribution::LognormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  VOD_CHECK_MSG(sigma > 0.0, "lognormal sigma must be positive");
}

double LognormalDistribution::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LognormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return StandardNormalCdf((std::log(x) - mu_) / sigma_);
}

double LognormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LognormalDistribution::Variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LognormalDistribution::Sample(Rng* rng) const {
  return std::exp(mu_ + sigma_ * rng->Normal());
}

double LognormalDistribution::SupportUpper() const {
  return std::numeric_limits<double>::infinity();
}

double LognormalDistribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  return std::exp(mu_ + sigma_ * StandardNormalQuantile(p));
}

std::string LognormalDistribution::ToString() const {
  std::ostringstream os;
  os << "lognormal(" << mu_ << ", " << sigma_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> LognormalDistribution::Clone() const {
  return std::make_unique<LognormalDistribution>(mu_, sigma_);
}

}  // namespace vod
