// Weibull distribution (shape/scale).
//
// Included as an alternative heavy/light-tailed VCR-duration model for
// sensitivity studies beyond the paper's exponential and gamma choices.

#ifndef VOD_DIST_WEIBULL_H_
#define VOD_DIST_WEIBULL_H_

#include "dist/distribution.h"

namespace vod {

/// Weibull(shape k, scale λ): CDF 1 - exp(-(x/λ)^k) on [0, ∞).
class WeibullDistribution final : public Distribution {
 public:
  /// Precondition: shape > 0, scale > 0.
  WeibullDistribution(double shape, double scale);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override;
  double Quantile(double p) const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace vod

#endif  // VOD_DIST_WEIBULL_H_
