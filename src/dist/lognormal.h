// Lognormal distribution (mu/sigma of the underlying normal).

#ifndef VOD_DIST_LOGNORMAL_H_
#define VOD_DIST_LOGNORMAL_H_

#include "dist/distribution.h"

namespace vod {

/// Lognormal(μ, σ): X = exp(N(μ, σ²)) on (0, ∞).
class LognormalDistribution final : public Distribution {
 public:
  /// Precondition: sigma > 0.
  LognormalDistribution(double mu, double sigma);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override;
  double Quantile(double p) const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace vod

#endif  // VOD_DIST_LOGNORMAL_H_
