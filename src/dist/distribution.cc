#include "dist/distribution.h"

#include <cctype>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/pareto.h"
#include "dist/uniform.h"
#include "dist/weibull.h"

namespace vod {

double Distribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  // Establish a finite bracket [lo, hi] with Cdf(lo) < p <= Cdf(hi).
  double lo = SupportLower();
  double hi = SupportUpper();
  if (!std::isfinite(lo)) {
    lo = -1.0;
    while (Cdf(lo) >= p) lo *= 2.0;
  }
  if (!std::isfinite(hi)) {
    hi = 1.0;
    while (Cdf(hi) < p) hi *= 2.0;
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * (1.0 + std::fabs(hi));
       ++iter) {
    const double m = 0.5 * (lo + hi);
    if (Cdf(m) >= p) {
      hi = m;
    } else {
      lo = m;
    }
  }
  return hi;
}

namespace {

// Splits "name(a, b, ...)" into a lowercase name and numeric args.
Status SplitSpec(const std::string& spec, std::string* name,
                 std::vector<double>* args) {
  std::string compact;
  for (char ch : spec) {
    if (!std::isspace(static_cast<unsigned char>(ch))) {
      compact += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
  }
  const size_t open = compact.find('(');
  if (open == std::string::npos || compact.back() != ')') {
    return Status::InvalidArgument("distribution spec must look like "
                                   "'name(arg, ...)': " + spec);
  }
  *name = compact.substr(0, open);
  std::string body = compact.substr(open + 1, compact.size() - open - 2);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string token = body.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad numeric argument '" + token +
                                     "' in spec: " + spec);
    }
    args->push_back(v);
    pos = comma + 1;
  }
  return Status::OK();
}

Status RequireArgs(const std::string& name, const std::vector<double>& args,
                   size_t expected) {
  if (args.size() != expected) {
    return Status::InvalidArgument(
        name + " expects " + std::to_string(expected) + " argument(s), got " +
        std::to_string(args.size()));
  }
  return Status::OK();
}

}  // namespace

Result<DistributionPtr> ParseDistributionSpec(const std::string& spec) {
  std::string name;
  std::vector<double> args;
  VOD_RETURN_IF_ERROR(SplitSpec(spec, &name, &args));

  if (name == "exp" || name == "exponential") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 1));
    if (args[0] <= 0) {
      return Status::InvalidArgument("exponential mean must be positive");
    }
    return DistributionPtr(
        std::make_shared<ExponentialDistribution>(args[0]));
  }
  if (name == "gamma") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 2));
    if (args[0] <= 0 || args[1] <= 0) {
      return Status::InvalidArgument("gamma shape/scale must be positive");
    }
    return DistributionPtr(
        std::make_shared<GammaDistribution>(args[0], args[1]));
  }
  if (name == "uniform") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 2));
    if (args[0] >= args[1]) {
      return Status::InvalidArgument("uniform requires lo < hi");
    }
    return DistributionPtr(
        std::make_shared<UniformDistribution>(args[0], args[1]));
  }
  if (name == "det" || name == "deterministic") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 1));
    return DistributionPtr(
        std::make_shared<DeterministicDistribution>(args[0]));
  }
  if (name == "weibull") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 2));
    if (args[0] <= 0 || args[1] <= 0) {
      return Status::InvalidArgument("weibull shape/scale must be positive");
    }
    return DistributionPtr(
        std::make_shared<WeibullDistribution>(args[0], args[1]));
  }
  if (name == "lomax" || name == "pareto2") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 2));
    if (args[0] <= 0 || args[1] <= 0) {
      return Status::InvalidArgument("lomax shape/scale must be positive");
    }
    return DistributionPtr(
        std::make_shared<LomaxDistribution>(args[0], args[1]));
  }
  if (name == "lognormal") {
    VOD_RETURN_IF_ERROR(RequireArgs(name, args, 2));
    if (args[1] <= 0) {
      return Status::InvalidArgument("lognormal sigma must be positive");
    }
    return DistributionPtr(
        std::make_shared<LognormalDistribution>(args[0], args[1]));
  }
  return Status::InvalidArgument("unknown distribution '" + name + "'");
}

}  // namespace vod
