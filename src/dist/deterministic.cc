#include "dist/deterministic.h"

#include <sstream>

namespace vod {

std::string DeterministicDistribution::ToString() const {
  std::ostringstream os;
  os << "det(" << value_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> DeterministicDistribution::Clone() const {
  return std::make_unique<DeterministicDistribution>(value_);
}

}  // namespace vod
