#include "dist/exponential.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace vod {

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean) {
  VOD_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mean_) / mean_;
}

double ExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean_);
}

double ExponentialDistribution::Sample(Rng* rng) const {
  return rng->Exponential(mean_);
}

double ExponentialDistribution::SupportUpper() const {
  return std::numeric_limits<double>::infinity();
}

double ExponentialDistribution::Quantile(double p) const {
  VOD_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0, 1)");
  return -mean_ * std::log(1.0 - p);
}

std::string ExponentialDistribution::ToString() const {
  std::ostringstream os;
  os << "exp(" << mean_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> ExponentialDistribution::Clone() const {
  return std::make_unique<ExponentialDistribution>(mean_);
}

}  // namespace vod
