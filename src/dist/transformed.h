// Distribution adaptors: truncation and modular wrapping.
//
// The paper defines VCR-duration densities on [0, l] and folds longer pauses
// with "a pause of x > l is equivalent to a pause of x mod l" (§2.1).
// WrappedDistribution implements exactly that fold; TruncatedDistribution is
// the alternative conditioning-on-[a,b] interpretation.

#ifndef VOD_DIST_TRANSFORMED_H_
#define VOD_DIST_TRANSFORMED_H_

#include "dist/distribution.h"

namespace vod {

/// \brief Base distribution conditioned on the event X ∈ [lo, hi].
///
/// CDF: (F(x) − F(lo)) / (F(hi) − F(lo)). Sampling is by inversion through
/// the base quantile function (exact, no rejection loop).
class TruncatedDistribution final : public Distribution {
 public:
  /// Precondition: lo < hi and the base distribution puts positive mass on
  /// [lo, hi].
  TruncatedDistribution(DistributionPtr base, double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return lo_; }
  double SupportUpper() const override { return hi_; }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  DistributionPtr base_;
  double lo_;
  double hi_;
  double mass_;    // F(hi) - F(lo)
  double f_lo_;    // F(lo)
};

/// \brief X mod period, for a non-negative base variable X.
///
/// CDF on [0, period): F_w(x) = Σ_{k≥0} [F(x + k·period) − F(k·period)].
/// The series is truncated once the remaining tail mass is below 1e-12.
class WrappedDistribution final : public Distribution {
 public:
  /// Precondition: period > 0 and base support ⊆ [0, ∞).
  WrappedDistribution(DistributionPtr base, double period);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;      // computed numerically from the CDF
  double Variance() const override;  // computed numerically from the CDF
  double Sample(Rng* rng) const override;
  double SupportLower() const override { return 0.0; }
  double SupportUpper() const override { return period_; }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  DistributionPtr base_;
  double period_;
};

}  // namespace vod

#endif  // VOD_DIST_TRANSFORMED_H_
