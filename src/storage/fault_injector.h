// Deterministic, seeded disk failure/repair schedules.
//
// A pool of I/O streams is physically backed by a farm of disks; when a disk
// dies, the streams it sustained vanish until the repair completes. The
// injector models each disk as an alternating renewal process — up-times
// exponential with mean MTBF, repair times exponential with mean MTTR — and
// translates the per-disk up/down trajectory into a time-ordered schedule of
// *pool capacity* changes that the simulation replays. All randomness comes
// from a caller-supplied Rng, so the schedule is reproducible from a seed
// and independent of every other random stream in a run.

#ifndef VOD_STORAGE_FAULT_INJECTOR_H_
#define VOD_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace vod {

/// Reliability profile shared by every disk backing a pool.
struct DiskFaultProfile {
  /// Mean up-time between failures, in simulated minutes. Infinity (or any
  /// huge value) approaches a fault-free system.
  double mtbf_minutes = 4000.0;
  /// Mean repair time, in simulated minutes. As it approaches 0 the system
  /// converges to fault-free behavior.
  double mttr_minutes = 120.0;

  Status Validate() const;

  /// Long-run fraction of time a disk is up: MTBF / (MTBF + MTTR).
  double StationaryAvailability() const {
    return mtbf_minutes / (mtbf_minutes + mttr_minutes);
  }
};

/// One capacity-changing event in a fault schedule.
struct FaultEvent {
  double time = 0.0;
  int disk = 0;              ///< which disk failed / was repaired
  bool failure = false;      ///< true = failure, false = repair completed
  int64_t capacity_delta = 0;   ///< signed stream-capacity change
  int64_t capacity_after = 0;   ///< pool capacity once this event applies
};

/// \brief Generates deterministic failure/repair schedules for a disk farm.
///
/// Each disk contributes a fixed share of stream capacity while up. Every
/// disk draws its up/down durations from an independent child of the
/// injector's Rng, so adding a disk does not perturb the others' schedules.
class FaultInjector {
 public:
  /// `disk_capacities[i]` is the stream capacity disk i contributes.
  /// All disks start up. Precondition: profile.Validate().ok() and every
  /// capacity >= 0.
  FaultInjector(std::vector<int64_t> disk_capacities, DiskFaultProfile profile,
                Rng rng);

  /// Splits `total` capacity into `disks` near-equal shares (the first
  /// `total % disks` shares get one extra unit). Precondition: disks >= 1.
  static std::vector<int64_t> SplitCapacity(int64_t total, int disks);

  /// All failure/repair events with time < horizon, merged over disks and
  /// sorted by (time, disk). Deterministic: two calls on equal-constructed
  /// injectors produce identical schedules.
  std::vector<FaultEvent> Schedule(double horizon) const;

  /// Sum of all disk capacities (the fault-free pool capacity).
  int64_t total_capacity() const { return total_capacity_; }
  int disks() const { return static_cast<int>(disk_capacities_.size()); }
  const DiskFaultProfile& profile() const { return profile_; }

 private:
  std::vector<int64_t> disk_capacities_;
  DiskFaultProfile profile_;
  Rng rng_;
  int64_t total_capacity_ = 0;
};

}  // namespace vod

#endif  // VOD_STORAGE_FAULT_INJECTOR_H_
