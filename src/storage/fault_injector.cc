#include "storage/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

namespace {
// Stream-class tag for per-disk child RNGs (see Rng::MakeChild).
constexpr uint64_t kDiskStream = 11;
}  // namespace

Status DiskFaultProfile::Validate() const {
  if (!(mtbf_minutes > 0.0)) {
    return Status::InvalidArgument("MTBF must be positive");
  }
  if (!(mttr_minutes > 0.0)) {
    return Status::InvalidArgument("MTTR must be positive");
  }
  return Status::OK();
}

FaultInjector::FaultInjector(std::vector<int64_t> disk_capacities,
                             DiskFaultProfile profile, Rng rng)
    : disk_capacities_(std::move(disk_capacities)),
      profile_(profile),
      rng_(rng) {
  VOD_CHECK_OK(profile_.Validate());
  for (const int64_t c : disk_capacities_) {
    VOD_CHECK_MSG(c >= 0, "disk capacity must be non-negative");
    total_capacity_ += c;
  }
}

std::vector<int64_t> FaultInjector::SplitCapacity(int64_t total, int disks) {
  VOD_CHECK_MSG(disks >= 1, "need at least one disk");
  VOD_CHECK_MSG(total >= 0, "capacity must be non-negative");
  std::vector<int64_t> shares(static_cast<size_t>(disks), total / disks);
  for (int64_t i = 0; i < total % disks; ++i) ++shares[static_cast<size_t>(i)];
  return shares;
}

std::vector<FaultEvent> FaultInjector::Schedule(double horizon) const {
  std::vector<FaultEvent> events;
  if (!(horizon > 0.0)) return events;
  for (size_t disk = 0; disk < disk_capacities_.size(); ++disk) {
    // Each disk's trajectory comes from its own child stream so schedules
    // are stable when the farm grows.
    Rng rng = rng_.MakeChild(kDiskStream, disk);
    const int64_t share = disk_capacities_[disk];
    double t = 0.0;
    bool up = true;
    while (true) {
      t += rng.Exponential(up ? profile_.mtbf_minutes
                              : profile_.mttr_minutes);
      if (!(t < horizon)) break;
      FaultEvent ev;
      ev.time = t;
      ev.disk = static_cast<int>(disk);
      ev.failure = up;  // an up disk's next transition is a failure
      ev.capacity_delta = up ? -share : share;
      events.push_back(ev);
      up = !up;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.disk < b.disk;
                   });
  int64_t capacity = total_capacity_;
  for (FaultEvent& ev : events) {
    capacity += ev.capacity_delta;
    ev.capacity_after = capacity;
  }
  return events;
}

}  // namespace vod
