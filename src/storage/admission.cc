#include "storage/admission.h"

namespace vod {

AdmissionController::AdmissionController(int64_t total_streams,
                                         double total_buffer_minutes)
    : streams_(total_streams, "io-streams"),
      buffer_(total_buffer_minutes, "buffer-minutes") {}

Status AdmissionController::ReserveMovie(double t,
                                         const MovieReservation& reservation) {
  if (reservation.streams < 0 || reservation.buffer_minutes < 0.0) {
    return Status::InvalidArgument("reservation amounts must be non-negative");
  }
  if (reservations_.count(reservation.movie) != 0) {
    return Status::InvalidArgument("movie '" + reservation.movie +
                                   "' already has a reservation");
  }
  // Zero amounts are legal in a reservation (e.g. a pure-batching movie
  // needs no extra buffer) but the pools reject non-positive acquires, so
  // skip them explicitly.
  if (reservation.streams > 0) {
    VOD_RETURN_IF_ERROR(streams_.Acquire(t, reservation.streams));
  }
  if (reservation.buffer_minutes > 0.0) {
    const Status buffer_status = buffer_.Acquire(t, reservation.buffer_minutes);
    if (!buffer_status.ok()) {
      // Roll back the stream acquisition to keep the pools consistent.
      if (reservation.streams > 0) {
        Status rollback = streams_.Release(t, reservation.streams);
        if (!rollback.ok()) return rollback;
      }
      return buffer_status;
    }
  }
  reserved_streams_ += reservation.streams;
  reserved_buffer_ += reservation.buffer_minutes;
  reservations_.emplace(reservation.movie, reservation);
  return Status::OK();
}

Status AdmissionController::ReleaseMovie(double t, const std::string& movie) {
  auto it = reservations_.find(movie);
  if (it == reservations_.end()) {
    return Status::NotFound("movie '" + movie + "' has no reservation");
  }
  if (it->second.streams > 0) {
    VOD_RETURN_IF_ERROR(streams_.Release(t, it->second.streams));
  }
  if (it->second.buffer_minutes > 0.0) {
    VOD_RETURN_IF_ERROR(buffer_.Release(t, it->second.buffer_minutes));
  }
  reserved_streams_ -= it->second.streams;
  reserved_buffer_ -= it->second.buffer_minutes;
  reservations_.erase(it);
  return Status::OK();
}

Status AdmissionController::SetTotalStreams(double t, int64_t total_streams) {
  return streams_.SetCapacity(t, total_streams);
}

Status AdmissionController::SetTotalBufferMinutes(double t,
                                                  double total_buffer_minutes) {
  return buffer_.SetCapacity(t, total_buffer_minutes);
}

Status AdmissionController::AcquireDynamicStream(double t) {
  VOD_RETURN_IF_ERROR(streams_.Acquire(t, 1));
  ++dynamic_in_use_;
  return Status::OK();
}

Status AdmissionController::ReleaseDynamicStream(double t) {
  if (dynamic_in_use_ <= 0) {
    return Status::Internal("no dynamic streams are held");
  }
  VOD_RETURN_IF_ERROR(streams_.Release(t, 1));
  --dynamic_in_use_;
  return Status::OK();
}

}  // namespace vod
