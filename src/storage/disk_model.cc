#include "storage/disk_model.h"

#include <cmath>

namespace vod {

Status DiskSpec::Validate() const {
  if (!(capacity_gbytes > 0.0) || !(transfer_mbytes_per_sec > 0.0) ||
      !(price_dollars > 0.0)) {
    return Status::InvalidArgument("disk spec values must be positive");
  }
  if (mtbf_minutes < 0.0 || mttr_minutes < 0.0) {
    return Status::InvalidArgument("MTBF/MTTR must be non-negative");
  }
  if (mtbf_minutes > 0.0 && !(mttr_minutes > 0.0)) {
    return Status::InvalidArgument(
        "a disk with an MTBF needs a positive MTTR");
  }
  return Status::OK();
}

Status VideoFormat::Validate() const {
  if (!(bitrate_mbits_per_sec > 0.0)) {
    return Status::InvalidArgument("video bitrate must be positive");
  }
  return Status::OK();
}

Result<DiskModel> DiskModel::Create(const DiskSpec& disk,
                                    const VideoFormat& format) {
  VOD_RETURN_IF_ERROR(disk.Validate());
  VOD_RETURN_IF_ERROR(format.Validate());
  const double streams =
      disk.transfer_mbytes_per_sec / (format.bitrate_mbits_per_sec / 8.0);
  if (streams < 1.0) {
    return Status::InvalidArgument(
        "disk transfer rate cannot sustain a single stream of this format");
  }
  return DiskModel(disk, format);
}

double DiskModel::StreamsPerDisk() const {
  return disk_.transfer_mbytes_per_sec /
         (format_.bitrate_mbits_per_sec / 8.0);
}

double DiskModel::CostPerStream() const {
  return disk_.price_dollars / StreamsPerDisk();
}

double DiskModel::StorageMinutesPerDisk() const {
  return disk_.capacity_gbytes * 1024.0 / format_.MBytesPerMinute();
}

int DiskModel::DisksForStorage(double total_minutes) const {
  if (total_minutes <= 0.0) return 0;
  return static_cast<int>(
      std::ceil(total_minutes / StorageMinutesPerDisk() - 1e-12));
}

int DiskModel::DisksForBandwidth(int streams) const {
  if (streams <= 0) return 0;
  return static_cast<int>(
      std::ceil(static_cast<double>(streams) / StreamsPerDisk() - 1e-12));
}

int DiskModel::DisksRequired(double total_minutes, int streams) const {
  const int a = DisksForStorage(total_minutes);
  const int b = DisksForBandwidth(streams);
  return a > b ? a : b;
}

}  // namespace vod
