// Admission control over pre-allocated resources.
//
// Implements the paper's deployment story: the sizing layer decides, per
// popular movie, how many streams and how much buffer to pre-allocate; the
// admission controller commits those reservations against the physical pools
// and arbitrates the leftover reserve used for VCR phase-1 allocations and
// non-popular (unicast) requests.

#ifndef VOD_STORAGE_ADMISSION_H_
#define VOD_STORAGE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "storage/resource_pool.h"

namespace vod {

/// A committed pre-allocation for one movie.
struct MovieReservation {
  std::string movie;
  int64_t streams = 0;
  double buffer_minutes = 0.0;
};

/// \brief Tracks pre-allocations plus a shared dynamic reserve.
///
/// Streams and buffer reserved for normal playback of popular movies are
/// committed up-front (ReserveMovie). The remaining capacity forms the
/// dynamic reserve that VCR phase-1 requests and unicast viewers draw from
/// (AcquireDynamicStream / ReleaseDynamicStream).
class AdmissionController {
 public:
  AdmissionController(int64_t total_streams, double total_buffer_minutes);

  /// Commits a movie's pre-allocation. Fails with ResourceExhausted if the
  /// pools cannot cover it; fails with InvalidArgument on duplicates.
  Status ReserveMovie(double t, const MovieReservation& reservation);

  /// Releases a movie's pre-allocation (e.g. demoted from the popular set).
  Status ReleaseMovie(double t, const std::string& movie);

  /// One dynamic (VCR / unicast) stream from the reserve.
  Status AcquireDynamicStream(double t);
  Status ReleaseDynamicStream(double t);

  /// Applies a capacity change (disk failure/repair) to the underlying
  /// pools. Reservations are untouched: capacity dropping below committed +
  /// dynamic usage leaves the pools oversubscribed (available() == 0) until
  /// holders release — the degradation ladder decides what to shed.
  Status SetTotalStreams(double t, int64_t total_streams);
  Status SetTotalBufferMinutes(double t, double total_buffer_minutes);

  int64_t reserved_streams() const { return reserved_streams_; }
  double reserved_buffer_minutes() const { return reserved_buffer_; }
  int64_t dynamic_streams_in_use() const { return dynamic_in_use_; }

  const StreamPool& stream_pool() const { return streams_; }
  const BufferPool& buffer_pool() const { return buffer_; }
  const std::map<std::string, MovieReservation>& reservations() const {
    return reservations_;
  }

 private:
  StreamPool streams_;
  BufferPool buffer_;
  std::map<std::string, MovieReservation> reservations_;
  int64_t reserved_streams_ = 0;
  double reserved_buffer_ = 0.0;
  int64_t dynamic_in_use_ = 0;
};

}  // namespace vod

#endif  // VOD_STORAGE_ADMISSION_H_
