#include "storage/round_scheduler.h"

#include <cmath>

namespace vod {

Status DiskGeometry::Validate() const {
  if (!(max_seek_ms > 0.0) || !(track_to_track_ms > 0.0) ||
      !(rotation_ms > 0.0) || !(transfer_mbytes_per_sec > 0.0)) {
    return Status::InvalidArgument("disk geometry values must be positive");
  }
  if (track_to_track_ms > max_seek_ms) {
    return Status::InvalidArgument(
        "track-to-track seek cannot exceed the full-stroke seek");
  }
  return Status::OK();
}

double DiskGeometry::ScanSeekMs(int k) const {
  if (k <= 0) return 0.0;
  return track_to_track_ms + (max_seek_ms - track_to_track_ms) /
                                 static_cast<double>(k);
}

Result<RoundScheduler> RoundScheduler::Create(const DiskGeometry& geometry,
                                              double stream_mbits_per_sec) {
  VOD_RETURN_IF_ERROR(geometry.Validate());
  if (!(stream_mbits_per_sec > 0.0)) {
    return Status::InvalidArgument("stream rate must be positive");
  }
  if (stream_mbits_per_sec / 8.0 >= geometry.transfer_mbytes_per_sec) {
    return Status::InvalidArgument(
        "stream rate meets or exceeds the disk transfer rate");
  }
  return RoundScheduler(geometry, stream_mbits_per_sec);
}

double RoundScheduler::BlockMBytes(double round_seconds) const {
  return (stream_mbps_ / 8.0) * round_seconds;
}

double RoundScheduler::RoundServiceSeconds(int k,
                                           double round_seconds) const {
  if (k <= 0) return 0.0;
  const double overhead_s =
      static_cast<double>(k) *
      (geometry_.ScanSeekMs(k) + geometry_.rotation_ms) / 1000.0;
  const double transfer_s = static_cast<double>(k) *
                            BlockMBytes(round_seconds) /
                            geometry_.transfer_mbytes_per_sec;
  return overhead_s + transfer_s;
}

int RoundScheduler::MaxStreamsPerDisk(double round_seconds) const {
  if (!(round_seconds > 0.0)) return 0;
  // Service time is increasing in k; the bandwidth bound caps the search.
  const int cap = static_cast<int>(std::ceil(BandwidthBoundStreams())) + 1;
  int best = 0;
  for (int k = 1; k <= cap; ++k) {
    if (RoundServiceSeconds(k, round_seconds) <= round_seconds) {
      best = k;
    } else {
      break;
    }
  }
  return best;
}

Result<double> RoundScheduler::MinRoundSecondsForStreams(int k) const {
  if (k <= 0) return 0.0;
  if (static_cast<double>(k) >= BandwidthBoundStreams()) {
    return Status::Infeasible(
        "stream count at or beyond the disk's bandwidth bound");
  }
  // Service(k, R) <= R is linear in R:
  //   overhead(k) + k·(rate/8)·R/transfer <= R
  //   R >= overhead(k) / (1 − k·(rate/8)/transfer).
  const double overhead_s =
      static_cast<double>(k) *
      (geometry_.ScanSeekMs(k) + geometry_.rotation_ms) / 1000.0;
  const double utilization = static_cast<double>(k) * (stream_mbps_ / 8.0) /
                             geometry_.transfer_mbytes_per_sec;
  return overhead_s / (1.0 - utilization);
}

double RoundScheduler::BandwidthBoundStreams() const {
  return geometry_.transfer_mbytes_per_sec / (stream_mbps_ / 8.0);
}

double RoundScheduler::BufferPerDiskMBytes(int k,
                                           double round_seconds) const {
  return 2.0 * static_cast<double>(k) * BlockMBytes(round_seconds);
}

}  // namespace vod
