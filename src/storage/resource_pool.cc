#include "storage/resource_pool.h"

#include <algorithm>

#include "common/check.h"

namespace vod {

StreamPool::StreamPool(int64_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {
  VOD_CHECK_MSG(capacity >= 0, "pool capacity must be non-negative");
  usage_.Reset(0.0, 0.0);
}

Status StreamPool::Acquire(double t, int64_t count) {
  VOD_CHECK(count >= 0);
  if (in_use_ + count > capacity_) {
    ++rejected_;
    return Status::ResourceExhausted(
        name_ + ": need " + std::to_string(count) + ", available " +
        std::to_string(available()));
  }
  in_use_ += count;
  peak_ = std::max(peak_, in_use_);
  usage_.Set(t, static_cast<double>(in_use_));
  return Status::OK();
}

Status StreamPool::Release(double t, int64_t count) {
  VOD_CHECK(count >= 0);
  if (count > in_use_) {
    return Status::Internal(name_ + ": releasing more than held");
  }
  in_use_ -= count;
  usage_.Set(t, static_cast<double>(in_use_));
  return Status::OK();
}

BufferPool::BufferPool(double capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {
  VOD_CHECK_MSG(capacity >= 0.0, "pool capacity must be non-negative");
  usage_.Reset(0.0, 0.0);
}

Status BufferPool::Acquire(double t, double amount) {
  VOD_CHECK(amount >= 0.0);
  if (in_use_ + amount > capacity_ + 1e-9) {
    ++rejected_;
    return Status::ResourceExhausted(name_ + ": buffer exhausted");
  }
  in_use_ += amount;
  peak_ = std::max(peak_, in_use_);
  usage_.Set(t, in_use_);
  return Status::OK();
}

Status BufferPool::Release(double t, double amount) {
  VOD_CHECK(amount >= 0.0);
  if (amount > in_use_ + 1e-9) {
    return Status::Internal(name_ + ": releasing more than held");
  }
  in_use_ = std::max(0.0, in_use_ - amount);
  usage_.Set(t, in_use_);
  return Status::OK();
}

}  // namespace vod
