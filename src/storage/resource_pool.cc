#include "storage/resource_pool.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

StreamPool::StreamPool(int64_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {
  VOD_CHECK_MSG(capacity >= 0, "pool capacity must be non-negative");
  usage_.Reset(0.0, 0.0);
}

Status StreamPool::Acquire(double t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(name_ + ": acquire count must be positive, got " +
                                   std::to_string(count));
  }
  if (count > available()) {
    ++rejected_;
    return Status::ResourceExhausted(
        name_ + ": need " + std::to_string(count) + ", available " +
        std::to_string(available()));
  }
  in_use_ += count;
  peak_ = std::max(peak_, in_use_);
  usage_.Set(t, static_cast<double>(in_use_));
  return Status::OK();
}

Status StreamPool::Release(double t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(name_ + ": release count must be positive, got " +
                                   std::to_string(count));
  }
  if (count > in_use_) {
    return Status::Internal(name_ + ": releasing more than held");
  }
  in_use_ -= count;
  usage_.Set(t, static_cast<double>(in_use_));
  return Status::OK();
}

Status StreamPool::SetCapacity(double t, int64_t new_capacity) {
  if (new_capacity < 0) {
    return Status::InvalidArgument(name_ + ": capacity must be non-negative");
  }
  (void)t;  // in_use_ is unchanged; only grant decisions shift at t
  capacity_ = new_capacity;
  return Status::OK();
}

BufferPool::BufferPool(double capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {
  VOD_CHECK_MSG(capacity >= 0.0, "pool capacity must be non-negative");
  usage_.Reset(0.0, 0.0);
}

Status BufferPool::Acquire(double t, double amount) {
  if (!(amount > 0.0) || !std::isfinite(amount)) {
    return Status::InvalidArgument(name_ +
                                   ": acquire amount must be positive and finite");
  }
  if (amount > available() + 1e-9) {
    ++rejected_;
    return Status::ResourceExhausted(name_ + ": buffer exhausted");
  }
  in_use_ += amount;
  peak_ = std::max(peak_, in_use_);
  usage_.Set(t, in_use_);
  return Status::OK();
}

Status BufferPool::Release(double t, double amount) {
  if (!(amount > 0.0) || !std::isfinite(amount)) {
    return Status::InvalidArgument(name_ +
                                   ": release amount must be positive and finite");
  }
  if (amount > in_use_ + 1e-9) {
    return Status::Internal(name_ + ": releasing more than held");
  }
  in_use_ = std::max(0.0, in_use_ - amount);
  usage_.Set(t, in_use_);
  return Status::OK();
}

Status BufferPool::SetCapacity(double t, double new_capacity) {
  if (!(new_capacity >= 0.0) || !std::isfinite(new_capacity)) {
    return Status::InvalidArgument(name_ +
                                   ": capacity must be non-negative and finite");
  }
  (void)t;
  capacity_ = new_capacity;
  return Status::OK();
}

}  // namespace vod
