// Round-based disk retrieval scheduling for continuous media.
//
// The paper's Example 2 divides disk bandwidth by stream bitrate
// (5 MB/s ÷ 0.5 MB/s = 10 streams/disk). Real VOD servers of that era
// admitted streams per disk with a *round-based* scheduler: time is divided
// into rounds of R seconds; each admitted stream gets one block of
// rate·R bytes per round, fetched in SCAN order; admission requires the
// worst-case round service time (seeks + rotational delays + transfers) to
// fit in R. This module supplies that refinement — the ideal bandwidth
// bound is recovered as R → ∞, and the seek/rotation overhead explains why
// small rounds (low start-up latency, small buffers) sustain fewer streams.

#ifndef VOD_STORAGE_ROUND_SCHEDULER_H_
#define VOD_STORAGE_ROUND_SCHEDULER_H_

#include "common/status.h"

namespace vod {

/// Mechanical characteristics of one drive.
struct DiskGeometry {
  /// Full-stroke seek, milliseconds.
  double max_seek_ms = 17.0;
  /// Adjacent-track seek, milliseconds.
  double track_to_track_ms = 2.0;
  /// Full rotation, milliseconds (7200 rpm ⇒ 8.33).
  double rotation_ms = 8.33;
  /// Sequential transfer rate, MB/s.
  double transfer_mbytes_per_sec = 5.0;

  Status Validate() const;

  /// Worst-case per-request seek under SCAN with k stops across the
  /// surface: the arm sweeps once, so each of the k seeks covers at most a
  /// 1/k fraction of the stroke. Affine seek model:
  /// track_to_track + (max_seek − track_to_track)/k.
  double ScanSeekMs(int k) const;
};

/// \brief Admission arithmetic for round-based retrieval on one disk.
class RoundScheduler {
 public:
  /// \param geometry      drive mechanics (validated).
  /// \param stream_mbps   per-stream consumption rate, Mbit/s.
  static Result<RoundScheduler> Create(const DiskGeometry& geometry,
                                       double stream_mbits_per_sec);

  /// Block fetched per stream per round: rate · R (MB).
  double BlockMBytes(double round_seconds) const;

  /// Worst-case time (seconds) to serve k streams in one round.
  double RoundServiceSeconds(int k, double round_seconds) const;

  /// Largest k admissible with round length R: the worst-case service time
  /// must fit within R. 0 if even one stream does not fit.
  int MaxStreamsPerDisk(double round_seconds) const;

  /// Smallest round length sustaining k streams, by bisection. Infeasible
  /// if k exceeds the bandwidth bound (no round length is long enough).
  Result<double> MinRoundSecondsForStreams(int k) const;

  /// Ideal bandwidth bound transfer/rate — the R → ∞ limit and the paper's
  /// Example-2 figure.
  double BandwidthBoundStreams() const;

  /// Server buffer needed per disk at (k, R) with double buffering:
  /// 2 · k · block (MB).
  double BufferPerDiskMBytes(int k, double round_seconds) const;

  /// Worst-case start-up latency contributed by rounds: a request may wait
  /// one full round before its first block arrives, plus the round in which
  /// it is consumed ⇒ 2R seconds.
  double StartupLatencySeconds(double round_seconds) const {
    return 2.0 * round_seconds;
  }

  const DiskGeometry& geometry() const { return geometry_; }
  double stream_mbits_per_sec() const { return stream_mbps_; }

 private:
  RoundScheduler(const DiskGeometry& geometry, double stream_mbps)
      : geometry_(geometry), stream_mbps_(stream_mbps) {}

  DiskGeometry geometry_;
  double stream_mbps_;
};

}  // namespace vod

#endif  // VOD_STORAGE_ROUND_SCHEDULER_H_
