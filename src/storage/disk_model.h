// Disk subsystem model.
//
// Converts hardware characteristics into the quantities the sizing layer
// consumes: how many concurrent video streams one disk sustains, how many
// disks a catalog needs for capacity vs bandwidth, and per-stream cost. The
// defaults are the paper's Example-2 1997 hardware (2GB SCSI, 5 MB/s, $700).

#ifndef VOD_STORAGE_DISK_MODEL_H_
#define VOD_STORAGE_DISK_MODEL_H_

#include "common/status.h"

namespace vod {

/// Characteristics of one disk drive.
struct DiskSpec {
  double capacity_gbytes = 2.0;
  double transfer_mbytes_per_sec = 5.0;
  double price_dollars = 700.0;
  /// Reliability: mean time between failures / to repair, in minutes of
  /// operation. 0 (the default) means the disk never fails — the paper's
  /// implicit assumption; storage/fault_injector.h consumes nonzero values.
  double mtbf_minutes = 0.0;
  double mttr_minutes = 0.0;

  Status Validate() const;

  /// True when a failure model is configured (both MTBF and MTTR set).
  bool CanFail() const { return mtbf_minutes > 0.0; }
};

/// Characteristics of one encoded video title.
struct VideoFormat {
  double bitrate_mbits_per_sec = 4.0;  ///< MPEG-2 in the paper

  /// MB consumed per minute of video: 60 · rate/8.
  double MBytesPerMinute() const { return 60.0 * bitrate_mbits_per_sec / 8.0; }

  Status Validate() const;
};

/// \brief Capacity/bandwidth arithmetic over a homogeneous disk farm.
class DiskModel {
 public:
  /// Returns InvalidArgument on nonsensical specs.
  static Result<DiskModel> Create(const DiskSpec& disk,
                                  const VideoFormat& format);

  /// Concurrent streams one disk sustains (bandwidth-bound), >= 1.
  double StreamsPerDisk() const;

  /// Amortized dollars per concurrent stream (C_n of the paper's Eq. 23).
  double CostPerStream() const;

  /// Minutes of video one disk stores.
  double StorageMinutesPerDisk() const;

  /// Disks needed to *store* total_minutes of content.
  int DisksForStorage(double total_minutes) const;

  /// Disks needed to *sustain* `streams` concurrent streams.
  int DisksForBandwidth(int streams) const;

  /// max(storage, bandwidth) requirement: the farm must satisfy both.
  int DisksRequired(double total_minutes, int streams) const;

  const DiskSpec& disk() const { return disk_; }
  const VideoFormat& format() const { return format_; }

 private:
  DiskModel(const DiskSpec& disk, const VideoFormat& format)
      : disk_(disk), format_(format) {}

  DiskSpec disk_;
  VideoFormat format_;
};

}  // namespace vod

#endif  // VOD_STORAGE_DISK_MODEL_H_
