// Counted resource pools with time-weighted usage statistics.
//
// Models the server's reserves of I/O streams and buffer space: pre-allocated
// capacity is acquired and released by movie playback groups and by VCR
// phase-1 allocations. Pools reject (rather than queue) requests beyond
// capacity — admission control decides what to do with a rejection.
//
// Capacity is *time-varying*: disk failures and repairs (see
// storage/fault_injector.h) shrink and restore it via SetCapacity. A
// capacity drop below the units currently handed out leaves the pool
// *oversubscribed*: nothing is forcibly revoked, available() clamps at 0,
// new acquisitions are refused, and the excess drains as holders release.

#ifndef VOD_STORAGE_RESOURCE_POOL_H_
#define VOD_STORAGE_RESOURCE_POOL_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "stats/time_weighted.h"

namespace vod {

/// \brief A pool of `capacity` interchangeable units (e.g. I/O streams).
class StreamPool {
 public:
  /// Precondition: capacity >= 0.
  explicit StreamPool(int64_t capacity, std::string name = "streams");

  /// Acquires `count` units at time t; ResourceExhausted if unavailable
  /// (nothing is acquired in that case). `count` must be positive —
  /// non-positive counts are InvalidArgument, not silent no-ops, so that
  /// accounting bugs surface at the call site.
  Status Acquire(double t, int64_t count = 1);

  /// Releases `count` units at time t. Releasing more than held is an
  /// Internal error (indicates unbalanced accounting); `count` must be
  /// positive (InvalidArgument otherwise).
  Status Release(double t, int64_t count = 1);

  /// Changes the pool capacity at time t (disk failure/repair). The new
  /// capacity may be below in_use(): the pool becomes oversubscribed and
  /// drains as holders release. Negative capacities are InvalidArgument.
  Status SetCapacity(double t, int64_t new_capacity);

  /// True if `count` units could be acquired right now.
  bool CanAcquire(int64_t count = 1) const {
    return count >= 0 && count <= available();
  }

  int64_t capacity() const { return capacity_; }
  int64_t in_use() const { return in_use_; }
  /// Units still grantable; never negative, even when oversubscribed.
  int64_t available() const {
    return std::max<int64_t>(0, capacity_ - in_use_);
  }
  /// Units held beyond current capacity (0 unless a capacity drop
  /// undercut the holders); drains as holders release.
  int64_t oversubscription() const {
    return std::max<int64_t>(0, in_use_ - capacity_);
  }
  bool oversubscribed() const { return in_use_ > capacity_; }
  int64_t peak_in_use() const { return peak_; }
  int64_t rejected() const { return rejected_; }

  /// Time-averaged units in use over [t0, t_end].
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }

  /// Fraction of capacity in use on time average.
  double MeanUtilization(double t_end) const {
    return capacity_ > 0
               ? MeanInUse(t_end) / static_cast<double>(capacity_)
               : 0.0;
  }

  const std::string& name() const { return name_; }

 private:
  int64_t capacity_;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t rejected_ = 0;
  std::string name_;
  TimeWeightedValue usage_;
};

/// \brief A pool of divisible capacity (buffer space, in movie-minutes or
/// MB — the unit is the caller's convention).
class BufferPool {
 public:
  /// Precondition: capacity >= 0.
  explicit BufferPool(double capacity, std::string name = "buffer");

  /// Acquires `amount` units; `amount` must be positive and finite
  /// (InvalidArgument otherwise), ResourceExhausted when unavailable.
  Status Acquire(double t, double amount);

  /// Releases `amount` units; positive/finite required, over-release is an
  /// Internal error.
  Status Release(double t, double amount);

  /// Time-varying capacity (see StreamPool::SetCapacity): may drop below
  /// in_use(), leaving the pool oversubscribed until holders release.
  Status SetCapacity(double t, double new_capacity);

  bool CanAcquire(double amount) const {
    return amount >= 0.0 && amount <= available() + 1e-9;
  }

  double capacity() const { return capacity_; }
  double in_use() const { return in_use_; }
  /// Never negative, even when oversubscribed.
  double available() const { return std::max(0.0, capacity_ - in_use_); }
  double oversubscription() const {
    return std::max(0.0, in_use_ - capacity_);
  }
  bool oversubscribed() const { return in_use_ > capacity_ + 1e-9; }
  double peak_in_use() const { return peak_; }
  int64_t rejected() const { return rejected_; }
  double MeanInUse(double t_end) const { return usage_.TimeAverage(t_end); }
  const std::string& name() const { return name_; }

 private:
  double capacity_;
  double in_use_ = 0.0;
  double peak_ = 0.0;
  int64_t rejected_ = 0;
  std::string name_;
  TimeWeightedValue usage_;
};

}  // namespace vod

#endif  // VOD_STORAGE_RESOURCE_POOL_H_
