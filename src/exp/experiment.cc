#include "exp/experiment.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace vod {

uint64_t CellSeed(uint64_t base_seed, uint64_t config_index,
                  uint64_t replication) {
  // Same discipline as Rng::MakeChild: mix the parent seed with the stream
  // identity through SplitMix64 so neighboring indices land in decorrelated
  // states. Distinct non-commutative constants keep (config, replication)
  // and (replication, config) apart.
  SplitMix64 config_mixer(base_seed ^
                          (config_index * 0x9E3779B97F4A7C15ULL));
  const uint64_t config_stream = config_mixer.Next();
  SplitMix64 cell_mixer(config_stream ^
                        (replication * 0xC2B2AE3D27D4EB4FULL));
  return cell_mixer.Next();
}

int ResolveThreadCount(int requested, int64_t cells) {
  int threads = requested <= 0 ? ThreadPool::DefaultParallelism() : requested;
  threads = static_cast<int>(
      std::min<int64_t>(threads, std::max<int64_t>(cells, 1)));
  return std::max(threads, 1);
}

void AddExperimentFlags(FlagSet* flags, bool with_replications) {
  flags->AddInt64("threads", 0,
                  "worker threads for the simulation sweep (0 = all cores, "
                  "1 = serial); results are identical for every value");
  if (with_replications) {
    flags->AddInt64("replications", 1,
                    "independent replications per configuration");
  }
}

std::string GridCellSpanName(int config_index, int replication) {
  return "cell c" + std::to_string(config_index) + " r" +
         std::to_string(replication);
}

int64_t RecordGridCellDone(const GridObsOptions& obs, int64_t cells_done,
                           int64_t cell_index) {
  ++cells_done;
  const double grid_clock = static_cast<double>(cells_done);
  if (obs.metrics != nullptr) {
    obs.metrics
        ->AddCounter("grid_cells_completed",
                     "grid cells completed (this process + restored)")
        ->Add(1);
    obs.metrics->MaybeSample(grid_clock);
  }
  if (obs.event_log != nullptr) {
    obs.event_log->Emit(grid_clock, EventCategory::kCell, /*subtype=*/0,
                        /*movie=*/-1, /*id=*/cell_index,
                        /*value=*/grid_clock);
  }
  return cells_done;
}

ExperimentOptions ExperimentOptionsFromFlags(const FlagSet& flags,
                                             uint64_t base_seed) {
  ExperimentOptions options;
  options.threads = static_cast<int>(flags.GetInt64("threads"));
  options.replications =
      flags.Has("replications")
          ? static_cast<int>(flags.GetInt64("replications"))
          : 1;
  options.base_seed = base_seed;
  VOD_CHECK_MSG(options.replications >= 1,
                "--replications must be >= 1");
  return options;
}

}  // namespace vod
