// Single-threaded reduction of per-replication simulation reports.
//
// The experiment runner hands back one SimulationReport per (config,
// replication) cell; this reducer folds a config's replications into
// cross-replication point estimates with Student-t confidence intervals.
// Replications are independent by construction (decorrelated CellSeed
// streams), so the t interval over replication means is statistically
// honest — unlike within-run Wilson bounds, it needs no autocorrelation
// correction.

#ifndef VOD_EXP_REPLICATION_H_
#define VOD_EXP_REPLICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "stats/summary.h"

namespace vod {

/// Mean and 95% Student-t half-width of one metric over replications.
struct MetricSummary {
  double mean = 0.0;
  double half_width = 0.0;  ///< 0 with fewer than 2 replications
  int64_t replications = 0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// \brief Accumulates SimulationReports from replications of ONE config.
///
/// Add() is called from the single-threaded reducer after the pool drains;
/// the class is intentionally not thread-safe (workers own their reports,
/// merging is serial — thread-safety by construction, not by locking).
class ReplicationSummary {
 public:
  void Add(const SimulationReport& report);

  int64_t count() const { return count_; }

  MetricSummary hit_probability_in_partition() const {
    return Summarize(hit_in_partition_);
  }
  MetricSummary hit_probability() const { return Summarize(hit_all_); }
  MetricSummary mean_wait_minutes() const { return Summarize(mean_wait_); }
  MetricSummary p99_wait_minutes() const { return Summarize(p99_wait_); }
  MetricSummary mean_dedicated_streams() const {
    return Summarize(dedicated_);
  }

  int64_t total_in_partition_resumes() const { return in_partition_resumes_; }
  int64_t total_resumes() const { return total_resumes_; }

  /// One aligned block of every summarized metric, deterministic.
  std::string ToString() const;

 private:
  MetricSummary Summarize(const RunningStats& stats) const;

  int64_t count_ = 0;
  RunningStats hit_in_partition_;
  RunningStats hit_all_;
  RunningStats mean_wait_;
  RunningStats p99_wait_;
  RunningStats dedicated_;
  int64_t in_partition_resumes_ = 0;
  int64_t total_resumes_ = 0;
};

/// Convenience: reduce one config's replication row as returned by
/// RunExperimentGrid (results[config]).
ReplicationSummary SummarizeReplications(
    const std::vector<SimulationReport>& reports);

}  // namespace vod

#endif  // VOD_EXP_REPLICATION_H_
