#include "exp/checkpoint.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"

namespace vod {

Status CheckpointOptions::Validate() const {
  if (checkpoint_every < 1) {
    return Status::InvalidArgument(
        "checkpoint_every must be >= 1, got " +
        std::to_string(checkpoint_every));
  }
  if (resume && path.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint path");
  }
  if (max_cells != -1 && max_cells < 0) {
    return Status::InvalidArgument("max_cells must be -1 or >= 0");
  }
  return Status::OK();
}

void SerializeSimulationReport(const SimulationReport& r, ByteWriter* out) {
  out->PutDouble(r.hit_probability);
  out->PutDouble(r.hit_probability_low);
  out->PutDouble(r.hit_probability_high);
  for (double v : r.hit_probability_by_op) out->PutDouble(v);
  for (int64_t v : r.resumes_by_op) out->PutI64(v);
  out->PutDouble(r.hit_probability_in_partition);
  out->PutDouble(r.hit_probability_in_partition_low);
  out->PutDouble(r.hit_probability_in_partition_high);
  out->PutDouble(r.hit_probability_in_partition_bm_halfwidth);
  out->PutI64(r.in_partition_resumes);
  out->PutI64(r.total_resumes);
  out->PutI64(r.hits_within);
  out->PutI64(r.hits_jump);
  out->PutI64(r.end_releases);
  out->PutI64(r.misses);
  out->PutI64(r.admissions);
  out->PutI64(r.type2_admissions);
  out->PutI64(r.completions);
  out->PutDouble(r.mean_wait_minutes);
  out->PutDouble(r.max_wait_minutes);
  out->PutDouble(r.p50_wait_minutes);
  out->PutDouble(r.p99_wait_minutes);
  out->PutDouble(r.mean_dedicated_streams);
  out->PutDouble(r.peak_dedicated_streams);
  out->PutDouble(r.mean_concurrent_viewers);
  out->PutI64(r.piggyback_merges);
  out->PutDouble(r.mean_merge_minutes);
  out->PutI64(r.blocked_vcr_requests);
  out->PutI64(r.stalled_resumes);
  out->PutI64(r.queued_vcr_requests);
  out->PutI64(r.forced_reclaims);
  out->PutI64(r.abandonments);
  out->PutDouble(r.simulated_minutes);
}

Status DeserializeSimulationReport(ByteReader* in, SimulationReport* r) {
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_low));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_high));
  for (double& v : r->hit_probability_by_op) {
    VOD_RETURN_IF_ERROR(in->ReadDouble(&v));
  }
  for (int64_t& v : r->resumes_by_op) {
    VOD_RETURN_IF_ERROR(in->ReadI64(&v));
  }
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition_low));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition_high));
  VOD_RETURN_IF_ERROR(
      in->ReadDouble(&r->hit_probability_in_partition_bm_halfwidth));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->in_partition_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->hits_within));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->hits_jump));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->end_releases));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->misses));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->admissions));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->type2_admissions));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->completions));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->max_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->p50_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->p99_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_dedicated_streams));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->peak_dedicated_streams));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_concurrent_viewers));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->piggyback_merges));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_merge_minutes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->blocked_vcr_requests));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->stalled_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->queued_vcr_requests));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->forced_reclaims));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->abandonments));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->simulated_minutes));
  return Status::OK();
}

uint64_t HashGridDescription(const std::string& description) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (unsigned char c : description) {
    h ^= c;
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

int64_t GridCheckpoint::cells_done() const {
  int64_t n = 0;
  for (bool d : done) {
    if (d) ++n;
  }
  return n;
}

Status SaveGridCheckpoint(const std::string& path,
                          const GridCheckpoint& checkpoint) {
  if (checkpoint.configs < 1 || checkpoint.replications < 1) {
    return Status::InvalidArgument("checkpoint grid must be non-empty");
  }
  const size_t cells = static_cast<size_t>(checkpoint.cells());
  if (checkpoint.done.size() != cells || checkpoint.reports.size() != cells) {
    return Status::InvalidArgument(
        "checkpoint state size disagrees with its grid shape");
  }
  ByteWriter payload;
  payload.PutU64(checkpoint.fingerprint);
  payload.PutU64(checkpoint.base_seed);
  payload.PutI64(checkpoint.configs);
  payload.PutI64(checkpoint.replications);
  // Packed done bitmap, LSB-first within each byte.
  for (size_t base = 0; base < cells; base += 8) {
    uint8_t bits = 0;
    for (size_t i = 0; i < 8 && base + i < cells; ++i) {
      if (checkpoint.done[base + i]) bits |= static_cast<uint8_t>(1u << i);
    }
    payload.PutU8(bits);
  }
  for (size_t cell = 0; cell < cells; ++cell) {
    if (checkpoint.done[cell]) {
      SerializeSimulationReport(checkpoint.reports[cell], &payload);
    }
  }
  payload.PutString(checkpoint.metrics_blob);
  return WriteSnapshotFile(path, SnapshotPayload::kExperimentGrid,
                           payload.bytes());
}

Result<GridCheckpoint> LoadGridCheckpoint(const std::string& path) {
  VOD_ASSIGN_OR_RETURN(
      const std::string payload,
      ReadSnapshotFile(path, SnapshotPayload::kExperimentGrid));
  ByteReader in(payload);
  GridCheckpoint checkpoint;
  VOD_RETURN_IF_ERROR(in.ReadU64(&checkpoint.fingerprint));
  VOD_RETURN_IF_ERROR(in.ReadU64(&checkpoint.base_seed));
  VOD_RETURN_IF_ERROR(in.ReadI64(&checkpoint.configs));
  VOD_RETURN_IF_ERROR(in.ReadI64(&checkpoint.replications));
  if (checkpoint.configs < 1 || checkpoint.replications < 1 ||
      checkpoint.configs > (int64_t{1} << 20) ||
      checkpoint.replications > (int64_t{1} << 20)) {
    return Status::InvalidArgument(
        "checkpoint '" + path + "' declares an implausible grid shape (" +
        std::to_string(checkpoint.configs) + " x " +
        std::to_string(checkpoint.replications) + ")");
  }
  const size_t cells = static_cast<size_t>(checkpoint.cells());
  checkpoint.done.assign(cells, false);
  checkpoint.reports.assign(cells, SimulationReport{});
  for (size_t base = 0; base < cells; base += 8) {
    uint8_t bits = 0;
    VOD_RETURN_IF_ERROR(in.ReadU8(&bits));
    for (size_t i = 0; i < 8 && base + i < cells; ++i) {
      checkpoint.done[base + i] = (bits >> i) & 1u;
    }
  }
  for (size_t cell = 0; cell < cells; ++cell) {
    if (checkpoint.done[cell]) {
      VOD_RETURN_IF_ERROR(
          DeserializeSimulationReport(&in, &checkpoint.reports[cell]));
    }
  }
  // Metrics snapshot blob; absent in checkpoints written before the
  // observability layer, which must keep loading.
  if (!in.AtEnd()) {
    VOD_RETURN_IF_ERROR(in.ReadString(&checkpoint.metrics_blob));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint '" + path + "' carries " +
        std::to_string(in.remaining()) +
        " unexpected trailing byte(s) after the last report");
  }
  return checkpoint;
}

Result<CheckpointedGridResult> RunCheckpointedReportGrid(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint_options, uint64_t grid_fingerprint,
    const std::function<SimulationReport(const CellContext&)>& run_cell,
    const GridObsOptions& obs) {
  if (num_configs < 1) {
    return Status::InvalidArgument("grid needs at least one configuration");
  }
  if (options.replications < 1) {
    return Status::InvalidArgument("grid needs at least one replication");
  }
  VOD_RETURN_IF_ERROR(checkpoint_options.Validate());
  const int64_t reps = options.replications;
  const int64_t cells = num_configs * reps;

  GridCheckpoint state;
  state.fingerprint = grid_fingerprint;
  state.base_seed = options.base_seed;
  state.configs = num_configs;
  state.replications = reps;
  state.done.assign(static_cast<size_t>(cells), false);
  state.reports.assign(static_cast<size_t>(cells), SimulationReport{});

  CheckpointedGridResult result;
  if (checkpoint_options.resume) {
    VOD_ASSIGN_OR_RETURN(GridCheckpoint loaded,
                         LoadGridCheckpoint(checkpoint_options.path));
    if (loaded.fingerprint != grid_fingerprint ||
        loaded.base_seed != options.base_seed ||
        loaded.configs != num_configs || loaded.replications != reps) {
      return Status::InvalidArgument(
          "checkpoint '" + checkpoint_options.path +
          "' was written by a different experiment (fingerprint/seed/shape "
          "mismatch); refusing to merge its cells");
    }
    state = std::move(loaded);
    result.cells_restored = state.cells_done();
  }

  // A resumed registry picks up exactly where the dying process left off:
  // restored series + restored counters, with the grid clock continuing
  // from the restored cell count.
  if (obs.metrics != nullptr && !state.metrics_blob.empty()) {
    ByteReader blob(state.metrics_blob);
    VOD_RETURN_IF_ERROR(obs.metrics->Restore(&blob));
  }

  // Pending cells in grid order; truncated when crash emulation asks for an
  // early stop. Order only affects scheduling — every cell owns its slot.
  std::vector<int64_t> pending;
  pending.reserve(static_cast<size_t>(cells));
  for (int64_t cell = 0; cell < cells; ++cell) {
    if (!state.done[static_cast<size_t>(cell)]) pending.push_back(cell);
  }
  const bool stopping_early =
      checkpoint_options.max_cells >= 0 &&
      static_cast<int64_t>(pending.size()) > checkpoint_options.max_cells;
  if (stopping_early) {
    pending.resize(static_cast<size_t>(checkpoint_options.max_cells));
  }

  // Serializes the current registry state into the checkpoint image so the
  // save that follows carries it. Caller holds the completion mutex.
  const auto snapshot_metrics_locked = [&]() {
    if (obs.metrics == nullptr) return;
    ByteWriter blob;
    obs.metrics->Snapshot(&blob);
    state.metrics_blob = blob.bytes();
  };

  Status save_failure = Status::OK();
  if (!pending.empty()) {
    std::mutex mu;
    int64_t cells_done_clock = result.cells_restored;
    int64_t completed_since_save = 0;
    ThreadPool pool(ResolveThreadCount(
        options.threads, static_cast<int64_t>(pending.size())));
    pool.ParallelFor(
        static_cast<int64_t>(pending.size()), [&](int64_t index) {
          const int64_t cell = pending[static_cast<size_t>(index)];
          const int c = static_cast<int>(cell / reps);
          const int r = static_cast<int>(cell % reps);
          const CellContext context{
              c, r,
              CellSeed(options.base_seed, static_cast<uint64_t>(c),
                       static_cast<uint64_t>(r))};
          SimulationReport report;
          {
            PhaseProfiler::Scope span(obs.profiler, GridCellSpanName(c, r));
            report = run_cell(context);
          }
          std::lock_guard<std::mutex> lock(mu);
          state.reports[static_cast<size_t>(cell)] = std::move(report);
          state.done[static_cast<size_t>(cell)] = true;
          ++result.cells_run;
          cells_done_clock = RecordGridCellDone(obs, cells_done_clock, cell);
          if (checkpoint_options.path.empty()) return;
          if (++completed_since_save >= checkpoint_options.checkpoint_every) {
            completed_since_save = 0;
            PhaseProfiler::Scope span(obs.profiler, "checkpoint_save");
            snapshot_metrics_locked();
            const Status saved =
                SaveGridCheckpoint(checkpoint_options.path, state);
            if (!saved.ok() && save_failure.ok()) save_failure = saved;
          }
        });
  }
  VOD_RETURN_IF_ERROR(save_failure);

  // Publish the final state (also covers runs shorter than one cadence).
  if (!checkpoint_options.path.empty()) {
    PhaseProfiler::Scope span(obs.profiler, "checkpoint_save");
    snapshot_metrics_locked();
    VOD_RETURN_IF_ERROR(SaveGridCheckpoint(checkpoint_options.path, state));
  }

  result.complete = !stopping_early;
  if (result.complete) {
    result.reports.resize(static_cast<size_t>(num_configs));
    for (int64_t c = 0; c < num_configs; ++c) {
      auto& row = result.reports[static_cast<size_t>(c)];
      row.reserve(static_cast<size_t>(reps));
      for (int64_t r = 0; r < reps; ++r) {
        row.push_back(std::move(state.reports[static_cast<size_t>(c * reps + r)]));
      }
    }
  }
  return result;
}

}  // namespace vod
