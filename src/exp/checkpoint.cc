#include "exp/checkpoint.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"

namespace vod {

Status CheckpointOptions::Validate() const {
  if (checkpoint_every < 1) {
    return Status::InvalidArgument(
        "checkpoint_every must be >= 1, got " +
        std::to_string(checkpoint_every));
  }
  if (resume && path.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint path");
  }
  if (max_cells != -1 && max_cells < 0) {
    return Status::InvalidArgument("max_cells must be -1 or >= 0");
  }
  return Status::OK();
}

void SerializeSimulationReport(const SimulationReport& r, ByteWriter* out) {
  out->PutDouble(r.hit_probability);
  out->PutDouble(r.hit_probability_low);
  out->PutDouble(r.hit_probability_high);
  for (double v : r.hit_probability_by_op) out->PutDouble(v);
  for (int64_t v : r.resumes_by_op) out->PutI64(v);
  out->PutDouble(r.hit_probability_in_partition);
  out->PutDouble(r.hit_probability_in_partition_low);
  out->PutDouble(r.hit_probability_in_partition_high);
  out->PutDouble(r.hit_probability_in_partition_bm_halfwidth);
  out->PutI64(r.in_partition_resumes);
  out->PutI64(r.total_resumes);
  out->PutI64(r.hits_within);
  out->PutI64(r.hits_jump);
  out->PutI64(r.end_releases);
  out->PutI64(r.misses);
  out->PutI64(r.admissions);
  out->PutI64(r.type2_admissions);
  out->PutI64(r.completions);
  out->PutDouble(r.mean_wait_minutes);
  out->PutDouble(r.max_wait_minutes);
  out->PutDouble(r.p50_wait_minutes);
  out->PutDouble(r.p99_wait_minutes);
  out->PutDouble(r.mean_dedicated_streams);
  out->PutDouble(r.peak_dedicated_streams);
  out->PutDouble(r.mean_concurrent_viewers);
  out->PutI64(r.piggyback_merges);
  out->PutDouble(r.mean_merge_minutes);
  out->PutI64(r.blocked_vcr_requests);
  out->PutI64(r.stalled_resumes);
  out->PutI64(r.queued_vcr_requests);
  out->PutI64(r.forced_reclaims);
  out->PutI64(r.abandonments);
  out->PutDouble(r.simulated_minutes);
}

Status DeserializeSimulationReport(ByteReader* in, SimulationReport* r) {
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_low));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_high));
  for (double& v : r->hit_probability_by_op) {
    VOD_RETURN_IF_ERROR(in->ReadDouble(&v));
  }
  for (int64_t& v : r->resumes_by_op) {
    VOD_RETURN_IF_ERROR(in->ReadI64(&v));
  }
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition_low));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->hit_probability_in_partition_high));
  VOD_RETURN_IF_ERROR(
      in->ReadDouble(&r->hit_probability_in_partition_bm_halfwidth));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->in_partition_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->hits_within));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->hits_jump));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->end_releases));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->misses));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->admissions));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->type2_admissions));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->completions));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->max_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->p50_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->p99_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_dedicated_streams));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->peak_dedicated_streams));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_concurrent_viewers));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->piggyback_merges));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_merge_minutes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->blocked_vcr_requests));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->stalled_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->queued_vcr_requests));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->forced_reclaims));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->abandonments));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->simulated_minutes));
  return Status::OK();
}

void SerializeServerReport(const ServerReport& r, ByteWriter* out) {
  out->PutI64(static_cast<int64_t>(r.movies.size()));
  for (const ServerReport::PerMovie& m : r.movies) {
    out->PutString(m.name);
    SerializeSimulationReport(m.report, out);
  }
  out->PutI64(r.reserve_capacity);
  out->PutDouble(r.mean_reserve_in_use);
  out->PutI64(r.peak_reserve_in_use);
  out->PutI64(r.refused_acquisitions);
  out->PutI64(r.granted_acquisitions);
  out->PutDouble(r.refusal_probability);
  out->PutI64(r.total_blocked_vcr);
  out->PutI64(r.total_stalls);
  out->PutI64(r.total_resumes);
  out->PutI64(r.total_queued_vcr);
  out->PutI64(r.total_forced_reclaims);

  out->PutBool(r.resilience_enabled);
  const ResilienceReport& res = r.resilience;
  out->PutI64(res.disk_failures);
  out->PutI64(res.disk_repairs);
  out->PutI64(res.min_reserve_capacity);
  out->PutI64(res.max_oversubscription);
  out->PutU8(static_cast<uint8_t>(res.final_level));
  for (double v : res.time_in_level) out->PutDouble(v);
  out->PutI64(res.total_transitions);
  out->PutI64(static_cast<int64_t>(res.transitions.size()));
  for (const DegradationTransition& tr : res.transitions) {
    out->PutDouble(tr.time);
    out->PutU8(static_cast<uint8_t>(tr.from));
    out->PutU8(static_cast<uint8_t>(tr.to));
    out->PutI64(tr.capacity);
  }
  out->PutI64(res.vcr_queued);
  out->PutI64(res.vcr_queue_grants);
  out->PutI64(res.vcr_queue_expirations);
  out->PutI64(res.vcr_queue_pending);
  out->PutI64(res.vcr_denied);
  out->PutDouble(res.mean_queued_wait_minutes);
  out->PutDouble(res.p50_queued_wait_minutes);
  out->PutDouble(res.p90_queued_wait_minutes);
  out->PutDouble(res.p99_queued_wait_minutes);
  out->PutI64(res.forced_reclaims);
  out->PutI64(res.recovery_episodes);
  out->PutDouble(res.mean_recovery_minutes);
  out->PutDouble(res.max_recovery_minutes);

  out->PutBool(r.controller_enabled);
  const ControllerReport& ctrl = r.controller;
  out->PutBool(ctrl.enabled);
  out->PutI64(ctrl.plans_solved);
  out->PutI64(ctrl.drift_alarms);
  out->PutI64(ctrl.migrations_started);
  out->PutI64(ctrl.migrations_committed);
  out->PutI64(ctrl.rollbacks);
  out->PutI64(ctrl.steps_planned);
  out->PutI64(ctrl.steps_applied);
  out->PutI64(ctrl.blocked_attempts);
  out->PutI64(ctrl.admission_sheds);
  for (int64_t v : ctrl.sheds_by_class) out->PutI64(v);
  out->PutI64(ctrl.final_epoch);
  out->PutDouble(ctrl.last_commit_time);
}

Status DeserializeServerReport(ByteReader* in, ServerReport* r) {
  int64_t num_movies = 0;
  VOD_RETURN_IF_ERROR(in->ReadI64(&num_movies));
  if (num_movies < 0 || num_movies > (int64_t{1} << 20)) {
    return Status::InvalidArgument(
        "server report declares an implausible movie count " +
        std::to_string(num_movies));
  }
  r->movies.clear();
  r->movies.reserve(static_cast<size_t>(num_movies));
  for (int64_t i = 0; i < num_movies; ++i) {
    ServerReport::PerMovie m;
    VOD_RETURN_IF_ERROR(in->ReadString(&m.name));
    VOD_RETURN_IF_ERROR(DeserializeSimulationReport(in, &m.report));
    r->movies.push_back(std::move(m));
  }
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->reserve_capacity));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->mean_reserve_in_use));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->peak_reserve_in_use));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->refused_acquisitions));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->granted_acquisitions));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&r->refusal_probability));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_blocked_vcr));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_stalls));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_resumes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_queued_vcr));
  VOD_RETURN_IF_ERROR(in->ReadI64(&r->total_forced_reclaims));

  VOD_RETURN_IF_ERROR(in->ReadBool(&r->resilience_enabled));
  ResilienceReport* res = &r->resilience;
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->disk_failures));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->disk_repairs));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->min_reserve_capacity));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->max_oversubscription));
  uint8_t final_level = 0;
  VOD_RETURN_IF_ERROR(in->ReadU8(&final_level));
  if (final_level >= kNumDegradationLevels) {
    return Status::InvalidArgument(
        "server report carries unknown degradation level " +
        std::to_string(final_level));
  }
  res->final_level = static_cast<DegradationLevel>(final_level);
  for (double& v : res->time_in_level) {
    VOD_RETURN_IF_ERROR(in->ReadDouble(&v));
  }
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->total_transitions));
  int64_t num_transitions = 0;
  VOD_RETURN_IF_ERROR(in->ReadI64(&num_transitions));
  if (num_transitions < 0 || num_transitions > (int64_t{1} << 24)) {
    return Status::InvalidArgument(
        "server report declares an implausible transition count " +
        std::to_string(num_transitions));
  }
  res->transitions.clear();
  res->transitions.reserve(static_cast<size_t>(num_transitions));
  for (int64_t i = 0; i < num_transitions; ++i) {
    DegradationTransition tr;
    VOD_RETURN_IF_ERROR(in->ReadDouble(&tr.time));
    uint8_t from = 0, to = 0;
    VOD_RETURN_IF_ERROR(in->ReadU8(&from));
    VOD_RETURN_IF_ERROR(in->ReadU8(&to));
    if (from >= kNumDegradationLevels || to >= kNumDegradationLevels) {
      return Status::InvalidArgument(
          "server report transition " + std::to_string(i) +
          " carries an unknown degradation level");
    }
    tr.from = static_cast<DegradationLevel>(from);
    tr.to = static_cast<DegradationLevel>(to);
    VOD_RETURN_IF_ERROR(in->ReadI64(&tr.capacity));
    res->transitions.push_back(tr);
  }
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->vcr_queued));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->vcr_queue_grants));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->vcr_queue_expirations));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->vcr_queue_pending));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->vcr_denied));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->mean_queued_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->p50_queued_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->p90_queued_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->p99_queued_wait_minutes));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->forced_reclaims));
  VOD_RETURN_IF_ERROR(in->ReadI64(&res->recovery_episodes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->mean_recovery_minutes));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&res->max_recovery_minutes));

  VOD_RETURN_IF_ERROR(in->ReadBool(&r->controller_enabled));
  ControllerReport* ctrl = &r->controller;
  VOD_RETURN_IF_ERROR(in->ReadBool(&ctrl->enabled));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->plans_solved));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->drift_alarms));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->migrations_started));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->migrations_committed));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->rollbacks));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->steps_planned));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->steps_applied));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->blocked_attempts));
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->admission_sheds));
  for (int64_t& v : ctrl->sheds_by_class) {
    VOD_RETURN_IF_ERROR(in->ReadI64(&v));
  }
  VOD_RETURN_IF_ERROR(in->ReadI64(&ctrl->final_epoch));
  VOD_RETURN_IF_ERROR(in->ReadDouble(&ctrl->last_commit_time));
  return Status::OK();
}

uint64_t HashGridDescription(const std::string& description) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (unsigned char c : description) {
    h ^= c;
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

namespace {

// The two checkpoint kinds share everything but the report codec and the
// payload type id; these file-local templates keep one copy of the framing,
// bitmap, resume, and runner logic.

template <typename Report>
struct GridCodec;

template <>
struct GridCodec<SimulationReport> {
  static constexpr SnapshotPayload kPayload = SnapshotPayload::kExperimentGrid;
  static void Serialize(const SimulationReport& r, ByteWriter* out) {
    SerializeSimulationReport(r, out);
  }
  static Status Deserialize(ByteReader* in, SimulationReport* r) {
    return DeserializeSimulationReport(in, r);
  }
};

template <>
struct GridCodec<ServerReport> {
  static constexpr SnapshotPayload kPayload = SnapshotPayload::kServerGrid;
  static void Serialize(const ServerReport& r, ByteWriter* out) {
    SerializeServerReport(r, out);
  }
  static Status Deserialize(ByteReader* in, ServerReport* r) {
    return DeserializeServerReport(in, r);
  }
};

template <typename Report>
Status SaveGridCheckpointImpl(const std::string& path,
                              const BasicGridCheckpoint<Report>& checkpoint) {
  if (checkpoint.configs < 1 || checkpoint.replications < 1) {
    return Status::InvalidArgument("checkpoint grid must be non-empty");
  }
  const size_t cells = static_cast<size_t>(checkpoint.cells());
  if (checkpoint.done.size() != cells || checkpoint.reports.size() != cells) {
    return Status::InvalidArgument(
        "checkpoint state size disagrees with its grid shape");
  }
  ByteWriter payload;
  payload.PutU64(checkpoint.fingerprint);
  payload.PutU64(checkpoint.base_seed);
  payload.PutI64(checkpoint.configs);
  payload.PutI64(checkpoint.replications);
  // Packed done bitmap, LSB-first within each byte.
  for (size_t base = 0; base < cells; base += 8) {
    uint8_t bits = 0;
    for (size_t i = 0; i < 8 && base + i < cells; ++i) {
      if (checkpoint.done[base + i]) bits |= static_cast<uint8_t>(1u << i);
    }
    payload.PutU8(bits);
  }
  for (size_t cell = 0; cell < cells; ++cell) {
    if (checkpoint.done[cell]) {
      GridCodec<Report>::Serialize(checkpoint.reports[cell], &payload);
    }
  }
  payload.PutString(checkpoint.metrics_blob);
  return WriteSnapshotFile(path, GridCodec<Report>::kPayload, payload.bytes());
}

template <typename Report>
Result<BasicGridCheckpoint<Report>> LoadGridCheckpointImpl(
    const std::string& path) {
  VOD_ASSIGN_OR_RETURN(const std::string payload,
                       ReadSnapshotFile(path, GridCodec<Report>::kPayload));
  ByteReader in(payload);
  BasicGridCheckpoint<Report> checkpoint;
  VOD_RETURN_IF_ERROR(in.ReadU64(&checkpoint.fingerprint));
  VOD_RETURN_IF_ERROR(in.ReadU64(&checkpoint.base_seed));
  VOD_RETURN_IF_ERROR(in.ReadI64(&checkpoint.configs));
  VOD_RETURN_IF_ERROR(in.ReadI64(&checkpoint.replications));
  const int64_t configs = checkpoint.configs;
  const int64_t replications = checkpoint.replications;
  if (configs < 1 || replications < 1 || configs > (int64_t{1} << 20) ||
      replications > (int64_t{1} << 20)) {
    return Status::InvalidArgument(
        "checkpoint '" + path + "' declares an implausible grid shape (" +
        std::to_string(configs) + " x " + std::to_string(replications) + ")");
  }
  const size_t cells = static_cast<size_t>(checkpoint.cells());
  checkpoint.done.assign(cells, false);
  checkpoint.reports.assign(cells, Report{});
  for (size_t base = 0; base < cells; base += 8) {
    uint8_t bits = 0;
    VOD_RETURN_IF_ERROR(in.ReadU8(&bits));
    for (size_t i = 0; i < 8 && base + i < cells; ++i) {
      checkpoint.done[base + i] = (bits >> i) & 1u;
    }
  }
  for (size_t cell = 0; cell < cells; ++cell) {
    if (checkpoint.done[cell]) {
      VOD_RETURN_IF_ERROR(
          GridCodec<Report>::Deserialize(&in, &checkpoint.reports[cell]));
    }
  }
  // Metrics snapshot blob; absent in checkpoints written before the
  // observability layer, which must keep loading.
  if (!in.AtEnd()) {
    VOD_RETURN_IF_ERROR(in.ReadString(&checkpoint.metrics_blob));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint '" + path + "' carries " +
        std::to_string(in.remaining()) +
        " unexpected trailing byte(s) after the last report");
  }
  return checkpoint;
}

}  // namespace

Status SaveGridCheckpoint(const std::string& path,
                          const GridCheckpoint& checkpoint) {
  return SaveGridCheckpointImpl(path, checkpoint);
}

Result<GridCheckpoint> LoadGridCheckpoint(const std::string& path) {
  return LoadGridCheckpointImpl<SimulationReport>(path);
}

Status SaveServerGridCheckpoint(const std::string& path,
                                const ServerGridCheckpoint& checkpoint) {
  return SaveGridCheckpointImpl(path, checkpoint);
}

Result<ServerGridCheckpoint> LoadServerGridCheckpoint(
    const std::string& path) {
  return LoadGridCheckpointImpl<ServerReport>(path);
}

namespace {

template <typename Report>
Result<BasicCheckpointedGridResult<Report>> RunCheckpointedGridImpl(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint_options, uint64_t grid_fingerprint,
    const std::function<Report(const CellContext&)>& run_cell,
    const GridObsOptions& obs) {
  if (num_configs < 1) {
    return Status::InvalidArgument("grid needs at least one configuration");
  }
  if (options.replications < 1) {
    return Status::InvalidArgument("grid needs at least one replication");
  }
  VOD_RETURN_IF_ERROR(checkpoint_options.Validate());
  const int64_t reps = options.replications;
  const int64_t cells = num_configs * reps;

  BasicGridCheckpoint<Report> state;
  state.fingerprint = grid_fingerprint;
  state.base_seed = options.base_seed;
  state.configs = num_configs;
  state.replications = reps;
  state.done.assign(static_cast<size_t>(cells), false);
  state.reports.assign(static_cast<size_t>(cells), Report{});

  BasicCheckpointedGridResult<Report> result;
  if (checkpoint_options.resume) {
    VOD_ASSIGN_OR_RETURN(
        BasicGridCheckpoint<Report> loaded,
        LoadGridCheckpointImpl<Report>(checkpoint_options.path));
    if (loaded.fingerprint != grid_fingerprint ||
        loaded.base_seed != options.base_seed ||
        loaded.configs != num_configs || loaded.replications != reps) {
      return Status::InvalidArgument(
          "checkpoint '" + checkpoint_options.path +
          "' was written by a different experiment (fingerprint/seed/shape "
          "mismatch); refusing to merge its cells");
    }
    state = std::move(loaded);
    result.cells_restored = state.cells_done();
  }

  // A resumed registry picks up exactly where the dying process left off:
  // restored series + restored counters, with the grid clock continuing
  // from the restored cell count.
  if (obs.metrics != nullptr && !state.metrics_blob.empty()) {
    ByteReader blob(state.metrics_blob);
    VOD_RETURN_IF_ERROR(obs.metrics->Restore(&blob));
  }

  // Pending cells in grid order; truncated when crash emulation asks for an
  // early stop. Order only affects scheduling — every cell owns its slot.
  std::vector<int64_t> pending;
  pending.reserve(static_cast<size_t>(cells));
  for (int64_t cell = 0; cell < cells; ++cell) {
    if (!state.done[static_cast<size_t>(cell)]) pending.push_back(cell);
  }
  const bool stopping_early =
      checkpoint_options.max_cells >= 0 &&
      static_cast<int64_t>(pending.size()) > checkpoint_options.max_cells;
  if (stopping_early) {
    pending.resize(static_cast<size_t>(checkpoint_options.max_cells));
  }

  // Serializes the current registry state into the checkpoint image so the
  // save that follows carries it. Caller holds the completion mutex.
  const auto snapshot_metrics_locked = [&]() {
    if (obs.metrics == nullptr) return;
    ByteWriter blob;
    obs.metrics->Snapshot(&blob);
    state.metrics_blob = blob.bytes();
  };

  Status save_failure = Status::OK();
  if (!pending.empty()) {
    std::mutex mu;
    int64_t cells_done_clock = result.cells_restored;
    int64_t completed_since_save = 0;
    ThreadPool pool(ResolveThreadCount(
        options.threads, static_cast<int64_t>(pending.size())));
    pool.ParallelFor(
        static_cast<int64_t>(pending.size()), [&](int64_t index) {
          const int64_t cell = pending[static_cast<size_t>(index)];
          const int c = static_cast<int>(cell / reps);
          const int r = static_cast<int>(cell % reps);
          const CellContext context{
              c, r,
              CellSeed(options.base_seed, static_cast<uint64_t>(c),
                       static_cast<uint64_t>(r))};
          Report report;
          {
            PhaseProfiler::Scope span(obs.profiler, GridCellSpanName(c, r));
            report = run_cell(context);
          }
          std::lock_guard<std::mutex> lock(mu);
          state.reports[static_cast<size_t>(cell)] = std::move(report);
          state.done[static_cast<size_t>(cell)] = true;
          ++result.cells_run;
          cells_done_clock = RecordGridCellDone(obs, cells_done_clock, cell);
          if (checkpoint_options.path.empty()) return;
          if (++completed_since_save >= checkpoint_options.checkpoint_every) {
            completed_since_save = 0;
            PhaseProfiler::Scope span(obs.profiler, "checkpoint_save");
            snapshot_metrics_locked();
            const Status saved =
                SaveGridCheckpointImpl(checkpoint_options.path, state);
            if (!saved.ok() && save_failure.ok()) save_failure = saved;
          }
        });
  }
  VOD_RETURN_IF_ERROR(save_failure);

  // Publish the final state (also covers runs shorter than one cadence).
  if (!checkpoint_options.path.empty()) {
    PhaseProfiler::Scope span(obs.profiler, "checkpoint_save");
    snapshot_metrics_locked();
    VOD_RETURN_IF_ERROR(
        SaveGridCheckpointImpl(checkpoint_options.path, state));
  }

  result.complete = !stopping_early;
  if (result.complete) {
    result.reports.resize(static_cast<size_t>(num_configs));
    for (int64_t c = 0; c < num_configs; ++c) {
      auto& row = result.reports[static_cast<size_t>(c)];
      row.reserve(static_cast<size_t>(reps));
      for (int64_t r = 0; r < reps; ++r) {
        row.push_back(std::move(state.reports[static_cast<size_t>(c * reps + r)]));
      }
    }
  }
  return result;
}

}  // namespace

Result<CheckpointedGridResult> RunCheckpointedReportGrid(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint_options, uint64_t grid_fingerprint,
    const std::function<SimulationReport(const CellContext&)>& run_cell,
    const GridObsOptions& obs) {
  return RunCheckpointedGridImpl<SimulationReport>(
      num_configs, options, checkpoint_options, grid_fingerprint, run_cell,
      obs);
}

Result<CheckpointedServerGridResult> RunCheckpointedServerGrid(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint_options, uint64_t grid_fingerprint,
    const std::function<ServerReport(const CellContext&)>& run_cell,
    const GridObsOptions& obs) {
  return RunCheckpointedGridImpl<ServerReport>(
      num_configs, options, checkpoint_options, grid_fingerprint, run_cell,
      obs);
}

}  // namespace vod
