#include "exp/replication.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/batch_means.h"

namespace vod {

void ReplicationSummary::Add(const SimulationReport& report) {
  ++count_;
  hit_in_partition_.Add(report.hit_probability_in_partition);
  hit_all_.Add(report.hit_probability);
  mean_wait_.Add(report.mean_wait_minutes);
  p99_wait_.Add(report.p99_wait_minutes);
  dedicated_.Add(report.mean_dedicated_streams);
  in_partition_resumes_ += report.in_partition_resumes;
  total_resumes_ += report.total_resumes;
}

MetricSummary ReplicationSummary::Summarize(const RunningStats& stats) const {
  MetricSummary summary;
  summary.replications = stats.count();
  summary.mean = stats.mean();
  if (stats.count() >= 2) {
    summary.half_width =
        StudentT975(static_cast<int>(stats.count()) - 1) * stats.stddev() /
        std::sqrt(static_cast<double>(stats.count()));
  }
  return summary;
}

std::string ReplicationSummary::ToString() const {
  std::ostringstream os;
  char line[160];
  const auto row = [&](const char* label, const MetricSummary& m) {
    std::snprintf(line, sizeof(line), "  %-28s %.6f ± %.6f\n", label, m.mean,
                  m.half_width);
    os << line;
  };
  std::snprintf(line, sizeof(line), "replications: %lld\n",
                static_cast<long long>(count_));
  os << line;
  row("P(hit) in-partition", hit_probability_in_partition());
  row("P(hit) all", hit_probability());
  row("mean wait (min)", mean_wait_minutes());
  row("p99 wait (min)", p99_wait_minutes());
  row("mean dedicated streams", mean_dedicated_streams());
  std::snprintf(line, sizeof(line),
                "  %-28s %lld (in-partition %lld)\n", "total resumes",
                static_cast<long long>(total_resumes_),
                static_cast<long long>(in_partition_resumes_));
  os << line;
  return os.str();
}

ReplicationSummary SummarizeReplications(
    const std::vector<SimulationReport>& reports) {
  ReplicationSummary summary;
  for (const auto& report : reports) summary.Add(report);
  return summary;
}

}  // namespace vod
