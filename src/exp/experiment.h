// Parallel, deterministic experiment replication.
//
// Every validation artifact in this repo (the Figure-7 sweeps, the ablation
// and extension benches, the model-vs-simulation test) runs a grid of
// independent simulation cells: configurations × replications. This layer
// fans those cells out over a fixed thread pool with a contract of
// **bit-exact determinism independent of thread count**:
//
//   * each cell's RNG seed derives from its (config index, replication
//     index) through the same SplitMix64 child-seed discipline the
//     simulator uses internally — never from execution order;
//   * each cell writes its outcome into a pre-sized slot owned by it alone;
//   * workers share nothing mutable — every cell constructs its own
//     simulator, metrics, and report, and reduction happens single-threaded
//     after the pool drains.
//
// `--threads=1` and `--threads=N` therefore produce byte-identical tables
// (tests/exp/determinism_threads_test.cc enforces this).

#ifndef VOD_EXP_EXPERIMENT_H_
#define VOD_EXP_EXPERIMENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "obs/observability.h"

namespace vod {

/// Knobs shared by every experiment grid.
struct ExperimentOptions {
  /// Worker threads; 0 means auto (hardware concurrency), 1 means serial.
  /// The choice never affects results, only wall-clock.
  int threads = 0;
  /// Independent replications per configuration (>= 1).
  int replications = 1;
  /// Base seed the per-cell seeds derive from.
  uint64_t base_seed = 20240707;
};

/// \brief Decorrelated seed for one (config, replication) cell.
///
/// Two SplitMix64 steps: base_seed and config_index mix into a per-config
/// stream seed, then replication indexes into that stream. The mapping is a
/// pure function of the three integers, so cells keep their randomness when
/// the grid is re-run with a different thread count, a different subset of
/// configs, or more replications appended.
uint64_t CellSeed(uint64_t base_seed, uint64_t config_index,
                  uint64_t replication);

/// Identity of the cell a run function is executing.
struct CellContext {
  int config_index = 0;
  int replication = 0;
  uint64_t seed = 0;  ///< CellSeed(base_seed, config_index, replication)
};

/// Effective worker count: resolves `auto`, never more threads than cells.
int ResolveThreadCount(int requested, int64_t cells);

/// Registers the standard experiment flags (`--threads`, and optionally
/// `--replications`) on a bench/tool flag set.
void AddExperimentFlags(FlagSet* flags, bool with_replications = false);

/// Reads the flags registered by AddExperimentFlags (a missing
/// `--replications` flag yields 1).
ExperimentOptions ExperimentOptionsFromFlags(const FlagSet& flags,
                                             uint64_t base_seed);

/// Profiler span name for one grid cell ("cell c3 r7").
std::string GridCellSpanName(int config_index, int replication);

/// Shared per-completion bookkeeping for the grid runners: counts the cell
/// on the grid clock, emits its kCell event, and samples the registry.
/// `lock` must already hold the runner's completion mutex when obs.metrics
/// is set. Returns the new cells-done total.
int64_t RecordGridCellDone(const GridObsOptions& obs, int64_t cells_done,
                           int64_t cell_index);

/// \brief Runs `run_cell` for every (config, replication) cell of the grid.
///
/// Returns outcomes indexed `[config][replication]` — positions are fixed
/// up front, so the result is identical for any thread count. `run_cell`
/// receives the config and a CellContext carrying the cell's derived seed;
/// it must be thread-compatible (no shared mutable state) and its Outcome
/// must be default-constructible and movable. Errors inside a cell should
/// VOD_CHECK: a failed cell means a misconfigured grid, not a recoverable
/// condition.
template <typename Config, typename CellFn>
auto RunExperimentGrid(const std::vector<Config>& configs,
                       const ExperimentOptions& options, CellFn&& run_cell,
                       const GridObsOptions& obs = {})
    -> std::vector<std::vector<decltype(run_cell(
        std::declval<const Config&>(), std::declval<const CellContext&>()))>> {
  using Outcome = decltype(run_cell(std::declval<const Config&>(),
                                    std::declval<const CellContext&>()));
  VOD_CHECK_MSG(options.replications >= 1,
                "ExperimentOptions.replications must be >= 1");
  const int64_t reps = options.replications;
  const int64_t cells = static_cast<int64_t>(configs.size()) * reps;
  std::vector<std::vector<Outcome>> results(configs.size());
  for (auto& row : results) row.resize(static_cast<size_t>(reps));
  if (cells == 0) return results;

  // Telemetry only: the completion lock orders the obs bookkeeping, never
  // the cells themselves, so results stay bit-exact at any thread count.
  std::mutex obs_mu;
  int64_t cells_done = 0;
  const bool track_completions =
      obs.metrics != nullptr || obs.event_log != nullptr;

  ThreadPool pool(ResolveThreadCount(options.threads, cells));
  pool.ParallelFor(cells, [&](int64_t cell) {
    const int c = static_cast<int>(cell / reps);
    const int r = static_cast<int>(cell % reps);
    const CellContext context{
        c, r,
        CellSeed(options.base_seed, static_cast<uint64_t>(c),
                 static_cast<uint64_t>(r))};
    {
      PhaseProfiler::Scope span(obs.profiler, GridCellSpanName(c, r));
      results[static_cast<size_t>(c)][static_cast<size_t>(r)] =
          run_cell(configs[static_cast<size_t>(c)], context);
    }
    if (track_completions) {
      std::lock_guard<std::mutex> lock(obs_mu);
      cells_done = RecordGridCellDone(obs, cells_done, cell);
    }
  });
  return results;
}

}  // namespace vod

#endif  // VOD_EXP_EXPERIMENT_H_
