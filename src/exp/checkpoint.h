// Crash-recoverable experiment grids: checkpoint / resume at cell
// granularity.
//
// A sweep is a grid of (configuration × replication) cells whose seeds are
// pure functions of their indices (exp/experiment.h). That makes the cell
// the natural unit of recovery: a checkpoint records *which* cells finished
// and their bit-exact SimulationReports; cells in flight when the process
// died are simply re-run from their deterministic seeds on resume. The
// recombined grid is therefore byte-identical to an uninterrupted run — at
// any `--threads`, killed at any point, resumed any number of times.
//
// The checkpoint file is a framed snapshot (common/serialize.h): versioned,
// CRC-checked, atomically published via write-to-temp + rename. A stale or
// foreign checkpoint (different grid shape, seed, or experiment fingerprint)
// is rejected with a diagnostic Status rather than silently merged.

#ifndef VOD_EXP_CHECKPOINT_H_
#define VOD_EXP_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "exp/experiment.h"
#include "sim/server.h"
#include "sim/simulator.h"

namespace vod {

/// Checkpoint/resume knobs for a grid run.
struct CheckpointOptions {
  /// Checkpoint file; empty disables checkpointing entirely.
  std::string path;
  /// Completed cells between checkpoint saves (>= 1). The final state is
  /// always saved once the run finishes or stops.
  int64_t checkpoint_every = 16;
  /// Load `path` and skip its completed cells before running. An absent
  /// file is an error: resuming from nothing is a misspelled path more
  /// often than a fresh start.
  bool resume = false;
  /// Stop (checkpoint and return, `complete == false`) after this many
  /// *newly executed* cells; -1 = run to completion. This is the in-process
  /// crash-emulation hook the tests and the soak harness use.
  int64_t max_cells = -1;

  Status Validate() const;
};

/// \brief Serializes every field of a report, in declaration order, as raw
/// little-endian bits. Bit-exact round-trip (doubles keep their IEEE-754
/// pattern).
void SerializeSimulationReport(const SimulationReport& report,
                               ByteWriter* out);
Status DeserializeSimulationReport(ByteReader* in, SimulationReport* report);

/// \brief Same contract for a whole-server report: every field — the
/// per-movie reports, reserve accounting, the resilience block including
/// its transition log, and the controller block — round-trips bit-exactly,
/// so a resumed server sweep reproduces ToString byte-for-byte.
void SerializeServerReport(const ServerReport& report, ByteWriter* out);
Status DeserializeServerReport(ByteReader* in, ServerReport* report);

/// FNV-1a of an experiment's self-description (layout parameters, horizon,
/// behavior knobs...). Callers fold everything that changes cell outcomes
/// into the description so a checkpoint can never be resumed against a
/// different experiment.
uint64_t HashGridDescription(const std::string& description);

/// \brief In-memory image of a checkpoint: grid identity + per-cell state.
///
/// One shape serves both cell kinds — single-movie SimulationReports
/// (payload kExperimentGrid) and whole-server ServerReports (payload
/// kServerGrid); the payload type id keeps the two file kinds from being
/// fed to each other.
template <typename Report>
struct BasicGridCheckpoint {
  uint64_t fingerprint = 0;  ///< HashGridDescription of the experiment
  uint64_t base_seed = 0;
  int64_t configs = 0;
  int64_t replications = 0;
  /// Row-major done flags, one per cell (config * replications + rep).
  std::vector<bool> done;
  /// Completed cells' reports; meaningful only where done[cell] is true.
  std::vector<Report> reports;
  /// Optional MetricsRegistry::Snapshot blob taken at save time, so a
  /// resumed sweep continues its sampled series without a gap. Empty when
  /// the run carried no registry — and in checkpoints written before this
  /// field existed, which still load fine.
  std::string metrics_blob;

  int64_t cells() const { return configs * replications; }
  int64_t cells_done() const {
    int64_t n = 0;
    for (bool d : done) {
      if (d) ++n;
    }
    return n;
  }
};

using GridCheckpoint = BasicGridCheckpoint<SimulationReport>;
using ServerGridCheckpoint = BasicGridCheckpoint<ServerReport>;

/// Atomically writes `checkpoint` (payload kExperimentGrid; the done flags
/// travel as a packed bitmap).
Status SaveGridCheckpoint(const std::string& path,
                          const GridCheckpoint& checkpoint);

/// Reads and fully validates a checkpoint file. Corrupted, truncated,
/// version-mismatched, or internally inconsistent files yield a diagnostic
/// error — never a crash or a silently partial grid.
Result<GridCheckpoint> LoadGridCheckpoint(const std::string& path);

/// Server-grid flavor of Save/LoadGridCheckpoint (payload kServerGrid).
Status SaveServerGridCheckpoint(const std::string& path,
                                const ServerGridCheckpoint& checkpoint);
Result<ServerGridCheckpoint> LoadServerGridCheckpoint(const std::string& path);

/// Outcome of a (possibly interrupted) checkpointed grid run.
template <typename Report>
struct BasicCheckpointedGridResult {
  /// False when max_cells stopped the run early; the checkpoint on disk
  /// holds everything completed so far.
  bool complete = true;
  int64_t cells_restored = 0;  ///< skipped because the checkpoint had them
  int64_t cells_run = 0;       ///< executed by this process
  /// Reports indexed [config][replication]; fully populated only when
  /// `complete` is true.
  std::vector<std::vector<Report>> reports;
};

using CheckpointedGridResult = BasicCheckpointedGridResult<SimulationReport>;
using CheckpointedServerGridResult = BasicCheckpointedGridResult<ServerReport>;

/// \brief RunExperimentGrid with checkpoint/resume.
///
/// `run_cell` must be a pure function of its CellContext (thread-compatible,
/// deterministic in context.seed) returning the cell's report. Pending cells
/// are fanned out over `options.threads` workers exactly like
/// RunExperimentGrid; completed work is recorded under a mutex and the
/// checkpoint is republished every `checkpoint.checkpoint_every`
/// completions. On resume the checkpoint's identity (fingerprint, seed,
/// shape) must match the current grid.
///
/// Observability (all telemetry-only; reports stay byte-identical):
/// `obs.metrics` counts completions on the cells-done clock — which on
/// resume starts at the restored count, and whose registry state is first
/// restored from the checkpoint's snapshot blob and re-snapshotted into
/// every save, so a SIGKILLed sweep resumes its series without a gap.
/// `obs.event_log` gets one kCell event per newly executed cell, and
/// `obs.profiler` one span per cell plus one per checkpoint save.
Result<CheckpointedGridResult> RunCheckpointedReportGrid(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint, uint64_t grid_fingerprint,
    const std::function<SimulationReport(const CellContext&)>& run_cell,
    const GridObsOptions& obs = {});

/// \brief RunCheckpointedReportGrid over whole-server cells.
///
/// Identical contract, but each cell runs a full multi-movie server
/// simulation and the checkpoint carries ServerReports — including the
/// resilience transition log and the controller block, so a sweep with the
/// control plane enabled survives a SIGKILL mid-migration and resumes to a
/// byte-identical final table (tests/exp enforce this).
Result<CheckpointedServerGridResult> RunCheckpointedServerGrid(
    int64_t num_configs, const ExperimentOptions& options,
    const CheckpointOptions& checkpoint, uint64_t grid_fingerprint,
    const std::function<ServerReport(const CellContext&)>& run_cell,
    const GridObsOptions& obs = {});

}  // namespace vod

#endif  // VOD_EXP_CHECKPOINT_H_
