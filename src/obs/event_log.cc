#include "obs/event_log.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace vod {

namespace {

constexpr const char* kCategoryNames[kNumEventCategories] = {
    "admission", "restart", "vcr_begin", "resume",      "stall",
    "queue",     "shed",    "reclaim",   "fault",       "degradation",
    "session",   "cell",    "tick",      "controller",  "barrier",
    "shard",
};

// Subtype vocabularies, indexed to match the emitting code:
//   admission  -> viewer type; vcr_begin -> VcrOp (core/types.h order);
//   resume     -> ResumeOutcome (sim/metrics.h order);
//   queue      -> lifecycle; fault -> direction;
//   degradation-> DegradationLevel rung (sim/degradation.h order);
//   session    -> how the viewer left.
constexpr const char* kAdmissionSub[] = {"type1", "type2"};
constexpr const char* kVcrSub[] = {"ff", "rw", "pau"};
constexpr const char* kResumeSub[] = {"hit_within", "hit_jump", "end", "miss"};
constexpr const char* kQueueSub[] = {"enqueue", "grant", "refuse"};
constexpr const char* kFaultSub[] = {"down", "up"};
constexpr const char* kDegradationSub[] = {"normal", "queueing", "shed_vcr",
                                           "reclaim", "batching_only"};
constexpr const char* kSessionSub[] = {"complete", "abandon"};
constexpr const char* kCellSub[] = {"done"};
// ControllerEvent order (obs/event_log.h).
constexpr const char* kControllerSub[] = {"alarm",    "replan",  "reclaim",
                                          "grant",    "commit",  "rollback",
                                          "blocked",  "shed",    "class"};
// ShardEvent order (obs/event_log.h).
constexpr const char* kShardSub[] = {"window_open", "window_close", "pressure",
                                     "quota_apply"};

template <size_t N>
const char* Lookup(const char* const (&table)[N], uint8_t i) {
  return i < N ? table[i] : "-";
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void PutLeU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLeDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutLeU64(out, bits);
}

}  // namespace

const char* EventCategoryName(EventCategory category) {
  const auto i = static_cast<size_t>(category);
  return i < kNumEventCategories ? kCategoryNames[i] : "unknown";
}

const char* EventSubtypeName(EventCategory category, uint8_t subtype) {
  switch (category) {
    case EventCategory::kAdmission:
      return Lookup(kAdmissionSub, subtype);
    case EventCategory::kVcrBegin:
      return Lookup(kVcrSub, subtype);
    case EventCategory::kResume:
      return Lookup(kResumeSub, subtype);
    case EventCategory::kQueue:
      return Lookup(kQueueSub, subtype);
    case EventCategory::kFault:
      return Lookup(kFaultSub, subtype);
    case EventCategory::kDegradation:
      return Lookup(kDegradationSub, subtype);
    case EventCategory::kSession:
      return Lookup(kSessionSub, subtype);
    case EventCategory::kCell:
      return Lookup(kCellSub, subtype);
    case EventCategory::kController:
      return Lookup(kControllerSub, subtype);
    case EventCategory::kBarrier:
      // Barrier records carry ladder rungs in sub/aux.
      return Lookup(kDegradationSub, subtype);
    case EventCategory::kShard:
      return Lookup(kShardSub, subtype);
    default:
      return "-";
  }
}

Result<EventCategory> ParseEventCategory(const std::string& name) {
  for (int i = 0; i < kNumEventCategories; ++i) {
    if (name == kCategoryNames[i]) return static_cast<EventCategory>(i);
  }
  return Status::InvalidArgument("unknown event category '" + name + "'");
}

Result<uint32_t> ParseCategoryMask(const std::string& spec) {
  if (spec.empty() || spec == "all") return kAllEventCategories;
  uint32_t mask = 0;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string token = spec.substr(pos, end - pos);
    if (!token.empty()) {
      VOD_ASSIGN_OR_RETURN(const EventCategory cat,
                           ParseEventCategory(token));
      mask |= CategoryBit(cat);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (mask == 0) {
    return Status::InvalidArgument("category list '" + spec +
                                   "' selects no categories");
  }
  return mask;
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out;
  out.reserve(160);
  out += "{\"t\":";
  AppendJsonDouble(&out, event.time);
  out += ",\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"cat\":\"";
  out += EventCategoryName(event.category);
  out += "\",\"sub\":\"";
  out += EventSubtypeName(event.category, event.subtype);
  out += "\",\"aux\":";
  out += std::to_string(static_cast<int>(event.aux));
  out += ",\"movie\":";
  out += std::to_string(event.movie);
  out += ",\"id\":";
  out += std::to_string(event.id);
  out += ",\"value\":";
  AppendJsonDouble(&out, event.value);
  out += "}";
  return out;
}

// ---- EventRing --------------------------------------------------------------

EventRing::EventRing(size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity);
}

void EventRing::Append(const TraceEvent& event) {
  ++total_appended_;
  if (capacity_ == 0) return;
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  events_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> EventRing::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  const size_t n = events_.size();
  // Once wrapped, the oldest retained record sits at next_.
  const size_t start = n < capacity_ ? 0 : next_;
  for (size_t i = 0; i < n; ++i) out.push_back(events_[(start + i) % n]);
  return out;
}

void EventRing::Clear() {
  events_.clear();
  next_ = 0;
  total_appended_ = 0;
}

// ---- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(std::unique_ptr<std::ofstream> owned, std::string path)
    : owned_(std::move(owned)), out_(owned_.get()), path_(std::move(path)) {}

Result<std::unique_ptr<JsonlSink>> JsonlSink::Open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(
      path, std::ios::out | std::ios::trunc);
  if (!file->is_open()) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  return std::unique_ptr<JsonlSink>(new JsonlSink(std::move(file), path));
}

void JsonlSink::Append(const TraceEvent& event) {
  const std::string line = TraceEventToJson(event);
  std::lock_guard<std::mutex> lock(mu_);
  (*out_) << line << '\n';
  ++lines_written_;
}

Status JsonlSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
  if (!out_->good()) {
    return Status::Internal("trace sink write failed" +
                            (path_.empty() ? "" : " for '" + path_ + "'"));
  }
  return Status::OK();
}

// ---- BinarySink -------------------------------------------------------------

BinarySink::BinarySink(std::unique_ptr<std::ofstream> owned, std::string path)
    : owned_(std::move(owned)), out_(owned_.get()), path_(std::move(path)) {}

Result<std::unique_ptr<BinarySink>> BinarySink::Open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(
      path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!file->is_open()) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  file->write(kMagic, sizeof(kMagic));
  return std::unique_ptr<BinarySink>(new BinarySink(std::move(file), path));
}

void BinarySink::Append(const TraceEvent& event) {
  // Explicit little-endian field order; see ReadBinaryTrace for the decoder.
  std::string record;
  record.reserve(sizeof(TraceEvent));
  PutLeDouble(&record, event.time);
  PutLeU64(&record, event.seq);
  PutLeU64(&record, static_cast<uint64_t>(event.id));
  PutLeDouble(&record, event.value);
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<char>(
        (static_cast<uint32_t>(event.movie) >> (8 * i)) & 0xff));
  }
  record.push_back(static_cast<char>(event.category));
  record.push_back(static_cast<char>(event.subtype));
  record.push_back(static_cast<char>(event.aux));
  record.push_back(static_cast<char>(event.pad));
  std::lock_guard<std::mutex> lock(mu_);
  out_->write(record.data(), static_cast<std::streamsize>(record.size()));
  ++records_written_;
}

Status BinarySink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
  if (!out_->good()) {
    return Status::Internal("trace sink write failed" +
                            (path_.empty() ? "" : " for '" + path_ + "'"));
  }
  return Status::OK();
}

}  // namespace vod
