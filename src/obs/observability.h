// Per-run observability wiring carried by SimulationOptions/ServerOptions.
//
// A run can be handed an event log (structured tracing) and a metrics
// registry (cadenced series sampling). Both are borrowed, both default to
// null, and both are telemetry-only: they never touch the seeded RNG or the
// report path, so enabling them cannot change a report byte.

#ifndef VOD_OBS_OBSERVABILITY_H_
#define VOD_OBS_OBSERVABILITY_H_

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"

namespace vod {

struct ObsOptions {
  /// Structured event sink fan-out; null = no tracing.
  EventLog* event_log = nullptr;
  /// Live instruments sampled on the simulation clock; null = no sampling.
  MetricsRegistry* metrics = nullptr;
  /// Sampling cadence in simulated minutes (applied to `metrics`); <= 0
  /// leaves the registry's own cadence untouched.
  double metrics_sample_minutes = 0.0;
  /// Wall-clock phase profiler. The sharded server records per-window shard
  /// work / barrier-wait / coordinator-fold spans on named lanes; the
  /// single-server path ignores it (its event loop has no phases worth
  /// spans). Null = no spans.
  PhaseProfiler* profiler = nullptr;
};

/// \brief Observability wiring for an experiment grid (exp/experiment.h,
/// exp/checkpoint.h). All pointers are borrowed and may be null.
///
/// The grid clock is "cells completed so far": the metrics registry samples
/// on it, and kCell events carry it as their time. The profiler records one
/// span per cell plus the runner's own stages (checkpoint saves); callers
/// add finer stages (sample/simulate/reduce) inside their cell functions.
struct GridObsOptions {
  PhaseProfiler* profiler = nullptr;
  /// Sampled on the cells-done clock under the runner's completion lock;
  /// snapshotted into grid checkpoints so a resumed sweep continues its
  /// series without a gap.
  MetricsRegistry* metrics = nullptr;
  /// Receives one kCell event per completed cell.
  EventLog* event_log = nullptr;
};

}  // namespace vod

#endif  // VOD_OBS_OBSERVABILITY_H_
