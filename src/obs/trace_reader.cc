#include "obs/trace_reader.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace vod {

namespace {

Status LineError(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                 ": " + why);
}

// Finds `"key":` in a single-line JSON object and returns the character
// position just past the colon, or npos.
size_t FindField(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

Status ParseJsonNumber(const std::string& line, size_t line_no,
                       const char* key, double* out) {
  const size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return LineError(line_no, std::string("missing field \"") + key + "\"");
  }
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) {
    return LineError(line_no,
                     std::string("field \"") + key + "\" is not a number");
  }
  *out = v;
  return Status::OK();
}

Status ParseJsonString(const std::string& line, size_t line_no,
                       const char* key, std::string* out) {
  size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return LineError(line_no, std::string("missing field \"") + key + "\"");
  }
  if (pos >= line.size() || line[pos] != '"') {
    return LineError(line_no,
                     std::string("field \"") + key + "\" is not a string");
  }
  const size_t close = line.find('"', pos + 1);
  if (close == std::string::npos) {
    return LineError(line_no, std::string("unterminated string for \"") + key +
                                  "\"");
  }
  *out = line.substr(pos + 1, close - pos - 1);
  return Status::OK();
}

uint64_t GetLeU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double GetLeDouble(const unsigned char* p) {
  const uint64_t bits = GetLeU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Result<std::vector<TraceEvent>> ReadJsonlTrace(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      return LineError(line_no, "blank line (truncated or damaged trace)");
    }
    TraceEvent event;
    double t = 0.0, seq = 0.0, aux = 0.0, movie = 0.0, id = 0.0, value = 0.0;
    std::string cat, sub;
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "t", &t));
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "seq", &seq));
    VOD_RETURN_IF_ERROR(ParseJsonString(line, line_no, "cat", &cat));
    VOD_RETURN_IF_ERROR(ParseJsonString(line, line_no, "sub", &sub));
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "aux", &aux));
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "movie", &movie));
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "id", &id));
    VOD_RETURN_IF_ERROR(ParseJsonNumber(line, line_no, "value", &value));
    const auto parsed = ParseEventCategory(cat);
    if (!parsed.ok()) return LineError(line_no, parsed.status().message());
    event.category = parsed.value();
    event.time = t;
    event.seq = static_cast<uint64_t>(seq);
    event.aux = static_cast<uint8_t>(aux);
    event.movie = static_cast<int32_t>(movie);
    event.id = static_cast<int64_t>(id);
    event.value = value;
    // Recover the subtype id from its name so binary/JSONL round-trips agree.
    event.subtype = 0;
    if (sub != "-") {
      for (uint8_t s = 0; s < 255; ++s) {
        const char* name = EventSubtypeName(event.category, s);
        if (std::strcmp(name, "-") == 0) break;
        if (sub == name) {
          event.subtype = s;
          break;
        }
      }
    }
    events.push_back(event);
  }
  return events;
}

Result<std::vector<TraceEvent>> ReadBinaryTrace(std::istream& in) {
  std::array<char, sizeof(BinarySink::kMagic)> magic{};
  in.read(magic.data(), magic.size());
  if (in.gcount() != static_cast<std::streamsize>(magic.size()) ||
      std::memcmp(magic.data(), BinarySink::kMagic, magic.size()) != 0) {
    return Status::InvalidArgument("not a binary trace (bad magic)");
  }
  std::vector<TraceEvent> events;
  std::array<unsigned char, sizeof(TraceEvent)> record{};
  size_t index = 0;
  while (true) {
    in.read(reinterpret_cast<char*>(record.data()), record.size());
    const auto got = in.gcount();
    if (got == 0) break;
    if (got != static_cast<std::streamsize>(record.size())) {
      return Status::InvalidArgument(
          "binary trace truncated mid-record at record " +
          std::to_string(index));
    }
    TraceEvent event;
    event.time = GetLeDouble(record.data());
    event.seq = GetLeU64(record.data() + 8);
    event.id = static_cast<int64_t>(GetLeU64(record.data() + 16));
    event.value = GetLeDouble(record.data() + 24);
    uint32_t movie = 0;
    for (int i = 3; i >= 0; --i) movie = (movie << 8) | record[32 + i];
    event.movie = static_cast<int32_t>(movie);
    const uint8_t category = record[36];
    if (category >= kNumEventCategories) {
      return Status::InvalidArgument("binary trace record " +
                                     std::to_string(index) +
                                     " has unknown category " +
                                     std::to_string(category));
    }
    event.category = static_cast<EventCategory>(category);
    event.subtype = record[37];
    event.aux = record[38];
    event.pad = record[39];
    events.push_back(event);
    ++index;
  }
  return events;
}

Result<std::vector<TraceEvent>> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  std::array<char, sizeof(BinarySink::kMagic)> head{};
  in.read(head.data(), head.size());
  const bool binary =
      in.gcount() == static_cast<std::streamsize>(head.size()) &&
      std::memcmp(head.data(), BinarySink::kMagic, head.size()) == 0;
  in.clear();
  in.seekg(0);
  return binary ? ReadBinaryTrace(in) : ReadJsonlTrace(in);
}

std::vector<CategorySummary> SummarizeTrace(
    const std::vector<TraceEvent>& events) {
  std::array<CategorySummary, kNumEventCategories> acc{};
  std::array<bool, kNumEventCategories> seen{};
  for (const TraceEvent& event : events) {
    const auto i = static_cast<size_t>(event.category);
    if (i >= kNumEventCategories) continue;
    CategorySummary& s = acc[i];
    if (!seen[i]) {
      seen[i] = true;
      s.category = event.category;
      s.first_t = event.time;
      s.last_t = event.time;
      s.value_min = event.value;
      s.value_max = event.value;
    }
    ++s.count;
    s.first_t = std::min(s.first_t, event.time);
    s.last_t = std::max(s.last_t, event.time);
    s.value_sum += event.value;
    s.value_min = std::min(s.value_min, event.value);
    s.value_max = std::max(s.value_max, event.value);
  }
  std::vector<CategorySummary> out;
  for (size_t i = 0; i < acc.size(); ++i) {
    if (seen[i]) out.push_back(acc[i]);
  }
  return out;
}

std::vector<DegradationInterval> DegradationTimeline(
    const std::vector<TraceEvent>& events) {
  std::vector<DegradationInterval> out;
  double last_t = 0.0;
  for (const TraceEvent& event : events) {
    last_t = std::max(last_t, event.time);
    if (event.category != EventCategory::kBarrier &&
        event.category != EventCategory::kDegradation) {
      continue;
    }
    // A sharded run announces its rung twice per transition — a
    // kDegradation event and the same-window kBarrier — and once per calm
    // window. Any announcement of the rung the open interval is already at
    // merely extends its dwell; only a different rung opens a new interval.
    if (!out.empty() && out.back().level == event.subtype) {
      out.back().end = event.time;
      continue;
    }
    if (event.category == EventCategory::kBarrier &&
        event.subtype == event.aux && out.empty()) {
      continue;  // calm barrier before any transition: still at the base rung
    }
    if (!out.empty()) out.back().end = event.time;
    DegradationInterval interval;
    interval.start = event.time;
    interval.end = event.time;
    interval.level = event.subtype;
    interval.from_level = event.aux;
    interval.capacity = static_cast<int64_t>(event.value);
    out.push_back(interval);
  }
  if (!out.empty()) out.back().end = last_t;
  return out;
}

std::vector<ControllerDecision> ControllerTimeline(
    const std::vector<TraceEvent>& events) {
  std::vector<ControllerDecision> out;
  // Folds a high-frequency event (step/shed/class) into the current decision
  // row, synthesizing a leading row if none exists yet.
  const auto current_row = [&out](const TraceEvent& event) {
    if (out.empty()) {
      ControllerDecision lead;
      lead.time = event.time;
      lead.subtype = static_cast<int>(ControllerEvent::kReplan);
      out.push_back(lead);
    }
    return &out.back();
  };
  for (const TraceEvent& event : events) {
    if (event.category != EventCategory::kController) continue;
    switch (static_cast<ControllerEvent>(event.subtype)) {
      case ControllerEvent::kReclaim:
        ++current_row(event)->reclaims;
        break;
      case ControllerEvent::kGrant:
        ++current_row(event)->grants;
        break;
      case ControllerEvent::kShed:
        ++current_row(event)->sheds;
        break;
      case ControllerEvent::kClass:
        ++current_row(event)->class_changes;
        break;
      case ControllerEvent::kAlarm:
      case ControllerEvent::kReplan:
      case ControllerEvent::kCommit:
      case ControllerEvent::kRollback:
      case ControllerEvent::kBlocked: {
        ControllerDecision row;
        row.time = event.time;
        row.subtype = event.subtype;
        row.movie = event.movie;
        row.epoch = event.id;
        row.value = event.value;
        out.push_back(row);
        break;
      }
    }
  }
  return out;
}

std::vector<ShardWindowSummary> ShardImbalanceTimeline(
    const std::vector<TraceEvent>& events) {
  std::vector<ShardWindowSummary> out;
  // Rows are keyed by barrier time: every shard's window_close and the
  // coordinator's pressure reports for one window carry the same t_end, and
  // windows arrive in time order in a merged trace.
  const auto row_for = [&out](double t) -> ShardWindowSummary& {
    if (out.empty() || out.back().t_end != t) {
      ShardWindowSummary row;
      row.t_end = t;
      out.push_back(row);
    }
    return out.back();
  };
  for (const TraceEvent& event : events) {
    if (event.category != EventCategory::kShard) continue;
    switch (static_cast<ShardEvent>(event.subtype)) {
      case ShardEvent::kWindowClose: {
        ShardWindowSummary& row = row_for(event.time);
        const auto delta = static_cast<int64_t>(event.value);
        const int shard = static_cast<int>(event.id);
        if (row.shards == 0 || delta > row.max_events) {
          row.max_events = delta;
          row.critical_shard = shard;
        }
        if (row.shards == 0 || delta < row.min_events) {
          row.min_events = delta;
        }
        row.total_events += delta;
        ++row.shards;
        break;
      }
      case ShardEvent::kPressure:
        row_for(event.time).messages += static_cast<int64_t>(event.value);
        break;
      case ShardEvent::kWindowOpen:
      case ShardEvent::kQuotaApply:
        break;
    }
  }
  return out;
}

}  // namespace vod
