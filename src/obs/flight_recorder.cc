#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/trace_reader.h"

namespace vod {

namespace {

constexpr const char* kBundleMagic = "vod-flight-recorder-v1";

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    // The bundle is line-oriented; a newline inside `reason` would split the
    // header, so flatten it.
    out->push_back(c == '\n' ? ' ' : c);
  }
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

// Finds `"key":` in a single-line JSON object and returns the character
// position just past the colon, or npos (same convention as trace_reader).
size_t FindField(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

Status LineError(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("postmortem line " + std::to_string(line_no) +
                                 ": " + why);
}

Status ParseNumber(const std::string& line, size_t line_no, const char* key,
                   double* out) {
  const size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return LineError(line_no, std::string("missing field \"") + key + "\"");
  }
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) {
    return LineError(line_no,
                     std::string("field \"") + key + "\" is not a number");
  }
  *out = v;
  return Status::OK();
}

// Digests are full 64-bit FNV values; going through double would round
// everything past 2^53, so they get a dedicated integer parse.
Status ParseU64(const std::string& line, size_t line_no, const char* key,
                uint64_t* out) {
  const size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return LineError(line_no, std::string("missing field \"") + key + "\"");
  }
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const uint64_t v = std::strtoull(begin, &end, 10);
  if (end == begin) {
    return LineError(line_no,
                     std::string("field \"") + key + "\" is not an integer");
  }
  *out = v;
  return Status::OK();
}

Status ParseString(const std::string& line, size_t line_no, const char* key,
                   std::string* out) {
  size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return LineError(line_no, std::string("missing field \"") + key + "\"");
  }
  if (pos >= line.size() || line[pos] != '"') {
    return LineError(line_no,
                     std::string("field \"") + key + "\" is not a string");
  }
  std::string value;
  bool closed = false;
  for (size_t i = pos + 1; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
      continue;
    }
    if (line[i] == '"') {
      closed = true;
      break;
    }
    value.push_back(line[i]);
  }
  if (!closed) {
    return LineError(line_no,
                     std::string("unterminated string for \"") + key + "\"");
  }
  *out = value;
  return Status::OK();
}

}  // namespace

FlightRecorder::FlightRecorder(int shards, size_t window_capacity,
                               size_t events_per_shard)
    : window_capacity_(window_capacity == 0 ? 1 : window_capacity) {
  rings_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) rings_.emplace_back(events_per_shard);
}

void FlightRecorder::RecordWindow(FlightWindowRecord record) {
  windows_.push_back(std::move(record));
  while (windows_.size() > window_capacity_) windows_.pop_front();
}

Status FlightRecorder::Dump(const std::string& path,
                            const std::string& reason) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open postmortem file '" + path +
                                   "'");
  }
  std::string header = "{\"postmortem\":\"";
  header += kBundleMagic;
  header += "\",\"reason\":\"";
  AppendJsonEscaped(&header, reason);
  header += "\",\"shards\":" + std::to_string(rings_.size()) + "}";
  out << header << '\n';
  for (const FlightWindowRecord& rec : windows_) {
    std::string line = "{\"window\":" + std::to_string(rec.window);
    line += ",\"t_end\":";
    AppendJsonDouble(&line, rec.t_end);
    line += ",\"capacity\":" + std::to_string(rec.capacity);
    line += ",\"rung\":" + std::to_string(rec.rung);
    line += ",\"digest\":" + std::to_string(rec.digest);
    line += ",\"sum_held\":" + std::to_string(rec.sum_held);
    line += ",\"sum_credit\":" + std::to_string(rec.sum_credit);
    line += ",\"sum_debt\":" + std::to_string(rec.sum_debt);
    line += ",\"sum_queued\":" + std::to_string(rec.sum_queued);
    line += ",\"quota_issued\":" + std::to_string(rec.quota_issued);
    line += ",\"messages_posted\":" + std::to_string(rec.messages_posted);
    line += ",\"messages_drained\":" + std::to_string(rec.messages_drained);
    line += ",\"shard_events\":[";
    for (size_t i = 0; i < rec.shard_events.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(rec.shard_events[i]);
    }
    line += "]}";
    out << line << '\n';
  }
  for (size_t s = 0; s < rings_.size(); ++s) {
    for (const TraceEvent& event : rings_[s].Snapshot()) {
      out << "{\"shard\":" << s << ",\"event\":" << TraceEventToJson(event)
          << "}" << '\n';
    }
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("postmortem write failed for '" + path + "'");
  }
  return Status::OK();
}

Result<PostmortemBundle> ReadPostmortem(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open postmortem file '" + path + "'");
  }
  PostmortemBundle bundle;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_no == 1) {
      std::string magic;
      VOD_RETURN_IF_ERROR(ParseString(line, line_no, "postmortem", &magic));
      if (magic != kBundleMagic) {
        return LineError(line_no, "unknown bundle format '" + magic + "'");
      }
      VOD_RETURN_IF_ERROR(ParseString(line, line_no, "reason",
                                      &bundle.reason));
      double shards = 0.0;
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "shards", &shards));
      bundle.shards = static_cast<int>(shards);
      continue;
    }
    if (FindField(line, "window") != std::string::npos) {
      FlightWindowRecord rec;
      double v = 0.0;
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "window", &v));
      rec.window = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "t_end", &rec.t_end));
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "capacity", &v));
      rec.capacity = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "rung", &v));
      rec.rung = static_cast<int>(v);
      VOD_RETURN_IF_ERROR(ParseU64(line, line_no, "digest", &rec.digest));
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "sum_held", &v));
      rec.sum_held = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "sum_credit", &v));
      rec.sum_credit = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "sum_debt", &v));
      rec.sum_debt = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "sum_queued", &v));
      rec.sum_queued = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "quota_issued", &v));
      rec.quota_issued = static_cast<int64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "messages_posted", &v));
      rec.messages_posted = static_cast<uint64_t>(v);
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "messages_drained", &v));
      rec.messages_drained = static_cast<uint64_t>(v);
      const size_t arr = FindField(line, "shard_events");
      if (arr == std::string::npos || arr >= line.size() ||
          line[arr] != '[') {
        return LineError(line_no, "missing field \"shard_events\"");
      }
      size_t pos = arr + 1;
      while (pos < line.size() && line[pos] != ']') {
        char* end = nullptr;
        const double d = std::strtod(line.c_str() + pos, &end);
        if (end == line.c_str() + pos) {
          return LineError(line_no, "malformed shard_events array");
        }
        rec.shard_events.push_back(static_cast<int64_t>(d));
        pos = static_cast<size_t>(end - line.c_str());
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      bundle.windows.push_back(std::move(rec));
      continue;
    }
    if (FindField(line, "shard") != std::string::npos) {
      double shard = 0.0;
      VOD_RETURN_IF_ERROR(ParseNumber(line, line_no, "shard", &shard));
      const size_t obj = FindField(line, "event");
      const size_t close = line.rfind('}');
      if (obj == std::string::npos || close == std::string::npos ||
          close <= obj) {
        return LineError(line_no, "malformed event record");
      }
      // The embedded object is exactly one JSONL trace line; lean on the
      // trace reader so binary/JSONL subtype recovery stays in one place.
      std::istringstream event_line(line.substr(obj, close - obj));
      auto parsed = ReadJsonlTrace(event_line);
      if (!parsed.ok()) {
        return LineError(line_no, parsed.status().message());
      }
      if (parsed->size() != 1) {
        return LineError(line_no, "expected exactly one embedded event");
      }
      PostmortemEvent pe;
      pe.shard = static_cast<int>(shard);
      pe.event = parsed->front();
      bundle.events.push_back(pe);
      continue;
    }
    return LineError(line_no, "unrecognized record");
  }
  if (line_no == 0) {
    return Status::InvalidArgument("postmortem file '" + path + "' is empty");
  }
  return bundle;
}

}  // namespace vod
