#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace vod {

int PhaseProfiler::TidForCurrentThreadLocked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const int tid = static_cast<int>(thread_ids_.size());
  thread_ids_.emplace(id, tid);
  return tid;
}

void PhaseProfiler::RecordSpan(const std::string& name, double start_us,
                               double end_us) {
  Span span;
  span.name = name;
  span.start_us = start_us;
  span.dur_us = end_us >= start_us ? end_us - start_us : 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  span.tid = TidForCurrentThreadLocked();
  spans_.push_back(std::move(span));
}

size_t PhaseProfiler::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<PhaseProfiler::Aggregate> PhaseProfiler::Aggregates() const {
  // std::map keeps ties in name order, so the table is deterministic.
  std::map<std::string, Aggregate> by_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& span : spans_) {
      Aggregate& agg = by_name[span.name];
      if (agg.count == 0) agg.name = span.name;
      ++agg.count;
      agg.total_us += span.dur_us;
      agg.max_us = std::max(agg.max_us, span.dur_us);
    }
  }
  std::vector<Aggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::stable_sort(out.begin(), out.end(),
                   [](const Aggregate& a, const Aggregate& b) {
                     return a.total_us > b.total_us;
                   });
  return out;
}

std::string PhaseProfiler::SummaryTable() const {
  const auto aggregates = Aggregates();
  size_t name_width = 5;  // "phase"
  for (const auto& agg : aggregates) {
    name_width = std::max(name_width, agg.name.size());
  }
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-*s %10s %12s %12s %12s\n",
                static_cast<int>(name_width), "phase", "count", "total_ms",
                "mean_ms", "max_ms");
  os << buf;
  for (const auto& agg : aggregates) {
    const double total_ms = agg.total_us / 1000.0;
    const double mean_ms =
        agg.count > 0 ? total_ms / static_cast<double>(agg.count) : 0.0;
    std::snprintf(buf, sizeof(buf), "%-*s %10lld %12.3f %12.3f %12.3f\n",
                  static_cast<int>(name_width), agg.name.c_str(),
                  static_cast<long long>(agg.count), total_ms, mean_ms,
                  agg.max_us / 1000.0);
    os << buf;
  }
  return os.str();
}

void PhaseProfiler::WriteChromeTrace(std::ostream& os) const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  os << "[";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"";
    // Span names are library-generated (phase/cell labels); escape the two
    // JSON-breaking characters defensively anyway.
    for (char c : span.name) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.tid;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}",
                  span.start_us, span.dur_us);
    os << buf;
  }
  os << "\n]\n";
}

}  // namespace vod
