#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace vod {

int PhaseProfiler::TidForCurrentThreadLocked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const int tid = next_tid_++;
  thread_ids_.emplace(id, tid);
  return tid;
}

int PhaseProfiler::RegisterLane(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const int lane = next_tid_++;
  lane_names_.emplace_back(lane, name);
  return lane;
}

void PhaseProfiler::RecordSpanOnLane(int lane, const std::string& name,
                                     double start_us, double end_us) {
  Span span;
  span.name = name;
  span.start_us = start_us;
  span.dur_us = end_us >= start_us ? end_us - start_us : 0.0;
  span.tid = lane;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void PhaseProfiler::RecordSpan(const std::string& name, double start_us,
                               double end_us) {
  Span span;
  span.name = name;
  span.start_us = start_us;
  span.dur_us = end_us >= start_us ? end_us - start_us : 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  span.tid = TidForCurrentThreadLocked();
  spans_.push_back(std::move(span));
}

size_t PhaseProfiler::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<PhaseProfiler::Aggregate> PhaseProfiler::Aggregates() const {
  // std::map keeps ties in name order, so the table is deterministic.
  std::map<std::string, Aggregate> by_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& span : spans_) {
      Aggregate& agg = by_name[span.name];
      if (agg.count == 0) agg.name = span.name;
      ++agg.count;
      agg.total_us += span.dur_us;
      agg.max_us = std::max(agg.max_us, span.dur_us);
    }
  }
  std::vector<Aggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::stable_sort(out.begin(), out.end(),
                   [](const Aggregate& a, const Aggregate& b) {
                     return a.total_us > b.total_us;
                   });
  return out;
}

std::string PhaseProfiler::SummaryTable() const {
  const auto aggregates = Aggregates();
  size_t name_width = 5;  // "phase"
  for (const auto& agg : aggregates) {
    name_width = std::max(name_width, agg.name.size());
  }
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-*s %10s %12s %12s %12s\n",
                static_cast<int>(name_width), "phase", "count", "total_ms",
                "mean_ms", "max_ms");
  os << buf;
  for (const auto& agg : aggregates) {
    const double total_ms = agg.total_us / 1000.0;
    const double mean_ms =
        agg.count > 0 ? total_ms / static_cast<double>(agg.count) : 0.0;
    std::snprintf(buf, sizeof(buf), "%-*s %10lld %12.3f %12.3f %12.3f\n",
                  static_cast<int>(name_width), agg.name.c_str(),
                  static_cast<long long>(agg.count), total_ms, mean_ms,
                  agg.max_us / 1000.0);
    os << buf;
  }
  return os.str();
}

namespace {

void WriteJsonEscaped(std::ostream& os, const std::string& s) {
  // Names are library-generated (phase/cell/lane labels); escape the two
  // JSON-breaking characters defensively anyway.
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void PhaseProfiler::WriteChromeTrace(std::ostream& os) const {
  std::vector<Span> spans;
  std::vector<std::pair<int, std::string>> lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    lanes = lane_names_;
  }
  os << "[";
  char buf[64];
  bool first = true;
  // thread_name metadata first, so viewers label the lanes ("shard 3",
  // "coordinator") before any span referencing them streams in.
  for (const auto& [lane, name] : lanes) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << lane
       << ",\"args\":{\"name\":\"";
    WriteJsonEscaped(os, name);
    os << "\"}}";
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    WriteJsonEscaped(os, span.name);
    os << "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.tid;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}",
                  span.start_us, span.dur_us);
    os << buf;
  }
  os << "\n]\n";
}

}  // namespace vod
