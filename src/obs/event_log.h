// Structured event bus for simulation observability.
//
// The simulators' end-of-run aggregates say *how often* things happened;
// they cannot say *when*. The event log fills that gap: hot paths emit
// fixed-size POD records (time, category, subtype, movie/entity ids, one
// payload value) onto a bus that fans out to pluggable sinks — a bounded
// in-memory ring (crash diagnostics, auditor trace tail), a streaming JSONL
// file (tooling, schema-validated in CI), or a compact binary spill file
// (long soaks). Emission is gated twice:
//
//   * compile time — defining VOD_OBS_DISABLED turns ShouldEmit() into a
//     constant false so every emission site dead-codes away;
//   * run time — a per-category bitmask plus the "any sinks attached?"
//     check. With no sinks the cost of a site is one pointer test and one
//     branch, which is what keeps BM_SimulationRun within the 2% overhead
//     budget (DESIGN.md §9).
//
// Determinism: the bus is telemetry-only. It never touches the seeded RNG
// streams and nothing in a report path reads it back, so byte-identical
// reports at any --threads are unaffected by tracing (covered by
// determinism_threads_test).

#ifndef VOD_OBS_EVENT_LOG_H_
#define VOD_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace vod {

/// Event taxonomy. Stable names (EventCategoryName) appear in JSONL output
/// and the checked-in trace schema; append new categories at the end.
enum class EventCategory : uint8_t {
  kAdmission = 0,    ///< viewer admitted (sub: 0 = type-1 batch, 1 = type-2)
  kRestart = 1,      ///< a batch restart started a new partition stream
  kVcrBegin = 2,     ///< VCR phase entered (sub = op id, value = duration)
  kResume = 3,       ///< VCR phase ended (sub = resume outcome, aux = op id)
  kStall = 4,        ///< missed resume stalled until a window swept by
  kQueue = 5,        ///< degraded-mode queue (sub: enqueue/grant/refuse)
  kShed = 6,         ///< VCR request shed (no stream, no queue)
  kReclaim = 7,      ///< dedicated stream forcibly reclaimed
  kFault = 8,        ///< disk fault (sub: 0 = down, 1 = up; value = capacity)
  kDegradation = 9,  ///< ladder transition (sub = to, aux = from)
  kSession = 10,     ///< viewer session ended (sub: 0 = complete, 1 = abandon)
  kCell = 11,        ///< experiment-grid cell finished (id = cell index)
  kTick = 12,        ///< executed event-loop step (auditor trace tail)
  kController = 13,  ///< control-plane action (sub: ControllerEvent)
  kBarrier = 14,     ///< sharded window barrier (sub = rung decided for the
                     ///< next window, aux = rung during the window just
                     ///< ended, id = window index, value = reserve capacity)
  kShard = 15,       ///< per-shard lane record (sub: ShardEvent). Payloads
                     ///< are deterministic by contract — executed-event
                     ///< deltas, quotas, message counts, never wall clock —
                     ///< so the merged trace is byte-stable for a fixed
                     ///< shard count (DESIGN.md §14).
};

inline constexpr int kNumEventCategories = 16;

/// Subtype ids for EventCategory::kController records (ctrl/ emits these).
enum class ControllerEvent : uint8_t {
  kAlarm = 0,     ///< drift alarm latched (movie, value = rate estimate)
  kReplan = 1,    ///< plan solved (id = epoch, value = objective)
  kReclaim = 2,   ///< migration reclaim step applied (value = streams freed)
  kGrant = 3,     ///< migration grant step applied (value = streams granted)
  kCommit = 4,    ///< migration completed, plan committed (id = epoch)
  kRollback = 5,  ///< migration rolled back (id = epoch)
  kBlocked = 6,   ///< step blocked, backing off (value = retry count)
  kShed = 7,      ///< arrival shed by the admission gate (aux = class)
  kClass = 8,     ///< movie priority class assigned (value = class)
};

/// Subtype ids for EventCategory::kShard records (the sharded engine's
/// telemetry lanes, sim/shard.cc and sim/sharded_server.cc emit these).
enum class ShardEvent : uint8_t {
  kWindowOpen = 0,   ///< shard opened a window (id = shard, value = movies)
  kWindowClose = 1,  ///< shard closed a window (id = shard, value =
                     ///< executed-event delta for the window)
  kPressure = 2,     ///< coordinator drained a shard's barrier mailbox
                     ///< (id = shard, value = messages this window)
  kQuotaApply = 3,   ///< window-open reclaim quota applied (movie, id =
                     ///< quota, value = streams actually reclaimed)
};

/// Stable lower-case name ("admission", "resume", ...).
const char* EventCategoryName(EventCategory category);

/// Stable subtype name within a category ("type2", "miss", "down", ...);
/// "-" when the category has no named subtypes or `subtype` is out of range.
const char* EventSubtypeName(EventCategory category, uint8_t subtype);

/// Inverse of EventCategoryName; InvalidArgument on unknown names.
Result<EventCategory> ParseEventCategory(const std::string& name);

/// Category -> bitmask position.
constexpr uint32_t CategoryBit(EventCategory category) {
  return 1u << static_cast<uint32_t>(category);
}

inline constexpr uint32_t kAllEventCategories =
    (1u << kNumEventCategories) - 1u;

/// Builds a mask from a comma-separated list of category names; "all" (or
/// an empty string) selects every category.
Result<uint32_t> ParseCategoryMask(const std::string& spec);

/// \brief One structured trace record. POD: fixed 40-byte layout, memcpy-safe,
/// identical in the ring, the binary spill file, and (field-for-field) JSONL.
struct TraceEvent {
  double time = 0.0;   ///< simulated minutes
  uint64_t seq = 0;    ///< emission order, assigned by the bus
  int64_t id = -1;     ///< viewer/stream/cell id; -1 = not applicable
  double value = 0.0;  ///< payload (wait, duration, capacity, ...)
  int32_t movie = -1;  ///< movie index; -1 = server-wide
  EventCategory category = EventCategory::kTick;
  uint8_t subtype = 0;
  uint8_t aux = 0;  ///< second discriminant (op id, from-level, ...)
  uint8_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD (ring/binary sinks memcpy it)");
static_assert(sizeof(TraceEvent) == 40, "trace record layout is part of the "
                                        "binary sink format");

/// Formats one event as a single JSONL object (no trailing newline).
std::string TraceEventToJson(const TraceEvent& event);

/// \brief Sink interface. Append must tolerate being called from the bus at
/// event-loop rate; thread safety is per-implementation (documented below).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Append(const TraceEvent& event) = 0;
  /// Flushes buffered records to durable storage where that applies.
  virtual Status Flush() { return Status::OK(); }
};

/// \brief Bounded in-memory ring keeping the most recent `capacity` events.
///
/// Not thread-safe: owned by a single run's event loop (auditor tail) or
/// read after the run completes. Snapshot() returns oldest-first.
class EventRing final : public EventSink {
 public:
  explicit EventRing(size_t capacity);

  void Append(const TraceEvent& event) override;

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Total appended over the ring's lifetime (>= size once wrapped).
  uint64_t total_appended() const { return total_appended_; }

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;  ///< overwrite position once full
  uint64_t total_appended_ = 0;
};

/// \brief Unbounded buffer sink backing a per-shard telemetry lane: the
/// shard's events accumulate here during a window and the coordinator
/// Take()s them at the barrier for the deterministic cross-shard merge.
///
/// Not thread-safe by itself; the lane protocol guarantees single-owner
/// access (the shard's worker thread during the window, the coordinator
/// between windows, with the barrier join ordering the hand-off).
class VectorSink final : public EventSink {
 public:
  void Append(const TraceEvent& event) override { events_.push_back(event); }

  size_t size() const { return events_.size(); }

  /// Drains the buffer, returning the events in emission order.
  std::vector<TraceEvent> Take() {
    std::vector<TraceEvent> out;
    out.swap(events_);
    return out;
  }

 private:
  std::vector<TraceEvent> events_;
};

/// \brief Streaming JSONL sink (one object per line).
///
/// Thread-safe: Append serializes under an internal mutex so one sink can be
/// shared by every cell of a threaded sweep. Line order across threads is
/// then nondeterministic; per-record `seq` preserves global emission order.
class JsonlSink final : public EventSink {
 public:
  /// Borrows `out` (caller keeps it alive and owns flushing on destruction).
  explicit JsonlSink(std::ostream* out) : out_(out) {}

  /// Opens `path` for writing (truncates).
  static Result<std::unique_ptr<JsonlSink>> Open(const std::string& path);

  void Append(const TraceEvent& event) override;
  Status Flush() override;

  uint64_t lines_written() const { return lines_written_; }

 private:
  JsonlSink(std::unique_ptr<std::ofstream> owned, std::string path);

  std::mutex mu_;
  std::unique_ptr<std::ofstream> owned_;  ///< null when borrowing
  std::ostream* out_;
  std::string path_;
  uint64_t lines_written_ = 0;
};

/// \brief Compact binary spill file: 8-byte magic then 40-byte little-endian
/// records. Thread-safe like JsonlSink. Read back with ReadBinaryTrace().
class BinarySink final : public EventSink {
 public:
  /// File magic, also used by the reader to sniff the format.
  static constexpr char kMagic[8] = {'V', 'O', 'D', 'T',
                                     'R', 'C', '0', '1'};

  /// Opens `path` and writes the magic header (truncates).
  static Result<std::unique_ptr<BinarySink>> Open(const std::string& path);

  void Append(const TraceEvent& event) override;
  Status Flush() override;

  uint64_t records_written() const { return records_written_; }

 private:
  BinarySink(std::unique_ptr<std::ofstream> owned, std::string path);

  std::mutex mu_;
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::string path_;
  uint64_t records_written_ = 0;
};

/// \brief The event bus: category filter + sequence numbering + sink fan-out.
///
/// Emit() is safe to call from multiple threads when every attached sink is
/// (EventRing is not; JsonlSink/BinarySink are). Sinks are borrowed.
class EventLog {
 public:
  void AddSink(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  /// Detaches a sink added with AddSink (no-op when absent). Used by runs
  /// that lend the bus a sink that dies with the run (the auditor's ring).
  void RemoveSink(EventSink* sink) {
    for (size_t i = 0; i < sinks_.size(); ++i) {
      if (sinks_[i] == sink) {
        sinks_.erase(sinks_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Runtime category filter; defaults to everything.
  void set_mask(uint32_t mask) { mask_ = mask; }
  uint32_t mask() const { return mask_; }

  bool has_sinks() const { return !sinks_.empty(); }

  /// True when an event of `category` would reach at least one sink. Call
  /// before building a TraceEvent so disabled sites cost one branch.
  bool ShouldEmit(EventCategory category) const {
#ifdef VOD_OBS_DISABLED
    (void)category;
    return false;
#else
    return !sinks_.empty() && (mask_ & CategoryBit(category)) != 0;
#endif
  }

  /// Stamps `event.seq` and fans out to every sink. No-op when filtered.
  void Emit(TraceEvent event) {
#ifdef VOD_OBS_DISABLED
    (void)event;
#else
    if (!ShouldEmit(event.category)) return;
    event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    for (EventSink* sink : sinks_) sink->Append(event);
#endif
  }

  /// Convenience emission used by the simulator call sites.
  void Emit(double time, EventCategory category, uint8_t subtype,
            int32_t movie, int64_t id, double value, uint8_t aux = 0) {
    TraceEvent event;
    event.time = time;
    event.category = category;
    event.subtype = subtype;
    event.aux = aux;
    event.movie = movie;
    event.id = id;
    event.value = value;
    Emit(event);
  }

  /// Events emitted (past the filter) over the bus's lifetime.
  uint64_t emitted() const { return seq_.load(std::memory_order_relaxed); }

  Status FlushSinks() {
    for (EventSink* sink : sinks_) {
      VOD_RETURN_IF_ERROR(sink->Flush());
    }
    return Status::OK();
  }

 private:
  std::vector<EventSink*> sinks_;
  uint32_t mask_ = kAllEventCategories;
  std::atomic<uint64_t> seq_{0};
};

/// Null-safe helper: true when `log` exists and would emit `category`.
inline bool ObsEnabled(const EventLog* log, EventCategory category) {
  return log != nullptr && log->ShouldEmit(category);
}

/// \brief Lends `sink` to `log` for the current scope; detaches on
/// destruction. Either pointer may be null (the guard is then free).
class ScopedEventSink {
 public:
  ScopedEventSink(EventLog* log, EventSink* sink)
      : log_(sink != nullptr ? log : nullptr), sink_(sink) {
    if (log_ != nullptr) log_->AddSink(sink_);
  }
  ScopedEventSink(const ScopedEventSink&) = delete;
  ScopedEventSink& operator=(const ScopedEventSink&) = delete;
  ~ScopedEventSink() {
    if (log_ != nullptr) log_->RemoveSink(sink_);
  }

 private:
  EventLog* log_;
  EventSink* sink_;
};

}  // namespace vod

#endif  // VOD_OBS_EVENT_LOG_H_
