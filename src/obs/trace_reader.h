// Readers and summarizers for event-log files (vodctl inspect).
//
// Parses both sink formats back into TraceEvent records — the JSONL stream
// (strict about the fields the checked-in schema requires) and the binary
// spill file (sniffed by its magic) — and derives the two views inspect
// renders: per-category summaries and the degradation-level timeline.

#ifndef VOD_OBS_TRACE_READER_H_
#define VOD_OBS_TRACE_READER_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"

namespace vod {

/// Reads a trace file, sniffing the format: BinarySink magic -> binary,
/// otherwise JSONL. InvalidArgument with a line/record diagnostic on any
/// malformed content.
Result<std::vector<TraceEvent>> ReadTraceFile(const std::string& path);

/// One JSONL object per line; blank lines are rejected (the sinks never
/// write them, so one signals truncation or concatenation damage).
Result<std::vector<TraceEvent>> ReadJsonlTrace(std::istream& in);

/// Binary stream positioned at the magic header.
Result<std::vector<TraceEvent>> ReadBinaryTrace(std::istream& in);

/// Per-category aggregate over a trace.
struct CategorySummary {
  EventCategory category = EventCategory::kTick;
  int64_t count = 0;
  double first_t = 0.0;
  double last_t = 0.0;
  double value_sum = 0.0;
  double value_min = 0.0;
  double value_max = 0.0;
};

/// Summaries of the categories present, in category order.
std::vector<CategorySummary> SummarizeTrace(
    const std::vector<TraceEvent>& events);

/// One dwell interval at a degradation rung, reconstructed from the
/// kDegradation events (single-server ladder) and/or the kBarrier events a
/// sharded run emits (the windowed ladder announces its rung once per
/// barrier; a barrier whose decided rung differs from the rung of the
/// window just ended is a transition). `end` of the last interval is the
/// trace's final event time (the level was still live).
struct DegradationInterval {
  double start = 0.0;
  double end = 0.0;
  int level = 0;           ///< rung entered (DegradationLevel value)
  int from_level = 0;      ///< rung left
  int64_t capacity = 0;    ///< reserve capacity when the rung was entered
};

/// Degradation timeline. Empty when the trace has no kDegradation (or
/// rung-changing kBarrier) events.
std::vector<DegradationInterval> DegradationTimeline(
    const std::vector<TraceEvent>& events);

/// One control-plane decision, reconstructed from the kController events.
/// Fine-grained migration steps (reclaim/grant) and per-arrival sheds are
/// summarized into the counters of the preceding decision row rather than
/// rendered individually, so the timeline stays readable on long runs.
struct ControllerDecision {
  double time = 0.0;
  /// ControllerEvent subtype of the decision row: alarm, replan, commit,
  /// rollback, or blocked (migration-step and shed events fold into
  /// counters).
  int subtype = 0;
  int32_t movie = -1;       ///< movie for alarms, -1 for plan-wide rows
  int64_t epoch = -1;       ///< plan epoch (id field), -1 on alarms
  double value = 0.0;       ///< subtype payload (estimated rate, step count …)
  int64_t reclaims = 0;     ///< reclaim steps applied since the previous row
  int64_t grants = 0;       ///< grant steps applied since the previous row
  int64_t sheds = 0;        ///< arrivals shed since the previous row
  int64_t class_changes = 0;  ///< priority-class assignments since then
};

/// Controller decision timeline. Empty when the trace has no kController
/// events. Step/shed/class events that precede the first decision row are
/// attributed to a synthetic leading row stamped at the first such event.
std::vector<ControllerDecision> ControllerTimeline(
    const std::vector<TraceEvent>& events);

/// One barrier window's shard-imbalance view, reconstructed from the kShard
/// records of a sharded trace. Work is measured in executed events — the
/// deterministic shard-work measure the lanes carry; wall-clock work/wait
/// breakdowns live in the profiler export (--profile_out), not the trace.
struct ShardWindowSummary {
  double t_end = 0.0;        ///< barrier time (window_close stamp)
  int shards = 0;            ///< shards reporting in this window
  int64_t total_events = 0;  ///< Σ executed-event deltas
  int64_t max_events = 0;    ///< busiest shard's delta
  int64_t min_events = 0;    ///< laziest shard's delta
  int critical_shard = 0;    ///< argmax delta (lowest id on ties)
  int64_t messages = 0;      ///< coordinator-drained mailbox messages
};

/// Per-window imbalance timeline, in trace order. Empty when the trace has
/// no kShard events (non-sharded runs, or pre-lane traces).
std::vector<ShardWindowSummary> ShardImbalanceTimeline(
    const std::vector<TraceEvent>& events);

}  // namespace vod

#endif  // VOD_OBS_TRACE_READER_H_
