// RAII scoped-timer profiler with Chrome trace_event export.
//
// Answers "where does the wall clock go in a --threads=N sweep": each
// profiled region (a grid cell's simulate stage, a reduce pass, a file
// parse) opens a Scope; on close the span lands in a thread-safe table
// keyed by name and, with full spans retained, can be exported as Chrome
// trace_event JSON — open chrome://tracing or https://ui.perfetto.dev and
// load the file to see per-worker lanes, pool utilization, and stragglers.
//
// Wall-clock timing is inherently nondeterministic, so the profiler is kept
// strictly outside the seeded simulation: nothing it measures feeds back
// into any report path.

#ifndef VOD_OBS_PROFILER_H_
#define VOD_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace vod {

/// \brief Thread-safe span collector. Scopes may open/close concurrently on
/// any thread; aggregation and export run after the workload finishes.
class PhaseProfiler {
 public:
  PhaseProfiler() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since this profiler was constructed.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a completed span [start_us, end_us) on the calling thread's
  /// lane. Normally called by ~Scope.
  void RecordSpan(const std::string& name, double start_us, double end_us);

  /// Registers a named virtual lane ("shard 3", "coordinator") and returns
  /// its lane id for RecordSpanOnLane. Lanes share the dense id space with
  /// the anonymous per-thread lanes; WriteChromeTrace emits thread_name
  /// metadata for the named ones, so Perfetto shows the name instead of a
  /// bare tid.
  int RegisterLane(const std::string& name);

  /// Records a completed span on an explicit lane regardless of the calling
  /// thread. The sharded barrier uses this to attribute work to the shard
  /// that did it rather than to whichever pool worker happened to run it.
  void RecordSpanOnLane(int lane, const std::string& name, double start_us,
                        double end_us);

  /// \brief RAII timer. `profiler` may be null — the scope is then free.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, std::string name)
        : profiler_(profiler),
          name_(profiler != nullptr ? std::move(name) : std::string()),
          start_us_(profiler != nullptr ? profiler->NowMicros() : 0.0) {}

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->RecordSpan(name_, start_us_, profiler_->NowMicros());
      }
    }

   private:
    PhaseProfiler* profiler_;
    std::string name_;
    double start_us_;
  };

  /// Per-name aggregate over all recorded spans.
  struct Aggregate {
    std::string name;
    int64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };

  /// Aggregates sorted by descending total time.
  std::vector<Aggregate> Aggregates() const;

  /// Aligned text table of Aggregates() (count, total ms, mean ms, max ms).
  std::string SummaryTable() const;

  /// Chrome trace_event JSON (array-of-objects form, "ph":"X" complete
  /// events, ts/dur in microseconds). Loads in chrome://tracing / Perfetto.
  void WriteChromeTrace(std::ostream& os) const;

  size_t span_count() const;

 private:
  struct Span {
    std::string name;
    double start_us = 0.0;
    double dur_us = 0.0;
    int tid = 0;  ///< small dense id assigned per observed thread
  };

  int TidForCurrentThreadLocked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::unordered_map<std::thread::id, int> thread_ids_;
  int next_tid_ = 0;  ///< shared by anonymous threads and named lanes
  std::vector<std::pair<int, std::string>> lane_names_;
};

}  // namespace vod

#endif  // VOD_OBS_PROFILER_H_
