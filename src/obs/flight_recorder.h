// Crash flight recorder for the sharded server.
//
// The sharded engine's failure modes — an audit law firing, a
// replay-verify digest rejecting a resumed run — are detected at a window
// barrier, long after the interesting events scrolled past. The flight
// recorder keeps a bounded postmortem context always at hand: a ring of
// the last N barrier windows' ledger summaries (rung history, credit/debt
// totals, per-shard executed-event deltas, digest chain) plus one bounded
// EventRing per shard fed by that shard's telemetry lane. On failure the
// coordinator dumps the whole context as a line-JSON bundle that
// `vodctl inspect --postmortem` renders.
//
// Cost discipline: the window ring is a handful of PODs per barrier and is
// always on; the per-shard event rings only fill while the shard lanes are
// lit (tracing enabled or a postmortem path configured), so a dark run
// pays nothing per event. Like the rest of src/obs the recorder is
// telemetry-only — nothing in a report path reads it back.

#ifndef VOD_OBS_FLIGHT_RECORDER_H_
#define VOD_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"

namespace vod {

/// One barrier window's ledger summary as retained by the flight recorder.
/// Everything here is deterministic run state — no wall clock.
struct FlightWindowRecord {
  int64_t window = 0;      ///< barrier index (1-based)
  double t_end = 0.0;      ///< simulated minutes at the barrier
  int64_t capacity = 0;    ///< reserve capacity after fault replay
  int rung = 0;            ///< ladder rung decided at this barrier
  uint64_t digest = 0;     ///< ledger-digest chain value after this window
  int64_t sum_held = 0;    ///< Σ per-movie reserve streams held
  int64_t sum_credit = 0;  ///< Σ per-movie credits granted for next window
  int64_t sum_debt = 0;    ///< Σ per-movie debts carried
  int64_t sum_queued = 0;  ///< Σ queued VCR requests across movies
  int64_t quota_issued = 0;          ///< reclaim quota broadcast this barrier
  uint64_t messages_posted = 0;      ///< router lifetime totals at the barrier
  uint64_t messages_drained = 0;
  std::vector<int64_t> shard_events;  ///< executed-event delta per shard
};

/// \brief Bounded always-on recorder owned by the sharded coordinator.
///
/// Single-threaded by protocol: RecordWindow/Dump run on the coordinator
/// between windows; the per-shard rings are appended to only by their
/// shard's lane during the window (one writer each, and the barrier join
/// orders ring writes before any coordinator read).
class FlightRecorder {
 public:
  FlightRecorder(int shards, size_t window_capacity, size_t events_per_shard);

  /// Retains `record`, evicting the oldest window past capacity.
  void RecordWindow(FlightWindowRecord record);

  /// The bounded event ring shards attach to their telemetry lanes.
  EventRing* shard_ring(int shard) {
    return &rings_[static_cast<size_t>(shard)];
  }

  int shards() const { return static_cast<int>(rings_.size()); }
  size_t window_count() const { return windows_.size(); }
  const std::deque<FlightWindowRecord>& windows() const { return windows_; }

  /// Writes the postmortem bundle to `path` (truncates): a header line with
  /// `reason`, one line per retained window, then one line per retained
  /// event tagged with its shard. Read back with ReadPostmortem().
  Status Dump(const std::string& path, const std::string& reason) const;

 private:
  size_t window_capacity_;
  std::deque<FlightWindowRecord> windows_;
  std::vector<EventRing> rings_;
};

/// One retained event with the shard whose lane captured it.
struct PostmortemEvent {
  int shard = 0;
  TraceEvent event;
};

/// Parsed postmortem bundle (what FlightRecorder::Dump wrote).
struct PostmortemBundle {
  std::string reason;
  int shards = 0;
  std::vector<FlightWindowRecord> windows;  ///< oldest first
  std::vector<PostmortemEvent> events;      ///< shard-major, oldest first
};

/// Reads a bundle written by FlightRecorder::Dump.
Result<PostmortemBundle> ReadPostmortem(const std::string& path);

}  // namespace vod

#endif  // VOD_OBS_FLIGHT_RECORDER_H_
