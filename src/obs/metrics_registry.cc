#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace vod {

namespace {

void WriteValue(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

const char* KindName(uint8_t kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    case 2:
      return "histogram";
    default:
      return "unknown";
  }
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Kind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry* entry = metrics_[it->second].get();
    VOD_CHECK_MSG(entry->kind == kind,
                  "metric registered twice with different kinds");
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  index_[name] = metrics_.size();
  metrics_.push_back(std::move(entry));
  return metrics_.back().get();
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              Kind kind) {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Entry* entry = metrics_[it->second].get();
  return entry->kind == kind ? entry : nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  return &FindOrCreate(name, help, Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  return &FindOrCreate(name, help, Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help, double lo,
                                         double hi, int bins) {
  Entry* entry = FindOrCreate(name, help, Kind::kHistogram);
  if (entry->histogram == nullptr) {
    entry->hist_lo = lo;
    entry->hist_hi = hi;
    entry->hist_bins = bins;
    entry->histogram = std::make_unique<Histogram>(lo, hi, bins);
  }
  return entry->histogram.get();
}

Counter* MetricsRegistry::FindCounter(const std::string& name) {
  Entry* entry = Find(name, Kind::kCounter);
  return entry != nullptr ? &entry->counter : nullptr;
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) {
  Entry* entry = Find(name, Kind::kGauge);
  return entry != nullptr ? &entry->gauge : nullptr;
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) {
  Entry* entry = Find(name, Kind::kHistogram);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

double MetricsRegistry::CurrentValue(const Entry& entry) const {
  switch (entry.kind) {
    case Kind::kCounter:
      return static_cast<double>(entry.counter.value());
    case Kind::kGauge:
      return entry.gauge.value();
    case Kind::kHistogram:
      return static_cast<double>(entry.histogram->total_count());
  }
  return 0.0;
}

void MetricsRegistry::SampleAt(double t) {
  for (const auto& entry : metrics_) {
    entry->series.push_back({t, CurrentValue(*entry)});
  }
  last_sample_ = t;
  sampled_once_ = true;
  ++samples_taken_;
}

void MetricsRegistry::MaybeSample(double t) {
  if (sample_every_ <= 0.0) return;
  if (!sampled_once_) {
    // Anchor the cadence at the first observed time.
    last_sample_ = t;
    sampled_once_ = true;
    return;
  }
  while (t - last_sample_ >= sample_every_) {
    SampleAt(last_sample_ + sample_every_);
  }
}

const std::vector<SeriesPoint>& MetricsRegistry::series(
    const std::string& name) const {
  static const std::vector<SeriesPoint> kEmpty;
  const auto it = index_.find(name);
  return it == index_.end() ? kEmpty : metrics_[it->second]->series;
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  for (const auto& entry : metrics_) {
    os << "# HELP " << entry->name << " " << entry->help << "\n";
    os << "# TYPE " << entry->name << " "
       << KindName(static_cast<uint8_t>(entry->kind)) << "\n";
    switch (entry->kind) {
      case Kind::kCounter:
        os << entry->name << " " << entry->counter.value() << "\n";
        break;
      case Kind::kGauge:
        os << entry->name << " ";
        WriteValue(os, entry->gauge.value());
        os << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        int64_t cumulative = h.underflow();
        for (int i = 0; i < h.num_bins(); ++i) {
          cumulative += h.bin_count(i);
          os << entry->name << "_bucket{le=\"";
          WriteValue(os, h.bin_upper(i));
          os << "\"} " << cumulative << "\n";
        }
        os << entry->name << "_bucket{le=\"+Inf\"} " << h.total_count()
           << "\n";
        os << entry->name << "_count " << h.total_count() << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::WriteSeriesCsv(std::ostream& os) const {
  os << "sample_t,metric,value\n";
  for (const auto& entry : metrics_) {
    for (const SeriesPoint& p : entry->series) {
      WriteValue(os, p.t);
      os << "," << entry->name << ",";
      WriteValue(os, p.value);
      os << "\n";
    }
  }
}

void MetricsRegistry::Snapshot(ByteWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(metrics_.size()));
  for (const auto& entry : metrics_) {
    writer->PutString(entry->name);
    writer->PutString(entry->help);
    writer->PutU8(static_cast<uint8_t>(entry->kind));
    switch (entry->kind) {
      case Kind::kCounter:
        writer->PutI64(entry->counter.value());
        break;
      case Kind::kGauge:
        writer->PutDouble(entry->gauge.value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        writer->PutDouble(entry->hist_lo);
        writer->PutDouble(entry->hist_hi);
        writer->PutU32(static_cast<uint32_t>(entry->hist_bins));
        writer->PutI64(h.underflow());
        writer->PutI64(h.overflow());
        for (int i = 0; i < h.num_bins(); ++i) writer->PutI64(h.bin_count(i));
        break;
      }
    }
    writer->PutU64(static_cast<uint64_t>(entry->series.size()));
    for (const SeriesPoint& p : entry->series) {
      writer->PutDouble(p.t);
      writer->PutDouble(p.value);
    }
  }
  writer->PutDouble(sample_every_);
  writer->PutDouble(last_sample_);
  writer->PutBool(sampled_once_);
  writer->PutI64(samples_taken_);
}

Status MetricsRegistry::Restore(ByteReader* reader) {
  uint32_t count = 0;
  VOD_RETURN_IF_ERROR(reader->ReadU32(&count));
  // Reserve-on-restore: the snapshot declares the instrument count up
  // front, so the table grows once instead of per instrument. Capped so a
  // corrupt count cannot force a huge allocation before parsing fails.
  metrics_.reserve(metrics_.size() + std::min<uint32_t>(count, 4096));
  for (uint32_t m = 0; m < count; ++m) {
    std::string name, help;
    uint8_t kind_raw = 0;
    VOD_RETURN_IF_ERROR(reader->ReadString(&name));
    VOD_RETURN_IF_ERROR(reader->ReadString(&help));
    VOD_RETURN_IF_ERROR(reader->ReadU8(&kind_raw));
    if (kind_raw > 2) {
      return Status::InvalidArgument("metrics restore: unknown kind " +
                                     std::to_string(kind_raw) + " for '" +
                                     name + "'");
    }
    const Kind kind = static_cast<Kind>(kind_raw);
    const auto it = index_.find(name);
    if (it != index_.end() && metrics_[it->second]->kind != kind) {
      return Status::InvalidArgument(
          "metrics restore: '" + name + "' is registered as " +
          KindName(static_cast<uint8_t>(metrics_[it->second]->kind)) +
          " but the snapshot holds a " + KindName(kind_raw));
    }
    Entry* entry = nullptr;
    switch (kind) {
      case Kind::kCounter: {
        Counter* c = AddCounter(name, help);
        int64_t value = 0;
        VOD_RETURN_IF_ERROR(reader->ReadI64(&value));
        c->value_ = value;
        break;
      }
      case Kind::kGauge: {
        Gauge* g = AddGauge(name, help);
        VOD_RETURN_IF_ERROR(reader->ReadDouble(&g->value_));
        break;
      }
      case Kind::kHistogram: {
        double lo = 0.0, hi = 1.0;
        uint32_t bins = 0;
        VOD_RETURN_IF_ERROR(reader->ReadDouble(&lo));
        VOD_RETURN_IF_ERROR(reader->ReadDouble(&hi));
        VOD_RETURN_IF_ERROR(reader->ReadU32(&bins));
        if (bins < 1 || !(lo < hi)) {
          return Status::InvalidArgument(
              "metrics restore: bad histogram geometry for '" + name + "'");
        }
        Histogram* h =
            AddHistogram(name, help, lo, hi, static_cast<int>(bins));
        if (h->num_bins() != static_cast<int>(bins) || h->lo() != lo) {
          return Status::InvalidArgument(
              "metrics restore: histogram '" + name +
              "' geometry differs from the registered instrument");
        }
        int64_t underflow = 0, overflow = 0;
        VOD_RETURN_IF_ERROR(reader->ReadI64(&underflow));
        VOD_RETURN_IF_ERROR(reader->ReadI64(&overflow));
        std::vector<int64_t> bin_counts(bins, 0);
        for (uint32_t i = 0; i < bins; ++i) {
          VOD_RETURN_IF_ERROR(reader->ReadI64(&bin_counts[i]));
        }
        VOD_RETURN_IF_ERROR(h->SetCounts(underflow, overflow, bin_counts));
        break;
      }
    }
    entry = metrics_[index_.at(name)].get();
    uint64_t points = 0;
    VOD_RETURN_IF_ERROR(reader->ReadU64(&points));
    entry->series.clear();
    entry->series.reserve(points);
    for (uint64_t i = 0; i < points; ++i) {
      SeriesPoint p;
      VOD_RETURN_IF_ERROR(reader->ReadDouble(&p.t));
      VOD_RETURN_IF_ERROR(reader->ReadDouble(&p.value));
      entry->series.push_back(p);
    }
  }
  VOD_RETURN_IF_ERROR(reader->ReadDouble(&sample_every_));
  VOD_RETURN_IF_ERROR(reader->ReadDouble(&last_sample_));
  VOD_RETURN_IF_ERROR(reader->ReadBool(&sampled_once_));
  VOD_RETURN_IF_ERROR(reader->ReadI64(&samples_taken_));
  return Status::OK();
}

}  // namespace vod
