// Live metrics registry: named counters / gauges / histograms with
// time-series sampling, checkpoint snapshot/restore, and text exporters.
//
// Where the event log answers "what happened, in order", the registry
// answers "what was the level of X over time". Instruments are registered
// by name (registration order is the export order, so output is
// deterministic), updated from simulator observers or the grid runner, and
// sampled into per-instrument time series at a configurable cadence. The
// whole registry serializes into the experiment checkpoint, so a run that
// is SIGKILLed and resumed continues its series without a gap — the soak
// harness asserts exactly that.
//
// Exporters:
//   * WritePrometheus — Prometheus text exposition format (HELP/TYPE +
//     current values; histograms as cumulative `_bucket{le=...}` lines);
//   * WriteSeriesCsv  — long-format `sample_t,metric,value` rows of every
//     sampled point, ready for plotting.
//
// Thread safety: none. The registry lives either on a single run's event
// loop or under the checkpoint runner's completion mutex.

#ifndef VOD_OBS_METRICS_REGISTRY_H_
#define VOD_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "stats/histogram.h"

namespace vod {

/// Monotone event count. Add() only; resets happen via fresh registries.
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  int64_t value_ = 0;
};

/// Point-in-time level (streams in use, degradation rung, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
};

/// One sampled point of an instrument's series. `t` is whatever clock the
/// caller samples on (simulated minutes for runs, cells-done for sweeps).
struct SeriesPoint {
  double t = 0.0;
  double value = 0.0;
};

/// \brief Named-instrument registry with cadenced series sampling.
class MetricsRegistry {
 public:
  /// Registers (or finds, when already registered with the same kind) an
  /// instrument. Aborts via VOD_CHECK if the name exists with another kind.
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          double lo, double hi, int bins);

  /// Lookup without creating; null when absent or of a different kind.
  Counter* FindCounter(const std::string& name);
  Gauge* FindGauge(const std::string& name);
  Histogram* FindHistogram(const std::string& name);

  size_t num_metrics() const { return metrics_.size(); }

  // ---- series sampling ----------------------------------------------------

  /// Sampling cadence on the caller's clock; <= 0 disables MaybeSample.
  void set_sample_every(double cadence) { sample_every_ = cadence; }
  double sample_every() const { return sample_every_; }

  /// Appends one series point per instrument at time `t` (counters sample
  /// their count, gauges their level, histograms their total count).
  void SampleAt(double t);

  /// Samples at every multiple of the cadence in (last_sample, t]. Call at
  /// event-loop rate; cheap when no boundary passed.
  void MaybeSample(double t);

  /// The sampled series of `name` (empty when absent / never sampled).
  const std::vector<SeriesPoint>& series(const std::string& name) const;
  int64_t samples_taken() const { return samples_taken_; }

  // ---- exporters ----------------------------------------------------------

  /// Prometheus text exposition format (current values).
  void WritePrometheus(std::ostream& os) const;

  /// Long-format CSV of every sampled series point:
  /// `sample_t,metric,value` with a header row.
  void WriteSeriesCsv(std::ostream& os) const;

  // ---- checkpoint integration --------------------------------------------

  /// Serializes every instrument (values, geometry, series) plus the
  /// sampling state into `writer`.
  void Snapshot(ByteWriter* writer) const;

  /// Restores from a Snapshot() blob. Instruments are matched by name and
  /// re-created when absent, so the caller may restore into either an empty
  /// registry or one with instruments pre-registered (kind mismatches are
  /// an error). Series and sampling state are replaced wholesale.
  Status Restore(ByteReader* reader);

 private:
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;  ///< set iff kind == kHistogram
    double hist_lo = 0.0, hist_hi = 1.0;
    int hist_bins = 1;
    std::vector<SeriesPoint> series;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      Kind kind);
  Entry* Find(const std::string& name, Kind kind);
  double CurrentValue(const Entry& entry) const;

  std::vector<std::unique_ptr<Entry>> metrics_;  ///< registration order
  std::unordered_map<std::string, size_t> index_;
  double sample_every_ = 0.0;
  double last_sample_ = 0.0;
  bool sampled_once_ = false;
  int64_t samples_taken_ = 0;
};

}  // namespace vod

#endif  // VOD_OBS_METRICS_REGISTRY_H_
