// Constrained (B, n) re-allocation against live rate estimates.
//
// The paper sizes each movie statically; the controller re-solves the same
// shaped problem online. Objective: minimize the expected admission wait
//
//   J = sum_i lambda_i * E[wait_i],
//   E[wait_i] = (l_i - B_i)^2 / (2 * n_i * l_i)
//
// (an arriving viewer enrolls immediately with probability W_i/T_i = B_i/l_i
// and otherwise waits the residual of the uncovered gap), subject to
// sum n_i <= N (stream budget) and sum B_i <= B_total (buffer budget).
//
// Solved in two nested stages reusing the numerics layer:
//   * outer: GridMinimize over the stream "water level" mu — the continuous
//     relaxation gives n_i(mu) = sqrt(lambda_i * l_i / (2 mu)) (square-root
//     allocation), rounded and repaired to the integer budget;
//   * inner: for fixed streams, the buffer split is a convex water-fill —
//     marginals lambda_i (l_i - B_i)/(n_i l_i) equalize at a level nu found
//     with MonotoneThreshold (root_finding).
//
// Fully deterministic: no RNG, stable tie-breaks by movie index, buffer
// quantized so float dust cannot flip a plan comparison.

#ifndef VOD_CTRL_PLANNER_H_
#define VOD_CTRL_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/partition_layout.h"

namespace vod {

/// One movie's planning inputs.
struct PlannerMovie {
  double movie_length = 120.0;  ///< l_i, minutes
  double rate = 0.5;            ///< lambda_i estimate, arrivals/minute
  int min_streams = 1;
  int max_streams = 1 << 20;
  /// Largest buffered fraction of the movie (B_i <= fraction * l_i).
  double max_buffer_fraction = 0.9;
};

/// Planner knobs.
struct PlannerOptions {
  /// Outer water-level grid resolution (log-spaced samples).
  int mu_grid_points = 48;
  /// Buffer quantum in minutes; plans snap to it (hysteresis support).
  double buffer_quantum_minutes = 0.25;

  Status Validate() const;
};

/// One movie's allocation in a plan.
struct MoviePlanEntry {
  int streams = 1;
  double buffer_minutes = 0.0;
  /// Marginal value of one more buffered minute at this allocation
  /// (lambda_i (l_i - B_i) / (n_i l_i)); drives priority classes.
  double marginal_value = 0.0;
};

/// A committed or candidate allocation across the catalog.
struct BufferPlan {
  int64_t epoch = 0;
  std::vector<MoviePlanEntry> movies;
  /// The rate vector the plan was solved for (hysteresis reference).
  std::vector<double> solved_rates;
  double objective = 0.0;  ///< J at the returned allocation

  /// True when stream counts and quantized buffers match entry-for-entry.
  bool SameAllocation(const BufferPlan& other) const;
};

/// \brief Solves the constrained allocation. Requires sum min_streams <= N
/// and non-negative budgets; every rate must be positive and finite.
Result<BufferPlan> SolvePlan(const std::vector<PlannerMovie>& movies,
                             int64_t stream_budget, double buffer_budget,
                             const PlannerOptions& options = {});

/// Builds the PartitionLayout for one plan entry (clamping B into [0, l]).
Result<PartitionLayout> LayoutForEntry(double movie_length,
                                       const MoviePlanEntry& entry);

}  // namespace vod

#endif  // VOD_CTRL_PLANNER_H_
