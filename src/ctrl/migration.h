// Bounded-disruption migration from one buffer plan to another.
//
// A re-plan is not applied atomically: buffers and streams move between
// movies in staged steps so that (a) no active viewer stream is ever
// preempted, (b) the system never uses more than its budgets mid-flight,
// and (c) a failure at any point unwinds cleanly to the last committed
// plan. The engine is a time-explicit state machine: the controller pumps
// Advance(t) and schedules the returned wake-up time.
//
// Protocol per migration:
//   1. Steps are built movie-by-movie. A movie shrinking in both
//      dimensions is one reclaim step; growing in both is one grant step;
//      mixed changes decompose through the intermediate layout
//      (min(n_old, n_new), min(B_old, B_new)) — shrink first, grow later.
//   2. All reclaim steps run before any grant step (by movie index), so
//      grants are funded by the freed resources plus configured slack.
//   3. A reclaim commits the smaller layout immediately, but the freed
//      streams/buffer only *land* in the free pool after the old window
//      has drained (old-schedule viewers keep their coverage), modeled as
//      a delay of one old enrollment window plus slack.
//   4. A reclaim attempted while the host reports ReclaimBlocked() (deep
//      degradation) backs off exponentially (capped); exhausting the retry
//      budget rolls the whole migration back. Grants short of resources
//      first wait for in-flight landings; if even those cannot cover (the
//      budget shrank mid-flight), they back off and then roll back.
//   5. Rollback restores the original layout of every applied step in
//      reverse order, ignores ReclaimBlocked (restoring is strictly
//      resource-returning for the movies involved), and starts a cool-down
//      during which the controller must not start another migration.
//
// Conservation invariant (audited by sim/audit): at every instant,
//   sum(live streams) + free streams + in-flight streams == stream budget
// and identically for buffer minutes (within float epsilon).

#ifndef VOD_CTRL_MIGRATION_H_
#define VOD_CTRL_MIGRATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/partition_layout.h"
#include "ctrl/host.h"
#include "obs/event_log.h"

namespace vod {

/// Migration engine knobs.
struct MigrationOptions {
  /// Extra drain margin added to the old enrollment window before freed
  /// resources land in the pool.
  double drain_slack_minutes = 1.0;
  /// Blocked-step backoff: initial delay, growth factor, cap, and how many
  /// consecutive blocked attempts a single step tolerates before the
  /// migration rolls back.
  double backoff_initial_minutes = 2.0;
  double backoff_factor = 2.0;
  double backoff_max_minutes = 30.0;
  int max_retries = 5;
  /// Quiet period after a rollback before the next migration may start.
  double rollback_cooldown_minutes = 60.0;

  Status Validate() const;
};

/// One staged layout change for one movie.
struct MigrationStep {
  int32_t movie = -1;
  bool reclaim = false;  ///< true: shrinking step; false: growing step
  PartitionLayout from;
  PartitionLayout to;
};

/// \brief Decomposes current -> target into ordered migration steps:
/// reclaims (ascending movie index) then grants. Movies whose layouts
/// already match produce no step. The vectors must be index-aligned.
std::vector<MigrationStep> BuildMigrationSteps(
    const std::vector<PartitionLayout>& current,
    const std::vector<PartitionLayout>& target);

/// \brief Executes one migration at a time against a ControllerHost.
class MigrationEngine {
 public:
  /// How the last migration ended. kNone while one is in flight (or before
  /// the first Begin).
  enum class Outcome : uint8_t { kNone = 0, kCommitted = 1, kRolledBack = 2 };

  /// Budgets are system-wide totals; `free_*` is the slack not held by any
  /// live layout at construction time (budget - sum of initial layouts).
  /// `log` is optional telemetry (kController events) and must outlive the
  /// engine when set.
  MigrationEngine(const MigrationOptions& options, int64_t stream_budget,
                  double buffer_budget, int64_t free_streams,
                  double free_buffer, EventLog* log);

  /// Starts a migration at time t. Returns false (and does nothing) when
  /// `steps` is empty, a migration is already in flight, or the rollback
  /// cool-down has not expired.
  bool Begin(double t, std::vector<MigrationStep> steps, int64_t epoch);

  /// Pumps the state machine at time t: lands matured reclaims, applies as
  /// many steps as possible, arms backoff on a blocked step, rolls back on
  /// retry exhaustion. Returns the next time the engine wants to run, or
  /// +infinity when idle with nothing draining.
  double Advance(double t, ControllerHost* host);

  /// Aborts an in-flight migration (capacity collapsed mid-flight): rolls
  /// back immediately. No-op when idle.
  void Abort(double t, ControllerHost* host);

  bool InFlight() const { return in_flight_; }
  Outcome last_outcome() const { return outcome_; }
  /// Earliest time a new migration may begin (rollback cool-down).
  double cooldown_until() const { return cooldown_until_; }

  // -- Conservation accounting (feeds the audit snapshot) -----------------
  int64_t stream_budget() const { return stream_budget_; }
  double buffer_budget() const { return buffer_budget_; }
  int64_t free_streams() const { return free_streams_; }
  double free_buffer() const { return free_buffer_; }
  int64_t inflight_streams() const;
  double inflight_buffer() const;

  // -- Lifetime counters (report + metrics) -------------------------------
  int64_t migrations_started() const { return migrations_started_; }
  int64_t migrations_committed() const { return migrations_committed_; }
  int64_t rollbacks() const { return rollbacks_; }
  int64_t steps_planned() const { return steps_planned_; }
  int64_t steps_applied() const { return steps_applied_; }
  int64_t blocked_attempts() const { return blocked_attempts_; }

 private:
  /// A reclaim's freed resources, draining until ready_time.
  struct Landing {
    size_t step_index;
    double ready_time;
    int64_t streams;
    double buffer;
  };

  void EmitEvent(double t, ControllerEvent sub, int32_t movie, int64_t id,
                 double value, uint8_t aux = 0);
  void Land(double t);
  double BackoffDelay() const;
  void Rollback(double t, ControllerHost* host);

  MigrationOptions options_;
  int64_t stream_budget_;
  double buffer_budget_;
  int64_t free_streams_;
  double free_buffer_;
  EventLog* log_;

  bool in_flight_ = false;
  Outcome outcome_ = Outcome::kNone;
  int64_t epoch_ = 0;
  std::vector<MigrationStep> steps_;
  std::vector<size_t> applied_;  ///< indices into steps_, application order
  std::vector<Landing> inflight_;
  size_t next_step_ = 0;
  int retries_ = 0;
  double cooldown_until_ = 0.0;

  int64_t migrations_started_ = 0;
  int64_t migrations_committed_ = 0;
  int64_t rollbacks_ = 0;
  int64_t steps_planned_ = 0;
  int64_t steps_applied_ = 0;
  int64_t blocked_attempts_ = 0;
};

}  // namespace vod

#endif  // VOD_CTRL_MIGRATION_H_
