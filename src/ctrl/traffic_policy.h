// Policy-based traffic handler in front of admission.
//
// The degradation ladder sheds load globally; the controller can do better
// because it knows each movie's marginal value under the committed plan.
// Every movie gets a token bucket refilled at a small multiple of its
// planned rate, and a priority class derived from its marginal value
// (top third = class 0). Under overload the gate sheds selectively:
//
//   pressure 0: admit everything (the gate must be invisible off-overload —
//               this is part of the controller-off byte-identity property);
//   pressure 1: class-2 arrivals without a token are shed;
//   pressure 2: class-1 and class-2 arrivals without a token are shed.
//
// Buckets refill lazily (tokens = min(burst, tokens + (t - last) * rate)),
// so the policy is a deterministic pure function of the arrival sequence —
// no RNG, no wall clock.

#ifndef VOD_CTRL_TRAFFIC_POLICY_H_
#define VOD_CTRL_TRAFFIC_POLICY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ctrl/admission_gate.h"
#include "ctrl/host.h"
#include "obs/event_log.h"

namespace vod {

/// Number of priority classes (0 = most valuable, sheds last).
inline constexpr int kNumPriorityClasses = 3;

/// Traffic policy knobs.
struct TrafficPolicyOptions {
  /// Bucket refill rate as a multiple of the movie's planned arrival rate;
  /// > 1 so nominal traffic is never token-limited.
  double rate_multiplier = 1.25;
  /// Bucket depth: this many minutes of refill, floored at min_burst_tokens.
  double burst_window_minutes = 10.0;
  double min_burst_tokens = 3.0;

  Status Validate() const;
};

/// \brief Per-movie token buckets + priority classes; sheds under pressure.
class TrafficPolicy final : public AdmissionGate {
 public:
  /// `host` supplies the pressure level; `log` is optional telemetry. Both
  /// must outlive the policy.
  TrafficPolicy(const TrafficPolicyOptions& options, const ControllerHost* host,
                EventLog* log);

  /// Registers `movie_count` movies, all class 0 with the given rates, and
  /// full buckets. Called once before the simulation starts.
  void Configure(const std::vector<double>& rates, double t0);

  /// Updates one movie's planned rate and priority class (on re-plan).
  /// Tokens carry over, clamped to the new burst.
  void Update(int32_t movie, double rate, int priority_class);

  int priority_class(int32_t movie) const {
    return buckets_[static_cast<size_t>(movie)].priority_class;
  }

  /// AdmissionGate: refills the bucket, then admits or sheds by pressure
  /// and class as documented above.
  bool OnArrival(int32_t movie, double t) override;

  int64_t admitted() const { return admitted_; }
  int64_t shed_total() const { return shed_total_; }
  int64_t sheds_in_class(int priority_class) const {
    return sheds_by_class_[static_cast<size_t>(priority_class)];
  }

 private:
  struct Bucket {
    double rate = 0.0;   ///< tokens per minute
    double burst = 0.0;  ///< bucket depth
    double tokens = 0.0;
    double last_refill = 0.0;
    int priority_class = 0;
  };

  double BurstFor(double rate) const;

  TrafficPolicyOptions options_;
  const ControllerHost* host_;
  EventLog* log_;
  std::vector<Bucket> buckets_;
  int64_t admitted_ = 0;
  int64_t shed_total_ = 0;
  std::array<int64_t, kNumPriorityClasses> sheds_by_class_{};
};

}  // namespace vod

#endif  // VOD_CTRL_TRAFFIC_POLICY_H_
