#include "ctrl/controller.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace vod {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Rate floor for the planner: a silent movie still needs a positive rate.
constexpr double kMinPlanRate = 1e-6;
}  // namespace

Status ControllerOptions::Validate() const {
  if (!(poll_interval_minutes > 0.0) || !std::isfinite(poll_interval_minutes)) {
    return Status::InvalidArgument(
        "controller poll_interval_minutes must be finite and positive");
  }
  if (!(hysteresis_floor > 0.0) || !(hysteresis_sigma >= 0.0)) {
    return Status::InvalidArgument(
        "controller hysteresis_floor must be positive and hysteresis_sigma "
        "non-negative");
  }
  if (!(confirm_minutes >= 0.0) || !(min_replan_gap_minutes >= 0.0)) {
    return Status::InvalidArgument(
        "controller confirm/min_replan_gap minutes must be non-negative");
  }
  if (extra_stream_slack < 0 || !(extra_buffer_slack >= 0.0)) {
    return Status::InvalidArgument(
        "controller resource slack must be non-negative");
  }
  if (max_streams_per_movie < 1) {
    return Status::InvalidArgument(
        "controller max_streams_per_movie must be >= 1");
  }
  if (!(max_buffer_fraction >= 0.0) || !(max_buffer_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "controller max_buffer_fraction must lie in [0, 1]");
  }
  VOD_RETURN_IF_ERROR(estimator.Validate());
  VOD_RETURN_IF_ERROR(planner.Validate());
  VOD_RETURN_IF_ERROR(migration.Validate());
  VOD_RETURN_IF_ERROR(traffic.Validate());
  return Status::OK();
}

std::string ControllerReport::ToString() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "ControllerReport{epoch=" << final_epoch
     << " plans_solved=" << plans_solved << " drift_alarms=" << drift_alarms
     << " migrations=" << migrations_committed << "/" << migrations_started
     << " rollbacks=" << rollbacks << " steps=" << steps_applied << "/"
     << steps_planned << " blocked=" << blocked_attempts
     << " sheds=" << admission_sheds << " (" << sheds_by_class[0] << "/"
     << sheds_by_class[1] << "/" << sheds_by_class[2] << ")"
     << " last_commit=" << last_commit_time << "}";
  return os.str();
}

Controller::Controller(const ControllerOptions& options,
                       std::vector<ControllerMovie> movies,
                       ControllerHost* host, EventLog* log)
    : options_(options), host_(host), log_(log) {
  VOD_CHECK(host != nullptr);
  VOD_CHECK(!movies.empty());
  movies_.reserve(movies.size());
  for (ControllerMovie& m : movies) {
    MovieState state;
    state.config = m;
    movies_.push_back(std::move(state));
  }
  policy_ = std::make_unique<TrafficPolicy>(options_.traffic, host_, log_);
}

void Controller::EmitEvent(double t, ControllerEvent sub, int32_t movie,
                           int64_t id, double value, uint8_t aux) {
  if (!ObsEnabled(log_, EventCategory::kController)) return;
  log_->Emit(t, EventCategory::kController, static_cast<uint8_t>(sub), movie,
             id, value, aux);
}

std::vector<PartitionLayout> Controller::LiveLayouts() const {
  std::vector<PartitionLayout> live;
  live.reserve(movies_.size());
  for (size_t i = 0; i < movies_.size(); ++i) {
    live.push_back(host_->LiveLayout(static_cast<int32_t>(i)));
  }
  return live;
}

void Controller::Start(double t0) {
  VOD_CHECK(!started_);
  started_ = true;

  // Budgets = everything the initial configuration holds, plus slack.
  const std::vector<PartitionLayout> live = LiveLayouts();
  int64_t live_streams = 0;
  double live_buffer = 0.0;
  committed_.epoch = 0;
  committed_.movies.clear();
  committed_.solved_rates.clear();
  std::vector<double> baselines;
  for (size_t i = 0; i < movies_.size(); ++i) {
    live_streams += live[i].streams();
    live_buffer += live[i].buffer_minutes();
    MoviePlanEntry entry;
    entry.streams = live[i].streams();
    entry.buffer_minutes = live[i].buffer_minutes();
    committed_.movies.push_back(entry);
    const double rate = movies_[i].config.baseline_rate;
    committed_.solved_rates.push_back(rate);
    baselines.push_back(rate);
    movies_[i].estimator = std::make_unique<RateEstimator>(
        options_.estimator, rate, t0);
  }
  stream_budget_ = live_streams + options_.extra_stream_slack;
  buffer_budget_ = live_buffer + options_.extra_buffer_slack;
  engine_ = std::make_unique<MigrationEngine>(
      options_.migration, stream_budget_, buffer_budget_,
      options_.extra_stream_slack, options_.extra_buffer_slack, log_);
  policy_->Configure(baselines, t0);
}

bool Controller::OnArrival(int32_t movie, double t) {
  VOD_CHECK(started_);
  VOD_CHECK(movie >= 0 && static_cast<size_t>(movie) < movies_.size());
  movies_[static_cast<size_t>(movie)].estimator->Observe(t);
  return policy_->OnArrival(movie, t);
}

bool Controller::ReplanTriggered(double t) {
  bool any_alarm = false;
  bool any_deviation = false;
  for (size_t i = 0; i < movies_.size(); ++i) {
    MovieState& m = movies_[i];
    const RateEstimator& est = *m.estimator;
    if (est.DriftAlarm()) {
      if (!m.alarm_counted) {
        m.alarm_counted = true;
        ++drift_alarms_;
        EmitEvent(t, ControllerEvent::kAlarm, static_cast<int32_t>(i), epoch_,
                  est.RateAt(t));
      }
      any_alarm = true;
    }
    const double deviation =
        std::fabs(est.RateAt(t) - est.baseline()) / est.baseline();
    const double threshold = std::max(options_.hysteresis_floor,
                                      options_.hysteresis_sigma * est.sigma());
    if (deviation > threshold) any_deviation = true;
  }

  // Migration rate limit / rollback cool-down: alarms stay latched, the
  // re-plan just waits for the gate to open.
  const bool gated = t < engine_->cooldown_until() ||
                     t - last_migration_start_ <
                         options_.min_replan_gap_minutes;

  if (any_alarm) {
    deviation_armed_ = false;
    return !gated;
  }
  if (any_deviation) {
    if (!deviation_armed_) {
      deviation_armed_ = true;
      deviation_since_ = t;
      return false;
    }
    return !gated && t - deviation_since_ >= options_.confirm_minutes;
  }
  deviation_armed_ = false;
  return false;
}

void Controller::Replan(double t) {
  std::vector<PlannerMovie> inputs;
  inputs.reserve(movies_.size());
  for (MovieState& m : movies_) {
    PlannerMovie pm;
    pm.movie_length = m.config.movie_length;
    pm.rate = std::max(m.estimator->RateAt(t), kMinPlanRate);
    pm.min_streams = 1;
    pm.max_streams = options_.max_streams_per_movie;
    pm.max_buffer_fraction = options_.max_buffer_fraction;
    inputs.push_back(pm);
  }
  auto solved =
      SolvePlan(inputs, stream_budget_, buffer_budget_, options_.planner);
  if (!solved.ok()) return;  // infeasible budgets: keep the committed plan
  ++plans_solved_;
  EmitEvent(t, ControllerEvent::kReplan, -1, epoch_ + 1, solved->objective);

  auto quiesce = [&](const BufferPlan& plan) {
    // The live allocation already matches: adopt the rates as the new
    // baselines so the detectors unlatch, and migrate nothing.
    for (size_t i = 0; i < movies_.size(); ++i) {
      movies_[i].estimator->Rebase(plan.solved_rates[i]);
      movies_[i].alarm_counted = false;
    }
    deviation_armed_ = false;
  };

  if (solved->SameAllocation(committed_)) {
    quiesce(*solved);
    return;
  }

  std::vector<PartitionLayout> target;
  target.reserve(movies_.size());
  for (size_t i = 0; i < movies_.size(); ++i) {
    auto layout =
        LayoutForEntry(movies_[i].config.movie_length, solved->movies[i]);
    VOD_CHECK(layout.ok());
    target.push_back(*layout);
  }
  std::vector<MigrationStep> steps =
      BuildMigrationSteps(LiveLayouts(), target);
  if (steps.empty()) {
    committed_ = std::move(*solved);
    committed_.epoch = epoch_;
    quiesce(committed_);
    return;
  }

  ++epoch_;
  solved->epoch = epoch_;
  pending_ = std::move(*solved);
  pending_valid_ = true;
  const bool began = engine_->Begin(t, std::move(steps), epoch_);
  VOD_CHECK(began);
  last_migration_start_ = t;

  // Priority classes follow the new plan's marginal values immediately:
  // the traffic policy protects the allocation we are moving toward.
  std::vector<size_t> order(movies_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pending_.movies[a].marginal_value >
           pending_.movies[b].marginal_value;
  });
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t i = order[rank];
    const int cls = static_cast<int>(rank * kNumPriorityClasses /
                                     order.size());
    policy_->Update(static_cast<int32_t>(i), pending_.solved_rates[i], cls);
    EmitEvent(t, ControllerEvent::kClass, static_cast<int32_t>(i), epoch_,
              static_cast<double>(cls), static_cast<uint8_t>(cls));
  }
}

void Controller::CommitPlan(double t) {
  VOD_CHECK(pending_valid_);
  committed_ = pending_;
  pending_valid_ = false;
  last_commit_time_ = t;
  for (size_t i = 0; i < movies_.size(); ++i) {
    movies_[i].estimator->Rebase(committed_.solved_rates[i]);
    movies_[i].alarm_counted = false;
  }
  deviation_armed_ = false;
}

double Controller::OnWakeup(double t) {
  VOD_CHECK(started_);
  auto pump = [&]() {
    const bool was_in_flight = engine_->InFlight();
    const double next = engine_->Advance(t, host_);
    if (was_in_flight && !engine_->InFlight()) {
      if (engine_->last_outcome() == MigrationEngine::Outcome::kCommitted) {
        CommitPlan(t);
      } else {
        pending_valid_ = false;  // rolled back; cool-down is running
      }
    }
    return next;
  };

  double migration_next = pump();
  if (!engine_->InFlight() && ReplanTriggered(t)) {
    Replan(t);
    if (engine_->InFlight()) migration_next = pump();
  }
  return std::min(t + options_.poll_interval_minutes, migration_next);
}

void Controller::OnCapacityChange(double t) {
  if (!started_) return;
  if (engine_->InFlight() && host_->PressureLevel() >= 2) {
    // The system just lost enough capacity that it is shedding hard;
    // holding partition resources in limbo makes it worse. Abort.
    engine_->Abort(t, host_);
    pending_valid_ = false;
  }
}

ControllerReport Controller::Report() const {
  ControllerReport report;
  report.enabled = true;
  report.plans_solved = plans_solved_;
  report.drift_alarms = drift_alarms_;
  if (engine_ != nullptr) {
    report.migrations_started = engine_->migrations_started();
    report.migrations_committed = engine_->migrations_committed();
    report.rollbacks = engine_->rollbacks();
    report.steps_planned = engine_->steps_planned();
    report.steps_applied = engine_->steps_applied();
    report.blocked_attempts = engine_->blocked_attempts();
  }
  report.admission_sheds = policy_->shed_total();
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    report.sheds_by_class[static_cast<size_t>(c)] = policy_->sheds_in_class(c);
  }
  report.final_epoch = epoch_;
  report.last_commit_time = last_commit_time_;
  return report;
}

}  // namespace vod
