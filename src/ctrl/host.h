// The controller's view of the system it steers.
//
// ctrl/ never includes sim/ headers — the control plane is a pure state
// machine and the simulation server implements this interface to let it
// read live state and commit layout changes. Keeping the dependency in this
// direction means the controller can be unit-tested against a scripted fake
// host, and the sim layer stays free to evolve its internals.

#ifndef VOD_CTRL_HOST_H_
#define VOD_CTRL_HOST_H_

#include <cstdint>

#include "core/partition_layout.h"

namespace vod {

/// \brief Host services a controller needs (implemented by sim/server).
///
/// Determinism contract: every method must be a pure function of simulation
/// state at the call time — no RNG, no wall clock.
class ControllerHost {
 public:
  virtual ~ControllerHost() = default;

  /// Applies a new layout to `movie` at simulation time t. The host must
  /// re-anchor the restart schedule at t without preempting active streams
  /// (MovieWorld::ApplyLayout semantics).
  virtual void CommitLayout(int32_t movie, double t,
                            const PartitionLayout& layout) = 0;

  /// The layout `movie` is currently serving with.
  virtual const PartitionLayout& LiveLayout(int32_t movie) const = 0;

  /// True while the system is too degraded to give up partition resources
  /// (the degradation ladder is at its reclaim rung or worse). Migration
  /// reclaim steps back off while this holds.
  virtual bool ReclaimBlocked() const = 0;

  /// Coarse overload signal for the traffic policy: 0 = nominal, 1 = shed
  /// low-value traffic, 2 = shed all but the top class.
  virtual int PressureLevel() const = 0;
};

}  // namespace vod

#endif  // VOD_CTRL_HOST_H_
