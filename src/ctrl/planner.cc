#include "ctrl/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numerics/optimize.h"
#include "numerics/root_finding.h"

namespace vod {

Status PlannerOptions::Validate() const {
  if (mu_grid_points < 2) {
    return Status::InvalidArgument("planner mu_grid_points must be >= 2");
  }
  if (!(buffer_quantum_minutes > 0.0) ||
      !std::isfinite(buffer_quantum_minutes)) {
    return Status::InvalidArgument(
        "planner buffer_quantum_minutes must be finite and positive");
  }
  return Status::OK();
}

bool BufferPlan::SameAllocation(const BufferPlan& other) const {
  if (movies.size() != other.movies.size()) return false;
  for (size_t i = 0; i < movies.size(); ++i) {
    if (movies[i].streams != other.movies[i].streams) return false;
    // Buffers are quantized to an exact multiple of the quantum, so exact
    // comparison is well-defined.
    if (movies[i].buffer_minutes != other.movies[i].buffer_minutes) {
      return false;
    }
  }
  return true;
}

namespace {

// Snaps a buffer down to the quantum grid; never rounds up, so a feasible
// water-fill stays within the budget after quantization.
double Quantize(double buffer, double quantum) {
  return std::floor(buffer / quantum + 1e-9) * quantum;
}

// Expected admission-wait contribution of one movie:
// lambda * (l - B)^2 / (2 n l).
double MovieObjective(const PlannerMovie& m, int streams, double buffer) {
  const double gap = m.movie_length - buffer;
  return m.rate * gap * gap / (2.0 * streams * m.movie_length);
}

struct InnerSolution {
  std::vector<double> buffers;
  double objective = 0.0;
};

// Buffer water-fill for fixed stream counts. The KKT condition equalizes
// marginals lambda_i (l_i - B_i) / (n_i l_i) = nu wherever 0 < B_i < cap_i,
// giving B_i(nu) = clamp(l_i (1 - nu n_i / lambda_i), 0, cap_i); the sum is
// non-increasing in nu, so the binding nu is a monotone threshold.
InnerSolution SolveBuffers(const std::vector<PlannerMovie>& movies,
                           const std::vector<int>& streams,
                           double buffer_budget,
                           const PlannerOptions& options) {
  const size_t k = movies.size();
  auto buffers_at = [&](double nu) {
    std::vector<double> b(k);
    for (size_t i = 0; i < k; ++i) {
      const double cap = movies[i].max_buffer_fraction * movies[i].movie_length;
      const double raw =
          movies[i].movie_length * (1.0 - nu * streams[i] / movies[i].rate);
      b[i] = std::clamp(raw, 0.0, cap);
    }
    return b;
  };
  auto total = [&](double nu) {
    double sum = 0.0;
    for (double b : buffers_at(nu)) sum += b;
    return sum;
  };

  double nu_hi = 0.0;
  for (size_t i = 0; i < k; ++i) {
    nu_hi = std::max(nu_hi, movies[i].rate / streams[i]);
  }
  double nu = 0.0;
  if (total(0.0) > buffer_budget) {
    auto fits = [&](double v) { return total(v) <= buffer_budget; };
    auto found = MonotoneThreshold(fits, 0.0, nu_hi, 1e-10);
    // total(nu_hi) == 0 <= budget, so the threshold always exists.
    nu = found.ok() ? *found : nu_hi;
  }

  InnerSolution sol;
  sol.buffers = buffers_at(nu);
  for (size_t i = 0; i < k; ++i) {
    sol.buffers[i] = Quantize(sol.buffers[i], options.buffer_quantum_minutes);
    sol.objective += MovieObjective(movies[i], streams[i], sol.buffers[i]);
  }
  return sol;
}

// Marginal change in the unbuffered objective lambda l / (2n) when moving
// from `from` to `to` streams; used to repair rounded counts to the budget.
double StreamDelta(const PlannerMovie& m, int from, int to) {
  return m.rate * m.movie_length / 2.0 * (1.0 / to - 1.0 / from);
}

// Square-root allocation at water level mu, repaired to sum exactly
// min(budget, sum max_streams) with greedy marginal moves (ties by index).
std::vector<int> StreamsAtLevel(const std::vector<PlannerMovie>& movies,
                                double mu, int64_t budget) {
  const size_t k = movies.size();
  std::vector<int> n(k);
  int64_t sum = 0;
  for (size_t i = 0; i < k; ++i) {
    const double ideal =
        std::sqrt(movies[i].rate * movies[i].movie_length / (2.0 * mu));
    n[i] = std::clamp(static_cast<int>(std::lround(ideal)),
                      movies[i].min_streams, movies[i].max_streams);
    sum += n[i];
  }
  while (sum > budget) {
    size_t best = k;
    double best_loss = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < k; ++i) {
      if (n[i] <= movies[i].min_streams) continue;
      const double loss = StreamDelta(movies[i], n[i], n[i] - 1);
      if (loss < best_loss) {
        best_loss = loss;
        best = i;
      }
    }
    if (best == k) break;  // caller guarantees sum(min) <= budget
    --n[best];
    --sum;
  }
  while (sum < budget) {
    size_t best = k;
    double best_gain = 0.0;
    for (size_t i = 0; i < k; ++i) {
      if (n[i] >= movies[i].max_streams) continue;
      const double gain = -StreamDelta(movies[i], n[i], n[i] + 1);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == k) break;  // everyone saturated; leave slack unused
    ++n[best];
    ++sum;
  }
  return n;
}

}  // namespace

Result<BufferPlan> SolvePlan(const std::vector<PlannerMovie>& movies,
                             int64_t stream_budget, double buffer_budget,
                             const PlannerOptions& options) {
  VOD_RETURN_IF_ERROR(options.Validate());
  if (movies.empty()) {
    return Status::InvalidArgument("planner needs at least one movie");
  }
  if (!(buffer_budget >= 0.0) || !std::isfinite(buffer_budget)) {
    return Status::InvalidArgument(
        "planner buffer_budget must be finite and non-negative");
  }
  int64_t min_sum = 0;
  double scale_lo = std::numeric_limits<double>::infinity();
  double scale_hi = 0.0;
  for (size_t i = 0; i < movies.size(); ++i) {
    const PlannerMovie& m = movies[i];
    if (!(m.movie_length > 0.0) || !std::isfinite(m.movie_length) ||
        !(m.rate > 0.0) || !std::isfinite(m.rate)) {
      return Status::InvalidArgument(
          "planner movie lengths and rates must be finite and positive");
    }
    if (m.min_streams < 1 || m.max_streams < m.min_streams) {
      return Status::InvalidArgument(
          "planner stream bounds must satisfy 1 <= min <= max");
    }
    if (!(m.max_buffer_fraction >= 0.0) || !(m.max_buffer_fraction <= 1.0)) {
      return Status::InvalidArgument(
          "planner max_buffer_fraction must lie in [0, 1]");
    }
    min_sum += m.min_streams;
    scale_lo = std::min(scale_lo, m.rate * m.movie_length);
    scale_hi = std::max(scale_hi, m.rate * m.movie_length);
  }
  if (min_sum > stream_budget) {
    return Status::Infeasible(
        "stream budget cannot cover per-movie minimums");
  }

  // Outer search over the stream water level. mu = lambda l / (2 n^2) maps
  // n across [1, budget], so this log range covers every useful level.
  const double mu_lo =
      scale_lo / (2.0 * static_cast<double>(stream_budget) *
                  static_cast<double>(stream_budget));
  const double mu_hi = 2.0 * scale_hi;
  auto eval = [&](double log_mu) {
    const std::vector<int> n =
        StreamsAtLevel(movies, std::exp(log_mu), stream_budget);
    return SolveBuffers(movies, n, buffer_budget, options).objective;
  };
  const Minimum best = GridMinimize(eval, std::log(mu_lo), std::log(mu_hi),
                                    options.mu_grid_points);

  const std::vector<int> n =
      StreamsAtLevel(movies, std::exp(best.x), stream_budget);
  const InnerSolution inner =
      SolveBuffers(movies, n, buffer_budget, options);

  BufferPlan plan;
  plan.movies.resize(movies.size());
  plan.solved_rates.resize(movies.size());
  plan.objective = inner.objective;
  for (size_t i = 0; i < movies.size(); ++i) {
    MoviePlanEntry& e = plan.movies[i];
    e.streams = n[i];
    e.buffer_minutes = inner.buffers[i];
    e.marginal_value = movies[i].rate *
                       (movies[i].movie_length - e.buffer_minutes) /
                       (n[i] * movies[i].movie_length);
    plan.solved_rates[i] = movies[i].rate;
  }
  return plan;
}

Result<PartitionLayout> LayoutForEntry(double movie_length,
                                       const MoviePlanEntry& entry) {
  const double buffer =
      std::clamp(entry.buffer_minutes, 0.0, movie_length);
  return PartitionLayout::FromBuffer(movie_length, entry.streams, buffer);
}

}  // namespace vod
