// Online per-movie arrival-rate estimation with drift detection.
//
// The controller cannot trust config rates: popularity is Zipf-with-churn
// and diurnal. Each movie tracks its arrival intensity with a shot-noise
// filter — on every arrival the estimate decays by exp(-gap/tau) and gains
// 1/tau — whose stationary mean is exactly lambda for Poisson input (an
// EWMA over inter-arrival *gaps* is length-biased: each gap weights itself
// by its own duration and converges to E[gap^2]/E[gap] = 2/lambda). On top
// of the filter sits a two-sided Page–Hinkley detector on the normalized
// rate residual r = (lambda_hat - lambda_0)/lambda_0, fed with the
// PASTA-unbiased pre-update estimate and decimated to one sample per tau so
// its inputs are roughly independent. The detector's drift tolerance and
// alarm threshold auto-scale with the filter's noise floor
// sigma_r ~ 1/sqrt(2*lambda_0*tau), so a cold movie (few effective samples,
// noisy estimate) needs a proportionally larger excursion to alarm — this
// is what keeps the zero-drift no-op property honest across rate scales.
//
// Everything here is pure arithmetic over arrival timestamps: no RNG is
// consulted, so an estimator observing a simulation cannot perturb it.

#ifndef VOD_CTRL_RATE_ESTIMATOR_H_
#define VOD_CTRL_RATE_ESTIMATOR_H_

#include <cstdint>

#include "common/status.h"

namespace vod {

/// Estimator knobs, shared by every movie's estimator.
struct RateEstimatorOptions {
  /// Filter time constant in minutes: arrivals older than ~tau stop
  /// mattering, and a silent movie's estimate decays on the same horizon.
  double ewma_tau_minutes = 120.0;
  /// Page–Hinkley drift tolerance, in units of the noise floor sigma_r.
  double ph_delta_sigma = 0.5;
  /// Page–Hinkley alarm threshold, in units of sigma_r. Sized for the
  /// detector's tau-spaced samples, which still carry ~e^-1 autocorrelation
  /// (≈1.5x noise inflation): 20 sigma puts the stationary false-alarm ARL
  /// in the tens of thousands of samples while a flash crowd's residual
  /// (several sigma *per sample*) crosses within a couple of taus.
  double ph_threshold_sigma = 20.0;

  Status Validate() const;
};

/// \brief One movie's shot-noise rate tracker + Page–Hinkley drift detector.
class RateEstimator {
 public:
  /// `baseline_rate` is lambda_0 (arrivals/minute), the rate the committed
  /// plan was solved for; the filter is initialized to it so the estimator
  /// starts unbiased. `t0` is the observation start time.
  RateEstimator(const RateEstimatorOptions& options, double baseline_rate,
                double t0);

  /// Records an arrival at time t (non-decreasing across calls).
  void Observe(double t);

  /// Rate estimate at time t >= the last arrival. Decays exponentially
  /// through silence, so a collapsed movie's estimate fades on the tau
  /// horizon instead of freezing at its last busy value.
  double RateAt(double t) const;

  /// Noise floor of the normalized residual at the current baseline.
  double sigma() const { return sigma_; }

  /// True once the Page–Hinkley statistic crossed its threshold (either
  /// direction). Latched until Rebase().
  bool DriftAlarm() const { return alarm_; }

  /// Re-baselines after a re-plan: lambda_0 <- new_baseline, both PH
  /// statistics and the alarm latch reset. The filter state is kept.
  void Rebase(double new_baseline);

  double baseline() const { return baseline_; }
  int64_t observations() const { return observations_; }

 private:
  RateEstimatorOptions options_;
  double baseline_;  ///< lambda_0 the detector measures drift against
  double sigma_;     ///< noise floor at the current baseline
  double rate_;      ///< shot-noise intensity estimate as of last_arrival_
  double last_arrival_;
  /// Last Page–Hinkley sample time: the detector consumes at most one
  /// residual per tau so its inputs are roughly independent (per-arrival
  /// residuals share the filter's memory and would overwhelm a sigma-scaled
  /// threshold under pure noise).
  double last_ph_sample_;
  int64_t observations_ = 0;

  // Two-sided Page–Hinkley: m^+ tracks upward drift, m^- downward; each is
  // reset-to-zero form (m = max(0, m + r -+ delta)), alarm when m > h.
  double ph_up_ = 0.0;
  double ph_down_ = 0.0;
  bool alarm_ = false;
};

}  // namespace vod

#endif  // VOD_CTRL_RATE_ESTIMATOR_H_
