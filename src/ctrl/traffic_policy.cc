#include "ctrl/traffic_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

Status TrafficPolicyOptions::Validate() const {
  if (!(rate_multiplier >= 1.0) || !std::isfinite(rate_multiplier)) {
    return Status::InvalidArgument(
        "traffic rate_multiplier must be finite and >= 1");
  }
  if (!(burst_window_minutes > 0.0) || !(min_burst_tokens >= 1.0)) {
    return Status::InvalidArgument(
        "traffic burst_window_minutes must be positive and "
        "min_burst_tokens >= 1");
  }
  return Status::OK();
}

TrafficPolicy::TrafficPolicy(const TrafficPolicyOptions& options,
                             const ControllerHost* host, EventLog* log)
    : options_(options), host_(host), log_(log) {
  VOD_CHECK(host != nullptr);
}

double TrafficPolicy::BurstFor(double rate) const {
  return std::max(options_.min_burst_tokens,
                  rate * options_.burst_window_minutes);
}

void TrafficPolicy::Configure(const std::vector<double>& rates, double t0) {
  buckets_.clear();
  buckets_.reserve(rates.size());
  for (double rate : rates) {
    Bucket b;
    b.rate = rate * options_.rate_multiplier;
    b.burst = BurstFor(b.rate);
    b.tokens = b.burst;  // start full: nominal traffic is never limited
    b.last_refill = t0;
    buckets_.push_back(b);
  }
}

void TrafficPolicy::Update(int32_t movie, double rate, int priority_class) {
  VOD_CHECK(movie >= 0 && static_cast<size_t>(movie) < buckets_.size());
  VOD_CHECK(priority_class >= 0 && priority_class < kNumPriorityClasses);
  Bucket& b = buckets_[static_cast<size_t>(movie)];
  b.rate = rate * options_.rate_multiplier;
  b.burst = BurstFor(b.rate);
  b.tokens = std::min(b.tokens, b.burst);
  b.priority_class = priority_class;
}

bool TrafficPolicy::OnArrival(int32_t movie, double t) {
  VOD_CHECK(movie >= 0 && static_cast<size_t>(movie) < buckets_.size());
  Bucket& b = buckets_[static_cast<size_t>(movie)];
  b.tokens = std::min(b.burst, b.tokens + (t - b.last_refill) * b.rate);
  b.last_refill = t;
  const bool has_token = b.tokens >= 1.0;
  if (has_token) b.tokens -= 1.0;

  const int pressure = host_->PressureLevel();
  bool shed = false;
  if (pressure > 0 && !has_token) {
    // Token-exhausted (above planned rate) traffic sheds by class: under
    // moderate pressure only the bottom class, under severe pressure
    // everything below the top class.
    shed = (pressure == 1) ? b.priority_class >= 2 : b.priority_class >= 1;
  }
  if (!shed) {
    ++admitted_;
    return true;
  }
  ++shed_total_;
  ++sheds_by_class_[static_cast<size_t>(b.priority_class)];
  if (ObsEnabled(log_, EventCategory::kController)) {
    log_->Emit(t, EventCategory::kController,
               static_cast<uint8_t>(ControllerEvent::kShed), movie,
               /*id=*/-1, /*value=*/static_cast<double>(pressure),
               /*aux=*/static_cast<uint8_t>(b.priority_class));
  }
  return false;
}

}  // namespace vod
