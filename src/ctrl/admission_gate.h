// Admission gating interface between the control plane and the simulators.
//
// The gate sits in front of viewer admission: every arrival is offered to it
// before any session state is allocated. Returning false sheds the arrival —
// the viewer never enters the system. The control plane implements this to
// (a) observe per-movie offered load for its rate estimators and (b) shed
// selectively by priority class under overload, replacing the global
// degradation cliff with policy-based traffic handling.
//
// Determinism contract: implementations must not touch any RNG stream and
// must be a pure function of (movie, t) plus their own deterministic state,
// so a gate that never sheds leaves the simulation byte-identical.

#ifndef VOD_CTRL_ADMISSION_GATE_H_
#define VOD_CTRL_ADMISSION_GATE_H_

#include <cstdint>

namespace vod {

/// \brief Pre-admission hook: observe (and possibly shed) each arrival.
class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;

  /// Called for every arrival of `movie` at time t, before the viewer is
  /// admitted. Returns false to shed the arrival.
  virtual bool OnArrival(int32_t movie, double t) = 0;
};

}  // namespace vod

#endif  // VOD_CTRL_ADMISSION_GATE_H_
