#include "ctrl/rate_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

Status RateEstimatorOptions::Validate() const {
  if (!(ewma_tau_minutes > 0.0) || !std::isfinite(ewma_tau_minutes)) {
    return Status::InvalidArgument(
        "estimator ewma_tau_minutes must be finite and positive");
  }
  if (!(ph_delta_sigma >= 0.0) || !(ph_threshold_sigma > 0.0)) {
    return Status::InvalidArgument(
        "estimator Page-Hinkley parameters must be non-negative "
        "(threshold positive)");
  }
  return Status::OK();
}

namespace {
// sigma_r for the normalized shot-noise estimate at rate lambda: stationary
// variance lambda/(2*tau) gives relative std 1/sqrt(2*lambda*tau).
double NoiseFloor(double baseline, double tau) {
  const double effective = std::max(2.0 * baseline * tau, 1.0);
  return 1.0 / std::sqrt(effective);
}
}  // namespace

RateEstimator::RateEstimator(const RateEstimatorOptions& options,
                             double baseline_rate, double t0)
    : options_(options),
      baseline_(baseline_rate),
      sigma_(NoiseFloor(baseline_rate, options.ewma_tau_minutes)),
      rate_(baseline_rate),
      last_arrival_(t0),
      last_ph_sample_(t0) {
  VOD_CHECK(baseline_rate > 0.0);
}

void RateEstimator::Observe(double t) {
  const double tau = options_.ewma_tau_minutes;
  const double gap = std::max(t - last_arrival_, 0.0);
  // Shot-noise filter: decay the running intensity, then add this arrival's
  // kernel mass. Stationary mean is exactly lambda for Poisson input — the
  // estimator is intensity-weighted, never gap-length-weighted.
  const double pre = rate_ * std::exp(-gap / tau);
  rate_ = pre + 1.0 / tau;
  last_arrival_ = t;
  ++observations_;

  // Page-Hinkley on the normalized residual, reset-to-zero form. Two
  // choices keep the sigma-scaled threshold honest under pure noise:
  // the residual uses the PRE-update estimate (by PASTA an arrival instant
  // sees the time-stationary — unbiased — value; post-update adds a +1/tau
  // self-spike), and the detector consumes at most one sample per tau
  // (per-arrival residuals share the filter's memory; summing ~2*lambda*tau
  // correlated terms would let stationary excursions pile up an alarm).
  if (t - last_ph_sample_ < tau) return;
  last_ph_sample_ = t;
  const double residual = (pre - baseline_) / baseline_;
  const double delta = options_.ph_delta_sigma * sigma_;
  const double threshold = options_.ph_threshold_sigma * sigma_;
  ph_up_ = std::max(0.0, ph_up_ + residual - delta);
  ph_down_ = std::max(0.0, ph_down_ - residual - delta);
  if (ph_up_ > threshold || ph_down_ > threshold) alarm_ = true;
}

double RateEstimator::RateAt(double t) const {
  const double silence = std::max(t - last_arrival_, 0.0);
  return rate_ * std::exp(-silence / options_.ewma_tau_minutes);
}

void RateEstimator::Rebase(double new_baseline) {
  VOD_CHECK(new_baseline > 0.0);
  baseline_ = new_baseline;
  sigma_ = NoiseFloor(new_baseline, options_.ewma_tau_minutes);
  ph_up_ = 0.0;
  ph_down_ = 0.0;
  alarm_ = false;
}

}  // namespace vod
