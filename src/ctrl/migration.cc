#include "ctrl/migration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace vod {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Buffer-minute dust tolerance; mirrors the audit epsilon.
constexpr double kBufferEps = 1e-9;

bool SameLayout(const PartitionLayout& a, const PartitionLayout& b) {
  return a.streams() == b.streams() &&
         a.buffer_minutes() == b.buffer_minutes();
}
}  // namespace

Status MigrationOptions::Validate() const {
  if (!(drain_slack_minutes >= 0.0) || !std::isfinite(drain_slack_minutes)) {
    return Status::InvalidArgument(
        "migration drain_slack_minutes must be finite and non-negative");
  }
  if (!(backoff_initial_minutes > 0.0) || !(backoff_factor >= 1.0) ||
      !(backoff_max_minutes >= backoff_initial_minutes)) {
    return Status::InvalidArgument(
        "migration backoff must have positive initial delay, factor >= 1, "
        "and cap >= initial");
  }
  if (max_retries < 0) {
    return Status::InvalidArgument("migration max_retries must be >= 0");
  }
  if (!(rollback_cooldown_minutes >= 0.0)) {
    return Status::InvalidArgument(
        "migration rollback_cooldown_minutes must be non-negative");
  }
  return Status::OK();
}

std::vector<MigrationStep> BuildMigrationSteps(
    const std::vector<PartitionLayout>& current,
    const std::vector<PartitionLayout>& target) {
  VOD_CHECK(current.size() == target.size());
  std::vector<MigrationStep> reclaims;
  std::vector<MigrationStep> grants;
  for (size_t i = 0; i < current.size(); ++i) {
    const PartitionLayout& from = current[i];
    const PartitionLayout& to = target[i];
    if (SameLayout(from, to)) continue;
    const auto movie = static_cast<int32_t>(i);
    const bool shrink_n = to.streams() <= from.streams();
    const bool shrink_b = to.buffer_minutes() <= from.buffer_minutes();
    if (shrink_n && shrink_b) {
      reclaims.push_back(MigrationStep{movie, true, from, to});
    } else if (!shrink_n && !shrink_b) {
      grants.push_back(MigrationStep{movie, false, from, to});
    } else {
      // Mixed: release the shrinking dimension first, grow the other once
      // the pool has been fed by every reclaim.
      const int mid_n = std::min(from.streams(), to.streams());
      const double mid_b =
          std::min(from.buffer_minutes(), to.buffer_minutes());
      auto mid = PartitionLayout::FromBuffer(from.movie_length(), mid_n,
                                             mid_b);
      VOD_CHECK(mid.ok());
      reclaims.push_back(MigrationStep{movie, true, from, *mid});
      grants.push_back(MigrationStep{movie, false, *mid, to});
    }
  }
  std::vector<MigrationStep> steps = std::move(reclaims);
  steps.insert(steps.end(), grants.begin(), grants.end());
  return steps;
}

MigrationEngine::MigrationEngine(const MigrationOptions& options,
                                 int64_t stream_budget, double buffer_budget,
                                 int64_t free_streams, double free_buffer,
                                 EventLog* log)
    : options_(options),
      stream_budget_(stream_budget),
      buffer_budget_(buffer_budget),
      free_streams_(free_streams),
      free_buffer_(free_buffer),
      log_(log) {
  VOD_CHECK(free_streams >= 0 && free_buffer >= -kBufferEps);
}

void MigrationEngine::EmitEvent(double t, ControllerEvent sub, int32_t movie,
                                int64_t id, double value, uint8_t aux) {
  if (!ObsEnabled(log_, EventCategory::kController)) return;
  log_->Emit(t, EventCategory::kController, static_cast<uint8_t>(sub), movie,
             id, value, aux);
}

bool MigrationEngine::Begin(double t, std::vector<MigrationStep> steps,
                            int64_t epoch) {
  if (in_flight_ || steps.empty() || t < cooldown_until_) return false;
  steps_ = std::move(steps);
  applied_.clear();
  inflight_.clear();
  next_step_ = 0;
  retries_ = 0;
  epoch_ = epoch;
  in_flight_ = true;
  outcome_ = Outcome::kNone;
  ++migrations_started_;
  steps_planned_ += static_cast<int64_t>(steps_.size());
  return true;
}

int64_t MigrationEngine::inflight_streams() const {
  int64_t sum = 0;
  for (const Landing& l : inflight_) sum += l.streams;
  return sum;
}

double MigrationEngine::inflight_buffer() const {
  double sum = 0.0;
  for (const Landing& l : inflight_) sum += l.buffer;
  return sum;
}

void MigrationEngine::Land(double t) {
  size_t kept = 0;
  for (size_t i = 0; i < inflight_.size(); ++i) {
    if (inflight_[i].ready_time <= t) {
      free_streams_ += inflight_[i].streams;
      free_buffer_ += inflight_[i].buffer;
    } else {
      inflight_[kept++] = inflight_[i];
    }
  }
  inflight_.resize(kept);
}

double MigrationEngine::BackoffDelay() const {
  double delay = options_.backoff_initial_minutes;
  for (int i = 1; i < retries_; ++i) {
    delay *= options_.backoff_factor;
    if (delay >= options_.backoff_max_minutes) break;
  }
  return std::min(delay, options_.backoff_max_minutes);
}

double MigrationEngine::Advance(double t, ControllerHost* host) {
  Land(t);
  if (!in_flight_) {
    // Idle, but drains may still be maturing into the free pool.
    double next = kInf;
    for (const Landing& l : inflight_) {
      next = std::min(next, l.ready_time);
    }
    return next;
  }

  while (next_step_ < steps_.size()) {
    const MigrationStep& step = steps_[next_step_];
    if (step.reclaim) {
      if (host->ReclaimBlocked()) {
        ++retries_;
        ++blocked_attempts_;
        EmitEvent(t, ControllerEvent::kBlocked, step.movie, epoch_,
                  static_cast<double>(retries_), /*aux=*/1);
        if (retries_ > options_.max_retries) {
          Rollback(t, host);
          return kInf;
        }
        return t + BackoffDelay();
      }
      host->CommitLayout(step.movie, t, step.to);
      const int64_t freed_streams = step.from.streams() - step.to.streams();
      const double freed_buffer =
          step.from.buffer_minutes() - step.to.buffer_minutes();
      if (freed_streams > 0 || freed_buffer > kBufferEps) {
        // The old window keeps serving already-enrolled viewers until the
        // schedule's last pre-commit restart drains past it.
        const double ready =
            t + step.from.window() + options_.drain_slack_minutes;
        inflight_.push_back(
            Landing{next_step_, ready, freed_streams, freed_buffer});
      }
      applied_.push_back(next_step_);
      ++steps_applied_;
      ++next_step_;
      retries_ = 0;
      EmitEvent(t, ControllerEvent::kReclaim, step.movie, epoch_,
                static_cast<double>(freed_streams));
    } else {
      const int64_t need_streams = step.to.streams() - step.from.streams();
      const double need_buffer =
          step.to.buffer_minutes() - step.from.buffer_minutes();
      if (need_streams > free_streams_ ||
          need_buffer > free_buffer_ + kBufferEps) {
        const bool covered_by_drains =
            need_streams <= free_streams_ + inflight_streams() &&
            need_buffer <= free_buffer_ + inflight_buffer() + kBufferEps;
        if (covered_by_drains) {
          // Not a fault — resources are en route; wake at the next landing.
          double next = kInf;
          for (const Landing& l : inflight_) {
            next = std::min(next, l.ready_time);
          }
          VOD_CHECK(next < kInf);
          return next;
        }
        // Genuinely short: the budget shrank mid-flight. Back off in case
        // capacity returns, then give up.
        ++retries_;
        ++blocked_attempts_;
        EmitEvent(t, ControllerEvent::kBlocked, step.movie, epoch_,
                  static_cast<double>(retries_), /*aux=*/0);
        if (retries_ > options_.max_retries) {
          Rollback(t, host);
          return kInf;
        }
        return t + BackoffDelay();
      }
      free_streams_ -= need_streams;
      free_buffer_ -= need_buffer;
      if (free_buffer_ < 0.0) free_buffer_ = 0.0;  // quantization dust
      host->CommitLayout(step.movie, t, step.to);
      applied_.push_back(next_step_);
      ++steps_applied_;
      ++next_step_;
      retries_ = 0;
      EmitEvent(t, ControllerEvent::kGrant, step.movie, epoch_,
                static_cast<double>(need_streams));
    }
  }

  // Every step applied: the migration is committed. Remaining drains keep
  // maturing into the free pool.
  in_flight_ = false;
  outcome_ = Outcome::kCommitted;
  ++migrations_committed_;
  EmitEvent(t, ControllerEvent::kCommit, -1, epoch_,
            static_cast<double>(steps_.size()));
  double next = kInf;
  for (const Landing& l : inflight_) next = std::min(next, l.ready_time);
  return next;
}

void MigrationEngine::Abort(double t, ControllerHost* host) {
  if (!in_flight_) return;
  Rollback(t, host);
}

void MigrationEngine::Rollback(double t, ControllerHost* host) {
  // Unwind in reverse application order. Restoring a reclaimed movie takes
  // its resources back out of the pool (or cancels the in-flight landing);
  // restoring a granted movie returns what it was given.
  for (size_t i = applied_.size(); i-- > 0;) {
    const size_t idx = applied_[i];
    const MigrationStep& step = steps_[idx];
    host->CommitLayout(step.movie, t, step.from);
    if (step.reclaim) {
      bool cancelled = false;
      for (size_t j = 0; j < inflight_.size(); ++j) {
        if (inflight_[j].step_index == idx) {
          inflight_.erase(inflight_.begin() + static_cast<ptrdiff_t>(j));
          cancelled = true;
          break;
        }
      }
      if (!cancelled) {
        // Already landed: pull it back out of the free pool.
        free_streams_ -= step.from.streams() - step.to.streams();
        free_buffer_ -=
            step.from.buffer_minutes() - step.to.buffer_minutes();
        if (free_buffer_ < 0.0 && free_buffer_ > -kBufferEps) {
          free_buffer_ = 0.0;
        }
      }
    } else {
      free_streams_ += step.to.streams() - step.from.streams();
      free_buffer_ +=
          step.to.buffer_minutes() - step.from.buffer_minutes();
    }
  }
  const double unwound = static_cast<double>(applied_.size());
  applied_.clear();
  next_step_ = steps_.size();
  in_flight_ = false;
  outcome_ = Outcome::kRolledBack;
  ++rollbacks_;
  cooldown_until_ = t + options_.rollback_cooldown_minutes;
  EmitEvent(t, ControllerEvent::kRollback, -1, epoch_, unwound);
}

}  // namespace vod
