// The buffer-reallocation control plane.
//
// The paper's (B, n) sizing is computed once, offline, for forecast rates.
// Under popularity drift (flash crowds, new releases, diurnal waves) the
// static allocation decays: hot movies queue while cold movies hold buffer.
// The controller closes the loop online:
//
//   estimate  — per-movie EWMA arrival rates + Page–Hinkley drift detection
//               (ctrl/rate_estimator.h), fed by every offered arrival;
//   re-plan   — on a drift alarm, or when a sustained deviation confirms at
//               the poll cadence, re-solve the constrained allocation with
//               the numerics solvers (ctrl/planner.h) at live rates;
//   migrate   — apply the plan through the bounded-disruption engine
//               (ctrl/migration.h): staged reclaim/grant, never preempting
//               active streams, exponential backoff on blocked steps,
//               rollback to the last committed plan on failure;
//   protect   — a token-bucket traffic policy (ctrl/traffic_policy.h) sheds
//               low-marginal-value arrivals under overload instead of the
//               global degradation ladder.
//
// Quiescence contract: with no drift, the controller is a pure observer.
// Hysteresis thresholds scale with each estimator's noise floor, plans are
// buffer-quantized, and a re-solve that reproduces the committed allocation
// migrates nothing — so a zero-drift run with the controller enabled is
// byte-identical to one with it disabled (enforced by tests).
//
// The controller is a time-explicit state machine with no RNG: the host
// pumps OnWakeup(t) and schedules the returned next time. All coupling to
// the simulation goes through ControllerHost (ctrl/host.h).

#ifndef VOD_CTRL_CONTROLLER_H_
#define VOD_CTRL_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partition_layout.h"
#include "ctrl/admission_gate.h"
#include "ctrl/host.h"
#include "ctrl/migration.h"
#include "ctrl/planner.h"
#include "ctrl/rate_estimator.h"
#include "ctrl/traffic_policy.h"
#include "obs/event_log.h"

namespace vod {

/// Control-plane configuration (embedded in ServerOptions).
struct ControllerOptions {
  bool enabled = false;

  /// Decision cadence: triggers are evaluated and the migration engine is
  /// pumped at least this often.
  double poll_interval_minutes = 5.0;

  /// Re-plan hysteresis: a movie's relative rate deviation must exceed
  /// max(hysteresis_floor, hysteresis_sigma * sigma_r) — sigma_r is that
  /// estimator's noise floor — and hold for confirm_minutes before a
  /// deviation (as opposed to a Page–Hinkley alarm) triggers a re-plan.
  double hysteresis_floor = 0.3;
  double hysteresis_sigma = 5.0;
  double confirm_minutes = 15.0;

  /// Migration rate limit: a new migration starts at most this often.
  double min_replan_gap_minutes = 30.0;

  /// Resource slack granted beyond the sum of the initial layouts.
  int64_t extra_stream_slack = 0;
  double extra_buffer_slack = 0.0;

  /// Per-movie planner bounds.
  int max_streams_per_movie = 64;
  double max_buffer_fraction = 0.9;

  RateEstimatorOptions estimator;
  PlannerOptions planner;
  MigrationOptions migration;
  TrafficPolicyOptions traffic;

  Status Validate() const;
};

/// One movie as the controller sees it.
struct ControllerMovie {
  double movie_length = 120.0;
  /// The rate the initial (configured) layout was sized for.
  double baseline_rate = 0.5;
};

/// End-of-run controller statistics (serialized into ServerReport).
struct ControllerReport {
  bool enabled = false;
  int64_t plans_solved = 0;
  int64_t drift_alarms = 0;
  int64_t migrations_started = 0;
  int64_t migrations_committed = 0;
  int64_t rollbacks = 0;
  int64_t steps_planned = 0;
  int64_t steps_applied = 0;
  int64_t blocked_attempts = 0;
  int64_t admission_sheds = 0;
  std::array<int64_t, kNumPriorityClasses> sheds_by_class{};
  int64_t final_epoch = 0;
  /// Simulation time of the last committed plan; -1 = never re-planned.
  double last_commit_time = -1.0;

  /// True when the controller did anything observable. A quiescent
  /// controller (plans solved but none acted on) stays inactive, which is
  /// what keeps zero-drift reports byte-identical to controller-off runs.
  bool Active() const {
    return drift_alarms + migrations_started + rollbacks + admission_sheds +
               steps_applied >
           0;
  }

  std::string ToString() const;
};

/// \brief Online rate estimation + re-planning + migration + shedding.
class Controller final : public AdmissionGate {
 public:
  /// `host` and `log` (optional) must outlive the controller. `movies` is
  /// index-aligned with the host's movie ids.
  Controller(const ControllerOptions& options,
             std::vector<ControllerMovie> movies, ControllerHost* host,
             EventLog* log);

  /// Starts observing at t0. The committed plan is the live configuration;
  /// epoch 0. Call once, before any OnArrival/OnWakeup.
  void Start(double t0);

  /// AdmissionGate: feeds the movie's rate estimator (offered demand,
  /// including arrivals that end up shed), then consults the traffic
  /// policy. Wire as MovieWorldConfig::gate.
  bool OnArrival(int32_t movie, double t) override;

  /// Decision tick: pumps the migration engine, commits or abandons plans,
  /// evaluates re-plan triggers. Returns the next time it wants to run
  /// (always > t; the host schedules it).
  double OnWakeup(double t);

  /// Capacity changed under the controller (fault / repair). A severe loss
  /// mid-migration aborts and rolls back.
  void OnCapacityChange(double t);

  ControllerReport Report() const;

  // -- Audit accessors ----------------------------------------------------
  const MigrationEngine& engine() const { return *engine_; }
  int64_t epoch() const { return epoch_; }

 private:
  struct MovieState {
    ControllerMovie config;
    std::unique_ptr<RateEstimator> estimator;
    bool alarm_counted = false;  ///< current latch already tallied/emitted
  };

  void EmitEvent(double t, ControllerEvent sub, int32_t movie, int64_t id,
                 double value, uint8_t aux = 0);
  bool ReplanTriggered(double t);
  void Replan(double t);
  void CommitPlan(double t);
  std::vector<PartitionLayout> LiveLayouts() const;

  ControllerOptions options_;
  ControllerHost* host_;
  EventLog* log_;
  std::vector<MovieState> movies_;
  std::unique_ptr<TrafficPolicy> policy_;
  std::unique_ptr<MigrationEngine> engine_;

  bool started_ = false;
  int64_t stream_budget_ = 0;
  double buffer_budget_ = 0.0;
  int64_t epoch_ = 0;
  int64_t plans_solved_ = 0;
  int64_t drift_alarms_ = 0;
  double last_commit_time_ = -1.0;
  double last_migration_start_ = -1e300;

  /// Target of the in-flight migration; becomes committed_ on commit.
  BufferPlan committed_;
  BufferPlan pending_;
  bool pending_valid_ = false;

  /// Sustained-deviation confirmation (armed at a poll that sees a
  /// deviation, fires after confirm_minutes of continuous arming).
  bool deviation_armed_ = false;
  double deviation_since_ = 0.0;
};

}  // namespace vod

#endif  // VOD_CTRL_CONTROLLER_H_
