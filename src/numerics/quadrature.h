// Numerical integration: adaptive Simpson and Gauss–Legendre rules.
//
// The analytic model unconditions hit probabilities over viewer position V_c
// and leading-edge distance d; the integrands are piecewise smooth (kinks at
// partition boundaries), so we provide both an adaptive rule with error
// control and fixed composite Gauss–Legendre rules for fast sweeps.

#ifndef VOD_NUMERICS_QUADRATURE_H_
#define VOD_NUMERICS_QUADRATURE_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace vod {

/// Outcome of an adaptive integration.
struct QuadratureResult {
  /// The integral estimate.
  double value = 0.0;
  /// An (approximate, usually conservative) absolute error bound.
  double error_estimate = 0.0;
  /// Number of integrand evaluations performed.
  int evaluations = 0;
  /// True if the requested tolerance was met everywhere; false if the depth
  /// limit was hit on some subinterval (value is still the best estimate).
  bool converged = true;
};

/// Options for AdaptiveSimpson.
struct AdaptiveSimpsonOptions {
  /// Target absolute error for the whole interval.
  double abs_tolerance = 1e-9;
  /// Maximum recursion depth; 2^depth subintervals in the worst case.
  int max_depth = 40;
};

/// \brief Adaptive Simpson integration of f over [a, b].
///
/// Handles a > b by sign flip and a == b trivially. The integrand must be
/// finite on [a, b].
QuadratureResult AdaptiveSimpson(const std::function<double(double)>& f,
                                 double a, double b,
                                 const AdaptiveSimpsonOptions& options = {});

/// \brief Nodes and weights of the k-point Gauss–Legendre rule on [-1, 1].
///
/// Computed by Newton iteration on Legendre polynomials and cached per k.
/// Valid for 1 <= k <= 128.
struct GaussLegendreRule {
  std::vector<double> nodes;    ///< ascending in (-1, 1)
  std::vector<double> weights;  ///< positive, summing to 2
};

/// Returns the cached k-point rule. Aborts for k outside [1, 128].
const GaussLegendreRule& GetGaussLegendreRule(int k);

/// \brief Fixed k-point Gauss–Legendre integral of f over [a, b].
double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int points = 32);

/// \brief Composite Gauss–Legendre: [a, b] split into `panels` equal panels,
/// each integrated with a k-point rule. Robust for integrands with many kinks
/// (the hit-model integrands have O(n) kinks across the movie).
double CompositeGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int panels, int points_per_panel = 8);

}  // namespace vod

#endif  // VOD_NUMERICS_QUADRATURE_H_
