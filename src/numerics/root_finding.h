// Scalar root finding: bisection and Brent's method.
//
// Used by the sizing layer to invert the hit-probability model, e.g. to find
// the smallest buffer allocation B with P(hit)(B) >= P*.

#ifndef VOD_NUMERICS_ROOT_FINDING_H_
#define VOD_NUMERICS_ROOT_FINDING_H_

#include <functional>

#include "common/status.h"

namespace vod {

/// Options shared by the bracketing root finders.
struct RootFindingOptions {
  /// Absolute tolerance on the root location.
  double x_tolerance = 1e-10;
  /// Absolute tolerance on |f(root)|; either tolerance terminates.
  double f_tolerance = 0.0;
  int max_iterations = 200;
};

/// \brief Brent's method on a bracketing interval [a, b].
///
/// Requires f(a) and f(b) to have opposite signs (or one to be zero);
/// returns InvalidArgument otherwise. Returns NumericError if the iteration
/// cap is reached before the tolerances are met.
Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, const RootFindingOptions& options = {});

/// \brief Plain bisection on a bracketing interval [a, b]. Same contract as
/// BrentRoot; slower but immune to pathological functions.
Result<double> BisectRoot(const std::function<double(double)>& f, double a,
                          double b, const RootFindingOptions& options = {});

/// \brief Smallest x in [lo, hi] with predicate(x) true, assuming the
/// predicate is monotone (false ... false true ... true), to within
/// x_tolerance. Returns Infeasible if predicate(hi) is false; returns lo if
/// predicate(lo) is already true.
Result<double> MonotoneThreshold(const std::function<bool(double)>& predicate,
                                 double lo, double hi,
                                 double x_tolerance = 1e-9);

}  // namespace vod

#endif  // VOD_NUMERICS_ROOT_FINDING_H_
