// Scalar minimization helpers used by the cost model and sizing sweeps.

#ifndef VOD_NUMERICS_OPTIMIZE_H_
#define VOD_NUMERICS_OPTIMIZE_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace vod {

/// Location/value pair returned by the minimizers.
struct Minimum {
  double x = 0.0;
  double value = 0.0;
};

/// \brief Golden-section search for the minimum of a unimodal f on [a, b].
///
/// Converges linearly; for non-unimodal f it returns *a* local minimum.
Minimum GoldenSectionMinimize(const std::function<double(double)>& f, double a,
                              double b, double x_tolerance = 1e-9,
                              int max_iterations = 500);

/// \brief Exhaustive minimum of f over a uniform grid of `points` samples on
/// [a, b] (inclusive endpoints). Robust for the piecewise cost curves whose
/// minima sit at feasibility boundaries.
Minimum GridMinimize(const std::function<double(double)>& f, double a,
                     double b, int points);

/// \brief Minimum of f over an explicit candidate list. Precondition:
/// `candidates` non-empty.
Minimum DiscreteMinimize(const std::function<double(double)>& f,
                         const std::vector<double>& candidates);

}  // namespace vod

#endif  // VOD_NUMERICS_OPTIMIZE_H_
