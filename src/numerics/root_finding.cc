#include "numerics/root_finding.h"

#include <cmath>

namespace vod {

Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, const RootFindingOptions& options) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) {
    return Status::InvalidArgument(
        "BrentRoot: f(a) and f(b) must have opposite signs");
  }
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // last step; initialized to bracket width
  bool mflag = true;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (std::fabs(fb) <= options.f_tolerance ||
        std::fabs(b - a) <= options.x_tolerance) {
      return b;
    }
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = !((s > lo && s < b) || (s < lo && s > b));
    const bool slow_mflag = mflag && std::fabs(s - b) >= std::fabs(b - c) / 2.0;
    const bool slow_nflag = !mflag && std::fabs(s - b) >= std::fabs(c - d) / 2.0;
    const bool tiny_mflag =
        mflag && std::fabs(b - c) < options.x_tolerance;
    const bool tiny_nflag =
        !mflag && std::fabs(c - d) < options.x_tolerance;
    if (out_of_range || slow_mflag || slow_nflag || tiny_mflag || tiny_nflag) {
      s = 0.5 * (a + b);  // fall back to bisection
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return Status::NumericError("BrentRoot: iteration limit reached");
}

Result<double> BisectRoot(const std::function<double(double)>& f, double a,
                          double b, const RootFindingOptions& options) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) {
    return Status::InvalidArgument(
        "BisectRoot: f(a) and f(b) must have opposite signs");
  }
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0 || std::fabs(b - a) <= options.x_tolerance ||
        std::fabs(fm) <= options.f_tolerance) {
      return m;
    }
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

Result<double> MonotoneThreshold(const std::function<bool(double)>& predicate,
                                 double lo, double hi, double x_tolerance) {
  if (predicate(lo)) return lo;
  if (!predicate(hi)) {
    return Status::Infeasible(
        "MonotoneThreshold: predicate false at upper bound");
  }
  // Invariant: predicate(lo) == false, predicate(hi) == true.
  while (hi - lo > x_tolerance) {
    const double m = 0.5 * (lo + hi);
    if (predicate(m)) {
      hi = m;
    } else {
      lo = m;
    }
  }
  return hi;
}

}  // namespace vod
