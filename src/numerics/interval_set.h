// Closed-interval set algebra on the real line.
//
// The analytic hit model reduces each VCR operation to a *union of hit
// intervals* in the operation-duration variable x; the hit probability is the
// measure of that union through the duration distribution's CDF. IntervalSet
// maintains a normalized (sorted, disjoint) list of intervals and supports
// the operations the model needs: union-insert, clipping, measure, and
// point membership.

#ifndef VOD_NUMERICS_INTERVAL_SET_H_
#define VOD_NUMERICS_INTERVAL_SET_H_

#include <functional>
#include <vector>

namespace vod {

/// A closed interval [lo, hi]. Intervals with hi < lo are empty.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool empty() const { return hi < lo; }
  double length() const { return empty() ? 0.0 : hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }

  /// Intersection with another interval (possibly empty).
  Interval Intersect(const Interval& other) const {
    return Interval{lo > other.lo ? lo : other.lo,
                    hi < other.hi ? hi : other.hi};
  }

  bool operator==(const Interval& other) const = default;
};

/// \brief A normalized union of disjoint closed intervals.
///
/// Invariant: intervals_ is sorted by lo, pairwise disjoint, and contains no
/// empty intervals. Adjacent intervals that touch (hi == next.lo) are merged;
/// for measure purposes this is equivalent.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Constructs from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(const std::vector<Interval>& intervals);

  /// Inserts an interval, merging overlaps. Empty intervals are ignored.
  void Add(const Interval& interval);

  /// Restricts the set to [clip.lo, clip.hi].
  void ClipTo(const Interval& clip);

  /// Lebesgue measure (total length) of the set.
  double TotalLength() const;

  /// True if x lies in some interval of the set.
  bool Contains(double x) const;

  /// \brief Measure of the set under a distribution, Σ [F(hi) − F(lo)].
  ///
  /// `cdf` must be a non-decreasing function. For a duration distribution F
  /// this is exactly P(X ∈ set).
  double MeasureThrough(const std::function<double(double)>& cdf) const;

  /// Set complement within [bounds.lo, bounds.hi].
  IntervalSet ComplementWithin(const Interval& bounds) const;

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool operator==(const IntervalSet& other) const = default;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace vod

#endif  // VOD_NUMERICS_INTERVAL_SET_H_
