// Tabulated antiderivative of a smooth function on a bounded interval.
//
// The hit model unconditions over the viewer position V_c analytically,
// which requires the integrated CDF  Fint(b) = ∫_0^b F(t) dt  of the VCR
// duration distribution. TabulatedAntiderivative builds that integral once
// (composite Simpson on a fine grid) and answers point queries by monotone
// piecewise-quadratic interpolation.

#ifndef VOD_NUMERICS_ANTIDERIVATIVE_H_
#define VOD_NUMERICS_ANTIDERIVATIVE_H_

#include <functional>
#include <vector>

namespace vod {

/// \brief Antiderivative A(x) = ∫_lo^x f(t) dt for x in [lo, hi].
///
/// The table stores A at `cells + 1` uniformly spaced knots; each cell was
/// integrated with Simpson's rule (one midpoint evaluation per cell), and
/// queries interpolate with the trapezoid of the stored endpoint values of f,
/// which keeps the interpolant consistent with the tabulated integral to
/// O(h³) per cell.
class TabulatedAntiderivative {
 public:
  /// Builds the table with `cells` uniform cells (>= 1). f must be finite on
  /// [lo, hi]. Cost: 2·cells + 1 evaluations of f.
  TabulatedAntiderivative(const std::function<double(double)>& f, double lo,
                          double hi, int cells = 4096);

  /// A(x), clamped to the table range (A(lo) = 0 below, A(hi) above).
  double operator()(double x) const;

  double lower() const { return lo_; }
  double upper() const { return hi_; }

  /// A(hi): the full integral over the table range.
  double total() const { return integral_.back(); }

 private:
  double lo_;
  double hi_;
  double step_;
  std::vector<double> integral_;  // A at the knots
  std::vector<double> values_;    // f at the knots
};

}  // namespace vod

#endif  // VOD_NUMERICS_ANTIDERIVATIVE_H_
