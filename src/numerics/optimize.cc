#include "numerics/optimize.h"

#include <cmath>

#include "common/check.h"

namespace vod {

Minimum GoldenSectionMinimize(const std::function<double(double)>& f, double a,
                              double b, double x_tolerance,
                              int max_iterations) {
  VOD_CHECK(a <= b);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;         // 1/phi
  const double inv_phi2 = (3.0 - std::sqrt(5.0)) / 2.0;        // 1/phi^2
  double h = b - a;
  if (h <= x_tolerance) {
    const double m = 0.5 * (a + b);
    return {m, f(m)};
  }
  double c = a + inv_phi2 * h;
  double d = a + inv_phi * h;
  double fc = f(c);
  double fd = f(d);
  for (int iter = 0; iter < max_iterations && h > x_tolerance; ++iter) {
    h *= inv_phi;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = a + inv_phi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * h;
      fd = f(d);
    }
  }
  if (fc < fd) {
    return {c, fc};
  }
  return {d, fd};
}

Minimum GridMinimize(const std::function<double(double)>& f, double a,
                     double b, int points) {
  VOD_CHECK(points >= 2 && a <= b);
  Minimum best{a, f(a)};
  for (int i = 1; i < points; ++i) {
    const double x = a + (b - a) * static_cast<double>(i) / (points - 1);
    const double v = f(x);
    if (v < best.value) best = {x, v};
  }
  return best;
}

Minimum DiscreteMinimize(const std::function<double(double)>& f,
                         const std::vector<double>& candidates) {
  VOD_CHECK(!candidates.empty());
  Minimum best{candidates[0], f(candidates[0])};
  for (size_t i = 1; i < candidates.size(); ++i) {
    const double v = f(candidates[i]);
    if (v < best.value) best = {candidates[i], v};
  }
  return best;
}

}  // namespace vod
