#include "numerics/quadrature.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/check.h"

namespace vod {

namespace {

struct SimpsonFrame {
  double fa, fm, fb;  // integrand at a, midpoint, b
};

// Recursive helper: refines [a, b] with known endpoint/midpoint values and a
// whole-interval Simpson estimate.
void SimpsonRecurse(const std::function<double(double)>& f, double a, double b,
                    const SimpsonFrame& frame, double whole, double tol,
                    int depth, const AdaptiveSimpsonOptions& options,
                    QuadratureResult* result) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  result->evaluations += 2;

  const double h = b - a;
  const double left = (h / 12.0) * (frame.fa + 4.0 * flm + frame.fm);
  const double right = (h / 12.0) * (frame.fm + 4.0 * frm + frame.fb);
  const double refined = left + right;
  const double delta = refined - whole;

  if (depth >= options.max_depth) {
    result->value += refined + delta / 15.0;
    result->error_estimate += std::fabs(delta) / 15.0;
    result->converged = false;
    return;
  }
  if (std::fabs(delta) <= 15.0 * tol) {
    result->value += refined + delta / 15.0;  // Richardson extrapolation
    result->error_estimate += std::fabs(delta) / 15.0;
    return;
  }
  SimpsonRecurse(f, a, m, SimpsonFrame{frame.fa, flm, frame.fm}, left,
                 0.5 * tol, depth + 1, options, result);
  SimpsonRecurse(f, m, b, SimpsonFrame{frame.fm, frm, frame.fb}, right,
                 0.5 * tol, depth + 1, options, result);
}

}  // namespace

QuadratureResult AdaptiveSimpson(const std::function<double(double)>& f,
                                 double a, double b,
                                 const AdaptiveSimpsonOptions& options) {
  QuadratureResult result;
  if (a == b) return result;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  const double m = 0.5 * (a + b);
  SimpsonFrame frame{f(a), f(m), f(b)};
  result.evaluations = 3;
  const double whole =
      ((b - a) / 6.0) * (frame.fa + 4.0 * frame.fm + frame.fb);
  SimpsonRecurse(f, a, b, frame, whole, options.abs_tolerance, 0, options,
                 &result);
  result.value *= sign;
  return result;
}

namespace {

GaussLegendreRule ComputeGaussLegendre(int k) {
  GaussLegendreRule rule;
  rule.nodes.resize(k);
  rule.weights.resize(k);
  const int m = (k + 1) / 2;
  for (int i = 0; i < m; ++i) {
    // Chebyshev-based initial guess for the i-th root of P_k.
    double x = std::cos(M_PI * (i + 0.75) / (k + 0.5));
    double pp = 0.0;  // derivative P'_k(x)
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_k(x) by the three-term recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (int j = 2; j <= k; ++j) {
        const double p2 = ((2.0 * j - 1.0) * x * p1 - (j - 1.0) * p0) / j;
        p0 = p1;
        p1 = p2;
      }
      // p1 = P_k(x), p0 = P_{k-1}(x).
      pp = k * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[k - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[k - 1 - i] = w;
  }
  if (k % 2 == 1) {
    // For odd k the middle node is exactly 0; the loop above computed it,
    // but pin it to avoid -0.0 artifacts.
    rule.nodes[k / 2] = 0.0;
  }
  return rule;
}

}  // namespace

const GaussLegendreRule& GetGaussLegendreRule(int k) {
  VOD_CHECK_MSG(k >= 1 && k <= 128, "Gauss-Legendre order out of range");
  static std::mutex mutex;
  static std::map<int, GaussLegendreRule> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(k);
  if (it == cache.end()) {
    it = cache.emplace(k, ComputeGaussLegendre(k)).first;
  }
  return it->second;
}

double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int points) {
  if (a == b) return 0.0;
  const GaussLegendreRule& rule = GetGaussLegendreRule(points);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double sum = 0.0;
  for (int i = 0; i < points; ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return sum * half;
}

double CompositeGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int panels, int points_per_panel) {
  VOD_CHECK(panels >= 1);
  if (a == b) return 0.0;
  const double h = (b - a) / panels;
  double sum = 0.0;
  for (int p = 0; p < panels; ++p) {
    sum += GaussLegendre(f, a + p * h, a + (p + 1) * h, points_per_panel);
  }
  return sum;
}

}  // namespace vod
