#include "numerics/interval_set.h"

#include <algorithm>

#include "common/check.h"

namespace vod {

IntervalSet::IntervalSet(const std::vector<Interval>& intervals) {
  for (const auto& iv : intervals) Add(iv);
}

void IntervalSet::Add(const Interval& interval) {
  if (interval.empty()) return;
  // Find the first existing interval whose hi >= interval.lo (possible
  // overlap start) via linear scan from a binary-searched position.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  // Step back one: the predecessor may overlap (its hi may reach into us).
  if (it != intervals_.begin() && std::prev(it)->hi >= interval.lo) --it;

  Interval merged = interval;
  auto erase_begin = it;
  while (it != intervals_.end() && it->lo <= merged.hi) {
    merged.lo = std::min(merged.lo, it->lo);
    merged.hi = std::max(merged.hi, it->hi);
    ++it;
  }
  it = intervals_.erase(erase_begin, it);
  intervals_.insert(it, merged);
}

void IntervalSet::ClipTo(const Interval& clip) {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& iv : intervals_) {
    Interval cut = iv.Intersect(clip);
    if (!cut.empty()) out.push_back(cut);
  }
  intervals_ = std::move(out);
}

double IntervalSet::TotalLength() const {
  double total = 0.0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::Contains(double x) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](double v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->Contains(x);
}

double IntervalSet::MeasureThrough(
    const std::function<double(double)>& cdf) const {
  double total = 0.0;
  for (const auto& iv : intervals_) {
    const double mass = cdf(iv.hi) - cdf(iv.lo);
    VOD_DCHECK(mass >= -1e-12);
    total += std::max(mass, 0.0);
  }
  return total;
}

IntervalSet IntervalSet::ComplementWithin(const Interval& bounds) const {
  IntervalSet out;
  if (bounds.empty()) return out;
  double cursor = bounds.lo;
  for (const auto& iv : intervals_) {
    if (iv.hi < bounds.lo) continue;
    if (iv.lo > bounds.hi) break;
    if (iv.lo > cursor) out.Add(Interval{cursor, std::min(iv.lo, bounds.hi)});
    cursor = std::max(cursor, iv.hi);
  }
  if (cursor < bounds.hi) out.Add(Interval{cursor, bounds.hi});
  return out;
}

}  // namespace vod
