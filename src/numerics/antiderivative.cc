#include "numerics/antiderivative.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

TabulatedAntiderivative::TabulatedAntiderivative(
    const std::function<double(double)>& f, double lo, double hi, int cells)
    : lo_(lo), hi_(hi) {
  VOD_CHECK_MSG(cells >= 1 && hi > lo, "need hi > lo and cells >= 1");
  step_ = (hi - lo) / cells;
  values_.resize(static_cast<size_t>(cells) + 1);
  integral_.resize(static_cast<size_t>(cells) + 1);
  for (int i = 0; i <= cells; ++i) values_[i] = f(lo + i * step_);
  integral_[0] = 0.0;
  for (int i = 0; i < cells; ++i) {
    const double mid = f(lo + (i + 0.5) * step_);
    // Simpson on the cell.
    integral_[i + 1] =
        integral_[i] + step_ / 6.0 * (values_[i] + 4.0 * mid + values_[i + 1]);
  }
}

double TabulatedAntiderivative::operator()(double x) const {
  if (x <= lo_) return 0.0;
  const double offset = (x - lo_) / step_;
  const auto cell = static_cast<size_t>(offset);
  if (cell >= values_.size() - 1) return integral_.back();
  const double frac = offset - static_cast<double>(cell);
  const double h = frac * step_;
  // Trapezoid within the cell using the linear interpolant of f.
  const double f0 = values_[cell];
  const double f1 = values_[cell + 1];
  const double fx = f0 + (f1 - f0) * frac;
  return integral_[cell] + 0.5 * (f0 + fx) * h;
}

}  // namespace vod
