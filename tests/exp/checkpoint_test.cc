// Tests for crash-recoverable experiment grids (exp/checkpoint.h).
//
// The contract under test: a run killed at ANY cell boundary and resumed
// from its checkpoint produces a byte-identical grid — at any thread count.
// Kills are emulated in-process with CheckpointOptions::max_cells, which
// stops after N newly executed cells exactly like a SIGKILL between cells
// (the on-disk checkpoint is all a dead process leaves behind either way).
// The out-of-process SIGKILL version lives in bench/soak_crash_recovery.cc.

#include "exp/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/partition_layout.h"
#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"

namespace vod {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("checkpoint_test_" + name + ".ckpt") {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// A real (tiny) simulation per cell: configs vary the buffer budget, so
/// every cell has a distinct, deterministic report.
SimulationReport RunTestCell(const CellContext& context) {
  auto layout =
      PartitionLayout::FromBuffer(120.0, 4, 20.0 + 10.0 * context.config_index);
  VOD_CHECK(layout.ok());
  SimulationOptions options;
  options.warmup_minutes = 20.0;
  options.measurement_minutes = 200.0;
  options.seed = context.seed;
  auto report = RunSimulation(*layout, PlaybackRates{}, options);
  VOD_CHECK(report.ok());
  return *report;
}

constexpr int64_t kConfigs = 3;
constexpr int kReps = 4;
constexpr uint64_t kFingerprint = 0x5EEDF00D;

ExperimentOptions GridOptions(int threads) {
  ExperimentOptions options;
  options.threads = threads;
  options.replications = kReps;
  options.base_seed = 987654321;
  return options;
}

std::string GridText(const std::vector<std::vector<SimulationReport>>& grid) {
  std::string text;
  for (const auto& row : grid) {
    for (const auto& report : row) {
      text += report.ToString();
      text += '\n';
    }
  }
  return text;
}

std::string ReferenceGridText() {
  CheckpointOptions no_checkpoint;
  auto result = RunCheckpointedReportGrid(kConfigs, GridOptions(1),
                                          no_checkpoint, kFingerprint,
                                          RunTestCell);
  VOD_CHECK(result.ok());
  VOD_CHECK(result->complete);
  return GridText(result->reports);
}

TEST(ReportCodecTest, RoundTripsBitExactly) {
  SimulationReport original = RunTestCell(CellContext{1, 2, 777});
  ByteWriter w;
  SerializeSimulationReport(original, &w);
  ByteReader in(w.bytes());
  SimulationReport copy;
  ASSERT_TRUE(DeserializeSimulationReport(&in, &copy).ok());
  EXPECT_TRUE(in.AtEnd());
  ByteWriter w2;
  SerializeSimulationReport(copy, &w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(original.ToString(), copy.ToString());
}

TEST(ReportCodecTest, TruncationIsAnErrorNotACrash) {
  ByteWriter w;
  SerializeSimulationReport(SimulationReport{}, &w);
  const std::string bytes = w.bytes().substr(0, w.size() / 2);
  ByteReader in(bytes);
  SimulationReport report;
  EXPECT_FALSE(DeserializeSimulationReport(&in, &report).ok());
}

TEST(HashGridDescriptionTest, DistinguishesDescriptions) {
  EXPECT_NE(HashGridDescription("l=120 B=40 n=4"),
            HashGridDescription("l=120 B=40 n=5"));
  EXPECT_EQ(HashGridDescription("x"), HashGridDescription("x"));
}

TEST(CheckpointOptionsTest, Validation) {
  CheckpointOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.checkpoint_every = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.checkpoint_every = 1;
  options.resume = true;  // with an empty path
  EXPECT_FALSE(options.Validate().ok());
}

TEST(GridCheckpointFileTest, SaveLoadRoundTrip) {
  TempPath path("roundtrip");
  GridCheckpoint checkpoint;
  checkpoint.fingerprint = 0xF00D;
  checkpoint.base_seed = 42;
  checkpoint.configs = 2;
  checkpoint.replications = 5;
  checkpoint.done.assign(10, false);
  checkpoint.reports.assign(10, SimulationReport{});
  checkpoint.done[3] = checkpoint.done[7] = true;
  checkpoint.reports[3] = RunTestCell(CellContext{0, 3, 99});
  checkpoint.reports[7] = RunTestCell(CellContext{1, 2, 123});
  checkpoint.metrics_blob = "opaque registry snapshot";
  ASSERT_TRUE(SaveGridCheckpoint(path.str(), checkpoint).ok());

  auto loaded = LoadGridCheckpoint(path.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->fingerprint, 0xF00Du);
  EXPECT_EQ(loaded->base_seed, 42u);
  EXPECT_EQ(loaded->cells_done(), 2);
  EXPECT_EQ(loaded->done, checkpoint.done);
  EXPECT_EQ(loaded->reports[3].ToString(), checkpoint.reports[3].ToString());
  EXPECT_EQ(loaded->reports[7].ToString(), checkpoint.reports[7].ToString());
  EXPECT_EQ(loaded->metrics_blob, checkpoint.metrics_blob);
}

TEST(GridCheckpointFileTest, LoadsPreObservabilityCheckpoints) {
  TempPath path("pre_obs");
  // Replicate the on-disk layout from before the metrics blob existed:
  // identity, packed done bitmap, completed reports — and nothing after.
  ByteWriter payload;
  payload.PutU64(0xF00D);  // fingerprint
  payload.PutU64(42);      // base_seed
  payload.PutI64(1);       // configs
  payload.PutI64(2);       // replications
  payload.PutU8(0x01);     // cell 0 done, cell 1 pending
  SerializeSimulationReport(RunTestCell(CellContext{0, 0, 7}), &payload);
  ASSERT_TRUE(WriteSnapshotFile(path.str(), SnapshotPayload::kExperimentGrid,
                                payload.bytes())
                  .ok());

  auto loaded = LoadGridCheckpoint(path.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->cells_done(), 1);
  EXPECT_TRUE(loaded->metrics_blob.empty());
}

TEST(GridCheckpointFileTest, RejectsCorruptedTruncatedAndForeignFiles) {
  TempPath path("rejects");
  GridCheckpoint checkpoint;
  checkpoint.fingerprint = 1;
  checkpoint.base_seed = 2;
  checkpoint.configs = 1;
  checkpoint.replications = 2;
  checkpoint.done.assign(2, true);
  checkpoint.reports.assign(2, SimulationReport{});
  ASSERT_TRUE(SaveGridCheckpoint(path.str(), checkpoint).ok());

  std::string bytes;
  {
    std::ifstream in(path.str(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  {  // flip one payload bit -> CRC failure
    std::string corrupt = bytes;
    corrupt[corrupt.size() - 3] ^= 0x10;
    std::ofstream(path.str(), std::ios::binary) << corrupt;
    auto loaded = LoadGridCheckpoint(path.str());
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
        << loaded.status().message();
  }
  {  // truncate mid-payload
    std::ofstream(path.str(), std::ios::binary)
        << bytes.substr(0, bytes.size() - 7);
    EXPECT_FALSE(LoadGridCheckpoint(path.str()).ok());
  }
  {  // wrong format version (byte 8 is the version's low byte)
    std::string wrong = bytes;
    wrong[8] = static_cast<char>(kSnapshotFormatVersion + 1);
    std::ofstream(path.str(), std::ios::binary) << wrong;
    auto loaded = LoadGridCheckpoint(path.str());
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
        << loaded.status().message();
  }
  {  // not a snapshot at all
    std::ofstream(path.str(), std::ios::binary) << "definitely not binary";
    EXPECT_FALSE(LoadGridCheckpoint(path.str()).ok());
  }
  {  // missing file
    std::remove(path.str().c_str());
    auto loaded = LoadGridCheckpoint(path.str());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  }
}

TEST(CheckpointedGridTest, UncheckpointedRunMatchesReference) {
  const std::string reference = ReferenceGridText();
  CheckpointOptions no_checkpoint;
  auto result = RunCheckpointedReportGrid(kConfigs, GridOptions(4),
                                          no_checkpoint, kFingerprint,
                                          RunTestCell);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->complete);
  EXPECT_EQ(GridText(result->reports), reference);
}

void RunKillResumeAt(int threads) {
  const std::string reference = ReferenceGridText();
  TempPath path("kill_resume_t" + std::to_string(threads));

  // "Crash" after 5 of 12 cells: the checkpoint file is all that survives.
  CheckpointOptions first;
  first.path = path.str();
  first.checkpoint_every = 2;
  first.max_cells = 5;
  auto interrupted = RunCheckpointedReportGrid(
      kConfigs, GridOptions(threads), first, kFingerprint, RunTestCell);
  ASSERT_TRUE(interrupted.ok()) << interrupted.status().message();
  EXPECT_FALSE(interrupted->complete);
  EXPECT_EQ(interrupted->cells_run, 5);

  // Resume to completion.
  CheckpointOptions second;
  second.path = path.str();
  second.checkpoint_every = 2;
  second.resume = true;
  auto resumed = RunCheckpointedReportGrid(
      kConfigs, GridOptions(threads), second, kFingerprint, RunTestCell);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ASSERT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->cells_restored, 5);
  EXPECT_EQ(resumed->cells_run, kConfigs * kReps - 5);
  EXPECT_EQ(GridText(resumed->reports), reference);
}

TEST(CheckpointedGridTest, KillAndResumeIsByteIdenticalSerial) {
  RunKillResumeAt(/*threads=*/1);
}

TEST(CheckpointedGridTest, KillAndResumeIsByteIdenticalParallel) {
  RunKillResumeAt(/*threads=*/4);
}

TEST(CheckpointedGridTest, RepeatedKillsStillConverge) {
  const std::string reference = ReferenceGridText();
  TempPath path("repeated_kills");
  CheckpointOptions options;
  options.path = path.str();
  options.checkpoint_every = 1;
  options.max_cells = 3;
  bool complete = false;
  int rounds = 0;
  std::string final_text;
  while (!complete) {
    ASSERT_LT(rounds, 10) << "grid never completed";
    auto result = RunCheckpointedReportGrid(
        kConfigs, GridOptions(2), options, kFingerprint, RunTestCell);
    ASSERT_TRUE(result.ok()) << result.status().message();
    complete = result->complete;
    if (complete) final_text = GridText(result->reports);
    options.resume = true;  // every later round resumes the same file
    ++rounds;
  }
  EXPECT_EQ(rounds, 4);  // ceil(12 / 3) rounds of 3 cells; the last completes
  EXPECT_EQ(final_text, reference);
}

TEST(CheckpointedGridTest, MetricsSeriesSurvivesKillAndResume) {
  // Uninterrupted run: the registry samples the cells-done clock, so its
  // series is the reference for what a crash must not perturb.
  MetricsRegistry uninterrupted;
  uninterrupted.set_sample_every(1.0);
  {
    GridObsOptions obs;
    obs.metrics = &uninterrupted;
    CheckpointOptions no_checkpoint;
    auto result =
        RunCheckpointedReportGrid(kConfigs, GridOptions(2), no_checkpoint,
                                  kFingerprint, RunTestCell, obs);
    ASSERT_TRUE(result.ok()) << result.status().message();
  }
  std::ostringstream reference;
  uninterrupted.WriteSeriesCsv(reference);

  TempPath path("metrics_continuity");
  {
    // First process: killed after 5 cells. Its registry dies with the
    // process; only the snapshot blob inside the checkpoint survives.
    MetricsRegistry doomed;
    doomed.set_sample_every(1.0);
    GridObsOptions obs;
    obs.metrics = &doomed;
    CheckpointOptions first;
    first.path = path.str();
    first.checkpoint_every = 2;
    first.max_cells = 5;
    auto interrupted = RunCheckpointedReportGrid(
        kConfigs, GridOptions(2), first, kFingerprint, RunTestCell, obs);
    ASSERT_TRUE(interrupted.ok()) << interrupted.status().message();
    ASSERT_FALSE(interrupted->complete);
  }

  // Second process: a fresh registry is restored from the checkpoint and
  // the clock continues at the restored cell count.
  MetricsRegistry resumed_registry;
  resumed_registry.set_sample_every(1.0);
  EventRing ring(64);
  EventLog log;
  log.AddSink(&ring);
  GridObsOptions obs;
  obs.metrics = &resumed_registry;
  obs.event_log = &log;
  CheckpointOptions second;
  second.path = path.str();
  second.checkpoint_every = 2;
  second.resume = true;
  auto resumed = RunCheckpointedReportGrid(
      kConfigs, GridOptions(2), second, kFingerprint, RunTestCell, obs);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ASSERT_TRUE(resumed->complete);

  EXPECT_EQ(resumed_registry.FindCounter("grid_cells_completed")->value(),
            kConfigs * kReps);
  std::ostringstream stitched;
  resumed_registry.WriteSeriesCsv(stitched);
  EXPECT_EQ(stitched.str(), reference.str());
  // One kCell event per cell newly executed by the resuming process.
  EXPECT_EQ(ring.total_appended(),
            static_cast<uint64_t>(kConfigs * kReps - 5));
}

TEST(CheckpointedGridTest, ResumeRefusesForeignCheckpoint) {
  TempPath path("foreign");
  CheckpointOptions write_options;
  write_options.path = path.str();
  write_options.max_cells = 2;
  ASSERT_TRUE(RunCheckpointedReportGrid(kConfigs, GridOptions(1),
                                        write_options, kFingerprint,
                                        RunTestCell)
                  .ok());

  CheckpointOptions resume_options;
  resume_options.path = path.str();
  resume_options.resume = true;

  {  // different experiment fingerprint
    auto result = RunCheckpointedReportGrid(
        kConfigs, GridOptions(1), resume_options, kFingerprint + 1,
        RunTestCell);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("different experiment"),
              std::string::npos);
  }
  {  // different base seed
    ExperimentOptions other = GridOptions(1);
    other.base_seed ^= 1;
    EXPECT_FALSE(RunCheckpointedReportGrid(kConfigs, other, resume_options,
                                           kFingerprint, RunTestCell)
                     .ok());
  }
  {  // different grid shape
    EXPECT_FALSE(RunCheckpointedReportGrid(kConfigs + 1, GridOptions(1),
                                           resume_options, kFingerprint,
                                           RunTestCell)
                     .ok());
  }
  {  // resume with no file at all
    TempPath missing("missing");
    CheckpointOptions gone;
    gone.path = missing.str();
    gone.resume = true;
    auto result = RunCheckpointedReportGrid(
        kConfigs, GridOptions(1), gone, kFingerprint, RunTestCell);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace vod
