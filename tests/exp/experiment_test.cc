// Experiment runner: seed derivation, flag plumbing, and grid indexing.

#include "exp/experiment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace vod {
namespace {

TEST(CellSeedTest, IsAPureFunctionOfItsInputs) {
  EXPECT_EQ(CellSeed(1, 2, 3), CellSeed(1, 2, 3));
  EXPECT_EQ(CellSeed(20240707, 0, 0), CellSeed(20240707, 0, 0));
}

TEST(CellSeedTest, DistinctAcrossConfigsReplicationsAndBases) {
  // Any collision would correlate cells that must be independent.
  std::set<uint64_t> seen;
  for (uint64_t base : {0ull, 42ull, 20240707ull}) {
    for (uint64_t config = 0; config < 64; ++config) {
      for (uint64_t rep = 0; rep < 16; ++rep) {
        seen.insert(CellSeed(base, config, rep));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 64u * 16u);
}

TEST(CellSeedTest, StableUnderGridReshaping) {
  // Appending configs or replications must not move existing cells' seeds:
  // the mapping depends only on the indices, never on grid extents.
  const uint64_t seed_before = CellSeed(7, 3, 2);
  // (Nothing to "grow" — the API has no extent parameter — so equality with
  // a fresh evaluation is the whole guarantee.)
  EXPECT_EQ(CellSeed(7, 3, 2), seed_before);
  // Golden lock: a change to the mixing constants shifts every stream.
  EXPECT_EQ(CellSeed(7, 3, 2), CellSeed(7, 3, 2));
  EXPECT_NE(CellSeed(7, 3, 2), CellSeed(7, 2, 3));
}

TEST(ResolveThreadCountTest, NeverMoreThreadsThanCells) {
  EXPECT_EQ(ResolveThreadCount(8, 3), 3);
  EXPECT_EQ(ResolveThreadCount(2, 100), 2);
  EXPECT_EQ(ResolveThreadCount(1, 100), 1);
}

TEST(ResolveThreadCountTest, AutoResolvesToAtLeastOne) {
  EXPECT_GE(ResolveThreadCount(0, 100), 1);
  EXPECT_EQ(ResolveThreadCount(0, 1), 1);
}

TEST(ExperimentFlagsTest, RegistersThreadsAndOptionallyReplications) {
  FlagSet with_reps("t");
  AddExperimentFlags(&with_reps, /*with_replications=*/true);
  EXPECT_TRUE(with_reps.Has("threads"));
  EXPECT_TRUE(with_reps.Has("replications"));

  FlagSet without_reps("t");
  AddExperimentFlags(&without_reps);
  EXPECT_TRUE(without_reps.Has("threads"));
  EXPECT_FALSE(without_reps.Has("replications"));
}

TEST(ExperimentFlagsTest, OptionsFromFlagsReadBothShapes) {
  FlagSet flags("t");
  AddExperimentFlags(&flags, /*with_replications=*/true);
  const char* argv[] = {"t", "--threads=3", "--replications=5"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  const auto options = ExperimentOptionsFromFlags(flags, /*base_seed=*/99);
  EXPECT_EQ(options.threads, 3);
  EXPECT_EQ(options.replications, 5);
  EXPECT_EQ(options.base_seed, 99u);

  FlagSet bare("t");
  AddExperimentFlags(&bare);
  const char* bare_argv[] = {"t"};
  ASSERT_TRUE(bare.Parse(1, const_cast<char**>(bare_argv)).ok());
  const auto bare_options = ExperimentOptionsFromFlags(bare, 7);
  EXPECT_EQ(bare_options.replications, 1);
  EXPECT_EQ(bare_options.base_seed, 7u);
}

TEST(RunExperimentGridTest, IndexesResultsByConfigAndReplication) {
  const std::vector<int> configs = {10, 20, 30};
  ExperimentOptions options;
  options.threads = 2;
  options.replications = 4;
  options.base_seed = 5;
  const auto grid = RunExperimentGrid(
      configs, options, [](int config, const CellContext& context) {
        return std::to_string(config) + ":" +
               std::to_string(context.config_index) + ":" +
               std::to_string(context.replication);
      });
  ASSERT_EQ(grid.size(), 3u);
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(grid[c].size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(grid[c][r], std::to_string(configs[c]) + ":" +
                                std::to_string(c) + ":" + std::to_string(r));
    }
  }
}

TEST(RunExperimentGridTest, SeedsMatchCellSeedAndThreadCountIsInvisible) {
  const std::vector<int> configs = {0, 1, 2, 3, 4};
  std::vector<std::vector<uint64_t>> per_thread_count;
  for (int threads : {1, 4}) {
    ExperimentOptions options;
    options.threads = threads;
    options.replications = 3;
    options.base_seed = 77;
    const auto grid = RunExperimentGrid(
        configs, options,
        [](int, const CellContext& context) { return context.seed; });
    std::vector<uint64_t> flat;
    for (const auto& row : grid) flat.insert(flat.end(), row.begin(), row.end());
    per_thread_count.push_back(std::move(flat));
  }
  EXPECT_EQ(per_thread_count[0], per_thread_count[1]);
  EXPECT_EQ(per_thread_count[0][0], CellSeed(77, 0, 0));
  EXPECT_EQ(per_thread_count[0][4], CellSeed(77, 1, 1));
}

TEST(RunExperimentGridTest, EmptyConfigListYieldsEmptyGrid) {
  const std::vector<int> configs;
  ExperimentOptions options;
  const auto grid = RunExperimentGrid(
      configs, options, [](int, const CellContext&) { return 0; });
  EXPECT_TRUE(grid.empty());
}

}  // namespace
}  // namespace vod
