// ReplicationSummary: Student-t reduction over per-replication reports.

#include "exp/replication.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/batch_means.h"

namespace vod {
namespace {

SimulationReport MakeReport(double hit_in_partition, double hit_all,
                            double mean_wait, int64_t resumes) {
  SimulationReport report;
  report.hit_probability_in_partition = hit_in_partition;
  report.hit_probability = hit_all;
  report.mean_wait_minutes = mean_wait;
  report.p99_wait_minutes = 2.0 * mean_wait;
  report.mean_dedicated_streams = 10.0;
  report.in_partition_resumes = resumes;
  report.total_resumes = resumes + 100;
  return report;
}

TEST(ReplicationSummaryTest, SingleReplicationHasZeroHalfWidth) {
  ReplicationSummary summary;
  summary.Add(MakeReport(0.6, 0.5, 1.0, 1000));
  EXPECT_EQ(summary.count(), 1);
  const auto metric = summary.hit_probability_in_partition();
  EXPECT_DOUBLE_EQ(metric.mean, 0.6);
  EXPECT_DOUBLE_EQ(metric.half_width, 0.0);
  EXPECT_EQ(metric.replications, 1);
}

TEST(ReplicationSummaryTest, MeanAndStudentTHalfWidth) {
  const std::vector<double> values = {0.5, 0.6, 0.7};
  ReplicationSummary summary;
  for (double v : values) summary.Add(MakeReport(v, v, 1.0, 1000));

  const auto metric = summary.hit_probability_in_partition();
  EXPECT_NEAR(metric.mean, 0.6, 1e-12);
  // Sample stddev of {0.5, 0.6, 0.7} is 0.1; t_{.975, 2 dof} scaled by
  // 1/sqrt(3).
  const double expected = StudentT975(2) * 0.1 / std::sqrt(3.0);
  EXPECT_NEAR(metric.half_width, expected, 1e-9);
  EXPECT_NEAR(metric.lower(), metric.mean - expected, 1e-9);
  EXPECT_NEAR(metric.upper(), metric.mean + expected, 1e-9);
}

TEST(ReplicationSummaryTest, CountsAccumulateAcrossReplications) {
  ReplicationSummary summary;
  summary.Add(MakeReport(0.5, 0.5, 1.0, 300));
  summary.Add(MakeReport(0.6, 0.6, 1.0, 400));
  EXPECT_EQ(summary.total_in_partition_resumes(), 700);
  EXPECT_EQ(summary.total_resumes(), 900);
}

TEST(ReplicationSummaryTest, SummarizeReplicationsMatchesManualAdds) {
  const std::vector<SimulationReport> reports = {
      MakeReport(0.4, 0.4, 1.0, 100), MakeReport(0.8, 0.8, 3.0, 200)};
  const auto summary = SummarizeReplications(reports);
  EXPECT_EQ(summary.count(), 2);
  EXPECT_NEAR(summary.hit_probability_in_partition().mean, 0.6, 1e-12);
  EXPECT_NEAR(summary.mean_wait_minutes().mean, 2.0, 1e-12);
}

TEST(ReplicationSummaryTest, ToStringIsDeterministic) {
  ReplicationSummary a, b;
  for (const auto& report :
       {MakeReport(0.5, 0.5, 1.0, 300), MakeReport(0.6, 0.6, 2.0, 400)}) {
    a.Add(report);
    b.Add(report);
  }
  EXPECT_FALSE(a.ToString().empty());
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace vod
