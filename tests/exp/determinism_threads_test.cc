// The replication harness's core contract: --threads=1 and --threads=N
// produce byte-identical results. A Figure-7-sized sweep of single-movie
// simulations and a server-simulation grid both run twice, serially and on
// four workers, and every cell's ToString() must match byte for byte.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "exp/experiment.h"
#include "exp/replication.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

struct SweepPoint {
  double w;
  int n;
};

std::vector<std::vector<std::string>> RunFig7Sweep(int threads) {
  // A scaled-down Figure-7 grid: 6 configs x 2 replications = 12 cells,
  // enough for workers to interleave on any schedule.
  const std::vector<SweepPoint> points = {{0.5, 20}, {0.5, 60}, {1.0, 20},
                                          {1.0, 60}, {2.0, 20}, {2.0, 50}};
  ExperimentOptions options;
  options.threads = threads;
  options.replications = 2;
  options.base_seed = 20240707;
  return RunExperimentGrid(
      points, options, [](const SweepPoint& point, const CellContext& context) {
        const auto layout = PartitionLayout::FromMaxWait(
            paper::kFig7MovieLength, point.n, point.w);
        VOD_CHECK_OK(layout.status());
        SimulationOptions sim;
        sim.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        sim.behavior = paper::Fig7MixedBehavior();
        sim.warmup_minutes = 500.0;
        sim.measurement_minutes = 4000.0;
        sim.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), sim);
        VOD_CHECK_OK(report.status());
        return report->ToString();
      });
}

TEST(DeterminismThreadsTest, Fig7SweepIsByteIdenticalAcrossThreadCounts) {
  const auto serial = RunFig7Sweep(1);
  const auto parallel = RunFig7Sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), parallel[c].size());
    for (size_t r = 0; r < serial[c].size(); ++r) {
      EXPECT_EQ(serial[c][r], parallel[c][r])
          << "config " << c << " replication " << r;
    }
  }
}

std::vector<std::vector<std::string>> RunServerGrid(int threads) {
  std::vector<ServerMovieSpec> movies;
  const auto layout_a = PartitionLayout::FromBuffer(120.0, 40, 60.0);
  const auto layout_b = PartitionLayout::FromBuffer(90.0, 30, 45.0);
  VOD_CHECK_OK(layout_a.status());
  VOD_CHECK_OK(layout_b.status());
  movies.push_back({"top-1", *layout_a, 0.5, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"top-2", *layout_b, 0.33, nullptr, paper::Fig7MixedBehavior()});

  const std::vector<int64_t> reserves = {20, 40, 80};
  ExperimentOptions options;
  options.threads = threads;
  options.replications = 2;
  options.base_seed = 555;
  return RunExperimentGrid(
      reserves, options, [&](int64_t reserve, const CellContext& context) {
        ServerOptions server;
        server.rates = paper::Rates();
        server.dynamic_stream_reserve = reserve;
        server.warmup_minutes = 500.0;
        server.measurement_minutes = 3000.0;
        server.seed = context.seed;
        const auto report = RunServerSimulation(movies, server);
        VOD_CHECK_OK(report.status());
        return report->ToString();
      });
}

TEST(DeterminismThreadsTest, ServerGridIsByteIdenticalAcrossThreadCounts) {
  const auto serial = RunServerGrid(1);
  const auto parallel = RunServerGrid(4);
  EXPECT_EQ(serial, parallel);
}

TEST(DeterminismThreadsTest, ReplicationSummaryIsThreadCountInvariant) {
  // End-to-end through the reducer: the Student-t summary string of each
  // config's replications must also be identical.
  const std::vector<int> ns = {20, 40};
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ExperimentOptions options;
    options.threads = threads;
    options.replications = 3;
    options.base_seed = 4242;
    const auto grid = RunExperimentGrid(
        ns, options, [](int n, const CellContext& context) {
          const auto layout =
              PartitionLayout::FromMaxWait(paper::kFig7MovieLength, n, 1.0);
          VOD_CHECK_OK(layout.status());
          SimulationOptions sim;
          sim.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
          sim.behavior = paper::Fig7MixedBehavior();
          sim.warmup_minutes = 500.0;
          sim.measurement_minutes = 3000.0;
          sim.seed = context.seed;
          const auto report = RunSimulation(*layout, paper::Rates(), sim);
          VOD_CHECK_OK(report.status());
          return *report;
        });
    static std::vector<std::string> first_run;
    std::vector<std::string> summaries;
    for (const auto& row : grid) {
      summaries.push_back(SummarizeReplications(row).ToString());
    }
    if (first_run.empty()) {
      first_run = summaries;
    } else {
      EXPECT_EQ(summaries, first_run);
    }
  }
}

}  // namespace
}  // namespace vod
