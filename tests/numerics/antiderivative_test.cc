#include "numerics/antiderivative.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(AntiderivativeTest, LinearFunctionExactAtKnotsAndBetween) {
  TabulatedAntiderivative table([](double x) { return 2.0 * x; }, 0.0, 10.0,
                                100);
  for (double x : {0.0, 0.05, 1.0, 3.33, 7.5, 10.0}) {
    EXPECT_NEAR(table(x), x * x, 1e-9) << "x=" << x;
  }
  EXPECT_NEAR(table.total(), 100.0, 1e-9);
}

TEST(AntiderivativeTest, ExponentialCdfIntegral) {
  // ∫_0^b (1 - e^{-t}) dt = b - 1 + e^{-b}.
  const auto f = [](double t) { return 1.0 - std::exp(-t); };
  TabulatedAntiderivative table(f, 0.0, 20.0, 2048);
  for (double b : {0.1, 0.5, 1.0, 5.0, 12.3, 20.0}) {
    EXPECT_NEAR(table(b), b - 1.0 + std::exp(-b), 1e-7) << "b=" << b;
  }
}

TEST(AntiderivativeTest, ClampsOutsideRange) {
  TabulatedAntiderivative table([](double) { return 1.0; }, 2.0, 4.0, 16);
  EXPECT_DOUBLE_EQ(table(1.0), 0.0);
  EXPECT_DOUBLE_EQ(table(2.0), 0.0);
  EXPECT_NEAR(table(5.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(table(5.0), table.total());
}

TEST(AntiderivativeTest, BoundsAccessors) {
  TabulatedAntiderivative table([](double) { return 0.0; }, -1.0, 3.0, 8);
  EXPECT_DOUBLE_EQ(table.lower(), -1.0);
  EXPECT_DOUBLE_EQ(table.upper(), 3.0);
  EXPECT_DOUBLE_EQ(table.total(), 0.0);
}

TEST(AntiderivativeTest, MonotoneForSmoothNonNegativeIntegrand) {
  // The use case is integrated CDFs, which are smooth and non-negative; the
  // interpolant may regress only by its O(h³) cell mismatch there.
  TabulatedAntiderivative table(
      [](double x) { return 0.5 * (1.0 + std::sin(x)); }, 0.0, 10.0, 512);
  double previous = -1.0;
  for (double x = 0.0; x <= 10.0; x += 0.01) {
    const double value = table(x);
    ASSERT_GE(value, previous - 1e-6);
    previous = value;
  }
}

TEST(AntiderivativeTest, SingleCellStillIntegrates) {
  TabulatedAntiderivative table([](double x) { return x; }, 0.0, 2.0, 1);
  EXPECT_NEAR(table.total(), 2.0, 1e-12);
  EXPECT_NEAR(table(1.0), 0.5, 1e-12);  // linear interpolant is exact here
}

}  // namespace
}  // namespace vod
