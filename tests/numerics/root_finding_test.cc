#include "numerics/root_finding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(BrentRootTest, FindsPolynomialRoot) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  const Result<double> root = BrentRoot(f, 0.0, 2.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), std::cbrt(2.0), 1e-9);
}

TEST(BrentRootTest, FindsTranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const Result<double> root = BrentRoot(f, 0.0, 1.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 0.7390851332151607, 1e-9);
}

TEST(BrentRootTest, ExactEndpointRoots) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(BrentRoot(f, 1.0, 3.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(BrentRoot(f, -1.0, 1.0).value(), 1.0);
}

TEST(BrentRootTest, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_TRUE(BrentRoot(f, -1.0, 1.0).status().IsInvalidArgument());
}

TEST(BrentRootTest, SteepFunction) {
  const auto f = [](double x) { return std::exp(30.0 * x) - 1.0; };
  const Result<double> root = BrentRoot(f, -2.0, 1.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 0.0, 1e-8);
}

TEST(BisectRootTest, FindsRoot) {
  const auto f = [](double x) { return x * x - 9.0; };
  const Result<double> root = BisectRoot(f, 0.0, 10.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 3.0, 1e-8);
}

TEST(BisectRootTest, RejectsNonBracketingInterval) {
  const auto f = [](double) { return 1.0; };
  EXPECT_TRUE(BisectRoot(f, 0.0, 1.0).status().IsInvalidArgument());
}

TEST(BisectRootTest, DiscontinuousSignChange) {
  // Step function: no exact root, bisection converges to the jump.
  const auto f = [](double x) { return x < 0.7 ? -1.0 : 1.0; };
  const Result<double> root = BisectRoot(f, 0.0, 1.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 0.7, 1e-8);
}

TEST(MonotoneThresholdTest, FindsBoundary) {
  const auto pred = [](double x) { return x >= 2.5; };
  const Result<double> threshold = MonotoneThreshold(pred, 0.0, 10.0, 1e-9);
  ASSERT_TRUE(threshold.ok());
  EXPECT_NEAR(threshold.value(), 2.5, 1e-8);
  EXPECT_TRUE(pred(threshold.value()));
}

TEST(MonotoneThresholdTest, AlreadyTrueAtLowerBound) {
  const auto pred = [](double) { return true; };
  const Result<double> threshold = MonotoneThreshold(pred, 3.0, 10.0);
  ASSERT_TRUE(threshold.ok());
  EXPECT_DOUBLE_EQ(threshold.value(), 3.0);
}

TEST(MonotoneThresholdTest, InfeasibleWhenNeverTrue) {
  const auto pred = [](double) { return false; };
  EXPECT_TRUE(MonotoneThreshold(pred, 0.0, 1.0).status().IsInfeasible());
}

TEST(RootFindingOptionsTest, FToleranceTerminatesEarly) {
  RootFindingOptions options;
  options.f_tolerance = 0.5;
  options.x_tolerance = 0.0;
  const auto f = [](double x) { return x; };
  const Result<double> root = BrentRoot(f, -1.0, 2.0, options);
  ASSERT_TRUE(root.ok());
  EXPECT_LE(std::fabs(root.value()), 0.5);
}

}  // namespace
}  // namespace vod
