#include "numerics/interval_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace vod {
namespace {

TEST(IntervalTest, EmptyAndLength) {
  EXPECT_TRUE((Interval{2.0, 1.0}).empty());
  EXPECT_FALSE((Interval{1.0, 1.0}).empty());
  EXPECT_DOUBLE_EQ((Interval{1.0, 4.0}).length(), 3.0);
  EXPECT_DOUBLE_EQ((Interval{4.0, 1.0}).length(), 0.0);
}

TEST(IntervalTest, ContainsEndpoints) {
  const Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(1.5));
  EXPECT_FALSE(iv.Contains(0.999));
  EXPECT_FALSE(iv.Contains(2.001));
}

TEST(IntervalTest, Intersect) {
  const Interval a{0.0, 5.0};
  const Interval b{3.0, 8.0};
  EXPECT_EQ(a.Intersect(b), (Interval{3.0, 5.0}));
  EXPECT_TRUE(a.Intersect(Interval{6.0, 7.0}).empty());
}

TEST(IntervalSetTest, StartsEmpty) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.TotalLength(), 0.0);
  EXPECT_FALSE(set.Contains(0.0));
}

TEST(IntervalSetTest, AddDisjointKeepsBoth) {
  IntervalSet set;
  set.Add({0.0, 1.0});
  set.Add({2.0, 3.0});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.TotalLength(), 2.0);
}

TEST(IntervalSetTest, AddOverlappingMerges) {
  IntervalSet set;
  set.Add({0.0, 2.0});
  set.Add({1.0, 3.0});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0.0, 3.0}));
}

TEST(IntervalSetTest, AddTouchingMerges) {
  IntervalSet set;
  set.Add({0.0, 1.0});
  set.Add({1.0, 2.0});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.TotalLength(), 2.0);
}

TEST(IntervalSetTest, AddSpanningMergesMany) {
  IntervalSet set;
  set.Add({0.0, 1.0});
  set.Add({2.0, 3.0});
  set.Add({4.0, 5.0});
  set.Add({0.5, 4.5});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0.0, 5.0}));
}

TEST(IntervalSetTest, AddEmptyIsIgnored) {
  IntervalSet set;
  set.Add({3.0, 1.0});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSetTest, OutOfOrderInsertionNormalizes) {
  IntervalSet set;
  set.Add({4.0, 5.0});
  set.Add({0.0, 1.0});
  set.Add({2.0, 3.0});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(set.intervals()[1].lo, 2.0);
  EXPECT_DOUBLE_EQ(set.intervals()[2].lo, 4.0);
}

TEST(IntervalSetTest, ConstructorFromVectorNormalizes) {
  IntervalSet set({{3.0, 4.0}, {0.0, 2.0}, {1.0, 3.5}});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0.0, 4.0}));
}

TEST(IntervalSetTest, ClipToRestricts) {
  IntervalSet set({{0.0, 2.0}, {3.0, 5.0}, {6.0, 8.0}});
  set.ClipTo({1.0, 6.5});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.intervals()[0], (Interval{1.0, 2.0}));
  EXPECT_EQ(set.intervals()[1], (Interval{3.0, 5.0}));
  EXPECT_EQ(set.intervals()[2], (Interval{6.0, 6.5}));
}

TEST(IntervalSetTest, ClipToEmptyRangeClearsAll) {
  IntervalSet set({{0.0, 2.0}});
  set.ClipTo({5.0, 6.0});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSetTest, ContainsAfterMerge) {
  IntervalSet set({{0.0, 1.0}, {2.0, 3.0}});
  EXPECT_TRUE(set.Contains(0.5));
  EXPECT_TRUE(set.Contains(1.0));
  EXPECT_FALSE(set.Contains(1.5));
  EXPECT_TRUE(set.Contains(2.0));
  EXPECT_FALSE(set.Contains(3.5));
  EXPECT_FALSE(set.Contains(-0.5));
}

TEST(IntervalSetTest, MeasureThroughIdentityCdfEqualsLength) {
  IntervalSet set({{0.0, 1.0}, {2.0, 4.0}});
  const double measure = set.MeasureThrough([](double x) { return x; });
  EXPECT_DOUBLE_EQ(measure, set.TotalLength());
}

TEST(IntervalSetTest, MeasureThroughExponentialCdf) {
  IntervalSet set({{0.0, 1.0}, {2.0, 3.0}});
  const auto cdf = [](double x) { return 1.0 - std::exp(-x); };
  const double expected =
      (cdf(1.0) - cdf(0.0)) + (cdf(3.0) - cdf(2.0));
  EXPECT_NEAR(set.MeasureThrough(cdf), expected, 1e-15);
}

TEST(IntervalSetTest, ComplementWithinBounds) {
  IntervalSet set({{1.0, 2.0}, {3.0, 4.0}});
  const IntervalSet complement = set.ComplementWithin({0.0, 5.0});
  ASSERT_EQ(complement.size(), 3u);
  EXPECT_EQ(complement.intervals()[0], (Interval{0.0, 1.0}));
  EXPECT_EQ(complement.intervals()[1], (Interval{2.0, 3.0}));
  EXPECT_EQ(complement.intervals()[2], (Interval{4.0, 5.0}));
  EXPECT_NEAR(complement.TotalLength() + set.TotalLength(), 5.0, 1e-12);
}

TEST(IntervalSetTest, ComplementOfEmptyIsBounds) {
  IntervalSet set;
  const IntervalSet complement = set.ComplementWithin({2.0, 7.0});
  ASSERT_EQ(complement.size(), 1u);
  EXPECT_EQ(complement.intervals()[0], (Interval{2.0, 7.0}));
}

TEST(IntervalSetTest, ComplementOfCoveringSetIsEmpty) {
  IntervalSet set({{0.0, 10.0}});
  EXPECT_TRUE(set.ComplementWithin({2.0, 7.0}).empty());
}

// Property test: random unions agree with a dense-grid membership oracle.
TEST(IntervalSetTest, RandomizedAgainstGridOracle) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    std::vector<Interval> raw;
    const int k = 1 + static_cast<int>(rng.UniformInt(10));
    for (int i = 0; i < k; ++i) {
      const double a = rng.Uniform(0.0, 10.0);
      const double b = a + rng.Uniform(0.0, 3.0);
      raw.push_back({a, b});
      set.Add({a, b});
    }
    // Invariant: sorted and disjoint.
    for (size_t i = 1; i < set.size(); ++i) {
      ASSERT_GT(set.intervals()[i].lo, set.intervals()[i - 1].hi);
    }
    // Membership matches the raw union on a grid.
    double grid_length = 0.0;
    const double step = 0.001;
    for (double x = -0.5; x <= 13.5; x += step) {
      bool in_raw = false;
      for (const auto& iv : raw) in_raw |= iv.Contains(x);
      ASSERT_EQ(set.Contains(x), in_raw) << "x=" << x << " trial=" << trial;
      if (in_raw) grid_length += step;
    }
    EXPECT_NEAR(set.TotalLength(), grid_length, 0.05);
  }
}

}  // namespace
}  // namespace vod
