#include "numerics/optimize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(GoldenSectionTest, QuadraticMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; };
  const Minimum m = GoldenSectionMinimize(f, -10.0, 10.0, 1e-10);
  EXPECT_NEAR(m.x, 1.7, 1e-7);
  EXPECT_NEAR(m.value, 3.0, 1e-12);
}

TEST(GoldenSectionTest, BoundaryMinimum) {
  const auto f = [](double x) { return x; };  // min at the left edge
  const Minimum m = GoldenSectionMinimize(f, 2.0, 5.0, 1e-10);
  EXPECT_NEAR(m.x, 2.0, 1e-6);
}

TEST(GoldenSectionTest, DegenerateInterval) {
  const auto f = [](double x) { return x * x; };
  const Minimum m = GoldenSectionMinimize(f, 3.0, 3.0);
  EXPECT_DOUBLE_EQ(m.x, 3.0);
  EXPECT_DOUBLE_EQ(m.value, 9.0);
}

TEST(GoldenSectionTest, NonSmoothUnimodal) {
  const auto f = [](double x) { return std::fabs(x - 0.25); };
  const Minimum m = GoldenSectionMinimize(f, -1.0, 1.0, 1e-10);
  EXPECT_NEAR(m.x, 0.25, 1e-7);
}

TEST(GridMinimizeTest, FindsGlobalMinimumOfMultimodal) {
  // Two wells; the deeper one is at x ≈ 4.71 (3π/2 of sin).
  const auto f = [](double x) { return std::sin(x) + 0.01 * x; };
  const Minimum m = GridMinimize(f, 0.0, 7.0, 2001);
  EXPECT_NEAR(m.x, 3.0 * M_PI / 2.0, 0.05);
}

TEST(GridMinimizeTest, IncludesEndpoints) {
  const auto f = [](double x) { return -x; };
  const Minimum m = GridMinimize(f, 0.0, 5.0, 11);
  EXPECT_DOUBLE_EQ(m.x, 5.0);
  EXPECT_DOUBLE_EQ(m.value, -5.0);
}

TEST(DiscreteMinimizeTest, PicksBestCandidate) {
  const auto f = [](double x) { return (x - 3.0) * (x - 3.0); };
  const Minimum m = DiscreteMinimize(f, {0.0, 2.0, 3.5, 10.0});
  EXPECT_DOUBLE_EQ(m.x, 3.5);
}

TEST(DiscreteMinimizeTest, SingleCandidate) {
  const auto f = [](double x) { return x; };
  const Minimum m = DiscreteMinimize(f, {42.0});
  EXPECT_DOUBLE_EQ(m.x, 42.0);
  EXPECT_DOUBLE_EQ(m.value, 42.0);
}

}  // namespace
}  // namespace vod
