#include "numerics/quadrature.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(AdaptiveSimpsonTest, PolynomialExact) {
  const auto f = [](double x) { return 3.0 * x * x; };
  const QuadratureResult r = AdaptiveSimpson(f, 0.0, 2.0);
  EXPECT_NEAR(r.value, 8.0, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(AdaptiveSimpsonTest, TranscendentalIntegrals) {
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                              M_PI)
                  .value,
              2.0, 1e-9);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::exp(-x); }, 0.0,
                              20.0)
                  .value,
              1.0, 1e-8);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return 1.0 / x; }, 1.0,
                              std::exp(1.0))
                  .value,
              1.0, 1e-9);
}

TEST(AdaptiveSimpsonTest, EmptyIntervalIsZero) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(AdaptiveSimpson(f, 2.0, 2.0).value, 0.0);
}

TEST(AdaptiveSimpsonTest, ReversedBoundsFlipSign) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(AdaptiveSimpson(f, 1.0, 0.0).value, -0.5, 1e-12);
}

TEST(AdaptiveSimpsonTest, KinkedIntegrand) {
  // |x - 0.3| on [0, 1]: ∫ = 0.3²/2 + 0.7²/2 = 0.29.
  const auto f = [](double x) { return std::fabs(x - 0.3); };
  EXPECT_NEAR(AdaptiveSimpson(f, 0.0, 1.0).value, 0.29, 1e-8);
}

TEST(AdaptiveSimpsonTest, ReportsNonConvergenceAtDepthLimit) {
  AdaptiveSimpsonOptions options;
  options.abs_tolerance = 1e-15;
  options.max_depth = 2;
  // A needle the shallow recursion cannot resolve to 1e-15.
  const auto f = [](double x) { return std::exp(-1000.0 * x * x); };
  const QuadratureResult r = AdaptiveSimpson(f, -1.0, 1.0, options);
  EXPECT_FALSE(r.converged);
}

TEST(AdaptiveSimpsonTest, EvaluationCountIsReported) {
  const auto f = [](double x) { return x * x; };
  const QuadratureResult r = AdaptiveSimpson(f, 0.0, 1.0);
  EXPECT_GE(r.evaluations, 5);
}

TEST(GaussLegendreRuleTest, WeightsSumToTwo) {
  for (int k : {1, 2, 3, 5, 8, 16, 32, 64, 128}) {
    const GaussLegendreRule& rule = GetGaussLegendreRule(k);
    ASSERT_EQ(static_cast<int>(rule.nodes.size()), k);
    double sum = 0.0;
    for (double w : rule.weights) {
      EXPECT_GT(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 2.0, 1e-12) << "k=" << k;
  }
}

TEST(GaussLegendreRuleTest, NodesAscendingAndSymmetric) {
  const GaussLegendreRule& rule = GetGaussLegendreRule(16);
  for (size_t i = 1; i < rule.nodes.size(); ++i) {
    EXPECT_LT(rule.nodes[i - 1], rule.nodes[i]);
  }
  for (size_t i = 0; i < rule.nodes.size(); ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[rule.nodes.size() - 1 - i], 1e-12);
  }
}

TEST(GaussLegendreRuleTest, KnownTwoPointRule) {
  const GaussLegendreRule& rule = GetGaussLegendreRule(2);
  EXPECT_NEAR(rule.nodes[0], -1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.nodes[1], 1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0, 1e-14);
}

TEST(GaussLegendreTest, ExactForPolynomialsUpToDegree2kMinus1) {
  // k = 4 integrates degree-7 polynomials exactly.
  const auto f = [](double x) {
    return 1.0 + x - 2.0 * std::pow(x, 3) + 0.5 * std::pow(x, 7);
  };
  const double exact = 2.0 * 2.0 + 0.0 + 0.0 + 0.0;  // odd terms vanish on
                                                     // [-2, 2]? No: bounds.
  // Use [0, 1] with a directly computed exact value instead.
  const double on01 = 1.0 + 0.5 - 2.0 / 4.0 + 0.5 / 8.0;
  EXPECT_NEAR(GaussLegendre(f, 0.0, 1.0, 4), on01, 1e-13);
  (void)exact;
}

TEST(GaussLegendreTest, MatchesAdaptiveOnSmoothFunction) {
  const auto f = [](double x) { return std::cos(3.0 * x) * std::exp(-x); };
  const double adaptive = AdaptiveSimpson(f, 0.0, 4.0).value;
  EXPECT_NEAR(GaussLegendre(f, 0.0, 4.0, 32), adaptive, 1e-9);
}

TEST(CompositeGaussLegendreTest, HandlesManyKinks) {
  // Sawtooth-like integrand: fractional part of 10x on [0, 1] integrates to
  // 0.5.
  const auto f = [](double x) {
    const double t = 10.0 * x;
    return t - std::floor(t);
  };
  EXPECT_NEAR(CompositeGaussLegendre(f, 0.0, 1.0, 200, 8), 0.5, 1e-3);
}

TEST(CompositeGaussLegendreTest, SinglePanelEqualsPlainRule) {
  const auto f = [](double x) { return std::exp(x); };
  EXPECT_DOUBLE_EQ(CompositeGaussLegendre(f, 0.0, 1.0, 1, 16),
                   GaussLegendre(f, 0.0, 1.0, 16));
}

TEST(GaussLegendreTest, EmptyInterval) {
  EXPECT_DOUBLE_EQ(GaussLegendre([](double) { return 1.0; }, 3.0, 3.0, 8),
                   0.0);
}

}  // namespace
}  // namespace vod
