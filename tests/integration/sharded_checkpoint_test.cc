// Checkpoint/resume round-trips for the sharded server (sim/sharded_server.h).
//
// The sharded checkpoint is replay-verify: a tiny snapshot (config
// fingerprint, shard count, windows completed, barrier-ledger digest) is
// written at window barriers; a resume re-runs the simulation from t=0 and
// proves, at the checkpointed window, that the replay's digest chain matches
// what the crashed run observed — byte-identical or loud failure, never a
// silent fork. `stop_after_windows` emulates a SIGKILL between barriers
// in-process (the vodctl soak --shards leg kills a real process at a random
// point; this suite pins the protocol down deterministically).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "gtest/gtest.h"
#include "sim/sharded_server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

/// Self-cleaning checkpoint path in the test's working directory.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("sharded_ckpt_test_" + name + ".ckpt") {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  VOD_CHECK(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> FourMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.4, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.3, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

ShardedServerOptions BaseOptions(int shards, int threads) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 40;
  options.base.warmup_minutes = 300.0;
  options.base.measurement_minutes = 2500.0;
  options.base.seed = 23;
  options.base.faults.enabled = true;
  options.base.faults.disks = 6;
  options.base.faults.profile.mtbf_minutes = 500.0;
  options.base.faults.profile.mttr_minutes = 90.0;
  options.base.audit.enabled = true;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 40.0;
  return options;
}

TEST(ShardedCheckpointTest, CrashMidRunThenResumeIsByteIdentical) {
  const auto movies = FourMovies();
  // Golden: the same configuration straight through, no checkpointing.
  const auto golden = RunShardedServerSimulation(movies, BaseOptions(3, 2));
  ASSERT_TRUE(golden.ok()) << golden.status().message();

  TempPath path("resume");
  auto crashed = BaseOptions(3, 2);
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 4;
  crashed.checkpoint.stop_after_windows = 17;  // not a checkpoint multiple
  const auto partial = RunShardedServerSimulation(movies, crashed);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->windows, 17);

  auto resumed_options = BaseOptions(3, 2);
  resumed_options.checkpoint.path = path.str();
  resumed_options.checkpoint.every_windows = 4;
  resumed_options.checkpoint.resume = true;
  const auto resumed = RunShardedServerSimulation(movies, resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->ToString(), golden->ToString());
  EXPECT_EQ(resumed->ledger_digest, golden->ledger_digest);
}

TEST(ShardedCheckpointTest, ResumeVerifiesEvenAtExactCheckpointBoundary) {
  const auto movies = FourMovies();
  TempPath path("boundary");
  auto crashed = BaseOptions(2, 1);
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 5;
  crashed.checkpoint.stop_after_windows = 10;  // dies exactly at a barrier
  const auto partial = RunShardedServerSimulation(movies, crashed);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  ASSERT_FALSE(partial->complete);

  auto resumed_options = BaseOptions(2, 1);
  resumed_options.checkpoint.path = path.str();
  resumed_options.checkpoint.resume = true;
  const auto resumed = RunShardedServerSimulation(movies, resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_TRUE(resumed->complete);

  const auto golden = RunShardedServerSimulation(movies, BaseOptions(2, 1));
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(resumed->ToString(), golden->ToString());
}

TEST(ShardedCheckpointTest, LadderCrashMidDegradationResumesByteIdentical) {
  // The windowed ladder adds no checkpoint state — rungs, streaks, and
  // reclaim quotas are replayed from t=0 and cross-checked through the
  // digest chain (which folds the per-barrier ladder decision). A crash
  // while rungs are moving must resume to the golden bytes, resilience
  // block and all.
  const auto movies = FourMovies();
  auto ladder = BaseOptions(3, 2);
  ladder.base.dynamic_stream_reserve = 24;
  ladder.base.degradation.enabled = true;
  ladder.base.degradation.queue_deadline_minutes = 5.0;
  ladder.ladder_recover_windows = 2;
  const auto golden = RunShardedServerSimulation(movies, ladder);
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  ASSERT_GT(golden->server.resilience.total_transitions, 0)
      << "the ladder never engaged; the crash would not land mid-degradation";

  TempPath path("ladder");
  auto crashed = ladder;
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 4;
  crashed.checkpoint.stop_after_windows = 17;
  const auto partial = RunShardedServerSimulation(movies, crashed);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  EXPECT_FALSE(partial->complete);

  auto resumed_options = ladder;
  resumed_options.checkpoint.path = path.str();
  resumed_options.checkpoint.every_windows = 4;
  resumed_options.checkpoint.resume = true;
  const auto resumed = RunShardedServerSimulation(movies, resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->ToString(), golden->ToString());
  EXPECT_EQ(resumed->ledger_digest, golden->ledger_digest);
}

TEST(ShardedCheckpointTest, LadderPolicyChangeOnResumeIsRejected) {
  // The ladder knobs are part of the config fingerprint: resuming a
  // ladder-armed checkpoint with different thresholds (or with the ladder
  // off) would silently change the trajectory, so it must refuse.
  const auto movies = FourMovies();
  TempPath path("ladder_policy");
  auto crashed = BaseOptions(2, 1);
  crashed.base.degradation.enabled = true;
  crashed.base.degradation.queue_deadline_minutes = 5.0;
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 4;
  crashed.checkpoint.stop_after_windows = 8;
  ASSERT_TRUE(RunShardedServerSimulation(movies, crashed).ok());

  auto retuned = crashed;
  retuned.checkpoint.stop_after_windows = 0;
  retuned.checkpoint.resume = true;
  retuned.base.degradation.shed_below_fraction = 0.6;
  const auto status = RunShardedServerSimulation(movies, retuned).status();
  ASSERT_TRUE(status.IsInvalidArgument()) << status.message();
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos)
      << status.message();
}

TEST(ShardedCheckpointTest, ShardCountChangeOnResumeIsRejected) {
  const auto movies = FourMovies();
  TempPath path("reshard");
  auto crashed = BaseOptions(3, 2);
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 4;
  crashed.checkpoint.stop_after_windows = 8;
  ASSERT_TRUE(RunShardedServerSimulation(movies, crashed).ok());

  auto resharded = BaseOptions(4, 2);  // 3 -> 4 shards across the resume
  resharded.checkpoint.path = path.str();
  resharded.checkpoint.resume = true;
  const auto status =
      RunShardedServerSimulation(movies, resharded).status();
  ASSERT_TRUE(status.IsInvalidArgument()) << status.message();
  EXPECT_NE(status.message().find("shard count"), std::string::npos)
      << status.message();
}

TEST(ShardedCheckpointTest, ForeignConfigurationOnResumeIsRejected) {
  const auto movies = FourMovies();
  TempPath path("foreign");
  auto crashed = BaseOptions(2, 1);
  crashed.checkpoint.path = path.str();
  crashed.checkpoint.every_windows = 4;
  crashed.checkpoint.stop_after_windows = 8;
  ASSERT_TRUE(RunShardedServerSimulation(movies, crashed).ok());

  auto reseeded = BaseOptions(2, 1);
  reseeded.base.seed = 999;  // different run entirely
  reseeded.checkpoint.path = path.str();
  reseeded.checkpoint.resume = true;
  const auto status =
      RunShardedServerSimulation(movies, reseeded).status();
  ASSERT_TRUE(status.IsInvalidArgument()) << status.message();
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos)
      << status.message();
}

TEST(ShardedCheckpointTest, ResumeWithoutCheckpointFileRunsFresh) {
  const auto movies = FourMovies();
  TempPath path("fresh");
  auto options = BaseOptions(2, 1);
  options.checkpoint.path = path.str();
  options.checkpoint.resume = true;  // nothing on disk yet: fresh run
  const auto report = RunShardedServerSimulation(movies, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->complete);
  const auto golden = RunShardedServerSimulation(movies, BaseOptions(2, 1));
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(report->ToString(), golden->ToString());
}

TEST(ShardedCheckpointTest, ValidationRejectsBadCadence) {
  auto options = BaseOptions(2, 1);
  options.checkpoint.path = "x.ckpt";
  options.checkpoint.every_windows = 0;
  EXPECT_TRUE(RunShardedServerSimulation(FourMovies(), options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace vod
