// The paper's Section 4 validation: the analytic model must track the
// discrete-event simulation for every VCR operation type and for the mixed
// workload, across waiting-time targets and partition counts.

#include <gtest/gtest.h>

#include <string>

#include "core/hit_model.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

struct ValidationCase {
  std::string label;
  VcrOp op;
  int streams;
  double max_wait;
  /// Allowed |model − sim| for resumes issued from inside a partition.
  double tolerance;
};

std::vector<ValidationCase> Cases() {
  // Tolerances reflect the paper's own observations (§4): the FF and PAU
  // figures nearly coincide; RW shows a visible gap because the model calls
  // a rewind-past-start a miss while the real system often re-enrolls.
  return {
      {"FF_n20_w1", VcrOp::kFastForward, 20, 1.0, 0.02},
      {"FF_n40_w1", VcrOp::kFastForward, 40, 1.0, 0.02},
      {"FF_n80_w1", VcrOp::kFastForward, 80, 1.0, 0.03},
      {"FF_n40_w2", VcrOp::kFastForward, 40, 2.0, 0.03},
      {"RW_n20_w1", VcrOp::kRewind, 20, 1.0, 0.08},
      {"RW_n40_w1", VcrOp::kRewind, 40, 1.0, 0.08},
      {"PAU_n20_w1", VcrOp::kPause, 20, 1.0, 0.02},
      {"PAU_n40_w1", VcrOp::kPause, 40, 1.0, 0.02},
      {"PAU_n40_w2", VcrOp::kPause, 40, 2.0, 0.03},
  };
}

class ModelVsSimTest : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(ModelVsSimTest, SimulationTracksModel) {
  const ValidationCase& c = GetParam();
  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, c.streams, c.max_wait);
  ASSERT_TRUE(layout.ok());

  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(c.op, paper::Fig7Duration());
  ASSERT_TRUE(p_model.ok());

  SimulationOptions options;
  options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
  options.behavior = paper::Fig7SingleOpBehavior(c.op);
  options.warmup_minutes = 2000.0;
  options.measurement_minutes = 40000.0;
  options.seed = 20240707;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());

  EXPECT_NEAR(report->hit_probability_in_partition, *p_model, c.tolerance)
      << c.label << ": model=" << *p_model
      << " sim=" << report->hit_probability_in_partition << " ("
      << report->in_partition_resumes << " resumes)";
}

INSTANTIATE_TEST_SUITE_P(Fig7, ModelVsSimTest, ::testing::ValuesIn(Cases()),
                         [](const ::testing::TestParamInfo<ValidationCase>&
                                info) { return info.param.label; });

TEST(ModelVsSimTest, DiscrepancySignsMatchThePaper) {
  // §4: the model *under*-estimates RW and PAU hits (boundary at minute 0
  // counted as a miss) and can *over*-estimate FF hits near partition
  // leading edges. Check the RW sign, which is the pronounced one.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model =
      model->HitProbability(VcrOp::kRewind, paper::Fig7Duration());
  ASSERT_TRUE(p_model.ok());

  SimulationOptions options;
  options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kRewind);
  options.warmup_minutes = 2000.0;
  options.measurement_minutes = 40000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->hit_probability, *p_model);
}

TEST(ModelVsSimTest, MixedWorkloadMatches) {
  // Figure 7(d): P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(
      VcrMix::PaperMixed(), VcrDurations::AllSame(paper::Fig7Duration()));
  ASSERT_TRUE(p_model.ok());

  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 2000.0;
  options.measurement_minutes = 40000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->hit_probability_in_partition, *p_model, 0.05);
  EXPECT_GT(report->in_partition_resumes, 5000);
}

TEST(ModelVsSimTest, HeterogeneousPerOpDurationsMatch) {
  // The model accepts a different duration distribution per operation; the
  // simulator must agree under the same heterogeneous behavior.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());

  VcrDurations durations;
  durations.fast_forward = std::make_shared<GammaDistribution>(2.0, 4.0);
  durations.rewind = std::make_shared<ExponentialDistribution>(3.0);
  durations.pause = std::make_shared<ExponentialDistribution>(12.0);
  const VcrMix mix{0.3, 0.3, 0.4};

  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(mix, durations);
  ASSERT_TRUE(p_model.ok());

  SimulationOptions options;
  options.behavior.mix = mix;
  options.behavior.durations = durations;
  options.behavior.interactivity = paper::DefaultInteractivity();
  options.warmup_minutes = 2000.0;
  options.measurement_minutes = 40000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->hit_probability_in_partition, *p_model, 0.04);
}

TEST(ModelVsSimTest, InteractivityRateBarelyMovesHitProbability) {
  // The model has no interactivity-rate parameter; the simulated hit
  // probability must be insensitive to it (it only changes how many resumes
  // are observed). This justifies our choice of the unstated constant.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  double estimates[2];
  int idx = 0;
  for (double mean_gap : {10.0, 40.0}) {
    SimulationOptions options;
    options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kPause);
    options.behavior.interactivity =
        std::make_shared<ExponentialDistribution>(mean_gap);
    options.warmup_minutes = 2000.0;
    options.measurement_minutes = 40000.0;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    ASSERT_TRUE(report.ok());
    estimates[idx++] = report->hit_probability_in_partition;
  }
  EXPECT_NEAR(estimates[0], estimates[1], 0.02);
}

}  // namespace
}  // namespace vod
